"""Calibrated cost models: fitting, persistence, and engine wiring.

Covers the three planes ``repro calibrate`` feeds:

* the **artifact** — versioned JSON round-trip, strict loader,
  ``$REPRO_COST_PROFILE`` resolution;
* the **fit** — on a real measured grid the fitted model's RMS
  relative wall-time error never exceeds the scaled hand-fit baseline
  (the basis contains the hand model, so least squares can only
  improve on it), and staleness is detected when the registered hand
  model changes after calibration;
* the **consumers** — ``select_auto(budget=)`` in predicted wall
  seconds, `Engine.task_cost_fn` for the LPT planner, and the
  calibrated ``patch_budget`` seeding of dynamic sessions (the
  threshold must *move* when the measured costs move).
"""

import json

import pytest

from repro.api.engine import Engine
from repro.api.registry import SolverRegistry, default_registry
from repro.errors import AlgorithmError
from repro.exec import (
    REPRO_COST_PROFILE_ENV,
    CostProfile,
    DynamicCosts,
    FittedModel,
    pack_tasks,
    resolve_cost_profile,
    run_calibration,
)
from repro.exec.calibrate import PROFILE_SCHEMA_VERSION, REFERENCE_POINT
from repro.graphs import build_family


def _model(
    solver="stoer_wagner",
    terms=("1", "n", "m"),
    coefficients=(0.001, 1e-5, 2e-5),
    hand_scale=1e-6,
    hand_cost_ref=None,
):
    return FittedModel(
        solver=solver,
        terms=terms,
        coefficients=coefficients,
        r2=0.99,
        rel_error=0.05,
        hand_rel_error=0.20,
        hand_scale=hand_scale,
        hand_cost_ref=hand_cost_ref,
        samples=8,
    )


def _profile(**kwargs):
    defaults = dict(
        models={"stoer_wagner": _model()},
        dynamic=DynamicCosts(
            patch_slot_seconds=1e-7, rebuild_edge_seconds=1e-6, samples=48
        ),
        grid={"families": ["gnp"], "sizes": [12, 16], "seed": 0, "repeats": 1},
    )
    defaults.update(kwargs)
    return CostProfile(**defaults)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        path = _profile().save(tmp_path / "profile.json")
        loaded = CostProfile.load(path)
        assert loaded.to_payload() == _profile().to_payload()
        assert loaded.models["stoer_wagner"].predict(50, 120) == pytest.approx(
            _profile().models["stoer_wagner"].predict(50, 120)
        )

    def test_payload_is_versioned_and_discriminated(self):
        payload = _profile().to_payload()
        assert payload["schema"] == PROFILE_SCHEMA_VERSION
        assert payload["kind"] == "repro-cost-profile"

    def test_loader_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(AlgorithmError, match="not valid JSON"):
            CostProfile.load(path)

    def test_loader_rejects_missing_file(self, tmp_path):
        with pytest.raises(AlgorithmError, match="cannot read"):
            CostProfile.load(tmp_path / "absent.json")

    def test_loader_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": 2, "entries": {}}))
        with pytest.raises(AlgorithmError, match="kind"):
            CostProfile.load(path)

    def test_loader_rejects_newer_schema(self, tmp_path):
        payload = _profile().to_payload()
        payload["schema"] = PROFILE_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(AlgorithmError, match="schema"):
            CostProfile.load(path)

    def test_loader_rejects_malformed_entry(self, tmp_path):
        payload = _profile().to_payload()
        del payload["solvers"]["stoer_wagner"]["coefficients"]
        path = tmp_path / "malformed.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(AlgorithmError, match="malformed"):
            CostProfile.load(path)

    def test_resolve_passthrough_path_and_env(self, tmp_path, monkeypatch):
        profile = _profile()
        assert resolve_cost_profile(profile) is profile
        path = profile.save(tmp_path / "p.json")
        assert resolve_cost_profile(path).to_payload() == profile.to_payload()
        monkeypatch.delenv(REPRO_COST_PROFILE_ENV, raising=False)
        assert resolve_cost_profile(None) is None
        monkeypatch.setenv(REPRO_COST_PROFILE_ENV, str(path))
        assert resolve_cost_profile(None).to_payload() == profile.to_payload()

    def test_env_pointing_at_garbage_fails_loudly(self, tmp_path, monkeypatch):
        path = tmp_path / "garbage.json"
        path.write_text("[]")
        monkeypatch.setenv(REPRO_COST_PROFILE_ENV, str(path))
        with pytest.raises(AlgorithmError):
            resolve_cost_profile(None)


@pytest.fixture(scope="module")
def measured():
    """One real (tiny) calibration shared by the fit-quality tests."""
    return run_calibration(
        solvers=["stoer_wagner", "matula"],
        families=("gnp",),
        sizes=(10, 14, 18, 22, 26),
        repeats=1,
        include_dynamic=True,
    )


class TestFitQuality:
    def test_fitted_never_worse_than_scaled_hand_model(self, measured):
        for name, model in measured.profile.models.items():
            assert model.hand_rel_error is not None, name
            assert model.rel_error <= model.hand_rel_error + 1e-12, name

    def test_samples_and_grid_recorded(self, measured):
        assert {s.solver for s in measured.samples} == {
            "stoer_wagner",
            "matula",
        }
        assert all(s.seconds > 0 for s in measured.samples)
        assert measured.profile.grid["families"] == ["gnp"]
        assert measured.profile.models["stoer_wagner"].samples == 5

    def test_predictions_positive_and_round_trippable(self, measured, tmp_path):
        registry = default_registry()
        spec = registry.get("stoer_wagner")
        predicted = measured.profile.predict_seconds(spec, 100, 300)
        assert predicted is not None and predicted > 0
        reloaded = CostProfile.load(measured.profile.save(tmp_path / "m.json"))
        assert reloaded.predict_seconds(spec, 100, 300) == pytest.approx(
            predicted
        )

    def test_uncalibrated_solver_falls_back_to_unit_scale(self, measured):
        registry = default_registry()
        spec = registry.get("karger")  # not in the calibrated set
        assert measured.profile.status(spec) == "missing"
        predicted = measured.profile.predict_seconds(spec, 100, 300)
        scale = measured.profile.unit_scale
        assert scale is not None and scale > 0
        assert predicted == pytest.approx(spec.cost_model(100, 300) * scale)

    def test_dynamic_costs_measured(self, measured):
        dynamic = measured.profile.dynamic
        assert dynamic is not None
        assert dynamic.patch_slot_seconds > 0
        assert dynamic.rebuild_edge_seconds > 0

    def test_status_fitted_and_stale(self, measured):
        registry = default_registry()
        spec = registry.get("stoer_wagner")
        assert measured.profile.status(spec) == "fitted"
        model = measured.profile.models["stoer_wagner"]
        skewed = CostProfile(
            models={
                "stoer_wagner": FittedModel(
                    solver="stoer_wagner",
                    terms=model.terms,
                    coefficients=model.coefficients,
                    r2=model.r2,
                    rel_error=model.rel_error,
                    hand_rel_error=model.hand_rel_error,
                    hand_scale=model.hand_scale,
                    hand_cost_ref=(model.hand_cost_ref or 1.0) * 3.0,
                    samples=model.samples,
                )
            }
        )
        assert skewed.status(spec) == "stale"


class TestConsumers:
    def _registry_with_costs(self):
        registry = SolverRegistry()

        @registry.register(
            "cheap",
            kind="exact",
            guarantee="exact",
            cost_model=lambda n, m: 10.0 * m,
        )
        def _cheap(graph, **kw):  # pragma: no cover - never run
            raise AssertionError

        @registry.register(
            "pricy",
            kind="exact",
            guarantee="exact",
            priority=1,
            cost_model=lambda n, m: 1000.0 * m,
        )
        def _pricy(graph, **kw):  # pragma: no cover - never run
            raise AssertionError

        return registry

    def test_select_auto_budget_in_seconds_via_cost_fn(self):
        registry = self._registry_with_costs()
        graph = build_family("gnp", 12, seed=0)
        seconds = {"cheap": 0.5, "pricy": 30.0}
        cost_fn = lambda spec: seconds[spec.name]  # noqa: E731
        # Without the cost_fn the priority tie-break prefers "pricy".
        assert registry.select_auto(graph).name == "pricy"
        # A 1-second wall-time budget rules "pricy" out.
        picked = registry.select_auto(graph, budget=1.0, cost_fn=cost_fn)
        assert picked.name == "cheap"
        # Everything over budget: degrade to the cheapest, not refuse.
        picked = registry.select_auto(graph, budget=0.1, cost_fn=cost_fn)
        assert picked.name == "cheap"

    def test_engine_task_cost_fn_uses_profile_seconds(self, measured):
        engine = Engine(cost_profile=measured.profile)
        graph = build_family("gnp", 12, seed=1)
        tasks = engine.build_batch_tasks([graph], solver="stoer_wagner")
        cost = engine.task_cost_fn()
        spec = engine.registry.get("stoer_wagner")
        expected = measured.profile.predict_seconds(
            spec, graph.number_of_nodes, graph.number_of_edges
        )
        assert cost(tasks[0]) == pytest.approx(expected)
        # The planner accepts the engine cost function as-is.
        plan = pack_tasks(tasks, 2, cost)
        assert sorted(i for ix in plan.assignments for i in ix) == [0]

    def test_engine_without_profile_packs_in_cost_units(self):
        engine = Engine()
        graph = build_family("gnp", 12, seed=1)
        tasks = engine.build_batch_tasks([graph], solver="karger")
        cost = engine.task_cost_fn()
        spec = engine.registry.get("karger")
        assert cost(tasks[0]) == pytest.approx(
            spec.cost_model(graph.number_of_nodes, graph.number_of_edges)
        )

    def test_engine_resolves_profile_from_env(self, tmp_path, monkeypatch):
        path = _profile().save(tmp_path / "env.json")
        monkeypatch.setenv(REPRO_COST_PROFILE_ENV, str(path))
        engine = Engine()
        assert engine.cost_profile is not None
        assert "stoer_wagner" in engine.cost_profile.models

    def test_patch_budget_moves_with_the_profile(self):
        graph = build_family("gnp", 24, seed=3)
        edges = graph.index().directed_edge_count

        def session_with(patch_slot, rebuild_edge):
            profile = _profile(
                dynamic=DynamicCosts(
                    patch_slot_seconds=patch_slot,
                    rebuild_edge_seconds=rebuild_edge,
                    samples=8,
                )
            )
            return Engine(cost_profile=profile).dynamic_session(graph)

        cheap_patches = session_with(1e-8, 1e-6)
        pricy_patches = session_with(1e-6, 1e-6)
        assert cheap_patches.indexer.patch_budget == edges * 100
        assert pricy_patches.indexer.patch_budget == edges
        assert (
            cheap_patches.indexer.patch_budget
            > pricy_patches.indexer.patch_budget
        )

    def test_explicit_patch_budget_wins_over_profile(self):
        graph = build_family("gnp", 16, seed=3)
        engine = Engine(cost_profile=_profile())
        session = engine.dynamic_session(graph, patch_budget=7)
        assert session.indexer.patch_budget == 7

    def test_no_profile_leaves_patch_budget_default(self):
        graph = build_family("gnp", 16, seed=3)
        session = Engine().dynamic_session(graph)
        assert session.indexer.patch_budget is None

    def test_reference_point_matches_solvers_table(self):
        # The staleness check and the CLI cost column sample the same
        # instance; drift between them would make "stale" meaningless.
        assert REFERENCE_POINT == (100, 300)
