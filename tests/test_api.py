"""Tests for the unified solver API: registry, façade, CutResult."""

import pytest

import repro.baselines
import repro.mincut
from repro.api import (
    CutResult,
    SolverRegistry,
    default_registry,
    has_integer_weights,
    solve,
    solve_all,
    solve_batch,
)
from repro.baselines import MinCutResult, stoer_wagner_min_cut
from repro.errors import AlgorithmError
from repro.graphs import WeightedGraph, build_family, complete_graph

FAMILIES = [
    ("gnp", 14),
    ("grid", 9),
    ("complete", 8),
]

#: Global min-cut entry points that deliberately have no registry spec.
UNREGISTERED = {
    # s-t cut, needs source/sink arguments — not a global min-cut solver.
    "max_flow_min_cut",
}


def _family(name, n, seed=0):
    graph = build_family(name, n, seed=seed)
    graph.require_connected()
    return graph


class TestRegistryCompleteness:
    def test_every_public_solver_is_registered(self):
        registry = default_registry()
        implementations = {spec.implementation for spec in registry}
        for module in (repro.baselines, repro.mincut):
            for name in module.__all__:
                if name in UNREGISTERED:
                    continue
                is_global_cut = name.endswith("_min_cut") or name.startswith(
                    "minimum_cut"
                )
                if not is_global_cut:
                    continue
                func = getattr(module, name)
                assert (
                    func in implementations
                ), f"{module.__name__}.{name} has no registered solver"

    def test_expected_names_present(self):
        names = set(default_registry().names())
        assert {
            "exact",
            "exact_congest_full",
            "approx",
            "stoer_wagner",
            "brute_force",
            "karger",
            "karger_stein",
            "matula",
            "su",
            "su_congest",
            "two_respect",
            "nagamochi_ibaraki",
            "bridges",
            "gomory_hu",
        } <= names

    def test_specs_have_valid_metadata(self):
        for spec in default_registry():
            assert spec.kind in ("exact", "approx", "bound")
            assert spec.guarantee
            assert spec.display
            assert spec.summary

    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()

        @registry.register("x", kind="exact", guarantee="exact")
        def _first(graph, **kw):  # pragma: no cover - never run
            raise AssertionError

        with pytest.raises(AlgorithmError):

            @registry.register("x", kind="exact", guarantee="exact")
            def _second(graph, **kw):  # pragma: no cover - never run
                raise AssertionError

    def test_unknown_solver_raises(self):
        with pytest.raises(AlgorithmError, match="unknown solver"):
            solve(_family("gnp", 10), solver="nope")


class TestAutoSelection:
    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_auto_agrees_with_stoer_wagner(self, family, n):
        graph = _family(family, n)
        auto = solve(graph)
        truth = solve(graph, solver="stoer_wagner")
        assert auto.value == pytest.approx(truth.value)

    def test_auto_without_epsilon_is_exact(self):
        result = solve(_family("gnp", 12))
        spec = default_registry().get(result.solver)
        assert spec.kind == "exact"
        assert result.guarantee == "exact"

    def test_auto_with_epsilon_picks_best_approx(self):
        result = solve(_family("complete", 10), epsilon=0.5, seed=1)
        assert result.solver == "approx"
        assert result.guarantee == "1+eps"

    def test_auto_congest_supports_metrics(self):
        result = solve(_family("cycle", 10), mode="congest")
        spec = default_registry().get(result.solver)
        assert spec.supports_congest
        assert result.metrics is not None
        assert result.metrics.total_rounds > 0

    def test_auto_skips_integer_weight_samplers_on_fractional_graphs(self):
        graph = WeightedGraph([(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5), (2, 3, 1.5)])
        assert not has_integer_weights(graph)
        result = solve(graph, epsilon=0.5)
        assert not default_registry().get(result.solver).requires_integer_weights
        assert result.matches(graph)

    def test_explicit_congest_mismatch_raises(self):
        with pytest.raises(AlgorithmError, match="congest"):
            solve(_family("cycle", 8), solver="stoer_wagner", mode="congest")

    def test_explicit_node_limit_raises(self):
        with pytest.raises(AlgorithmError, match="limited"):
            solve(_family("gnp", 24), solver="brute_force")

    def test_explicit_integer_weight_requirement_fails_fast(self):
        graph = WeightedGraph([(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)])
        for name in ("approx", "su"):
            with pytest.raises(AlgorithmError, match="integer"):
                solve(graph, solver=name)

    def test_auto_respects_epsilon_domain(self):
        # epsilon > 1 is outside the paper-approx solver's domain; auto
        # must fall through to a solver whose domain covers it.
        graph = _family("complete", 10)
        result = solve(graph, epsilon=2.0, seed=1)
        assert result.solver != "approx"
        assert result.matches(graph)

    def test_explicit_epsilon_domain_fails_fast(self):
        with pytest.raises(AlgorithmError, match="epsilon up to"):
            solve(_family("complete", 10), solver="approx", epsilon=2.0)


class TestBudgetAwareAuto:
    """The expected-cost metadata and the budget ceiling on ``auto``."""

    def test_every_builtin_solver_has_a_cost_model(self):
        graph = _family("gnp", 16)
        for spec in default_registry():
            cost = spec.expected_cost(graph)
            assert cost is not None and cost > 0, spec.name

    def test_costs_grow_with_instance_size(self):
        small, large = _family("gnp", 16), _family("gnp", 64)
        for spec in default_registry():
            assert spec.expected_cost(large) > spec.expected_cost(small)

    def test_no_budget_keeps_default_pick(self):
        graph = _family("gnp", 30, seed=1)
        registry = default_registry()
        assert registry.select_auto(graph).name == "exact"

    def test_budget_degrades_to_cheaper_exact_solver(self):
        graph = _family("gnp", 30, seed=1)
        registry = default_registry()
        pick = registry.select_auto(graph, budget=20_000)
        # "exact" is over this ceiling; the strongest affordable
        # guarantee with highest priority wins instead.
        assert pick.name == "stoer_wagner"
        assert pick.expected_cost(graph) <= 20_000

    def test_budget_below_everything_picks_cheapest(self):
        graph = _family("gnp", 30, seed=1)
        registry = default_registry()
        pick = registry.select_auto(graph, budget=1)
        candidates = registry.applicable(
            graph, kinds=("exact",), include_heavy=False
        )
        cheapest = min(candidates, key=lambda s: s.expected_cost(graph))
        assert pick.name == cheapest.name

    def test_unmodelled_solvers_are_never_skipped(self):
        registry = SolverRegistry()

        @registry.register(
            "modelled", kind="exact", guarantee="exact", summary="s",
            priority=10, cost_model=lambda n, m: 1e12,
        )
        def _modelled(graph, **kw):  # pragma: no cover - never run
            raise AssertionError

        @registry.register(
            "unmodelled", kind="exact", guarantee="exact", summary="s",
            priority=5,
        )
        def _unmodelled(graph, **kw):  # pragma: no cover - never run
            raise AssertionError

        graph = _family("gnp", 10)
        assert registry.select_auto(graph, budget=100).name == "unmodelled"

    def test_facade_budget_steers_auto_and_is_not_forwarded(self):
        graph = _family("gnp", 30, seed=1)
        result = solve(graph, budget=20_000)
        assert result.solver == "stoer_wagner"
        truth = solve(graph, solver="stoer_wagner")
        assert result.value == pytest.approx(truth.value)

    def test_facade_named_solver_budget_is_still_the_effort_cap(self):
        graph = _family("gnp", 14)
        result = solve(graph, solver="karger", budget=7, seed=3)
        assert result.extras["repetitions"] == 7

    def test_solve_batch_budget_with_auto(self):
        graphs = [_family("gnp", 30, seed=s) for s in (1, 2)]
        results = solve_batch(graphs, budget=20_000)
        assert [r.solver for r in results] == ["stoer_wagner", "stoer_wagner"]
        for graph, result in zip(graphs, results):
            assert result.matches(graph)


class TestEverySolverVerifies:
    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_all_results_verify(self, family, n):
        graph = _family(family, n)
        results = solve_all(graph, epsilon=0.5, seed=3)
        assert len(results) >= 10
        truth = solve(graph, solver="stoer_wagner").value
        for result in results:
            assert isinstance(result, CutResult)
            assert result.solver
            assert result.wall_time >= 0.0
            assert result.seed == 3
            assert result.verify(graph) == pytest.approx(result.value)
            assert result.value >= truth - 1e-9  # every cut upper-bounds λ
            assert 0 < len(result.side) < graph.number_of_nodes

    def test_exact_solvers_agree_on_lambda(self):
        graph = _family("gnp", 12, seed=5)
        truth = solve(graph, solver="stoer_wagner").value
        for result in solve_all(graph, kinds=("exact",), include_heavy=True):
            if default_registry().get(result.solver).randomized:
                continue  # Monte Carlo solvers are only w.h.p.-exact
            assert result.value == pytest.approx(truth), result.solver

    def test_heavy_solver_verifies_on_small_instance(self):
        graph = _family("cycle", 8)
        result = solve(graph, solver="exact_congest_full")
        assert result.matches(graph)
        assert result.metrics is not None
        assert result.metrics.charged_rounds == 0  # all-measured pipeline

    def test_two_respect_is_exact(self):
        graph = _family("gnp", 14, seed=2)
        truth = solve(graph, solver="stoer_wagner")
        result = solve(graph, solver="two_respect")
        assert result.value == pytest.approx(truth.value)
        assert result.matches(graph)
        assert result.extras["crossings"] in (1, 2)

    def test_two_respect_budget_caps_trees(self):
        graph = _family("grid", 9)
        result = solve(graph, solver="two_respect", budget=2)
        assert result.matches(graph)

    def test_su_congest_is_registered_heavy_and_valid(self):
        spec = default_registry().get("su_congest")
        assert spec.heavy and spec.randomized and spec.requires_integer_weights
        graph = _family("cycle", 8)
        result = solve(graph, solver="su_congest", seed=1, budget=3)
        assert result.matches(graph)
        assert result.metrics is not None
        assert result.extras["rates_tried"] >= 1


class TestFacade:
    def test_budget_reaches_adapters(self):
        graph = _family("gnp", 12)
        result = solve(graph, solver="karger", budget=5, seed=2)
        assert result.extras["repetitions"] == 5

    def test_monte_carlo_provenance_reports_actual_repetitions(self):
        graph = _family("gnp", 12)
        for name in ("karger", "karger_stein"):
            result = solve(graph, solver=name, seed=2)
            assert isinstance(result.extras["repetitions"], int), name
            assert result.extras["repetitions"] > 0, name

    def test_options_forwarded(self):
        graph = _family("cycle", 8)
        result = solve(graph, solver="exact", tree_count=3)
        assert result.extras["trees_used"] == 3

    def test_unknown_options_rejected_not_dropped(self):
        graph = _family("cycle", 8)
        with pytest.raises(AlgorithmError, match="extra options"):
            solve(graph, solver="stoer_wagner", tree_count=3)
        with pytest.raises(AlgorithmError, match="repetitions"):
            solve(graph, solver="karger", repetitions=10)  # use budget=

    def test_auto_never_picks_heavy_solvers(self):
        registry = SolverRegistry()

        @registry.register("cheap", kind="exact", guarantee="exact", priority=1)
        def _cheap(graph, **kw):
            node = graph.nodes[0]
            return CutResult(
                value=graph.weighted_degree(node), side=frozenset({node})
            )

        @registry.register(
            "expensive", kind="exact", guarantee="exact", priority=99, heavy=True
        )
        def _expensive(graph, **kw):  # pragma: no cover - must not run
            raise AssertionError("heavy solver must not be auto-picked")

        graph = _family("cycle", 6)
        assert registry.select_auto(graph).name == "cheap"
        assert solve(graph, registry=registry).solver == "cheap"

    def test_solve_all_kind_filter(self):
        graph = _family("complete", 8)
        kinds = {
            default_registry().get(r.solver).kind
            for r in solve_all(graph, kinds=("approx",))
        }
        assert kinds == {"approx"}

    def test_solve_all_excludes_heavy_by_default(self):
        names = {r.solver for r in solve_all(_family("cycle", 8))}
        assert "exact_congest_full" not in names
        heavy = {r.solver for r in solve_all(_family("cycle", 8), include_heavy=True)}
        assert "exact_congest_full" in heavy

    def test_solve_all_rejects_unknown_names(self):
        with pytest.raises(AlgorithmError, match="unknown solver"):
            solve_all(_family("cycle", 8), names=["typo"])

    def test_solve_all_explicit_name_bypasses_heavy_filter(self):
        results = solve_all(_family("cycle", 8), names=["exact_congest_full"])
        assert [r.solver for r in results] == ["exact_congest_full"]

    def test_solve_all_explicit_name_still_capability_filtered(self):
        # brute_force cannot run at n=24; the request is skipped, not an error.
        results = solve_all(_family("gnp", 24), names=["brute_force", "stoer_wagner"])
        assert [r.solver for r in results] == ["stoer_wagner"]

    def test_solve_batch_per_graph_seeds(self):
        graphs = [_family("cycle", 8), _family("complete", 6), _family("grid", 9)]
        results = solve_batch(graphs, seed=10)
        assert [r.seed for r in results] == [10, 11, 12]
        for graph, result in zip(graphs, results):
            assert result.matches(graph)

    def test_wall_time_stamped(self):
        result = solve(_family("complete", 8))
        assert result.wall_time > 0.0


class TestCutResult:
    def test_verify_rejects_bad_sides(self):
        graph = _family("cycle", 6)
        nodes = list(graph.nodes)
        with pytest.raises(AlgorithmError, match="empty"):
            CutResult(value=1.0, side=frozenset()).verify(graph)
        with pytest.raises(AlgorithmError, match="whole graph"):
            CutResult(value=1.0, side=frozenset(nodes)).verify(graph)
        with pytest.raises(AlgorithmError, match="foreign"):
            CutResult(value=1.0, side=frozenset({"ghost"})).verify(graph)

    def test_matches_tolerance(self):
        graph = _family("cycle", 6)
        side = frozenset(list(graph.nodes)[:3])
        good = CutResult(value=graph.cut_value(side), side=side)
        assert good.matches(graph)
        assert not CutResult(value=0.0, side=side).matches(graph)

    def test_other_side_partitions(self):
        graph = _family("grid", 9)
        result = solve(graph)
        assert result.side | result.other_side(graph) == set(graph.nodes)
        assert not result.side & result.other_side(graph)

    def test_min_cut_result_is_cut_result_alias(self):
        graph = _family("gnp", 10)
        legacy = stoer_wagner_min_cut(graph)
        assert isinstance(legacy, MinCutResult)
        assert isinstance(legacy, CutResult)
        assert legacy.matches(graph)

    def test_results_are_hashable(self):
        graph = _family("cycle", 8)
        a = solve(graph, solver="stoer_wagner")
        b = solve(graph, solver="stoer_wagner")
        assert hash(a) == hash(b)
        assert len({a, b, stoer_wagner_min_cut(graph)}) >= 1  # no TypeError

    def test_top_level_reexports(self):
        import repro

        assert repro.solve is solve
        assert repro.CutResult is CutResult
        g = complete_graph(6)
        assert repro.solve(g).value == pytest.approx(5.0)
