"""Tests for Karger's lemma quantities (δ, ρ, δ↓, ρ↓, C(v↓))."""

import pytest

from repro.core import compute_karger_quantities, lca_weights, subtree_sums
from repro.errors import AlgorithmError
from repro.graphs import (
    RootedTree,
    WeightedGraph,
    connected_gnp_graph,
    cycle_graph,
    random_spanning_tree,
)


@pytest.fixture
def square_with_diagonal():
    """4-cycle + diagonal, spanning tree = path 0-1-2-3."""
    g = cycle_graph(4)
    g.add_edge(0, 2, 2.0)
    tree = RootedTree(0, {1: 0, 2: 1, 3: 2})
    return g, tree


class TestRho:
    def test_every_edge_counted_once(self, square_with_diagonal):
        g, tree = square_with_diagonal
        rho = lca_weights(g, tree)
        assert sum(rho.values()) == pytest.approx(g.total_weight())

    def test_tree_edge_lca_is_parent(self):
        tree = RootedTree.path(4)
        g = tree.to_graph()
        rho = lca_weights(g, tree)
        # edge (i, i+1) has LCA i
        assert rho == {0: 1.0, 1: 1.0, 2: 1.0, 3: 0.0}

    def test_known_values(self, square_with_diagonal):
        g, tree = square_with_diagonal
        rho = lca_weights(g, tree)
        # (0,1)->0, (1,2)->1, (2,3)->2, (3,0)->0, (0,2)->0
        assert rho == {0: 1.0 + 1.0 + 2.0, 1: 1.0, 2: 1.0, 3: 0.0}

    def test_non_spanning_tree_rejected(self):
        g = cycle_graph(5)
        tree = RootedTree.path(4)
        with pytest.raises(AlgorithmError):
            lca_weights(g, tree)

    def test_tree_with_non_graph_edge_rejected(self):
        g = WeightedGraph([(0, 1), (1, 2)])
        fake = RootedTree(0, {1: 0, 2: 0})  # (2,0) is not a graph edge
        with pytest.raises(AlgorithmError):
            lca_weights(g, fake)


class TestSubtreeSums:
    def test_path_prefix_sums(self):
        tree = RootedTree.path(5)
        sums = subtree_sums(tree, {i: float(i) for i in range(5)})
        assert sums[4] == 4.0
        assert sums[0] == 10.0
        assert sums[2] == 9.0

    def test_star(self):
        tree = RootedTree.star(5)
        sums = subtree_sums(tree, {i: 1.0 for i in range(5)})
        assert sums[0] == 5.0
        assert all(sums[i] == 1.0 for i in range(1, 5))


class TestLemmaIdentity:
    def test_cut_below_matches_direct_cut(self, square_with_diagonal):
        g, tree = square_with_diagonal
        q = compute_karger_quantities(g, tree)
        for v in g.nodes:
            if v == tree.root:
                continue
            assert q.cut_below[v] == pytest.approx(g.cut_value(tree.subtree(v)))

    def test_root_value_is_zero(self, square_with_diagonal):
        g, tree = square_with_diagonal
        q = compute_karger_quantities(g, tree)
        assert q.cut_below[tree.root] == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_identity_on_random_graphs(self, seed):
        g = connected_gnp_graph(
            22, 0.25, seed=seed, weight_range=(1.0, 4.0) if seed % 2 else (1.0, 1.0)
        )
        tree = random_spanning_tree(g, seed=seed + 1)
        q = compute_karger_quantities(g, tree)
        for v in g.nodes:
            if v == tree.root:
                continue
            assert q.cut_below[v] == pytest.approx(g.cut_value(tree.subtree(v)))

    def test_delta_down_at_root_is_total_degree(self, square_with_diagonal):
        g, tree = square_with_diagonal
        q = compute_karger_quantities(g, tree)
        assert q.delta_down[tree.root] == pytest.approx(2 * g.total_weight())

    def test_rho_down_at_root_is_total_weight(self, square_with_diagonal):
        g, tree = square_with_diagonal
        q = compute_karger_quantities(g, tree)
        assert q.rho_down[tree.root] == pytest.approx(g.total_weight())
