"""Tests for the 2-respecting extension (Karger's full framework)."""

import itertools

import pytest

from repro.baselines import stoer_wagner_min_cut
from repro.core import (
    minimum_cut_exact_two_respect,
    one_respecting_min_cut_reference,
    two_respecting_min_cut_reference,
)
from repro.errors import AlgorithmError
from repro.graphs import (
    RootedTree,
    WeightedGraph,
    connected_gnp_graph,
    cycle_graph,
    planted_cut_graph,
    random_spanning_tree,
)
from repro.packing import crossing_count


def _brute_two_respect(graph, tree):
    """Min over all cuts crossing the tree at most twice (exponential)."""
    nodes = graph.nodes
    best = float("inf")
    anchor, *rest = nodes
    for take in range(len(nodes)):
        for extra in itertools.combinations(rest, take):
            side = {anchor, *extra}
            if len(side) == len(nodes):
                continue
            if crossing_count(tree, side) <= 2:
                best = min(best, graph.cut_value(side))
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exponential_enumeration(self, seed):
        import random

        n = random.Random(seed).randint(5, 10)
        g = connected_gnp_graph(n, 0.5, seed=seed, weight_range=(1.0, 3.0))
        tree = random_spanning_tree(g, seed=seed + 1)
        result = two_respecting_min_cut_reference(g, tree)
        assert result.best_value == pytest.approx(_brute_two_respect(g, tree))

    @pytest.mark.parametrize("seed", range(6))
    def test_side_realises_value(self, seed):
        g = connected_gnp_graph(12, 0.4, seed=seed + 20)
        tree = random_spanning_tree(g, seed=seed)
        result = two_respecting_min_cut_reference(g, tree)
        assert g.cut_value(result.side) == pytest.approx(result.best_value)

    def test_side_crossings_at_most_two(self):
        g = connected_gnp_graph(14, 0.35, seed=4)
        tree = random_spanning_tree(g, seed=4)
        result = two_respecting_min_cut_reference(g, tree)
        assert crossing_count(tree, result.side) <= 2
        assert crossing_count(tree, result.side) == result.crossings


class TestRelationTo1Respect:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_worse_than_one_respect(self, seed):
        g = connected_gnp_graph(13, 0.4, seed=seed + 40)
        tree = random_spanning_tree(g, seed=seed)
        one = one_respecting_min_cut_reference(g, tree)
        two = two_respecting_min_cut_reference(g, tree)
        assert two.best_value <= one.best_value + 1e-9

    def test_cycle_with_path_tree_needs_two_crossings(self):
        # On a cycle with a path tree, the min cut (2) cuts two tree
        # edges for interior arcs; 1-respect can only offer suffixes.
        g = cycle_graph(8)
        tree = RootedTree.path(8)
        two = two_respecting_min_cut_reference(g, tree)
        assert two.best_value == pytest.approx(2.0)

    def test_union_case_found(self):
        # Wheel graph with star tree: cut sides that pair two leaves are
        # unions of two incomparable subtrees.
        g = WeightedGraph()
        for leaf in range(1, 6):
            g.add_edge(0, leaf, 1.0)
        ring = [1, 2, 3, 4, 5]
        for i, u in enumerate(ring):
            g.add_edge(u, ring[(i + 1) % 5], 1.0)
        tree = RootedTree.star(6)
        two = two_respecting_min_cut_reference(g, tree)
        assert crossing_count(tree, two.side) <= 2
        assert two.best_value == pytest.approx(3.0)  # single-leaf cut


class TestPackingDriver:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_against_stoer_wagner(self, seed):
        g = connected_gnp_graph(14, 0.4, seed=seed + 70)
        truth = stoer_wagner_min_cut(g).value
        result = minimum_cut_exact_two_respect(g)
        assert result.best_value == pytest.approx(truth)

    def test_planted(self):
        g = planted_cut_graph((10, 11), 3, seed=2)
        assert minimum_cut_exact_two_respect(g).best_value == pytest.approx(3.0)

    def test_tiny_rejected(self):
        g = WeightedGraph()
        g.add_node(0)
        with pytest.raises(AlgorithmError):
            minimum_cut_exact_two_respect(g)

    def test_two_node_graph(self):
        g = WeightedGraph([(0, 1, 4.0)])
        assert minimum_cut_exact_two_respect(g).best_value == pytest.approx(4.0)
