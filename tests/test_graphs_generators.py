"""Unit tests for graph generators (shape, determinism, known cuts)."""

import pytest

from repro.errors import AlgorithmError
from repro.graphs import (
    barbell_graph,
    build_family,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    cycle_power_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    planted_cut_graph,
    planted_cut_sides,
    random_regular_graph,
    random_spanning_tree,
    random_tree,
    star_graph,
    weighted_ring_of_cliques,
    is_spanning_tree,
    FAMILY_BUILDERS,
)
from repro.baselines import stoer_wagner_min_cut


class TestStructuredFamilies:
    def test_path(self):
        g = path_graph(6)
        assert g.number_of_nodes == 6
        assert g.number_of_edges == 5
        assert g.degree(0) == 1
        assert g.degree(3) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.number_of_edges == 5
        assert all(g.degree(u) == 2 for u in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(Exception):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.number_of_edges == 15
        assert stoer_wagner_min_cut(g).value == 5.0

    def test_star_min_cut_is_one(self):
        g = star_graph(8)
        assert stoer_wagner_min_cut(g).value == 1.0

    def test_grid_shape(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes == 12
        assert g.number_of_edges == 3 * 3 + 2 * 4
        assert g.is_connected()

    def test_invalid_sizes(self):
        with pytest.raises(AlgorithmError):
            path_graph(0)
        with pytest.raises(AlgorithmError):
            grid_graph(0, 3)


class TestRandomFamilies:
    def test_gnp_deterministic_per_seed(self):
        a = gnp_random_graph(20, 0.3, seed=4)
        b = gnp_random_graph(20, 0.3, seed=4)
        c = gnp_random_graph(20, 0.3, seed=5)
        assert a.edge_list() == b.edge_list()
        assert a.edge_list() != c.edge_list()

    def test_gnp_extreme_probabilities(self):
        assert gnp_random_graph(10, 0.0).number_of_edges == 0
        assert gnp_random_graph(10, 1.0).number_of_edges == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(AlgorithmError):
            gnp_random_graph(5, 1.5)

    def test_connected_gnp_is_connected(self):
        g = connected_gnp_graph(30, 0.15, seed=2)
        assert g.is_connected()

    def test_connected_gnp_gives_up(self):
        with pytest.raises(AlgorithmError):
            connected_gnp_graph(30, 0.0, max_attempts=3)

    def test_random_regular_degrees(self):
        g = random_regular_graph(12, 4, seed=1)
        assert all(g.degree(u) == 4 for u in g.nodes)

    def test_random_regular_parity_check(self):
        with pytest.raises(AlgorithmError):
            random_regular_graph(5, 3)

    def test_random_tree_is_tree(self):
        t = random_tree(25, seed=9)
        assert len(t) == 25
        assert len(list(t.edges())) == 24

    def test_random_tree_varies_with_seed(self):
        t1 = random_tree(25, seed=1)
        t2 = random_tree(25, seed=2)
        assert sorted(t1.edges()) != sorted(t2.edges())

    def test_random_tree_tiny(self):
        assert len(random_tree(1)) == 1
        assert len(random_tree(2)) == 2

    def test_random_spanning_tree_spans(self):
        g = connected_gnp_graph(20, 0.3, seed=3)
        t = random_spanning_tree(g, seed=1)
        assert is_spanning_tree(g, list(t.edges()))

    def test_random_spanning_tree_varies(self):
        g = complete_graph(10)
        t1 = random_spanning_tree(g, seed=1)
        t2 = random_spanning_tree(g, seed=2)
        assert sorted(t1.edges()) != sorted(t2.edges())


class TestPlantedCuts:
    @pytest.mark.parametrize("cut", [1, 2, 4, 6])
    def test_planted_cut_is_min_cut(self, cut):
        g = planted_cut_graph((12, 14), cut, seed=cut)
        assert stoer_wagner_min_cut(g).value == float(cut)

    def test_planted_side_value(self):
        g = planted_cut_graph((9, 9), 2, seed=0)
        assert g.cut_value(planted_cut_sides((9, 9))) == 2.0

    def test_planted_validation(self):
        with pytest.raises(AlgorithmError):
            planted_cut_graph((1, 5), 1)
        with pytest.raises(AlgorithmError):
            planted_cut_graph((5, 5), 0)

    def test_barbell_min_cut(self):
        g = barbell_graph(6, bridges=2)
        assert stoer_wagner_min_cut(g).value == 2.0

    def test_ring_of_cliques_min_cut(self):
        g = weighted_ring_of_cliques(4, 5, bridge_weight=0.5)
        assert stoer_wagner_min_cut(g).value == 1.0

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_cycle_power_min_cut_is_2k(self, k):
        g = cycle_power_graph(20, k)
        assert stoer_wagner_min_cut(g).value == 2.0 * k

    def test_cycle_power_size_check(self):
        with pytest.raises(AlgorithmError):
            cycle_power_graph(5, 2)


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILY_BUILDERS))
    def test_families_build_connected(self, name):
        g = build_family(name, 24, seed=1)
        assert g.is_connected()
        assert g.number_of_nodes >= 4

    def test_unknown_family(self):
        with pytest.raises(AlgorithmError):
            build_family("nope", 10)
