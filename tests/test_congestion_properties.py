"""Theory-level traffic properties, checked against actual traces.

The paper's round bounds rest on per-edge traffic bounds: the scoped
downcasts and the LCA exchange send O(√n) messages per edge, and the
keyed-sum streams are monotone.  These tests observe real executions
through the tracer and assert those bounds — catching any regression
that would silently break the O~(√n + D) claim while still computing
correct values.
"""

import pytest

from repro.congest import CongestNetwork, MessageTracer
from repro.core import one_respecting_min_cut_congest
from repro.graphs import connected_gnp_graph, random_spanning_tree
from repro.fragments import partition_tree


@pytest.fixture(scope="module")
def traced_run():
    graph = connected_gnp_graph(60, 0.12, seed=21)
    tree = random_spanning_tree(graph, seed=21)
    threshold = 8
    tracer = MessageTracer(max_events=2_000_000)
    net = CongestNetwork(graph, tracer=tracer)
    one_respecting_min_cut_congest(
        graph, tree, network=net, partition_threshold=threshold
    )
    decomposition = partition_tree(tree, threshold)
    return graph, tree, threshold, tracer, decomposition


class TestPerEdgeTrafficBounds:
    def test_lca_chain_items_bounded_by_fragment_size(self, traced_run):
        graph, _tree, threshold, tracer, dec = traced_run
        # Case-1 chains carry only within-fragment ancestors: at most
        # the largest fragment's size per direction.
        largest = max(len(dec.members_of(f)) for f in dec.fragment_ids())
        per_edge: dict = {}
        for event in tracer.events:
            if event.kind == "ch":
                key = (event.src, event.dst)
                per_edge[key] = per_edge.get(key, 0) + 1
        assert per_edge, "expected same-fragment edges in the instance"
        assert max(per_edge.values()) <= largest

    def test_skeleton_chain_items_bounded_by_fragment_count(self, traced_run):
        _graph, _tree, _threshold, tracer, dec = traced_run
        per_edge: dict = {}
        for event in tracer.events:
            if event.kind == "sk":
                key = (event.src, event.dst)
                per_edge[key] = per_edge.get(key, 0) + 1
        if per_edge:
            # |T'_F| ≤ 2 · #fragments (roots + merging nodes).
            assert max(per_edge.values()) <= 2 * dec.fragment_count

    def test_ancestor_downcast_bounded_by_two_fragments(self, traced_run):
        _graph, _tree, threshold, tracer, dec = traced_run
        per_edge: dict = {}
        for event in tracer.events:
            if event.kind == "anc":
                key = (event.src, event.dst)
                per_edge[key] = per_edge.get(key, 0) + 1
        sizes = sorted(
            (len(dec.members_of(f)) for f in dec.fragment_ids()), reverse=True
        )
        two_largest = sizes[0] + (sizes[1] if len(sizes) > 1 else 0)
        assert max(per_edge.values()) <= two_largest

    def test_keyed_streams_are_monotone(self, traced_run):
        _graph, _tree, _threshold, tracer, _dec = traced_run
        streams: dict = {}
        for event in tracer.events:
            if event.kind == "ks":
                streams.setdefault((event.phase, event.src, event.dst), []).append(
                    event.payload[0]
                )
        assert streams
        for keys in streams.values():
            assert keys == sorted(keys)

    def test_holder_downcast_one_message_per_fragment_per_edge(self, traced_run):
        _graph, _tree, _threshold, tracer, dec = traced_run
        per_edge_frag: dict = {}
        for event in tracer.events:
            if event.kind == "hold":
                frag_below = event.payload[2]
                key = (event.src, event.dst, frag_below)
                per_edge_frag[key] = per_edge_frag.get(key, 0) + 1
        if per_edge_frag:
            assert max(per_edge_frag.values()) == 1
