"""Execution backends: resolution, determinism, ordering, error labelling."""

import pickle

import pytest

from repro.api import SolverRegistry, solve, solve_all, solve_batch
from repro.errors import AlgorithmError
from repro.exec import (
    BACKENDS,
    ProcessExecutor,
    REPRO_BACKEND_ENV,
    SerialExecutor,
    SolveTask,
    ThreadExecutor,
    resolve_backend,
    run_task,
)
from repro.graphs import WeightedGraph, build_family


def _graphs(count, family="gnp", n=10):
    out = []
    for s in range(count):
        graph = build_family(family, n, seed=s)
        graph.require_connected()
        out.append(graph)
    return out


def _identity(results):
    """The value/side/seed/solver/guarantee fingerprint of a result list."""
    return [
        (r.value, tuple(sorted(r.side, key=repr)), r.seed, r.solver, r.guarantee)
        for r in results
    ]


class TestBackendResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None), SerialExecutor)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "thread")
        assert isinstance(resolve_backend(None), ThreadExecutor)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "thread")
        assert isinstance(resolve_backend("process"), ProcessExecutor)

    def test_executor_instance_passes_through(self):
        executor = ThreadExecutor(max_workers=2)
        assert resolve_backend(executor) is executor

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(AlgorithmError, match="serial"):
            resolve_backend("gpu")

    def test_unknown_env_backend_raises(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "nope")
        with pytest.raises(AlgorithmError, match="unknown execution backend"):
            resolve_backend(None)

    def test_every_backend_name_resolves(self):
        for name in BACKENDS:
            assert resolve_backend(name).name == name

    def test_invalid_backend_raises_even_when_cache_is_warm(self):
        from repro.exec import ResultCache

        cache = ResultCache()
        graphs = _graphs(2, family="cycle", n=6)
        solve_batch(graphs, "stoer_wagner", cache=cache)
        with pytest.raises(AlgorithmError, match="unknown execution backend"):
            solve_batch(graphs, "stoer_wagner", cache=cache, backend="gpu")


class TestBackendDeterminism:
    def test_twenty_graph_sweep_identical_across_backends(self):
        graphs = _graphs(20)
        serial = solve_batch(graphs, backend="serial")
        thread = solve_batch(graphs, backend="thread")
        process = solve_batch(graphs, backend="process")
        assert _identity(serial) == _identity(thread) == _identity(process)
        assert [r.seed for r in serial] == list(range(20))
        for graph, result in zip(graphs, serial):
            assert result.matches(graph)

    def test_randomized_solver_identical_across_backends(self):
        graphs = _graphs(6, family="grid", n=9)
        runs = [
            solve_batch(graphs, "karger", seed=7, budget=16, backend=name)
            for name in ("serial", "thread", "process")
        ]
        assert _identity(runs[0]) == _identity(runs[1]) == _identity(runs[2])

    def test_order_follows_input_order(self):
        # Distinct per-instance answers so a shuffled result list is visible.
        graphs = [build_family("complete", n) for n in (4, 6, 8, 10, 12)]
        for name in ("thread", "process"):
            results = solve_batch(graphs, backend=name)
            assert [r.value for r in results] == [3.0, 5.0, 7.0, 9.0, 11.0]

    def test_solve_all_identical_across_backends(self):
        graph = build_family("gnp", 12, seed=3)
        serial = solve_all(graph, epsilon=0.5, seed=2, backend="serial")
        thread = solve_all(graph, epsilon=0.5, seed=2, backend="thread")
        process = solve_all(graph, epsilon=0.5, seed=2, backend="process")
        assert _identity(serial) == _identity(thread) == _identity(process)
        assert len(serial) >= 10  # registration order preserved, none dropped


class TestBatchErrors:
    def test_disconnected_graph_named_by_index(self):
        triangle = WeightedGraph([(0, 1), (1, 2), (2, 0)])
        broken = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(AlgorithmError, match=r"graph #1"):
            solve_batch([triangle, broken, triangle])

    def test_capability_failure_named_by_index(self):
        graphs = [_graphs(1, n=8)[0], build_family("gnp", 24, seed=1)]
        with pytest.raises(AlgorithmError, match=r"graph #1.*limited"):
            solve_batch(graphs, "brute_force")

    def test_mid_batch_solver_error_named_by_index(self):
        # Unknown extra option only detonates inside the solver adapter.
        graphs = _graphs(3, family="cycle", n=8)
        for name in ("serial", "thread", "process"):
            with pytest.raises(AlgorithmError, match=r"graph #0.*stoer_wagner"):
                solve_batch(graphs, "stoer_wagner", backend=name, bogus=1)

    def test_serial_fails_fast_without_cache(self):
        from repro.api import CutResult

        registry = SolverRegistry()
        calls = []

        @registry.register("counting", kind="exact", guarantee="exact")
        def _counting(graph, **kw):
            calls.append(graph.number_of_nodes)
            if graph.number_of_nodes == 4:
                raise AlgorithmError("boom")
            node = graph.nodes[0]
            return CutResult(
                value=graph.weighted_degree(node), side=frozenset({node})
            )

        graphs = [
            build_family("complete", 4),  # fails
            build_family("cycle", 6),
            build_family("cycle", 8),
        ]
        with pytest.raises(AlgorithmError, match=r"graph #0"):
            solve_batch(graphs, "counting", registry=registry, backend="serial")
        assert calls == [4]  # later graphs were never solved
        graphs = _graphs(3, family="cycle", n=8)
        results = solve_batch(g for g in graphs)
        assert len(results) == 3
        assert [r.seed for r in results] == [0, 1, 2]

    def test_sequence_not_double_iterated(self):
        class CountingSequence:
            def __init__(self, items):
                self.items = items
                self.iterations = 0

            def __iter__(self):
                self.iterations += 1
                return iter(self.items)

            def __len__(self):
                return len(self.items)

        seq = CountingSequence(_graphs(3, family="cycle", n=8))
        solve_batch(seq)
        assert seq.iterations == 1


class TestProcessBackend:
    def test_custom_registry_rejected(self):
        registry = SolverRegistry()

        @registry.register("only", kind="exact", guarantee="exact")
        def _only(graph, **kw):  # pragma: no cover - rejected before running
            raise AssertionError

        graphs = _graphs(1, family="cycle", n=6)
        with pytest.raises(AlgorithmError, match="custom registry"):
            solve_batch(graphs, "only", registry=registry, backend="process")

    def test_custom_registry_fine_on_serial_and_thread(self):
        registry = SolverRegistry()

        @registry.register("first_node", kind="exact", guarantee="exact")
        def _first_node(graph, **kw):
            from repro.api import CutResult

            node = graph.nodes[0]
            return CutResult(
                value=graph.weighted_degree(node), side=frozenset({node})
            )

        graphs = _graphs(2, family="cycle", n=6)
        for name in ("serial", "thread"):
            results = solve_batch(
                graphs, "first_node", registry=registry, backend=name
            )
            assert [r.value for r in results] == [2.0, 2.0]

    def test_task_round_trips_pickle(self):
        graph = build_family("grid", 9, seed=0)
        task = SolveTask(graph=graph, solver="stoer_wagner", seed=4)
        clone = pickle.loads(pickle.dumps(task))
        direct = solve(graph, solver="stoer_wagner", seed=4)
        shipped = run_task(clone)
        assert shipped.value == direct.value
        assert shipped.side == direct.side
        assert shipped.seed == direct.seed

    def test_empty_batch(self):
        for name in ("serial", "thread", "process"):
            assert solve_batch([], backend=name) == []
