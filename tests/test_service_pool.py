"""Worker membership + tail-latency machinery.

Covers the PR 9 service-core contracts end to end over real HTTP:

* ``POST /register`` / ``GET /workers`` (heartbeats, TTL pruning,
  withdrawal) and the :class:`WorkerPool` / :class:`Heartbeat` pair;
* queue-depth backpressure — the structured 429 envelope with
  ``retry_after`` in the body and a ``Retry-After`` header, and the
  executor's bounded backoff against it;
* streaming dispatch under membership churn: a straggler's remainder
  re-packed mid-sweep, a worker killed mid-``solve_batch``, a worker
  joining via discovery — all bit-identical to the serial backend.
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import solve_batch
from repro.errors import ConfigError, ServiceError
from repro.exec.remote import REPRO_REMOTE_WORKERS_ENV, RemoteExecutor
from repro.graphs import build_family
from repro.service import (
    Heartbeat,
    ServiceClient,
    ServiceConfig,
    WorkerPool,
    create_server,
)
from repro.service.protocol import parse_register_request


def start_server(**config_kwargs):
    """One live async-transport server on a free port."""
    server = create_server(
        port=0, config=ServiceConfig(**config_kwargs) if config_kwargs else None
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def stop_server(server):
    try:
        server.shutdown()
        server.server_close()
    except OSError:
        pass


@pytest.fixture
def manager():
    server = start_server(worker_ttl=0.6)
    yield server
    stop_server(server)


def _identity(results):
    return [
        (r.solver, r.value, tuple(sorted(r.side, key=repr)), r.seed)
        for r in results
    ]


def _graphs(count, n=12):
    return [build_family("gnp", n, seed=s) for s in range(count)]


class TestRegistration:
    def test_register_lists_and_withdraws(self, manager):
        client = ServiceClient(manager.url)
        reply = client.register("http://10.0.0.1:8101/")
        assert reply["workers"] == ["http://10.0.0.1:8101"]
        client.register("http://10.0.0.2:8102")
        assert client.workers() == [
            "http://10.0.0.1:8101", "http://10.0.0.2:8102",
        ]
        client.register("http://10.0.0.1:8101", leaving=True)
        assert client.workers() == ["http://10.0.0.2:8102"]

    def test_reregistration_is_a_heartbeat_not_a_duplicate(self, manager):
        client = ServiceClient(manager.url)
        client.register("http://10.0.0.1:8101")
        client.register("http://10.0.0.1:8101")
        assert client.workers() == ["http://10.0.0.1:8101"]

    def test_silent_worker_expires_after_ttl(self, manager):
        client = ServiceClient(manager.url)
        client.register("http://10.0.0.1:8101")
        deadline = time.monotonic() + 5.0
        while client.workers() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert client.workers() == []  # worker_ttl=0.6 pruned it

    def test_health_reports_registered_worker_count(self, manager):
        client = ServiceClient(manager.url)
        client.register("http://10.0.0.1:8101")
        assert client.health()["workers"] == 1

    def test_register_bypasses_backpressure_gate(self):
        # queue_depth=1 with one solve in flight: /register still works.
        server = start_server(queue_depth=1, delay=0.4)
        try:
            graph = build_family("gnp", 12, seed=0)
            worker = threading.Thread(
                target=lambda: ServiceClient(server.url).solve(graph),
                daemon=True,
            )
            worker.start()
            time.sleep(0.1)
            reply = ServiceClient(server.url).register("http://10.0.0.9:1")
            assert "http://10.0.0.9:1" in reply["workers"]
            worker.join()
        finally:
            stop_server(server)

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {},
            {"url": 7},
            {"url": ""},
            {"url": "http://x", "leaving": "yes"},
            {"url": "http://x", "extra": 1},
        ],
    )
    def test_bad_register_bodies_rejected(self, body):
        with pytest.raises(ServiceError):
            parse_register_request(body)


class TestWorkerPool:
    def test_needs_seeds_or_manager(self):
        with pytest.raises(ConfigError, match="seed worker URLs"):
            WorkerPool()

    def test_seed_probing_and_recovery(self):
        a, b = start_server(), start_server()
        pool = WorkerPool([a.url, b.url], fail_after=1)
        try:
            assert pool.members() == [a.url, b.url]
            stop_server(b)
            assert pool.wait_for(1) == [a.url]
        finally:
            stop_server(a)

    def test_fail_after_grace_keeps_flapping_member(self, monkeypatch):
        a = start_server()
        pool = WorkerPool([a.url, "http://127.0.0.1:1"], fail_after=3)
        try:
            # The dead URL was never a member, so no grace: only `a`.
            assert pool.refresh() == [a.url]
            # An existing member surviving transient probe failures:
            member_urls = [a.url]
            pool._members = list(member_urls) + ["http://127.0.0.1:1"]
            pool._failures["http://127.0.0.1:1"] = 0
            assert pool.refresh() == member_urls + ["http://127.0.0.1:1"]
            assert pool.refresh() == member_urls + ["http://127.0.0.1:1"]
            assert pool.refresh() == member_urls  # third strike ejects
        finally:
            stop_server(a)

    def test_manager_discovery_and_background_refresh(self, manager):
        worker = start_server()
        pool = WorkerPool(manager=manager.url, interval=0.05)
        try:
            assert pool.members() == []  # nobody registered yet
            with Heartbeat(manager.url, worker.url, interval=0.1):
                pool.start()
                assert pool.wait_for(1) == [worker.url]
                deadline = time.monotonic() + 5.0
                while not pool.current() and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert pool.current() == [worker.url]
            # Heartbeat.stop() withdrew the registration.
            assert pool.wait_for(0) == []
        finally:
            pool.stop()
            stop_server(worker)

    def test_manager_blip_does_not_empty_pool(self, manager):
        worker = start_server()
        try:
            ServiceClient(manager.url).register(worker.url)
            pool = WorkerPool(manager=manager.url, fail_after=2)
            assert pool.members() == [worker.url]
            stop_server(manager)
            # Manager gone: fall back to probing known members directly.
            assert pool.refresh() == [worker.url]
        finally:
            stop_server(worker)

    def test_wait_for_timeout_raises(self):
        a = start_server()
        try:
            pool = WorkerPool([a.url])
            with pytest.raises(ServiceError, match="did not converge"):
                pool.wait_for(2, timeout=0.3)
        finally:
            stop_server(a)


class TestBackpressure:
    def test_429_envelope_and_retry_after_header(self):
        server = start_server(queue_depth=1, delay=0.5, retry_after=2.0)
        try:
            graph = build_family("gnp", 12, seed=0)
            hold = threading.Thread(
                target=lambda: ServiceClient(server.url).solve(graph),
                daemon=True,
            )
            hold.start()
            time.sleep(0.15)  # let the first request take the only slot
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(server.url).solve(graph)
            exc = excinfo.value
            assert exc.status == 429
            assert exc.retry_after == 2.0
            assert "queue is full" in str(exc)
            error = exc.payload["error"]
            assert error["status"] == 429
            assert error["retry_after"] == 2.0

            # The raw HTTP response carries a Retry-After header.
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10.0)
            body = json.dumps(
                {"graph": {"edges": [[0, 1, 1.0]]}}
            ).encode()
            conn.request(
                "POST", "/solve", body,
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 429
            assert response.getheader("Retry-After") == "2"
            conn.close()
            hold.join()
        finally:
            stop_server(server)

    def test_throttled_counter_and_health_passthrough(self):
        server = start_server(queue_depth=1, delay=0.4)
        try:
            graph = build_family("gnp", 12, seed=0)
            hold = threading.Thread(
                target=lambda: ServiceClient(server.url).solve(graph),
                daemon=True,
            )
            hold.start()
            time.sleep(0.1)
            with pytest.raises(ServiceError):
                ServiceClient(server.url).solve(graph)
            # /healthz bypasses the gate even while the queue is full.
            health = ServiceClient(server.url).health()
            assert health["requests"]["throttled"] == 1
            hold.join()
        finally:
            stop_server(server)

    def test_executor_backs_off_and_completes(self):
        """429s from a contended worker delay the sweep, never fail it."""
        server = start_server(queue_depth=1, delay=0.03, retry_after=0.05)
        try:
            graphs = _graphs(6)
            serial = solve_batch(graphs, "stoer_wagner")
            stop = threading.Event()

            def contend():
                client = ServiceClient(server.url)
                graph = build_family("gnp", 12, seed=99)
                while not stop.is_set():
                    try:
                        client.solve(graph)
                    except ServiceError:
                        time.sleep(0.01)

            contender = threading.Thread(target=contend, daemon=True)
            contender.start()
            try:
                executor = RemoteExecutor([server.url])
                remote = solve_batch(
                    graphs, "stoer_wagner", backend=executor
                )
            finally:
                stop.set()
                contender.join()
            assert _identity(remote) == _identity(serial)
        finally:
            stop_server(server)

    def test_duplicate_worker_urls_deduped_in_stream(self):
        server = start_server()
        try:
            graphs = _graphs(5)
            serial = solve_batch(graphs, "stoer_wagner")
            executor = RemoteExecutor([server.url, server.url])
            remote = solve_batch(graphs, "stoer_wagner", backend=executor)
            assert _identity(remote) == _identity(serial)
            assert executor.last_plan["workers"] == 1
        finally:
            stop_server(server)

    def test_backoff_gives_up_past_limit(self):
        calls = []

        def always_throttled():
            calls.append(time.monotonic())
            raise ServiceError("queue is full", status=429, retry_after=0.05)

        executor = RemoteExecutor(["http://unused:1"], backoff_limit=0.2)
        with pytest.raises(ServiceError) as excinfo:
            executor._post_throttled(always_throttled)
        assert excinfo.value.status == 429
        assert len(calls) >= 3  # retried several times before giving up


class TestStreamingChurn:
    def test_straggler_remainder_repacked_mid_sweep(self):
        """One slow worker: survivors steal its chunks; results are
        bit-identical to serial and the plan records the theft."""
        fast = start_server()
        slow = start_server(delay=0.15)
        try:
            graphs = _graphs(12)
            serial = solve_batch(graphs, "stoer_wagner")
            executor = RemoteExecutor([fast.url, slow.url])
            remote = solve_batch(graphs, "stoer_wagner", backend=executor)
            assert _identity(remote) == _identity(serial)
            plan = executor.last_plan
            assert plan["dispatch"] == "stream"
            assert plan["stolen"] >= 1
            assert plan["dead"] == []
            assert plan["workers"] == 2
            assert len(plan["actual_loads"]) == plan["bins"] == 2
        finally:
            stop_server(fast)
            stop_server(slow)

    def test_worker_killed_mid_sweep_is_bit_identical(self):
        a = start_server(delay=0.02)
        b = start_server(delay=0.02)
        try:
            graphs = _graphs(14)
            serial = solve_batch(graphs, "stoer_wagner")
            executor = RemoteExecutor([a.url, b.url])
            killer = threading.Timer(0.15, lambda: stop_server(b))
            killer.start()
            remote = solve_batch(graphs, "stoer_wagner", backend=executor)
            killer.join()
            assert _identity(remote) == _identity(serial)
        finally:
            stop_server(a)

    def test_worker_joins_mid_sweep_via_discovery(self, manager):
        a = start_server(delay=0.05)
        late = start_server()
        pool = WorkerPool([a.url], manager=manager.url, interval=0.05)
        pool.start()
        try:
            graphs = _graphs(12)
            serial = solve_batch(graphs, "stoer_wagner")
            executor = RemoteExecutor(pool=pool)

            def join_later():
                time.sleep(0.2)
                ServiceClient(manager.url).register(late.url)

            threading.Thread(target=join_later, daemon=True).start()
            remote = solve_batch(graphs, "stoer_wagner", backend=executor)
            assert _identity(remote) == _identity(serial)
            # The join is best-effort timing-wise, but when it landed it
            # must be recorded (and either way results are identical).
            plan = executor.last_plan
            assert plan["joined"] in ([], [late.url])
        finally:
            pool.stop()
            stop_server(a)
            stop_server(late)

    def test_all_workers_dead_is_captured_per_task(self):
        a = start_server()
        stop_server(a)
        executor = RemoteExecutor([a.url])
        graphs = _graphs(3)
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError, match="every worker failed"):
            solve_batch(graphs, "stoer_wagner", backend=executor)


class TestEnvShim:
    def test_env_workers_warn_deprecation(self, monkeypatch):
        server = start_server()
        try:
            monkeypatch.setenv(REPRO_REMOTE_WORKERS_ENV, server.url)
            graphs = _graphs(2)
            serial = solve_batch(graphs, "stoer_wagner")
            with pytest.warns(DeprecationWarning, match="deprecated"):
                remote = solve_batch(
                    graphs, "stoer_wagner", backend=RemoteExecutor()
                )
            assert _identity(remote) == _identity(serial)
        finally:
            stop_server(server)

    def test_explicit_workers_do_not_warn(self, monkeypatch, recwarn):
        server = start_server()
        try:
            monkeypatch.setenv(REPRO_REMOTE_WORKERS_ENV, "http://ignored:1")
            solve_batch(
                _graphs(2), "stoer_wagner",
                backend=RemoteExecutor([server.url]),
            )
            assert not [
                w for w in recwarn if w.category is DeprecationWarning
            ]
        finally:
            stop_server(server)
