"""End-to-end integration tests across the full pipeline.

Each test exercises several subsystems together, mirroring the paper's
own composition: MST → partition → Theorem 2.1 → packing → sampling.
"""

import pytest

from repro.baselines import (
    matula_approx_min_cut,
    stoer_wagner_min_cut,
    su_approx_min_cut,
)
from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest, one_respecting_min_cut_reference
from repro.graphs import (
    barbell_graph,
    connected_gnp_graph,
    diameter,
    grid_graph,
    planted_cut_graph,
    random_regular_graph,
    weighted_ring_of_cliques,
)
from repro.lowerbound import das_sarma_instance
from repro.mincut import minimum_cut_approx, minimum_cut_exact
from repro.mst import boruvka_mst
from repro.packing import GreedyTreePacking, one_respects


class TestFullPipelineOnKnownCuts:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (barbell_graph(6, bridges=2), 2.0),
            (weighted_ring_of_cliques(3, 4, bridge_weight=1.0), 2.0),
            (grid_graph(4, 4), 2.0),
        ],
    )
    def test_exact_pipeline(self, graph, expected):
        assert minimum_cut_exact(graph).value == pytest.approx(expected)

    def test_distributed_mst_feeds_theorem21(self):
        """Borůvka's distributed MST output works directly as Theorem
        2.1 input on the same network (full measured pipeline)."""
        g = connected_gnp_graph(24, 0.25, seed=6, weight_range=(1.0, 5.0))
        net = CongestNetwork(g)
        tree = boruvka_mst(net)
        ref = one_respecting_min_cut_reference(g, tree)
        dist = one_respecting_min_cut_congest(g, tree, network=net)
        assert dist.best_value == pytest.approx(ref.best_value)
        assert net.metrics.measured_rounds > 0

    def test_all_algorithms_agree_on_planted_instance(self):
        g = planted_cut_graph((13, 13), 3, seed=9)
        truth = stoer_wagner_min_cut(g).value
        assert truth == pytest.approx(3.0)
        assert minimum_cut_exact(g).value == pytest.approx(truth)
        assert minimum_cut_exact(g, mode="congest").value == pytest.approx(truth)
        approx = minimum_cut_approx(g, epsilon=0.5, seed=0)
        assert truth <= approx.value + 1e-9 <= 1.5 * truth + 1e-9
        matula = matula_approx_min_cut(g)
        assert truth - 1e-9 <= matula.value <= 2.5 * truth + 1e-9
        su = su_approx_min_cut(g, seed=1)
        assert su.value >= truth - 1e-9

    def test_regular_graph_pipeline(self):
        g = random_regular_graph(20, 4, seed=3)
        if not g.is_connected():
            pytest.skip("sampled regular graph disconnected")
        truth = stoer_wagner_min_cut(g).value
        assert minimum_cut_exact(g).value == pytest.approx(truth)


class TestRoundComplexityShape:
    def test_rounds_scale_sublinearly_on_hard_family(self):
        """The √n shape: quadrupling n should far less than quadruple the
        measured rounds (after removing the D part, which stays ~log)."""
        small = das_sarma_instance(4, 4)
        large = das_sarma_instance(8, 8)
        results = []
        for inst in (small, large):
            exact = minimum_cut_exact(
                inst.graph, mode="congest", tree_count=1
            )
            results.append(exact.metrics.measured_rounds)
        n_ratio = large.graph.number_of_nodes / small.graph.number_of_nodes
        rounds_ratio = results[1] / results[0]
        assert rounds_ratio < n_ratio

    def test_rounds_dominated_by_diameter_on_path_like(self):
        # On a long cycle D ≈ n/2; rounds must stay within a polylog
        # factor of D (the D term of the bound).
        from repro.graphs import cycle_graph
        from repro.graphs import random_spanning_tree

        g = cycle_graph(64)
        tree = random_spanning_tree(g, seed=0)
        dist = one_respecting_min_cut_congest(g, tree)
        d = diameter(g)
        assert dist.metrics.measured_rounds <= 40 * d

    def test_packing_tree_respects_min_cut_eventually(self):
        g = planted_cut_graph((11, 11), 2, seed=3)
        side = set(range(11))
        packing = GreedyTreePacking(g)
        assert any(one_respects(t, side) for t in packing.grow_to(10))


class TestCrossValidationSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_five_way_agreement(self, seed):
        g = connected_gnp_graph(14, 0.35, seed=seed + 60)
        truth = stoer_wagner_min_cut(g).value
        exact = minimum_cut_exact(g).value
        assert exact == pytest.approx(truth)
        matula = matula_approx_min_cut(g).value
        assert truth - 1e-9 <= matula <= 2.5 * truth + 1e-9
        # The distributed Theorem 2.1 result for any spanning tree upper
        # bounds truth and lower bounds nothing smaller than truth.
        from repro.graphs import random_spanning_tree

        tree = random_spanning_tree(g, seed=seed)
        dist = one_respecting_min_cut_congest(g, tree)
        assert dist.best_value >= truth - 1e-9
