"""Engine API: configuration precedence, delegation, warm start, registry.

The PR-5 redesign: :class:`repro.api.Engine` owns registry, backend,
cache and default solver knobs; the module-level façade delegates to a
default engine; backends are registered, not hard-coded; the cache's
on-disk tier is versioned and mergeable.
"""

import json
import warnings

import pytest

from repro.api import CutResult, Engine, default_engine, solve, solve_batch
from repro.errors import AlgorithmError
from repro.exec import (
    BACKENDS,
    CACHE_SCHEMA_VERSION,
    Executor,
    ResultCache,
    SerialExecutor,
    load_cache_file,
    register_backend,
    resolve_backend,
)
from repro.exec.task import run_task_captured
from repro.graphs import build_family


def _graphs(count, family="cycle", n=8):
    return [build_family(family, n, seed=s) for s in range(count)]


def _identity(results):
    return [
        (r.solver, r.value, tuple(sorted(r.side, key=repr)), r.seed)
        for r in results
    ]


class TestEngineDefaults:
    def test_engine_matches_facade(self):
        graph = build_family("gnp", 14, seed=2)
        engine = Engine()
        assert _identity([engine.solve(graph)]) == _identity([solve(graph)])
        batch = _graphs(3)
        assert _identity(engine.solve_batch(batch)) == _identity(
            solve_batch(batch)
        )

    def test_engine_default_solver_knobs_apply(self):
        graph = build_family("gnp", 14, seed=2)
        engine = Engine(solver="stoer_wagner", seed=5)
        result = engine.solve(graph)
        assert result.solver == "stoer_wagner"
        assert result.seed == 5

    def test_explicit_argument_beats_engine_default(self):
        graph = build_family("gnp", 14, seed=2)
        engine = Engine(solver="stoer_wagner", seed=5)
        result = engine.solve(graph, "brute_force", seed=1)
        assert result.solver == "brute_force"
        assert result.seed == 1

    def test_engine_default_beats_environment(self, monkeypatch):
        # Precedence: explicit arg > engine default > $REPRO_BACKEND.
        monkeypatch.setenv("REPRO_BACKEND", "nonsense")
        engine = Engine(backend="serial")
        results = engine.solve_batch(_graphs(2), "stoer_wagner")
        assert len(results) == 2
        # ... and with no engine default the env var is consulted (and
        # rejected here, proving it was read).
        bare = Engine()
        with pytest.raises(AlgorithmError, match="unknown execution backend"):
            bare.solve_batch(_graphs(2), "stoer_wagner")

    def test_engine_cache_default_applies(self):
        engine = Engine(cache=ResultCache())
        graphs = _graphs(3)
        first = engine.solve_batch(graphs, "stoer_wagner")
        again = engine.solve_batch(graphs, "stoer_wagner")
        assert all(not r.extras["cache"]["hit"] for r in first)
        assert all(r.extras["cache"]["hit"] for r in again)
        assert _identity(first) == _identity(again)

    def test_engine_cache_accepts_a_path(self, tmp_path):
        path = tmp_path / "cache.json"
        engine = Engine(cache=path)
        engine.solve(build_family("cycle", 8), "stoer_wagner")
        assert path.exists()
        warm = Engine(cache=str(path))
        result = warm.solve(build_family("cycle", 8), "stoer_wagner")
        assert result.extras["cache"]["hit"]

    def test_default_engine_is_a_singleton(self):
        assert default_engine() is default_engine()

    def test_compare_puts_ground_truth_first(self):
        graph = build_family("gnp", 12, seed=3)
        engine = Engine()
        results = engine.compare(graph, epsilon=0.5, seed=2)
        truth_name = engine.registry.ground_truth().name
        assert results[0].solver == truth_name
        assert len(results) >= 10
        truth = results[0].value
        exact = [r for r in results if r.guarantee == "exact"]
        assert all(r.value == pytest.approx(truth) for r in exact)

    def test_compare_inserts_ground_truth_when_filtered_out(self):
        graph = build_family("cycle", 8)
        engine = Engine()
        truth_name = engine.registry.ground_truth().name
        results = engine.compare(graph, names=["matula"])
        assert results[0].solver == truth_name
        assert {r.solver for r in results} == {truth_name, "matula"}


class TestRawKwargDeprecation:
    def test_explicit_engine_warns_on_raw_backend(self):
        engine = Engine()
        with pytest.warns(DeprecationWarning, match="backend"):
            engine.solve_batch(_graphs(2), "stoer_wagner", backend="serial")

    def test_explicit_engine_warns_on_raw_cache(self):
        engine = Engine()
        with pytest.warns(DeprecationWarning, match="cache"):
            engine.solve(
                build_family("cycle", 8), "stoer_wagner", cache=ResultCache()
            )

    def test_facade_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            solve_batch(
                _graphs(2), "stoer_wagner", backend="serial",
                cache=ResultCache(),
            )

    def test_solve_tasks_is_the_programmatic_seam_and_does_not_warn(self):
        engine = Engine()
        tasks = engine.build_batch_tasks(_graphs(2), solver="stoer_wagner")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            results = engine.solve_tasks(
                tasks, backend="serial", cache=ResultCache()
            )
        assert len(results) == 2

    def test_min_cut_result_alias_warns(self):
        import repro.baselines

        with pytest.warns(DeprecationWarning, match="CutResult"):
            alias = repro.baselines.MinCutResult
        assert issubclass(alias, CutResult)


class TestTaskPlane:
    def test_build_batch_tasks_freezes_seeds_and_solvers(self):
        engine = Engine()
        tasks = engine.build_batch_tasks(
            _graphs(3), solver="stoer_wagner", seed=10
        )
        assert [t.seed for t in tasks] == [10, 11, 12]
        assert all(t.solver == "stoer_wagner" for t in tasks)

    def test_per_task_overrides(self):
        engine = Engine()
        tasks = engine.build_batch_tasks(
            _graphs(3),
            seeds=[7, 3, 9],
            solvers=["stoer_wagner", "brute_force", "stoer_wagner"],
        )
        assert [t.seed for t in tasks] == [7, 3, 9]
        assert [t.solver for t in tasks] == [
            "stoer_wagner", "brute_force", "stoer_wagner",
        ]
        results = engine.solve_tasks(tasks)
        assert _identity(results) == _identity(
            [run_task_captured(t) for t in tasks]
        )

    def test_mismatched_override_lengths_raise_typed_error(self):
        engine = Engine()
        with pytest.raises(AlgorithmError, match="seeds override"):
            engine.build_batch_tasks(_graphs(2), seeds=[7])
        with pytest.raises(AlgorithmError, match="solvers override"):
            engine.build_batch_tasks(
                _graphs(2), solvers=["stoer_wagner"] * 3
            )

    def test_solve_tasks_equals_solve_batch(self):
        engine = Engine()
        graphs = _graphs(4, family="gnp", n=12)
        tasks = engine.build_batch_tasks(graphs, solver="stoer_wagner")
        assert _identity(engine.solve_tasks(tasks)) == _identity(
            engine.solve_batch(graphs, "stoer_wagner")
        )


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process", "remote"} <= set(BACKENDS)

    def test_duplicate_name_rejected(self):
        with pytest.raises(AlgorithmError, match="already registered"):
            register_backend("serial", SerialExecutor)

    def test_registered_backend_usable_by_name(self):
        calls = []

        class CountingExecutor(Executor):
            name = "counting_test"

            def run_tasks(self, tasks, registry=None, keep_going=False):
                calls.append(len(tasks))
                return [
                    run_task_captured(task, registry=registry)
                    for task in tasks
                ]

        if "counting_test" not in BACKENDS:
            register_backend("counting_test", CountingExecutor)
        try:
            results = solve_batch(
                _graphs(3), "stoer_wagner", backend="counting_test"
            )
            assert calls == [3]
            assert _identity(results) == _identity(
                solve_batch(_graphs(3), "stoer_wagner")
            )
        finally:
            BACKENDS.pop("counting_test", None)

    def test_remote_resolves_without_workers(self):
        # Construction must succeed (resolution happens before the pool
        # is known); only running tasks without a pool fails.
        executor = resolve_backend("remote")
        assert executor.name == "remote"


class TestCacheSchemaAndMerge:
    def test_on_disk_file_is_versioned(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put(
            _key(build_family("cycle", 8)),
            CutResult(value=1.0, side=frozenset({0})),
        )
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == CACHE_SCHEMA_VERSION
        assert len(on_disk["entries"]) == 1

    def test_legacy_unversioned_file_still_loads(self, tmp_path):
        path = tmp_path / "cache.json"
        key = _key(build_family("cycle", 8))
        cache = ResultCache(path=path)
        cache.put(key, CutResult(value=1.0, side=frozenset({0})))
        entries = json.loads(path.read_text())["entries"]
        path.write_text(json.dumps(entries))  # rewrite as the old format
        reloaded = ResultCache(path=path)
        assert reloaded.get(key) is not None

    def test_newer_schema_left_untouched(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": 99, "entries": {"x": {}}}))
        cache = ResultCache(path=path)
        assert cache.stats()["disk_entries"] == 0
        with pytest.raises(AlgorithmError, match="schema"):
            load_cache_file(path)

    def test_merge_from_files_ours_win(self, tmp_path):
        # gnp graphs differ per seed, so the two recorders share exactly
        # the (graph #2, seed 0) entry: b replays graphs[2] at index 0.
        graphs = _graphs(4, family="gnp", n=10)
        a = ResultCache(path=tmp_path / "a.json")
        b = ResultCache(path=tmp_path / "b.json")
        solve_batch(graphs[:3], "stoer_wagner", seed=0, cache=a)
        solve_batch(graphs[2:], "stoer_wagner", seed=2, cache=b)
        merged = ResultCache(path=tmp_path / "merged.json")
        assert merged.merge_from(tmp_path / "a.json") == 3
        assert merged.merge_from(tmp_path / "b.json") == 1  # overlap skipped
        assert merged.stats()["disk_entries"] == 4

    def test_merge_from_live_memory_cache(self):
        source = ResultCache()  # memory-only
        graphs = _graphs(2)
        solve_batch(graphs, "stoer_wagner", cache=source)
        target = ResultCache()
        assert target.merge_from(source) == 2
        hits = solve_batch(graphs, "stoer_wagner", cache=target)
        assert all(r.extras["cache"]["hit"] for r in hits)

    def test_merge_from_is_strict_about_bad_files(self, tmp_path):
        cache = ResultCache()
        with pytest.raises(AlgorithmError, match="cannot read"):
            cache.merge_from(tmp_path / "missing.json")
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        with pytest.raises(AlgorithmError, match="not valid JSON"):
            cache.merge_from(corrupt)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(AlgorithmError, match="not a result cache"):
            cache.merge_from(foreign)

    def test_warm_started_engine_replays_all_hits(self, tmp_path):
        graphs = _graphs(3, family="grid", n=9)
        recorder = Engine(cache=tmp_path / "record.json")
        recorded = recorder.solve_batch(graphs, "stoer_wagner")
        warm = Engine()
        assert warm.warm_start(tmp_path / "record.json") == 3
        replayed = warm.solve_batch(graphs, "stoer_wagner")
        assert all(r.extras["cache"]["hit"] for r in replayed)
        assert _identity(replayed) == _identity(recorded)


def _key(graph):
    from repro.exec import CacheKey

    return CacheKey.for_solve(graph, "stoer_wagner", seed=0)
