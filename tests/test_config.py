"""The config schema: typed sections, file loading, precedence.

One rule everywhere — explicit argument > CLI flag > env > config file
> default — exercised end to end: TOML and JSON files, the env overlay,
``ReproConfig.merged`` (the flag layer), ``Engine.from_config`` /
``repro serve`` consumption, and the strictness guarantees (unknown
sections/keys and wrong types are a ``ConfigError``, never a silent
ignore).
"""

import json

import pytest

from repro.api import Engine
from repro.config import (
    REPRO_CONFIG_ENV,
    EngineConfig,
    RemoteConfig,
    ReproConfig,
    ServeConfig,
    load_config,
)
from repro.errors import ConfigError
from repro.exec import ResultCache
from repro.exec.remote import RemoteExecutor


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Config tests must not inherit the invoking shell's knobs."""
    for var in (
        REPRO_CONFIG_ENV,
        "REPRO_BACKEND",
        "REPRO_COST_PROFILE",
        "REPRO_CACHE_MAX_ENTRIES",
        "REPRO_CACHE_MAX_BYTES",
        "REPRO_CACHE_MAX_AGE",
    ):
        monkeypatch.delenv(var, raising=False)


TOML_TEXT = """
[engine]
backend = "thread"
solver = "stoer_wagner"
seed = 7
cache = "warm.json"

[serve]
port = 9100
queue_depth = 5
delay = 0.25
server = "threading"
warm_start = ["a.json", "b.json"]

[remote]
workers = ["http://w1:8101/", "http://w2:8102"]
dispatch = "block"
max_shard = 3

[cache]
max_entries = 5000
max_age = 86400.0
"""


def write_toml(tmp_path, text=TOML_TEXT):
    path = tmp_path / "repro.toml"
    path.write_text(text)
    return path


class TestDefaults:
    def test_defaults_without_file_or_env(self):
        config = load_config()
        assert config == ReproConfig()
        assert config.source is None
        assert config.engine.solver == "auto"
        assert config.serve.port == 8000
        assert config.serve.server == "async"
        assert config.serve.queue_depth == 32
        assert config.remote.dispatch == "stream"

    def test_to_dict_is_jsonable(self):
        payload = load_config().to_dict()
        assert set(payload) == {"engine", "serve", "remote", "cache", "source"}
        json.dumps(payload)  # must not raise


class TestFileLoading:
    def test_toml_sections(self, tmp_path):
        config = load_config(write_toml(tmp_path))
        assert config.source == str(tmp_path / "repro.toml")
        assert config.engine.backend == "thread"
        assert config.engine.seed == 7
        assert config.engine.cache == "warm.json"
        assert config.serve.port == 9100
        assert config.serve.queue_depth == 5
        assert config.serve.delay == 0.25
        assert config.serve.warm_start == ("a.json", "b.json")
        # URL normalisation strips trailing slashes
        assert config.remote.workers == ("http://w1:8101", "http://w2:8102")
        assert config.remote.dispatch == "block"
        assert config.remote.max_shard == 3
        assert config.cache.max_entries == 5000
        assert config.cache.max_age == 86400.0
        assert config.cache.max_bytes is None  # unbounded default

    def test_json_equivalent(self, tmp_path):
        path = tmp_path / "repro.json"
        path.write_text(json.dumps({
            "engine": {"backend": "process", "budget": 1000},
            "remote": {"manager": "http://mgr:8100"},
        }))
        config = load_config(path)
        assert config.engine.backend == "process"
        assert config.engine.budget == 1000
        assert config.remote.manager == "http://mgr:8100"
        # untouched sections keep their defaults
        assert config.serve == ServeConfig()

    def test_env_var_names_the_file(self, tmp_path, monkeypatch):
        path = write_toml(tmp_path)
        monkeypatch.setenv(REPRO_CONFIG_ENV, str(path))
        assert load_config().engine.backend == "thread"
        # explicit path=None + env=False ignores $REPRO_CONFIG
        assert load_config(env=False).engine.backend is None

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read config file"):
            load_config(tmp_path / "absent.toml")

    def test_malformed_toml_and_json(self, tmp_path):
        bad_toml = tmp_path / "bad.toml"
        bad_toml.write_text("[engine\nbackend=")
        with pytest.raises(ConfigError, match="not valid TOML"):
            load_config(bad_toml)
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config(bad_json)


class TestStrictness:
    def test_unknown_section_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"engin": {"backend": "serial"}}))
        with pytest.raises(ConfigError, match="unknown config section"):
            load_config(path)

    def test_unknown_key_rejected_with_allowed_list(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"serve": {"prot": 8000}}))
        with pytest.raises(ConfigError, match=r"serve\.prot.*allowed"):
            load_config(path)

    @pytest.mark.parametrize(
        "section, body, match",
        [
            ("engine", {"seed": "zero"}, "engine.seed must be an integer"),
            ("engine", {"seed": True}, "engine.seed must be an integer"),
            ("engine", {"mode": "fast"}, "engine.mode must be one of"),
            ("serve", {"server": "twisted"}, "serve.server must be one of"),
            ("serve", {"retry_after": "soon"}, "serve.retry_after must be a number"),
            ("remote", {"workers": 8101}, "remote.workers must be a list"),
            ("remote", {"dispatch": "chunked"}, "remote.dispatch must be one of"),
            ("cache", {"max_entries": "many"}, "cache.max_entries must be an integer"),
            ("cache", {"max_age": "soon"}, "cache.max_age must be a number"),
        ],
    )
    def test_wrong_types_rejected(self, tmp_path, section, body, match):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({section: body}))
        with pytest.raises(ConfigError, match=match):
            load_config(path)

    def test_cache_accepts_bool_and_path_only(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"engine": {"cache": 5}}))
        with pytest.raises(ConfigError, match="engine.cache"):
            load_config(path)


class TestPrecedence:
    def test_env_beats_file(self, tmp_path, monkeypatch):
        path = write_toml(tmp_path)
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert load_config(path).engine.backend == "process"

    def test_flag_layer_beats_env_and_file(self, tmp_path, monkeypatch):
        path = write_toml(tmp_path)
        monkeypatch.setenv("REPRO_BACKEND", "process")
        config = load_config(path).merged(engine={"backend": "serial"})
        assert config.engine.backend == "serial"

    def test_merged_skips_none(self, tmp_path):
        config = load_config(write_toml(tmp_path))
        merged = config.merged(serve={"port": None, "queue_depth": 9})
        assert merged.serve.port == 9100       # None = flag not given
        assert merged.serve.queue_depth == 9   # flag given: wins
        assert merged.serve.delay == 0.25      # untouched keys survive

    def test_merged_validates_flag_values(self):
        with pytest.raises(ConfigError, match="serve.port must be an integer"):
            load_config().merged(serve={"port": "eight"})

    def test_cache_env_beats_file_and_flags_beat_env(self, tmp_path,
                                                     monkeypatch):
        path = write_toml(tmp_path)  # [cache] max_entries = 5000
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "1000")
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        config = load_config(path)
        assert config.cache.max_entries == 1000   # env beat the file
        assert config.cache.max_bytes == 4096     # env beat the default
        assert config.cache.max_age == 86400.0    # file beat the default
        merged = config.merged(cache={"max_entries": 10})
        assert merged.cache.max_entries == 10     # flag beat the env

    def test_cache_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "many")
        with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_ENTRIES"):
            load_config()

    def test_workers_accept_comma_separated_string(self):
        config = load_config().merged(
            remote={"workers": "http://a:1, http://b:2/"}
        )
        assert config.remote.workers == ("http://a:1", "http://b:2")

    def test_round_trip_file_env_flag(self, tmp_path, monkeypatch):
        """The full chain: default < file < env < flag, one knob each."""
        path = write_toml(tmp_path)
        monkeypatch.setenv(REPRO_CONFIG_ENV, str(path))
        monkeypatch.setenv("REPRO_BACKEND", "process")
        config = load_config().merged(engine={"solver": "exact"})
        assert config.engine.backend == "process"   # env beat file's "thread"
        assert config.engine.solver == "exact"      # flag beat file's solver
        assert config.engine.seed == 7              # file beat default 0
        assert config.engine.mode == "reference"    # schema default


class TestEngineFromConfig:
    def test_defaults_build_a_plain_engine(self):
        engine = Engine.from_config()
        assert engine.backend is None
        assert engine.cache is None
        assert engine.solver == "auto"

    def test_file_path_accepted_directly(self, tmp_path):
        config_path = tmp_path / "c.json"
        cache_path = tmp_path / "cache.json"
        config_path.write_text(json.dumps({
            "engine": {"backend": "thread", "seed": 3,
                       "cache": str(cache_path)},
        }))
        engine = Engine.from_config(config_path)
        assert engine.backend == "thread"
        assert engine.seed == 3
        assert isinstance(engine.cache, ResultCache)

    def test_cache_true_means_in_memory(self):
        config = ReproConfig(engine=EngineConfig(cache=True))
        engine = Engine.from_config(config)
        assert isinstance(engine.cache, ResultCache)
        assert engine.cache.path is None

    def test_remote_section_attaches_executor(self):
        config = ReproConfig(
            engine=EngineConfig(backend="remote"),
            remote=RemoteConfig(
                workers=("http://w1:8101",), dispatch="block", max_shard=2
            ),
        )
        engine = Engine.from_config(config)
        assert isinstance(engine.backend, RemoteExecutor)
        assert engine.backend.workers == ["http://w1:8101"]
        assert engine.backend.dispatch == "block"
        assert engine.backend.max_shard == 2

    def test_remote_backend_without_workers_stays_a_name(self):
        config = ReproConfig(engine=EngineConfig(backend="remote"))
        engine = Engine.from_config(config)
        assert engine.backend == "remote"  # resolved (and env-shimmed) later


class TestRemoteExecutorFromConfig:
    def test_static_workers(self):
        executor = RemoteExecutor.from_config(
            RemoteConfig(workers=("http://w1:8101",), timeout=9.0, plan="stripe")
        )
        assert executor.workers == ["http://w1:8101"]
        assert executor.timeout == 9.0
        assert executor.plan == "stripe"
        assert executor.pool is None

    def test_manager_becomes_a_started_pool(self):
        executor = RemoteExecutor.from_config(
            RemoteConfig(manager="http://mgr:8100", health_interval=0.5)
        )
        try:
            assert executor.workers is None
            assert executor.pool is not None
            assert executor.pool.manager == "http://mgr:8100"
            assert executor.pool.interval == 0.5
        finally:
            executor.pool.stop()


class TestConfigCli:
    def test_config_show_reports_effective_values(self, tmp_path, capsys):
        from repro.cli import main

        path = write_toml(tmp_path)
        assert main(["--config", str(path), "config", "show"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["backend"] == "thread"
        assert payload["serve"]["queue_depth"] == 5
        assert payload["remote"]["workers"] == [
            "http://w1:8101", "http://w2:8102",
        ]
        assert payload["source"] == str(path)

    def test_bad_config_file_is_a_clean_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.toml"
        path.write_text("[serve]\nqueue_depth = 'many'")
        assert main(["--config", str(path), "config", "show"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_flag_beats_config_file(self, tmp_path, monkeypatch):
        """`repro serve --port` wins over the file's [serve] port."""
        from repro import cli

        path = write_toml(
            tmp_path,
            "[serve]\nport = 9100\nqueue_depth = 5\ndelay = 0.25\n",
        )
        captured = {}

        def fake_create_server(host, port, **kwargs):
            captured["host"] = host
            captured["port"] = port
            captured["config"] = kwargs["config"]
            raise KeyboardInterrupt  # unwind _cmd_serve before serving

        monkeypatch.setattr(
            "repro.service.create_server", fake_create_server
        )
        with pytest.raises(KeyboardInterrupt):
            cli.main(["--config", str(path), "serve", "--port", "9999"])
        assert captured["port"] == 9999          # flag beat the file's 9100
        assert captured["config"].queue_depth == 5   # file beat default 32
        assert captured["config"].delay == 0.25
