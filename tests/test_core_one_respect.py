"""Theorem 2.1 tests: the distributed 1-respecting min cut must agree with
the centralized reference at every node, on every instance."""

import pytest

from repro.congest import CongestNetwork
from repro.core import (
    one_respecting_min_cut_congest,
    one_respecting_min_cut_reference,
)
from repro.core.figure1 import figure1_instance
from repro.errors import AlgorithmError
from repro.graphs import (
    RootedTree,
    WeightedGraph,
    connected_gnp_graph,
    cycle_graph,
    grid_graph,
    planted_cut_graph,
    random_spanning_tree,
    star_graph,
)


def _assert_agreement(graph, tree, **kwargs):
    ref = one_respecting_min_cut_reference(graph, tree)
    dist = one_respecting_min_cut_congest(graph, tree, **kwargs)
    assert dist.best_value == pytest.approx(ref.best_value)
    assert set(dist.cut_values) == set(ref.cut_values)
    for v, value in ref.cut_values.items():
        assert dist.cut_values[v] == pytest.approx(value), f"node {v}"
    return ref, dist


class TestReference:
    def test_cycle_best_is_two(self):
        g = cycle_graph(8)
        tree = RootedTree.path(8)
        ref = one_respecting_min_cut_reference(g, tree)
        assert ref.best_value == 2.0

    def test_values_match_direct_cuts(self):
        g = connected_gnp_graph(18, 0.3, seed=2)
        tree = random_spanning_tree(g, seed=5)
        ref = one_respecting_min_cut_reference(g, tree)
        for v, value in ref.cut_values.items():
            assert value == pytest.approx(g.cut_value(tree.subtree(v)))

    def test_cut_side_realises_best_value(self):
        g = connected_gnp_graph(15, 0.4, seed=3)
        tree = random_spanning_tree(g, seed=1)
        ref = one_respecting_min_cut_reference(g, tree)
        assert g.cut_value(ref.cut_side(tree)) == pytest.approx(ref.best_value)

    def test_deterministic_tie_break(self):
        g = cycle_graph(6)
        tree = RootedTree.path(6)
        ref = one_respecting_min_cut_reference(g, tree)
        # All non-root cuts have value 2; the smallest node id wins.
        assert ref.best_node == 1

    def test_tiny_graph_rejected(self):
        g = WeightedGraph()
        g.add_node(0)
        with pytest.raises(AlgorithmError):
            one_respecting_min_cut_reference(g, RootedTree(0, {}))


class TestDistributedAgreement:
    def test_two_nodes(self):
        g = WeightedGraph([(0, 1, 3.5)])
        _assert_agreement(g, RootedTree(0, {1: 0}))

    def test_figure1_instance(self):
        inst = figure1_instance()
        _assert_agreement(inst.graph, inst.tree)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs_random_trees(self, seed):
        g = connected_gnp_graph(
            24 + seed,
            0.25,
            seed=seed,
            weight_range=(1.0, 5.0) if seed % 2 else (1.0, 1.0),
        )
        tree = random_spanning_tree(g, seed=seed + 100)
        _assert_agreement(g, tree)

    def test_path_tree_worst_depth(self):
        g = cycle_graph(30)
        g.add_edge(4, 20)
        g.add_edge(9, 27)
        tree = RootedTree.path(30)
        _assert_agreement(g, tree)

    def test_star_tree(self):
        g = star_graph(20)
        g.add_edge(3, 7)
        g.add_edge(8, 15)
        tree = RootedTree.star(20)
        _assert_agreement(g, tree)

    def test_grid(self):
        g = grid_graph(5, 5)
        tree = random_spanning_tree(g, seed=0)
        _assert_agreement(g, tree)

    def test_planted_cut_found_when_tree_respects_it(self):
        g = planted_cut_graph((12, 12), 2, seed=4)
        # Try trees until one 1-respects the planted cut, then the
        # distributed result must equal exactly 2.
        from repro.packing import greedy_tree_packing, one_respects

        side = set(range(12))
        for tree in greedy_tree_packing(g, 6):
            if one_respects(tree, side):
                _ref, dist = _assert_agreement(g, tree)
                assert dist.best_value == pytest.approx(2.0)
                break
        else:
            pytest.skip("no 1-respecting tree among the first 6 (unexpected)")

    @pytest.mark.parametrize("seed", range(4))
    def test_simulated_partition_matches(self, seed):
        g = connected_gnp_graph(20, 0.3, seed=seed + 7)
        tree = random_spanning_tree(g, seed=seed)
        _assert_agreement(g, tree, simulate_partition=True)

    def test_custom_partition_threshold(self):
        g = connected_gnp_graph(30, 0.2, seed=1)
        tree = random_spanning_tree(g, seed=2)
        _assert_agreement(g, tree, partition_threshold=3)
        _assert_agreement(g, tree, partition_threshold=10)


class TestStructuredFamilies:
    """The distributed run against the reference on every named family —
    ties the generator zoo into the core validation."""

    @pytest.mark.parametrize(
        "family", ["hypercube", "torus", "caveman", "cycle", "complete"]
    )
    def test_family_agreement(self, family):
        from repro.graphs import build_family

        g = build_family(family, 32, seed=2)
        tree = random_spanning_tree(g, seed=2)
        _assert_agreement(g, tree)

    def test_fractional_weights(self):
        # Dyadic weights exercise float δ/ρ arithmetic exactly.
        g = cycle_graph(12, weight=0.25)
        g.add_edge(0, 6, 1.75)
        g.add_edge(3, 9, 0.5)
        tree = random_spanning_tree(g, seed=4)
        ref, dist = _assert_agreement(g, tree)
        assert dist.best_value == pytest.approx(ref.best_value)

    def test_heavy_parallel_merged_weights(self):
        g = cycle_graph(8)
        g.add_edge(0, 1, 5.0)  # merges onto the existing edge
        tree = RootedTree.path(8)
        _assert_agreement(g, tree)


class TestDistributedBookkeeping:
    def test_metrics_have_measured_and_charged(self):
        g = connected_gnp_graph(20, 0.3, seed=5)
        tree = random_spanning_tree(g, seed=5)
        dist = one_respecting_min_cut_congest(g, tree)
        assert dist.metrics.measured_rounds > 0
        assert dist.metrics.charged_rounds > 0  # KP partition charge
        assert dist.rounds == dist.metrics.total_rounds

    def test_simulated_partition_charges_nothing(self):
        g = connected_gnp_graph(20, 0.3, seed=5)
        tree = random_spanning_tree(g, seed=5)
        dist = one_respecting_min_cut_congest(g, tree, simulate_partition=True)
        assert dist.metrics.charged_rounds == 0

    def test_every_node_knows_own_cut(self):
        g = connected_gnp_graph(16, 0.35, seed=9)
        tree = random_spanning_tree(g, seed=9)
        net = CongestNetwork(g)
        one_respecting_min_cut_congest(g, tree, network=net)
        # Every node's memory carries its own C(v↓) and the global c*.
        for u in g.nodes:
            assert "or:cut_below" in net.memory[u]
            assert "or:cstar" in net.memory[u]
        stars = {net.memory[u]["or:cstar"] for u in g.nodes}
        assert len(stars) == 1

    def test_non_integer_node_ids_rejected(self):
        g = WeightedGraph([("a", "b")])
        tree = RootedTree("a", {"b": "a"})
        with pytest.raises(AlgorithmError):
            one_respecting_min_cut_congest(g, tree)

    def test_non_spanning_tree_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(AlgorithmError):
            one_respecting_min_cut_congest(g, RootedTree.path(4))

    def test_strict_congest_mode_is_on(self):
        # The run must complete under strict per-message word budgets —
        # i.e. the implementation never smuggles super-constant payloads.
        g = connected_gnp_graph(22, 0.3, seed=3)
        tree = random_spanning_tree(g, seed=3)
        net = CongestNetwork(g, strict=True)
        outcome = one_respecting_min_cut_congest(g, tree, network=net)
        assert net.metrics.max_message_words <= net.max_words_per_message
        assert outcome.fragment_count >= 1
