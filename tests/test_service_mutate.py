"""POST /mutate: pod-style dynamic-graph sessions over the service.

Same three tiers as test_service.py: envelope validation, transport-
free ``dispatch``, and one live HTTP server driven through
:class:`RemoteDynamicSession`.
"""

import json
import threading

import pytest

from repro.api import Engine
from repro.dynamic import AddEdge, RemoveEdge, Reweight
from repro.errors import ServiceError
from repro.exec import ResultCache
from repro.graphs import graph_to_json, planted_cut_graph
from repro.service import (
    ReproService,
    ServiceClient,
    ServiceConfig,
    create_server,
    cut_result_from_json,
    parse_mutate_request,
)


def small_graph():
    return planted_cut_graph((6, 6), cut_value=2, seed=3)


def post(service, path, body):
    blob = body if isinstance(body, bytes) else json.dumps(body).encode()
    return service.dispatch("POST", path, blob)


def open_body(**extra):
    return {"open": {"graph": graph_to_json(small_graph()),
                     "solver": "stoer_wagner", **extra}}


class TestParseMutateRequest:
    @pytest.mark.parametrize(
        "body,fragment",
        [
            ([], "must be a JSON object"),
            ({}, "needs 'open'"),
            ({"open": {"graph": [[0, 1]]}, "session": "x"},
             "mutually exclusive"),
            ({"session": 3}, "'session' must be a string"),
            ({"open": {}}, "missing the 'graph'"),
            ({"open": {"graph": [[0, 1]], "nope": 1}},
             "unknown mutate open request fields"),
            ({"open": {"graph": [[0, 1]], "patch_budget": -1}},
             "'patch_budget'"),
            ({"open": {"graph": [[0, 1]], "patch_budget": True}},
             "'patch_budget'"),
            ({"session": "x", "ops": "nope"}, "'ops' must be a list"),
            ({"session": "x", "ops": [{"op": "explode"}]},
             "op #0"),
            ({"session": "x", "undo": -1}, "'undo'"),
            ({"session": "x", "undo": True}, "'undo'"),
            ({"session": "x", "solve": 1}, "'solve'"),
            ({"session": "x", "close": "yes"}, "'close'"),
            ({"session": "x", "nope": 1}, "unknown mutate request fields"),
        ],
    )
    def test_envelope_validation(self, body, fragment):
        with pytest.raises(ServiceError) as excinfo:
            parse_mutate_request(body)
        assert fragment in str(excinfo.value)

    def test_ops_parse_to_typed_ops(self):
        request = parse_mutate_request(
            {"session": "x",
             "ops": [{"op": "add_edge", "u": 0, "v": 1, "weight": 2.0}]}
        )
        assert request["ops"] == [AddEdge(0, 1, 2.0)]


class TestDispatch:
    def test_open_mutate_solve_close_in_one_request(self):
        service = ReproService()
        graph = small_graph()
        u, v, _w = graph.edge_list()[0]
        status, payload = post(service, "/mutate", {
            **open_body(),
            "ops": [{"op": "reweight", "u": u, "v": v, "weight": 4.0}],
            "solve": True,
            "close": True,
        })
        assert status == 200
        assert payload["closed"] is True
        assert len(payload["acks"]) == 1
        # Pod-style ack: the op echoed back with the resulting hash.
        ack = payload["acks"][0]
        assert ack["applied"] == "reweight"
        graph.set_edge_weight(u, v, 4.0)
        assert ack["graph_hash"] == graph.content_hash()
        assert payload["graph_hash"] == graph.content_hash()
        remote = cut_result_from_json(payload["result"])
        direct = Engine(solver="stoer_wagner", cache=ResultCache()).solve(graph)
        assert remote.value == direct.value
        assert remote.side == direct.side
        assert len(service.sessions) == 0

    def test_session_persists_across_requests(self):
        service = ReproService()
        _, opened = post(service, "/mutate", open_body())
        session_id = opened["session"]
        assert len(service.sessions) == 1
        _, second = post(service, "/mutate", {
            "session": session_id,
            "ops": [{"op": "add_node", "u": 99}],
        })
        assert second["acks"][0]["applied"] == "add_node"
        _, closed = post(service, "/mutate",
                         {"session": session_id, "close": True})
        assert closed["closed"] is True
        status, payload = post(service, "/mutate", {"session": session_id})
        assert status == 404
        assert "unknown session" in payload["error"]["message"]

    def test_undo_runs_before_ops(self):
        service = ReproService()
        _, opened = post(service, "/mutate", {
            **open_body(),
            "ops": [{"op": "add_node", "u": "a"}],
        })
        _, payload = post(service, "/mutate", {
            "session": opened["session"],
            "undo": 1,
            "ops": [{"op": "add_node", "u": "b"}],
        })
        acks = payload["acks"]
        assert [a["undone"] for a in acks] == [True, False]
        assert acks[0]["op"] == {"op": "add_node", "u": "a"}
        session = service.sessions[opened["session"]]
        assert "a" not in session.graph
        assert "b" in session.graph

    def test_certified_solve_over_dispatch(self):
        service = ReproService()
        _, opened = post(service, "/mutate", {**open_body(), "solve": True})
        side = cut_result_from_json(opened["result"]).side
        u, v = next(
            (u, v) for u, v, _w in small_graph().edges()
            if u in side and v in side
        )
        _, payload = post(service, "/mutate", {
            "session": opened["session"],
            "ops": [{"op": "add_edge", "u": u, "v": v, "weight": 5.0}],
            "solve": True,
        })
        result = cut_result_from_json(payload["result"])
        assert result.extras["certificate"]["kinds"] == [
            "non-crossing-increase"
        ]
        assert payload["stats"]["certified"] == 1
        assert payload["stats"]["solver_runs"] == 1

    def test_partial_failure_keeps_committed_ops(self):
        service = ReproService()
        _, opened = post(service, "/mutate", open_body())
        status, payload = post(service, "/mutate", {
            "session": opened["session"],
            "ops": [
                {"op": "add_node", "u": "kept"},
                {"op": "remove_edge", "u": 0, "v": 999},  # fails
            ],
        })
        assert status == 400
        assert "1 earlier action(s) in this request remain applied" in (
            payload["error"]["message"]
        )
        # The acked op is still applied — the log is append-only.
        assert "kept" in service.sessions[opened["session"]].graph

    def test_session_limit_is_429(self):
        service = ReproService(config=ServiceConfig(max_sessions=1))
        assert post(service, "/mutate", open_body())[0] == 200
        status, payload = post(service, "/mutate", open_body())
        assert status == 429
        assert "close one first" in payload["error"]["message"]

    def test_open_over_node_limit_is_413(self):
        service = ReproService(config=ServiceConfig(max_nodes=4))
        status, _ = post(service, "/mutate", open_body())
        assert status == 413

    def test_node_growth_past_limit_is_413(self):
        n = small_graph().number_of_nodes
        service = ReproService(config=ServiceConfig(max_nodes=n))
        _, opened = post(service, "/mutate", open_body())
        status, payload = post(service, "/mutate", {
            "session": opened["session"],
            "ops": [{"op": "add_edge", "u": 0, "v": "fresh"}],
        })
        assert status == 413
        assert "would grow the graph" in payload["error"]["message"]
        # Growth to an *existing* node is fine at the limit.
        status, _ = post(service, "/mutate", {
            "session": opened["session"],
            "ops": [{"op": "add_edge", "u": 0, "v": 1, "weight": 1.0}],
        })
        assert status == 200

    def test_healthz_reports_open_sessions(self):
        service = ReproService()
        post(service, "/mutate", open_body())
        health = service.dispatch("GET", "/healthz", b"")[1]
        assert health["sessions"] == 1
        assert health["requests"]["mutate"] == 1


@pytest.fixture(scope="module")
def live():
    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=30.0)
    client.wait_until_ready()
    yield server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHTTP:
    def test_remote_session_lifecycle(self, live):
        _server, client = live
        graph = small_graph()
        session = client.open_session(graph, solver="stoer_wagner")
        base = session.solve()
        assert base.value == 2.0

        u, v, w = next(
            (u, v, w) for u, v, w in graph.edges()
            if u in base.side and v in base.side
        )
        ack = session.apply(AddEdge(u, v, 5.0))
        graph.add_edge(u, v, 5.0)  # merges: (u, v) already exists
        assert ack["applied"] == "merge_edge"
        assert ack["graph_hash"] == graph.content_hash()
        assert session.graph_hash == graph.content_hash()

        certified = session.solve()
        assert certified.extras["certificate"]["kinds"] == [
            "non-crossing-increase"
        ]
        assert certified.value == base.value

        session.undo()
        graph.set_edge_weight(u, v, w)  # undo of a merge restores the weight
        assert session.graph_hash == graph.content_hash()

        stats = session.stats()
        assert stats["ops"] == 1
        assert stats["undos"] == 1

        session.close()
        assert session.closed is True
        with pytest.raises(ServiceError) as excinfo:
            client.mutate(session=session.session_id, solve=True)
        assert excinfo.value.status == 404

    def test_batched_step_round_trip(self, live):
        _server, client = live
        graph = small_graph()
        u, v, _w = graph.edge_list()[0]
        session = client.open_session(graph, solver="stoer_wagner")
        response = session.step(
            ops=[Reweight(u, v, 3.0),
                 {"op": "add_edge", "u": u, "v": "spare", "weight": 1.0}],
            solve=True,
            close=True,
        )
        assert [a["applied"] for a in response["acks"]] == [
            "reweight", "add_edge",
        ]
        assert response["closed"] is True
        result = response["result"]
        graph.set_edge_weight(u, v, 3.0)
        graph.add_edge(u, "spare", 1.0)
        assert result.matches(graph)  # upgraded to a typed CutResult
        assert result.value == 1.0  # the fresh pendant edge is the min cut

    def test_bad_op_mid_request_names_committed_count(self, live):
        _server, client = live
        session = client.open_session(small_graph())
        with pytest.raises(ServiceError) as excinfo:
            session.step(ops=[
                {"op": "add_node", "u": "x"},
                {"op": "remove_edge", "u": 0, "v": 12345},
            ])
        assert excinfo.value.status == 400
        assert "1 earlier action(s)" in str(excinfo.value)
        session.close()
