"""Edge-case coverage for engine plumbing, metrics and tree specs."""

import pytest

from repro.congest import CongestNetwork, NodeProgram, PhaseMetrics, RunMetrics
from repro.graphs import RootedTree, path_graph, star_graph
from repro.primitives import (
    Convergecast,
    SPANNING_TREE,
    TreeSpec,
    load_tree_into_memory,
)


class TestRunMetrics:
    def test_extend_merges_everything(self):
        a = RunMetrics()
        a.add_phase(PhaseMetrics(name="p1", rounds=3, messages=5, words=7))
        a.charge(10, "x")
        b = RunMetrics()
        b.add_phase(PhaseMetrics(name="p2", rounds=2, messages=1, words=1))
        b.charge(4, "y")
        a.extend(b)
        assert a.measured_rounds == 5
        assert a.charged_rounds == 14
        assert len(a.phases) == 2
        assert len(a.charged_notes) == 2

    def test_max_words_and_backlog_aggregate(self):
        m = RunMetrics()
        m.add_phase(PhaseMetrics(name="a", max_message_words=2, max_edge_backlog=5))
        m.add_phase(PhaseMetrics(name="b", max_message_words=4, max_edge_backlog=1))
        assert m.max_message_words == 4
        assert m.max_edge_backlog == 5

    def test_empty_metrics(self):
        m = RunMetrics()
        assert m.total_rounds == 0
        assert m.max_message_words == 0

    def test_phase_merge_message(self):
        p = PhaseMetrics(name="x")
        p.merge_message(3)
        p.merge_message(1)
        assert p.messages == 2
        assert p.words == 4
        assert p.max_message_words == 3


class TestNetworkPlumbing:
    def test_memory_map_filters_missing(self):
        net = CongestNetwork(path_graph(3))
        net.memory[0]["k"] = 1
        net.memory[2]["k"] = 3
        assert net.memory_map("k") == {0: 1, 2: 3}

    def test_output_map(self):
        class Out(NodeProgram):
            def on_start(self, ctx):
                if ctx.node % 2 == 0:
                    ctx.output("even", ctx.node)

        net = CongestNetwork(path_graph(4))
        result = net.run_phase("o", lambda u: Out())
        assert result.output_map("even") == {0: 0, 2: 2}

    def test_nodes_property_is_cached_immutable(self):
        net = CongestNetwork(path_graph(3))
        nodes = net.nodes
        # Hot loops read this per access: no per-read copy, no mutation.
        assert nodes is net.nodes
        assert isinstance(nodes, tuple)
        assert nodes == (0, 1, 2)

    def test_size(self):
        assert CongestNetwork(star_graph(7)).size == 7


class TestTreeSpec:
    def test_key_names(self):
        spec = TreeSpec("foo")
        assert spec.parent_key == "foo:parent"
        assert spec.children_key == "foo:children"
        assert spec.depth_key == "foo:depth"

    def test_accessors_via_memory(self):
        tree = RootedTree(0, {1: 0, 2: 1})
        net = CongestNetwork(tree.to_graph())
        load_tree_into_memory(net, tree, SPANNING_TREE)

        class Probe(NodeProgram):
            def on_start(self, ctx):
                ctx.output("parent", SPANNING_TREE.parent(ctx))
                ctx.output("children", SPANNING_TREE.children(ctx))
                ctx.output("depth", SPANNING_TREE.depth(ctx))
                ctx.output("is_root", SPANNING_TREE.is_root(ctx))

        result = net.run_phase("probe", lambda u: Probe())
        assert result.output_map("parent") == {0: None, 1: 0, 2: 1}
        assert result.output_map("depth") == {0: 0, 1: 1, 2: 2}
        assert result.output_map("is_root") == {0: True, 1: False, 2: False}


class TestConvergecastErrors:
    def test_unexpected_child_value_raises(self):
        tree = RootedTree(0, {1: 0})
        graph = tree.to_graph()
        graph.add_edge(0, 1, 1.0)  # merged; still one edge

        class Rogue(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 1:
                    # Send a convergecast value twice — the second one
                    # arrives after node 0's pending set is empty.
                    ctx.send(0, "cc", 1)
                    ctx.send(0, "cc", 2)

        net = CongestNetwork(graph)
        load_tree_into_memory(net, tree, SPANNING_TREE)

        class Victim(Convergecast):
            pass

        with pytest.raises(ValueError):
            net.run_phase(
                "cc",
                lambda u: (
                    Victim(SPANNING_TREE, initial=lambda c: 0, out_key="s")
                    if u == 0
                    else Rogue()
                ),
            )
