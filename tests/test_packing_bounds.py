"""Tests for certified cut bounds and the new generator families."""

import pytest

from repro.baselines import stoer_wagner_min_cut
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    caveman_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    hypercube_graph,
    torus_graph,
)
from repro.packing import certified_cut_bounds, edge_disjoint_packing
from repro.graphs import is_spanning_tree


class TestEdgeDisjointPacking:
    def test_trees_are_disjoint_and_spanning(self):
        g = complete_graph(8)
        trees = edge_disjoint_packing(g, seed=1)
        seen: set = set()
        for tree in trees:
            assert is_spanning_tree(g, list(tree.edges()))
            edges = {frozenset(e) for e in tree.edges()}
            assert edges.isdisjoint(seen)
            seen |= edges

    def test_k8_reaches_nash_williams_optimum(self):
        # K8: m=28, n-1=7 → at most 4 disjoint trees; a perfect
        # partition exists and the randomized greedy finds it.
        trees = edge_disjoint_packing(complete_graph(8), seed=0)
        assert len(trees) == 4

    def test_tree_only_one_packing(self):
        g = cycle_graph(6)
        g.remove_edge(0, 5)  # now a path: exactly one spanning tree
        assert len(edge_disjoint_packing(g)) == 1

    def test_max_trees_cap(self):
        trees = edge_disjoint_packing(complete_graph(10), max_trees=2)
        assert len(trees) == 2

    def test_single_node_rejected(self):
        g = WeightedGraph()
        g.add_node(0)
        with pytest.raises(AlgorithmError):
            edge_disjoint_packing(g)


class TestCertifiedBounds:
    @pytest.mark.parametrize(
        "graph",
        [
            complete_graph(8),
            cycle_graph(12),
            hypercube_graph(4),
            torus_graph(4, 4),
            caveman_graph(4, 5),
            connected_gnp_graph(18, 0.4, seed=2),
        ],
        ids=["K8", "C12", "Q4", "torus", "caveman", "ER"],
    )
    def test_interval_contains_lambda(self, graph):
        bounds = certified_cut_bounds(graph)
        truth = stoer_wagner_min_cut(graph).value
        assert bounds.lower - 1e-9 <= truth <= bounds.upper + 1e-9

    def test_upper_witness_is_real_cut(self):
        g = connected_gnp_graph(16, 0.35, seed=7)
        bounds = certified_cut_bounds(g)
        assert g.cut_value(bounds.upper_witness) == pytest.approx(bounds.upper)

    def test_lower_bound_at_least_one(self):
        bounds = certified_cut_bounds(cycle_graph(5))
        assert bounds.lower >= 1.0

    def test_tight_on_sparse_er(self):
        g = connected_gnp_graph(20, 0.4, seed=1)
        bounds = certified_cut_bounds(g)
        truth = stoer_wagner_min_cut(g).value
        if bounds.is_tight:
            assert bounds.upper == pytest.approx(truth)


class TestNewFamilies:
    def test_hypercube_connectivity_equals_dimension(self):
        for d in (2, 3, 4):
            g = hypercube_graph(d)
            assert g.number_of_nodes == 2 ** d
            assert stoer_wagner_min_cut(g).value == float(d)

    def test_hypercube_validation(self):
        with pytest.raises(AlgorithmError):
            hypercube_graph(0)

    def test_torus_is_4_regular(self):
        g = torus_graph(4, 6)
        assert all(g.degree(u) == 4 for u in g.nodes)
        assert stoer_wagner_min_cut(g).value == 4.0

    def test_torus_validation(self):
        with pytest.raises(AlgorithmError):
            torus_graph(2, 5)

    def test_caveman_min_cut_two(self):
        g = caveman_graph(5, 4)
        assert g.is_connected()
        assert stoer_wagner_min_cut(g).value == 2.0

    def test_caveman_validation(self):
        with pytest.raises(AlgorithmError):
            caveman_graph(2, 5)
        with pytest.raises(AlgorithmError):
            caveman_graph(3, 2)
