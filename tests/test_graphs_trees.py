"""Unit tests for the RootedTree substrate."""

import pytest

from repro.errors import TreeError
from repro.graphs import RootedTree


@pytest.fixture
def sample_tree() -> RootedTree:
    #        0
    #       / \
    #      1   2
    #     / \    \
    #    3   4    5
    #        |
    #        6
    return RootedTree(0, {1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 4})


class TestConstruction:
    def test_basic_structure(self, sample_tree):
        assert sample_tree.root == 0
        assert len(sample_tree) == 7
        assert sample_tree.parent(0) is None
        assert sample_tree.parent(6) == 4
        assert sample_tree.children(1) == [3, 4]

    def test_root_in_parent_map_rejected(self):
        with pytest.raises(TreeError):
            RootedTree(0, {0: 1})

    def test_unknown_parent_rejected(self):
        with pytest.raises(TreeError):
            RootedTree(0, {1: 99})

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            RootedTree(0, {1: 2, 2: 1})

    def test_from_edges(self):
        t = RootedTree.from_edges(0, [(0, 1), (1, 2), (0, 3)])
        assert t.parent(2) == 1
        assert t.depth(2) == 2

    def test_from_edges_wrong_count(self):
        with pytest.raises(TreeError):
            RootedTree.from_edges(0, [(0, 1), (1, 2), (0, 2)])

    def test_from_edges_disconnected(self):
        with pytest.raises(TreeError):
            RootedTree.from_edges(0, [(0, 1), (2, 3), (3, 4)])

    def test_path_and_star_factories(self):
        path = RootedTree.path(5)
        assert path.height() == 4
        star = RootedTree.star(5)
        assert star.height() == 1
        assert len(star.leaves()) == 4

    def test_single_node(self):
        t = RootedTree(0, {})
        assert t.nodes == [0]
        assert t.height() == 0
        assert t.is_leaf(0)


class TestAccessors:
    def test_depths(self, sample_tree):
        assert sample_tree.depth(0) == 0
        assert sample_tree.depth(6) == 3
        assert sample_tree.height() == 3

    def test_leaves(self, sample_tree):
        assert sorted(sample_tree.leaves()) == [3, 5, 6]

    def test_edges_oriented_child_parent(self, sample_tree):
        edges = dict(sample_tree.edges())
        assert edges[6] == 4
        assert len(edges) == 6

    def test_unknown_node_raises(self, sample_tree):
        with pytest.raises(TreeError):
            sample_tree.parent(42)
        with pytest.raises(TreeError):
            sample_tree.children(42)


class TestOrders:
    def test_preorder_root_first_parents_before_children(self, sample_tree):
        order = sample_tree.preorder()
        position = {u: i for i, u in enumerate(order)}
        assert order[0] == 0
        for child, parent in sample_tree.edges():
            assert position[parent] < position[child]

    def test_postorder_children_before_parents(self, sample_tree):
        order = sample_tree.postorder()
        position = {u: i for i, u in enumerate(order)}
        assert order[-1] == 0
        for child, parent in sample_tree.edges():
            assert position[child] < position[parent]

    def test_orders_cover_all_nodes(self, sample_tree):
        assert sorted(sample_tree.preorder()) == sorted(sample_tree.nodes)
        assert sorted(sample_tree.postorder()) == sorted(sample_tree.nodes)


class TestSubtrees:
    def test_subtree_sets(self, sample_tree):
        assert sample_tree.subtree(1) == {1, 3, 4, 6}
        assert sample_tree.subtree(2) == {2, 5}
        assert sample_tree.subtree(0) == set(sample_tree.nodes)

    def test_subtree_sizes_sweep_matches_sets(self, sample_tree):
        sizes = sample_tree.subtree_sizes()
        for u in sample_tree.nodes:
            assert sizes[u] == len(sample_tree.subtree(u))

    def test_ancestors(self, sample_tree):
        assert sample_tree.ancestors(6) == [4, 1, 0]
        assert sample_tree.ancestors(6, include_self=True) == [6, 4, 1, 0]
        assert sample_tree.ancestors(0) == []

    def test_is_ancestor(self, sample_tree):
        assert sample_tree.is_ancestor(0, 6)
        assert sample_tree.is_ancestor(1, 6)
        assert sample_tree.is_ancestor(6, 6)
        assert not sample_tree.is_ancestor(2, 6)
        assert not sample_tree.is_ancestor(6, 1)


class TestLCA:
    def test_lca_basic(self, sample_tree):
        assert sample_tree.lca(3, 6) == 1
        assert sample_tree.lca(3, 5) == 0
        assert sample_tree.lca(4, 6) == 4
        assert sample_tree.lca(6, 6) == 6
        assert sample_tree.lca(0, 5) == 0

    def test_lca_on_path(self):
        path = RootedTree.path(30)
        assert path.lca(29, 13) == 13
        assert path.lca(7, 22) == 7

    def test_lca_matches_brute_force(self):
        import random

        from repro.graphs import random_tree

        for seed in range(5):
            tree = random_tree(40, seed=seed)
            rng = random.Random(seed)
            for _ in range(40):
                u = rng.randrange(40)
                v = rng.randrange(40)
                anc_u = tree.ancestors(u, include_self=True)
                anc_v = set(tree.ancestors(v, include_self=True))
                expected = next(a for a in anc_u if a in anc_v)
                assert tree.lca(u, v) == expected


class TestConversion:
    def test_to_graph(self, sample_tree):
        g = sample_tree.to_graph(weight=2.0)
        assert g.number_of_nodes == 7
        assert g.number_of_edges == 6
        assert g.weight(4, 6) == 2.0
        assert g.is_connected()

    def test_to_graph_single_node(self):
        g = RootedTree(3, {}).to_graph()
        assert g.nodes == [3]
