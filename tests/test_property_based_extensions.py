"""Property-based tests for the extension subsystems: max-flow,
Gomory–Hu, 2-respecting cuts, certified bounds, and CONGEST traffic."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    gomory_hu_tree,
    max_flow_min_cut,
    minimum_st_cut_value,
    stoer_wagner_min_cut,
)
from repro.core import (
    one_respecting_min_cut_reference,
    two_respecting_min_cut_reference,
)
from repro.graphs import WeightedGraph, random_spanning_tree
from repro.packing import certified_cut_bounds, crossing_count

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, max_nodes: int = 10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = WeightedGraph()
    graph.add_node(0)
    for child in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        graph.add_edge(child, parent, float(draw(st.integers(1, 5))))
    for _ in range(draw(st.integers(0, 2 * n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, float(draw(st.integers(1, 5))))
    return graph


class TestFlowProperties:
    @SETTINGS
    @given(connected_graphs(), st.data())
    def test_flow_symmetric_and_bounded(self, graph, data):
        nodes = graph.nodes
        s = data.draw(st.sampled_from(nodes))
        t = data.draw(st.sampled_from([u for u in nodes if u != s]))
        forward = minimum_st_cut_value(graph, s, t)
        backward = minimum_st_cut_value(graph, t, s)
        assert abs(forward - backward) < 1e-9
        assert forward <= min(
            graph.weighted_degree(s), graph.weighted_degree(t)
        ) + 1e-9

    @SETTINGS
    @given(connected_graphs(), st.data())
    def test_cut_witness_separates_and_realises_value(self, graph, data):
        nodes = graph.nodes
        s = data.draw(st.sampled_from(nodes))
        t = data.draw(st.sampled_from([u for u in nodes if u != s]))
        result = max_flow_min_cut(graph, s, t)
        assert s in result.source_side
        assert t not in result.source_side
        assert abs(graph.cut_value(result.source_side) - result.value) < 1e-6

    @SETTINGS
    @given(connected_graphs())
    def test_global_min_is_min_over_st_cuts_from_anchor(self, graph):
        anchor = graph.nodes[0]
        best_st = min(
            minimum_st_cut_value(graph, anchor, t)
            for t in graph.nodes
            if t != anchor
        )
        assert abs(best_st - stoer_wagner_min_cut(graph).value) < 1e-6


class TestGomoryHuProperties:
    @SETTINGS
    @given(connected_graphs(max_nodes=8), st.data())
    def test_tree_answers_match_flow(self, graph, data):
        tree = gomory_hu_tree(graph)
        nodes = graph.nodes
        s = data.draw(st.sampled_from(nodes))
        t = data.draw(st.sampled_from([u for u in nodes if u != s]))
        assert abs(
            tree.min_cut_value(s, t) - minimum_st_cut_value(graph, s, t)
        ) < 1e-6

    @SETTINGS
    @given(connected_graphs(max_nodes=8))
    def test_lightest_edge_is_global_min(self, graph):
        tree = gomory_hu_tree(graph)
        _c, _p, weight = tree.lightest_edge()
        assert abs(weight - stoer_wagner_min_cut(graph).value) < 1e-6


class TestTwoRespectProperties:
    @SETTINGS
    @given(connected_graphs(max_nodes=9), st.integers(0, 99))
    def test_sandwiched_between_one_respect_and_lambda(self, graph, seed):
        tree = random_spanning_tree(graph, seed=seed)
        one = one_respecting_min_cut_reference(graph, tree).best_value
        two = two_respecting_min_cut_reference(graph, tree)
        lam = stoer_wagner_min_cut(graph).value
        assert lam - 1e-6 <= two.best_value <= one + 1e-6

    @SETTINGS
    @given(connected_graphs(max_nodes=9), st.integers(0, 99))
    def test_witness_consistency(self, graph, seed):
        tree = random_spanning_tree(graph, seed=seed)
        result = two_respecting_min_cut_reference(graph, tree)
        assert abs(graph.cut_value(result.side) - result.best_value) < 1e-6
        assert crossing_count(tree, result.side) <= 2


class TestCertifiedBoundsProperty:
    @SETTINGS
    @given(connected_graphs(max_nodes=10))
    def test_interval_always_contains_lambda(self, graph):
        bounds = certified_cut_bounds(graph, max_trees=8)
        lam = stoer_wagner_min_cut(graph).value
        assert bounds.lower - 1e-6 <= lam <= bounds.upper + 1e-6
        assert abs(graph.cut_value(bounds.upper_witness) - bounds.upper) < 1e-6
