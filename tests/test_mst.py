"""MST substrate tests: Kruskal, Prim, distributed Borůvka, KP wrapper."""

import pytest

from repro.congest import CongestNetwork
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    is_spanning_tree,
    path_graph,
)
from repro.mst import (
    boruvka_mst,
    edge_total_order,
    kutten_peleg_mst,
    kutten_peleg_round_cost,
    log_star,
    minimum_spanning_tree,
    minimum_spanning_tree_prim,
    tree_weight,
)


def _edge_set(tree):
    return {frozenset(e) for e in tree.edges()}


class TestKruskal:
    def test_known_mst(self):
        g = WeightedGraph(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 1.0), (1, 3, 4.0)]
        )
        tree = minimum_spanning_tree(g)
        assert _edge_set(tree) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }
        assert tree_weight(g, tree) == 4.0

    def test_spans(self):
        g = connected_gnp_graph(30, 0.2, seed=1, weight_range=(1.0, 9.0))
        tree = minimum_spanning_tree(g)
        assert is_spanning_tree(g, list(tree.edges()))

    def test_custom_key_overrides_weight(self):
        g = WeightedGraph([(0, 1, 10.0), (1, 2, 1.0), (0, 2, 1.0)])
        # Inverted key prefers the heavy edge.
        tree = minimum_spanning_tree(g, key=lambda u, v, w: -w)
        assert frozenset({0, 1}) in _edge_set(tree)

    def test_root_parameter(self):
        g = cycle_graph(5)
        tree = minimum_spanning_tree(g, root=3)
        assert tree.root == 3

    def test_disconnected_rejected(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(Exception):
            minimum_spanning_tree(g)

    def test_single_node(self):
        g = WeightedGraph()
        g.add_node(4)
        tree = minimum_spanning_tree(g)
        assert tree.nodes == [4]

    def test_deterministic_under_ties(self):
        g = complete_graph(8)  # all weights equal
        t1 = minimum_spanning_tree(g)
        t2 = minimum_spanning_tree(g)
        assert _edge_set(t1) == _edge_set(t2)


class TestPrimAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_weight_as_kruskal(self, seed):
        g = connected_gnp_graph(25, 0.3, seed=seed, weight_range=(1.0, 9.0))
        k = minimum_spanning_tree(g)
        p = minimum_spanning_tree_prim(g)
        assert tree_weight(g, k) == pytest.approx(tree_weight(g, p))

    def test_same_edges_with_distinct_weights(self):
        g = WeightedGraph()
        weight = 1.0
        for u in range(6):
            for v in range(u + 1, 6):
                g.add_edge(u, v, weight)
                weight += 0.5
        assert _edge_set(minimum_spanning_tree(g)) == _edge_set(
            minimum_spanning_tree_prim(g)
        )

    def test_prim_unknown_root(self):
        with pytest.raises(AlgorithmError):
            minimum_spanning_tree_prim(path_graph(3), root=9)


class TestBoruvkaCongest:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_kruskal_exactly(self, seed):
        g = connected_gnp_graph(22, 0.3, seed=seed, weight_range=(1.0, 9.0))
        net = CongestNetwork(g)
        b = boruvka_mst(net)
        k = minimum_spanning_tree(g)
        assert _edge_set(b) == _edge_set(k)

    def test_all_equal_weights_tie_break(self):
        g = complete_graph(9)
        net = CongestNetwork(g)
        b = boruvka_mst(net)
        k = minimum_spanning_tree(g)
        assert _edge_set(b) == _edge_set(k)

    def test_custom_edge_key(self):
        g = WeightedGraph([(0, 1, 10.0), (1, 2, 1.0), (0, 2, 1.0)])
        net = CongestNetwork(g)
        b = boruvka_mst(net, edge_key=lambda ctx, v: -ctx.edge_weight(v))
        assert frozenset({0, 1}) in _edge_set(b)

    def test_marked_edges_in_node_memory(self):
        g = cycle_graph(6)
        net = CongestNetwork(g)
        b = boruvka_mst(net)
        for child, parent in b.edges():
            assert parent in net.memory[child]["mst:marked"]
            assert child in net.memory[parent]["mst:marked"]

    def test_iteration_count_logarithmic(self):
        g = path_graph(32)
        net = CongestNetwork(g)
        boruvka_mst(net)
        comp_phases = [p for p in net.metrics.phases if p.name.startswith("mst:comp")]
        assert len(comp_phases) <= 7  # ceil(log2 32) + safety


class TestKuttenPelegWrapper:
    def test_same_tree_with_charged_cost(self):
        g = connected_gnp_graph(20, 0.3, seed=2, weight_range=(1.0, 9.0))
        net = CongestNetwork(g)
        tree = kutten_peleg_mst(g, network=net, diameter_hint=4)
        assert _edge_set(tree) == _edge_set(minimum_spanning_tree(g))
        assert net.metrics.charged_rounds == kutten_peleg_round_cost(20, 4)

    def test_no_network_no_charge(self):
        g = cycle_graph(5)
        tree = kutten_peleg_mst(g)
        assert is_spanning_tree(g, list(tree.edges()))

    def test_log_star_values(self):
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_cost_grows_with_sqrt_n(self):
        small = kutten_peleg_round_cost(100, 5)
        large = kutten_peleg_round_cost(10000, 5)
        assert large > small
        assert large <= 10 * small + 100

    def test_edge_total_order(self):
        assert edge_total_order(3, 1, 2.0) == (2.0, 1, 3)
        assert edge_total_order(1, 3, 2.0) == (2.0, 1, 3)
        assert edge_total_order(1, 2, 1.0) < edge_total_order(1, 2, 2.0)
