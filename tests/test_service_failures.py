"""ServiceClient failure paths: refused, dropped, over-limit, garbage.

The client contract under test: every failure a caller can hit is a
typed :class:`~repro.errors.ServiceError` — ``status=0`` when the
worker is unreachable or drops the connection mid-exchange, the HTTP
status for structured rejections (413 over ``--max-batch``), and the
response status for 2xx bodies that are not valid JSON — never a bare
``URLError``/``HTTPException``/``ValueError`` leaking from the
transport.  The ``remote`` backend's failover logic is built on
exactly these classifications.
"""

import json
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.graphs import build_family
from repro.service import ServiceClient, ServiceConfig, create_server


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture
def stub_server():
    """A raw-socket 'server' whose per-connection behaviour is scripted.

    ``start(responder)`` launches it; the responder gets the accepted
    connection and may write bytes, close immediately, or anything a
    broken worker might do.
    """
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    url = f"http://127.0.0.1:{sock.getsockname()[1]}"
    threads = []

    def start(responder):
        def loop():
            try:
                while True:
                    conn, _addr = sock.accept()
                    try:
                        responder(conn)
                    finally:
                        conn.close()
            except OSError:
                pass

        thread = threading.Thread(target=loop, daemon=True)
        threads.append(thread)
        thread.start()

    yield url, start
    sock.close()


def _http_response(body: bytes, status: str = "200 OK") -> bytes:
    return (
        f"HTTP/1.1 {status}\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body


def _drain_request(conn) -> None:
    conn.settimeout(2.0)
    try:
        while b"\r\n\r\n" not in conn.recv(65536):
            pass
    except (OSError, ValueError):
        pass


class TestConnectionRefused:
    def test_health_raises_status_zero(self):
        client = ServiceClient(f"http://127.0.0.1:{_free_port()}", timeout=2.0)
        with pytest.raises(ServiceError, match="unreachable") as info:
            client.health()
        assert info.value.status == 0

    def test_solve_raises_status_zero(self):
        client = ServiceClient(f"http://127.0.0.1:{_free_port()}", timeout=2.0)
        with pytest.raises(ServiceError) as info:
            client.solve(build_family("cycle", 6))
        assert info.value.status == 0


class TestDroppedMidExchange:
    def test_connection_slammed_after_accept(self, stub_server):
        url, start = stub_server
        start(lambda conn: None)  # accept, say nothing, close
        client = ServiceClient(url, timeout=2.0)
        with pytest.raises(ServiceError) as info:
            client.solve(build_family("cycle", 6))
        assert info.value.status == 0

    def test_connection_dropped_after_headers_read(self, stub_server):
        url, start = stub_server

        def read_then_die(conn):
            _drain_request(conn)  # looks alive, then vanishes

        start(read_then_die)
        client = ServiceClient(url, timeout=2.0)
        with pytest.raises(ServiceError) as info:
            client.health()
        assert info.value.status == 0


class TestOverLimit:
    def test_batch_over_max_batch_is_structured_413(self):
        server = create_server(port=0, config=ServiceConfig(max_batch=2))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=10.0)
            graphs = [build_family("cycle", 6, seed=s) for s in range(3)]
            with pytest.raises(ServiceError, match="limit of 2") as info:
                client.solve_batch(graphs, "stoer_wagner")
            assert info.value.status == 413
            assert info.value.payload["error"]["type"] == "ServiceError"
            # Under the limit still works on the same connection/client.
            results = client.solve_batch(graphs[:2], "stoer_wagner")
            assert len(results) == 2
        finally:
            server.shutdown()
            server.server_close()


class TestMalformedResponses:
    def test_garbage_2xx_body_is_a_service_error(self, stub_server):
        url, start = stub_server

        def garbage(conn):
            _drain_request(conn)
            conn.sendall(_http_response(b"<html>not json</html>"))

        start(garbage)
        client = ServiceClient(url, timeout=2.0)
        with pytest.raises(ServiceError, match="not valid JSON"):
            client.health()

    def test_json_with_wrong_shape_is_a_service_error(self, stub_server):
        url, start = stub_server

        def wrong_shape(conn):
            _drain_request(conn)
            conn.sendall(
                _http_response(json.dumps({"result": "not an object"}).encode())
            )

        start(wrong_shape)
        client = ServiceClient(url, timeout=2.0)
        with pytest.raises(ServiceError, match="result payload"):
            client.solve(build_family("cycle", 6))

    def test_non_json_4xx_body_still_raises_typed_error(self, stub_server):
        url, start = stub_server

        def html_error(conn):
            _drain_request(conn)
            conn.sendall(
                _http_response(b"<h1>Bad Gateway</h1>", status="502 Bad Gateway")
            )

        start(html_error)
        client = ServiceClient(url, timeout=2.0)
        with pytest.raises(ServiceError) as info:
            client.health()
        assert info.value.status == 502
