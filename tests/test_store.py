"""Segmented cache store: crash safety, deterministic compaction, merge.

The subsystem's three contracts, exercised directly against
:mod:`repro.store` and through :class:`repro.exec.cache.ResultCache`:

* **append-only crash safety** — a truncated tail line (crash
  mid-append) is dropped and repaired on open, never corrupting the
  complete records before it; sealed segments are read strictly;
* **deterministic, idempotent compaction** — the same records plus the
  same retention policy produce a byte-identical compacted segment, so
  compacting twice is a no-op and merge is segment concatenation
  followed by one compact;
* **schema migration** — schema ≤ 2 cache files merge into a schema-3
  store with the exact same entry map (``repro cache merge`` is the
  migration path), and newer/foreign manifests are refused, not
  half-read.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.exec import CACHE_SCHEMA_VERSION, ResultCache
from repro.exec.cache import load_cache_file
from repro.store import (
    ACTIVE_SEGMENT,
    MANIFEST_NAME,
    RetentionPolicy,
    STORE_KIND,
    STORE_SCHEMA_VERSION,
    SegmentStore,
    is_store_path,
    read_segment,
)


def entry(i):
    """A minimal cache-entry payload, distinguishable by ``i``."""
    return {"value": float(i), "solver": "fake"}


def fill(store, count, *, ts=100.0):
    store.append([(f"d{i:04d}", entry(i)) for i in range(count)], ts=ts)


class TestSegmentReading:
    def test_round_trip(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        store.append([("a", entry(1))], [("a", 2)], ts=5.0)
        records, truncated = read_segment(tmp_path / "st" / ACTIVE_SEGMENT)
        assert truncated is None
        assert [r["op"] for r in records] == ["put", "hit"]
        assert records[0]["entry"] == entry(1)
        assert records[1]["count"] == 2

    def test_truncated_tail_dropped_and_repaired(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        store.append([("a", entry(1)), ("b", entry(2))], ts=1.0)
        active = tmp_path / "st" / ACTIVE_SEGMENT
        intact = active.read_bytes()
        # Crash mid-append: half of a third record, no newline.
        active.write_bytes(intact + b'{"digest": "c", "en')

        reopened = SegmentStore(tmp_path / "st")
        assert set(reopened.entries()) == {"a", "b"}
        assert reopened.dropped_tail == 1
        # Repair-by-truncate: the file is back on a line boundary, so a
        # later append cannot glue onto the partial record.
        assert active.read_bytes() == intact
        reopened.append([("c", entry(3))], ts=2.0)
        assert set(SegmentStore(tmp_path / "st").entries()) == {"a", "b", "c"}

    def test_mid_file_corruption_is_an_error_even_leniently(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        store.append([("a", entry(1)), ("b", entry(2))], ts=1.0)
        active = tmp_path / "st" / ACTIVE_SEGMENT
        lines = active.read_bytes().splitlines(keepends=True)
        active.write_bytes(b"garbage\n" + lines[1])
        with pytest.raises(AlgorithmError, match="truncated or corrupt"):
            SegmentStore(tmp_path / "st")

    def test_sealed_segments_read_strictly(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 3)
        report = store.compact()
        sealed = tmp_path / "st" / report.segment
        sealed.write_bytes(sealed.read_bytes()[:-10])  # damage the tail
        with pytest.raises(AlgorithmError, match="truncated or corrupt"):
            SegmentStore(tmp_path / "st")

    def test_malformed_record_shapes_rejected(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        active = tmp_path / "st" / ACTIVE_SEGMENT
        for bad in (
            '{"op": "frob", "digest": "a", "ts": 1}',
            '{"op": "put", "digest": "", "entry": {}, "hits": 0, "ts": 1}',
            '{"op": "put", "digest": "a", "entry": [], "hits": 0, "ts": 1}',
            '{"op": "hit", "digest": "a", "count": 0, "ts": 1}',
            '"just a string"',
        ):
            active.write_text(bad + "\n", encoding="utf-8")
            with pytest.raises(AlgorithmError):
                read_segment(active)
        del store


class TestManifest:
    def test_written_on_first_append(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        assert not (tmp_path / "st" / MANIFEST_NAME).exists()
        store.append([("a", entry(1))], ts=1.0)
        manifest = json.loads(
            (tmp_path / "st" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["schema"] == STORE_SCHEMA_VERSION
        assert manifest["kind"] == STORE_KIND
        assert manifest["segments"] == []  # active segment is implicit

    def test_newer_schema_refused(self, tmp_path):
        root = tmp_path / "st"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"schema": 99, "kind": STORE_KIND, "segments": []}),
            encoding="utf-8",
        )
        with pytest.raises(AlgorithmError, match="schema 99"):
            SegmentStore(root)

    def test_foreign_manifest_refused(self, tmp_path):
        root = tmp_path / "st"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"schema": 3, "entries": {}}), encoding="utf-8"
        )
        with pytest.raises(AlgorithmError, match="not a cache store"):
            SegmentStore(root)

    def test_plain_directory_not_opened_without_create(self, tmp_path):
        (tmp_path / "not_a_store").mkdir()
        with pytest.raises(AlgorithmError, match="not a cache store"):
            SegmentStore(tmp_path / "not_a_store", create=False)

    def test_is_store_path_conventions(self, tmp_path):
        assert is_store_path(tmp_path)                      # existing dir
        assert is_store_path(tmp_path / "cache_store")      # no suffix
        assert not is_store_path(tmp_path / "cache.json")   # file suffix
        file_path = tmp_path / "weird"
        file_path.write_text("x", encoding="utf-8")
        assert not is_store_path(file_path)                 # existing file


class TestCompaction:
    def test_deterministic_across_append_batching(self, tmp_path):
        # Same records, different append granularity -> byte-identical
        # compacted segments with identical (content-addressed) names.
        one = SegmentStore(tmp_path / "one")
        one.append(
            [(f"d{i}", entry(i)) for i in range(6)],
            [("d1", 3), ("d4", 1)],
            ts=10.0,
        )
        two = SegmentStore(tmp_path / "two")
        for i in range(6):
            two.append([(f"d{i}", entry(i))], ts=10.0)
        two.append([], [("d1", 2)], ts=10.0)
        two.append([], [("d1", 1), ("d4", 1)], ts=10.0)

        policy = RetentionPolicy(max_entries=4)
        report_one = one.compact(policy)
        report_two = two.compact(policy)
        assert report_one.segment == report_two.segment
        assert (
            (tmp_path / "one" / report_one.segment).read_bytes()
            == (tmp_path / "two" / report_two.segment).read_bytes()
        )

    def test_idempotent(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 8)
        store.append([], [("d0003", 5)], ts=200.0)
        first = store.compact(RetentionPolicy(max_entries=5))
        blob = (tmp_path / "st" / first.segment).read_bytes()
        second = store.compact(RetentionPolicy(max_entries=5))
        assert second.segment == first.segment
        assert (tmp_path / "st" / second.segment).read_bytes() == blob
        assert second.dropped_entries == 0
        assert second.dropped_records == 0
        # And a third time from a fresh open (on-disk state only).
        third = SegmentStore(tmp_path / "st").compact(
            RetentionPolicy(max_entries=5)
        )
        assert third.segment == first.segment

    def test_compaction_folds_dead_records(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 4)
        store.append([], [(f"d{i:04d}", 1) for i in range(4)], ts=150.0)
        assert store.stats()["dead_records"] == 4  # the hit records
        report = store.compact()
        assert report.kept_entries == 4
        assert store.stats()["dead_records"] == 0
        # Hit metadata survived the fold.
        assert all(hits == 1 for hits, _ in store.entry_meta().values())

    def test_empty_selection_leaves_no_segments(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 3)
        report = store.compact(RetentionPolicy(max_entries=0))
        assert report.segment is None
        assert report.kept_entries == 0
        assert len(SegmentStore(tmp_path / "st")) == 0

    def test_gc_removes_orphan_segments(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 3)
        orphan = tmp_path / "st" / "seg-deadbeefdeadbeef.jsonl"
        orphan.write_text("", encoding="utf-8")
        report = store.gc()
        assert report.orphans_removed == 1
        assert not orphan.exists()
        assert report.kept_entries == 3  # gc never drops live entries


class TestRetentionPolicy:
    def test_validation(self):
        with pytest.raises(AlgorithmError, match="max_entries"):
            RetentionPolicy(max_entries=-1)
        with pytest.raises(AlgorithmError, match="max_bytes"):
            RetentionPolicy(max_bytes=-1)
        with pytest.raises(AlgorithmError, match="max_age"):
            RetentionPolicy(max_age=-0.5)

    def test_most_frequently_hit_win(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 4)
        store.append([], [("d0002", 5), ("d0000", 2)], ts=100.0)
        kept = store.select(RetentionPolicy(max_entries=2))
        assert kept == ["d0000", "d0002"]

    def test_recency_breaks_hit_ties(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        store.append([("old", entry(1))], ts=10.0)
        store.append([("new", entry(2))], ts=20.0)
        assert store.select(RetentionPolicy(max_entries=1)) == ["new"]

    def test_max_age_measured_from_newest_record(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        store.append([("stale", entry(1))], ts=100.0)
        store.append([("fresh", entry(2))], ts=500.0)
        assert store.select(RetentionPolicy(max_age=1000.0)) == [
            "fresh",
            "stale",
        ]
        assert store.select(RetentionPolicy(max_age=100.0)) == ["fresh"]
        # Explicit wall-clock reference for expiry-style sweeps.
        assert store.select(RetentionPolicy(max_age=100.0), now=700.0) == []

    def test_max_bytes_budget(self, tmp_path):
        store = SegmentStore(tmp_path / "st")
        fill(store, 6)
        line_cost = len(store._compacted_line("d0000").encode("utf-8"))
        kept = store.select(RetentionPolicy(max_bytes=3 * line_cost))
        assert len(kept) == 3
        report = store.compact(RetentionPolicy(max_bytes=3 * line_cost))
        assert report.bytes_after <= 3 * line_cost


class TestMergeAndMigration:
    def test_adopt_segments_then_compact_is_deterministic(self, tmp_path):
        a = SegmentStore(tmp_path / "a")
        a.append([("x", entry(1)), ("y", entry(2))], [("x", 4)], ts=10.0)
        b = SegmentStore(tmp_path / "b")
        b.append([("y", entry(2)), ("z", entry(3))], [("z", 1)], ts=20.0)

        ab = SegmentStore(tmp_path / "ab")
        ab.adopt_segments(a)
        ab.adopt_segments(b)
        ba = SegmentStore(tmp_path / "ba")
        ba.adopt_segments(b)
        ba.adopt_segments(a)

        assert ab.entries() == ba.entries() == {
            "x": entry(1), "y": entry(2), "z": entry(3),
        }
        # Usage metadata folds across stores: y exists in both.
        assert ab.entry_meta()["x"] == (4, 10.0)
        assert ab.entry_meta()["y"][1] == 20.0
        report_ab = ab.compact()
        report_ba = ba.compact()
        assert report_ab.segment == report_ba.segment

    def test_schema2_file_migrates_via_merge_equivalently(self, tmp_path):
        # A schema-2 single-file cache merged into a store-backed cache
        # must yield the exact entry map the file loader reports.
        legacy = tmp_path / "legacy.json"
        entries = {f"d{i}": entry(i) for i in range(5)}
        legacy.write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "entries": entries}),
            encoding="utf-8",
        )
        cache = ResultCache(path=tmp_path / "migrated_store")
        counts = cache.merge_from(legacy)
        assert counts == 5 and counts.added == 5
        migrated = load_cache_file(tmp_path / "migrated_store")
        assert migrated == load_cache_file(legacy) == entries

    def test_unversioned_legacy_file_migrates_too(self, tmp_path):
        legacy = tmp_path / "bare.json"
        legacy.write_text(json.dumps({"d1": entry(1)}), encoding="utf-8")
        cache = ResultCache(path=tmp_path / "st")
        assert cache.merge_from(legacy) == 1
        assert SegmentStore(tmp_path / "st").entries() == {"d1": entry(1)}


# -- property-based round trip -------------------------------------------

digests = st.integers(min_value=0, max_value=11).map(lambda i: f"d{i:02d}")
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), digests, st.integers(0, 99)),
        st.tuples(st.just("hit"), digests, st.integers(1, 4)),
        st.tuples(st.just("compact"), st.none(), st.none()),
    ),
    max_size=24,
)


class TestPropertyRoundTrip:
    @given(ops=operations)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture,
                               HealthCheck.too_slow],
    )
    def test_append_compact_merge_preserve_entry_map(self, ops, tmp_path):
        """Any interleaving of appends/compactions preserves the fold.

        A shadow dict applies the same first-put-wins fold the store
        promises; after every operation — and after a crash-free
        reopen, an unbounded compact and a merge into a fresh store —
        the live entry map must equal the shadow.
        """
        import shutil

        root = tmp_path / "st"
        if root.exists():
            shutil.rmtree(root)
        store = SegmentStore(root)
        shadow = {}
        ts = 1.0
        for op, digest, arg in ops:
            ts += 1.0
            if op == "put":
                store.append([(digest, entry(arg))], ts=ts)
                shadow.setdefault(digest, entry(arg))
            elif op == "hit":
                store.append([], [(digest, arg)], ts=ts)
            else:
                store.compact()
            assert store.entries() == shadow
        assert SegmentStore(root).entries() == shadow  # reopen
        store.compact()
        assert store.entries() == shadow  # unbounded compact keeps all
        merged_root = tmp_path / "merged"
        if merged_root.exists():
            shutil.rmtree(merged_root)
        merged = SegmentStore(merged_root)
        merged.adopt_segments(store)
        assert merged.entries() == shadow  # merge preserves the map


class TestResultCacheStoreTier:
    def _key(self, seed):
        from repro.exec import CacheKey
        from repro.graphs import build_family

        return CacheKey.for_solve(
            build_family("cycle", 8), "stoer_wagner", seed=seed
        )

    def _result(self, value=1.0):
        from repro.api import CutResult

        return CutResult(value=value, side=frozenset({0}))

    def test_directory_path_opens_a_store(self, tmp_path):
        cache = ResultCache(path=tmp_path / "cache_store")
        assert cache.store is not None
        cache.put(self._key(0), self._result())
        assert (tmp_path / "cache_store" / ACTIVE_SEGMENT).exists()
        cold = ResultCache(path=tmp_path / "cache_store")
        assert cold.get(self._key(0)) is not None

    def test_flush_appends_instead_of_rewriting(self, tmp_path):
        cache = ResultCache(path=tmp_path / "st")
        for seed in range(3):
            cache.put(self._key(seed), self._result())
        store = cache.store
        assert store.appended_records == 3
        # Only new records hit the disk: a second flush with nothing
        # pending appends nothing.
        cache.flush()
        assert store.appended_records == 3

    def test_disk_hits_record_usage_metadata(self, tmp_path):
        cache = ResultCache(path=tmp_path / "st")
        key = self._key(1)
        cache.put(key, self._result())
        cold = ResultCache(path=tmp_path / "st")
        assert cold.get(key) is not None
        assert cold.get(key) is not None
        cold.flush()
        hits, _ts = SegmentStore(tmp_path / "st").entry_meta()[key.digest()]
        assert hits == 2

    def test_stats_carry_store_counters(self, tmp_path):
        cache = ResultCache(path=tmp_path / "st")
        cache.put(self._key(0), self._result())
        stats = cache.stats()
        assert stats["disk_entries"] == 1
        assert stats["segments"] == 1
        assert stats["live_entries"] == 1
        assert stats["store_bytes"] > 0
        assert stats["compactions"] == 0

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(path=tmp_path / "st")
        cache.put(self._key(0), self._result())
        cache.clear()
        assert cache.stats()["disk_entries"] == 0
        assert len(SegmentStore(tmp_path / "st")) == 0

    def test_merge_counts_report_every_outcome(self, tmp_path):
        ours = ResultCache(path=tmp_path / "ours.json")
        ours.put(self._key(0), self._result(1.0))
        theirs = ResultCache(path=tmp_path / "theirs.json")
        theirs.put(self._key(0), self._result(99.0))  # conflict: ours wins
        theirs.put(self._key(1), self._result(2.0))

        counts = ours.merge_from(tmp_path / "theirs.json")
        assert counts.added == 1
        assert counts.kept_ours == 1
        assert counts.skipped == 0
        assert counts == 1  # int value stays the adopted count
        assert counts + 1 == 2  # arithmetic compatibility (warm_start +=)
        assert ours.stats()["disk_entries"] == 2

    def test_engine_warm_start_accepts_store_dirs(self, tmp_path):
        from repro.api import Engine
        from repro.graphs import build_family

        graphs = [build_family("cycle", 8, seed=s) for s in range(3)]
        recorder = Engine(cache=tmp_path / "record_store")
        recorder.solve_batch(graphs, "stoer_wagner")

        warm = Engine(cache=ResultCache())
        assert warm.warm_start(tmp_path / "record_store") == 3
        replay = warm.solve_batch(graphs, "stoer_wagner")
        assert all(r.extras["cache"]["hit"] for r in replay)
