"""Tests for the (1+ε) sampling-based approximation driver."""

import pytest

from repro.baselines import stoer_wagner_min_cut
from repro.errors import AlgorithmError
from repro.graphs import (
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    planted_cut_graph,
)
from repro.mincut import minimum_cut_approx


class TestSmallLambdaExactPath:
    def test_small_cut_goes_exact(self):
        g = planted_cut_graph((10, 10), 2, seed=1)
        result = minimum_cut_approx(g, epsilon=0.5, seed=0)
        assert result.probability == 1.0
        assert not result.used_sampling
        assert result.value == pytest.approx(2.0)

    def test_cycle_exact(self):
        result = minimum_cut_approx(cycle_graph(12), epsilon=0.3, seed=0)
        assert result.value == pytest.approx(2.0)


class TestSamplingPath:
    def _dense_instance(self, seed=0):
        # Complete graph: λ = n − 1, large enough to engage sampling.
        return complete_graph(80)

    def test_sampling_engages_on_large_lambda(self):
        g = self._dense_instance()
        result = minimum_cut_approx(g, epsilon=0.5, seed=3)
        assert result.used_sampling
        assert result.probability < 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_within_epsilon(self, seed):
        g = self._dense_instance(seed)
        truth = 79.0
        result = minimum_cut_approx(g, epsilon=0.5, seed=seed)
        ratio = result.value / truth
        assert 1.0 - 1e-9 <= ratio <= 1.5 + 1e-9

    def test_value_is_original_graph_cut(self):
        g = self._dense_instance(7)
        result = minimum_cut_approx(g, epsilon=0.6, seed=1)
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_tighter_epsilon_samples_more(self):
        g = self._dense_instance(2)
        loose = minimum_cut_approx(g, epsilon=1.0, seed=5)
        tight = minimum_cut_approx(g, epsilon=0.4, seed=5)
        if loose.used_sampling and tight.used_sampling:
            assert tight.probability >= loose.probability

    def test_dense_planted_cut(self):
        g = planted_cut_graph((30, 30), 35, seed=1, intra_p=0.95)
        truth = stoer_wagner_min_cut(g).value
        result = minimum_cut_approx(g, epsilon=0.5, seed=2)
        assert truth - 1e-9 <= result.value <= 1.5 * truth + 1e-9


class TestHalvingSearch:
    def test_overestimated_guess_is_halved_down(self):
        # Barbell: min weighted degree ≈ side-1 (the initial guess) but
        # λ = 1, so the first skeletons drop the bridge and disconnect;
        # the search must halve its way down and end on the exact path.
        from repro.graphs import barbell_graph

        g = barbell_graph(60, bridges=1)
        result = minimum_cut_approx(g, epsilon=1.0, seed=0)
        assert result.halvings >= 1
        assert result.value == pytest.approx(1.0)
        assert not result.used_sampling  # λ is tiny → exact path

    def test_halvings_zero_when_guess_is_right(self):
        g = complete_graph(80)
        result = minimum_cut_approx(g, epsilon=0.5, seed=3)
        # min degree = λ here, so the first guess already stabilises.
        assert result.halvings == 0


class TestValidation:
    def test_epsilon_range(self):
        g = cycle_graph(5)
        with pytest.raises(AlgorithmError):
            minimum_cut_approx(g, epsilon=0.0)
        with pytest.raises(AlgorithmError):
            minimum_cut_approx(g, epsilon=1.5)

    def test_disconnected_rejected(self):
        from repro.graphs import WeightedGraph

        g = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(Exception):
            minimum_cut_approx(g, epsilon=0.5)

    def test_deterministic_per_seed(self):
        g = connected_gnp_graph(24, 0.5, seed=9)
        a = minimum_cut_approx(g, epsilon=0.5, seed=4)
        b = minimum_cut_approx(g, epsilon=0.5, seed=4)
        assert a.value == b.value
        assert a.side == b.side
