"""Result cache: keys, LRU behaviour, persistence, façade integration."""

import json

import pytest

from repro.api import CutResult, SolverRegistry, solve, solve_batch
from repro.errors import AlgorithmError
from repro.exec import CACHE_SCHEMA_VERSION, CacheKey, ResultCache
from repro.graphs import WeightedGraph, build_family


def _grid(seed=0):
    graph = build_family("grid", 9, seed=seed)
    graph.require_connected()
    return graph


class TestCacheKey:
    def test_insertion_order_invariant(self):
        a = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0), (2, 0, 1.0)])
        b = WeightedGraph([(2, 0, 1.0), (2, 1, 1.0), (1, 0, 2.0)])
        key_a = CacheKey.for_solve(a, "exact", seed=3)
        key_b = CacheKey.for_solve(b, "exact", seed=3)
        assert key_a == key_b
        assert key_a.digest() == key_b.digest()

    def test_every_knob_separates_keys(self):
        graph = _grid()
        base = CacheKey.for_solve(graph, "exact", seed=0)
        assert base != CacheKey.for_solve(graph, "stoer_wagner", seed=0)
        assert base != CacheKey.for_solve(graph, "exact", seed=1)
        assert base != CacheKey.for_solve(graph, "exact", epsilon=0.5)
        assert base != CacheKey.for_solve(graph, "exact", mode="congest")
        assert base != CacheKey.for_solve(graph, "exact", budget=4)
        assert base != CacheKey.for_solve(
            graph, "exact", options={"tree_count": 3}
        )

    def test_graph_content_separates_keys(self):
        light = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        heavy = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 2.0)])
        assert CacheKey.for_solve(light, "exact") != CacheKey.for_solve(
            heavy, "exact"
        )

    def test_numeric_knobs_canonicalised_in_digest(self):
        graph = _grid()
        as_int = CacheKey.for_solve(graph, "exact", epsilon=1, budget=2)
        as_float = CacheKey.for_solve(graph, "exact", epsilon=1.0, budget=2)
        assert as_int == as_float
        assert as_int.digest() == as_float.digest()

    def test_digest_is_stable_hex(self):
        digest = CacheKey.for_solve(_grid(), "exact").digest()
        assert len(digest) == 64
        assert int(digest, 16) >= 0


class TestResultCacheCore:
    def test_maxsize_validated(self):
        with pytest.raises(AlgorithmError, match="maxsize"):
            ResultCache(maxsize=0)

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        keys = [
            CacheKey.for_solve(_grid(), "exact", seed=s) for s in range(3)
        ]
        result = CutResult(value=1.0, side=frozenset({0}))
        for key in keys:
            cache.put(key, result)
        assert len(cache) == 2
        assert keys[0] not in cache  # oldest evicted
        assert keys[1] in cache and keys[2] in cache

    def test_get_touches_recency(self):
        cache = ResultCache(maxsize=2)
        keys = [
            CacheKey.for_solve(_grid(), "exact", seed=s) for s in range(3)
        ]
        result = CutResult(value=1.0, side=frozenset({0}))
        cache.put(keys[0], result)
        cache.put(keys[1], result)
        assert cache.get(keys[0]) is not None  # refresh 0; 1 becomes LRU
        cache.put(keys[2], result)
        assert keys[0] in cache
        assert keys[1] not in cache

    def test_stats_and_clear(self):
        cache = ResultCache()
        key = CacheKey.for_solve(_grid(), "exact")
        assert cache.get(key) is None
        cache.put(key, CutResult(value=1.0, side=frozenset({0})))
        assert cache.get(key) is not None
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "memory_entries": 1,
            "disk_entries": 0,
        }
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert len(cache) == 0


class TestFacadeIntegration:
    def test_repeated_solve_hits_and_reproduces(self):
        cache = ResultCache()
        graph = _grid()
        first = solve(graph, cache=cache)
        second = solve(graph, cache=cache)
        assert first.extras["cache"]["hit"] is False
        assert second.extras["cache"]["hit"] is True
        assert cache.hits == 1 and cache.misses == 1
        assert (second.value, second.side, second.solver, second.seed) == (
            first.value,
            first.side,
            first.solver,
            first.seed,
        )
        assert second.verify(graph) == pytest.approx(second.value)
        assert second.matches(graph)

    def test_counters_surface_in_extras(self):
        cache = ResultCache()
        graph = _grid()
        solve(graph, cache=cache)
        result = solve(graph, cache=cache)
        assert result.extras["cache"] == {"hit": True, "hits": 1, "misses": 1}

    def test_auto_resolution_shares_entries_with_explicit_name(self):
        cache = ResultCache()
        graph = _grid()
        auto = solve(graph, cache=cache)  # auto resolves to 'exact'
        named = solve(graph, solver=auto.solver, cache=cache)
        assert named.extras["cache"]["hit"] is True

    def test_structurally_equal_graph_hits(self):
        cache = ResultCache()
        graph = _grid()
        rebuilt = WeightedGraph(reversed(list(graph.edges())))
        first = solve(graph, cache=cache)
        second = solve(rebuilt, cache=cache)
        assert second.extras["cache"]["hit"] is True
        assert second.value == first.value

    def test_different_seed_misses(self):
        cache = ResultCache()
        graph = _grid()
        solve(graph, solver="karger", seed=1, cache=cache)
        result = solve(graph, solver="karger", seed=2, cache=cache)
        assert result.extras["cache"]["hit"] is False

    def test_batch_second_pass_all_hits_every_backend(self):
        cache = ResultCache()
        graphs = [build_family("cycle", 8, seed=s) for s in range(4)]
        first = solve_batch(graphs, cache=cache)
        assert all(r.extras["cache"]["hit"] is False for r in first)
        for backend in ("serial", "thread", "process"):
            again = solve_batch(graphs, backend=backend, cache=cache)
            assert all(r.extras["cache"]["hit"] is True for r in again)
            assert [r.value for r in again] == [r.value for r in first]
        for graph, result in zip(graphs, again):
            assert result.matches(graph)

    def test_congest_results_cached_in_memory(self):
        cache = ResultCache()
        graph = build_family("cycle", 10)
        first = solve(graph, solver="exact", mode="congest", cache=cache)
        second = solve(graph, solver="exact", mode="congest", cache=cache)
        assert second.extras["cache"]["hit"] is True
        assert second.metrics is not None
        assert second.metrics.total_rounds == first.metrics.total_rounds


class TestPersistence:
    def test_disk_round_trip_across_cache_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        graph = _grid()
        warm = ResultCache(path=path)
        first = solve(graph, solver="stoer_wagner", cache=warm)
        assert path.exists()

        cold = ResultCache(path=path)
        second = solve(graph, solver="stoer_wagner", cache=cold)
        assert second.extras["cache"]["hit"] is True
        assert second.value == first.value
        assert second.side == first.side
        assert second.matches(graph)

    def test_congest_metrics_never_persisted(self, tmp_path):
        path = tmp_path / "cache.json"
        graph = build_family("cycle", 8)
        warm = ResultCache(path=path)
        solve(graph, solver="exact", mode="congest", cache=warm)
        cold = ResultCache(path=path)
        result = solve(graph, solver="exact", mode="congest", cache=cold)
        assert result.extras["cache"]["hit"] is False  # memory tier only

    def test_put_flush_false_defers_disk_write(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        key = CacheKey.for_solve(_grid(), "fake")
        cache.put(key, CutResult(value=1.0, side=frozenset({0})), flush=False)
        assert not path.exists()
        cache.flush()
        assert json.loads(path.read_text(encoding="utf-8"))

    def test_batch_persists_every_entry_with_one_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        graphs = [build_family("cycle", 8, seed=s) for s in range(4)]
        solve_batch(graphs, "stoer_wagner", cache=cache)
        assert cache.stats()["disk_entries"] == 4
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["schema"] == CACHE_SCHEMA_VERSION
        assert len(on_disk["entries"]) == 4
        # Atomic rename leaves no temp residue next to the cache file
        # (the persistent .lock sibling is expected).
        assert {p.name for p in tmp_path.iterdir()} <= {
            "cache.json",
            "cache.json.lock",
        }

    def test_concurrent_writers_merge_instead_of_erasing(self, tmp_path):
        # Two caches open the same (empty) file, then flush in turn; the
        # later writer must adopt — not erase — the earlier one's entry.
        path = tmp_path / "cache.json"
        first = ResultCache(path=path)
        second = ResultCache(path=path)
        key_a = CacheKey.for_solve(_grid(), "fake", seed=1)
        key_b = CacheKey.for_solve(_grid(), "fake", seed=2)
        first.put(key_a, CutResult(value=1.0, side=frozenset({0})))
        second.put(key_b, CutResult(value=2.0, side=frozenset({1})))
        merged = ResultCache(path=path)
        assert merged.get(key_a) is not None
        assert merged.get(key_b) is not None

    def test_interleaved_concurrent_flushes_lose_nothing(self, tmp_path):
        # flock is held per open file description, so two cache objects
        # flushing from separate threads exercise the same serialisation
        # that protects separate processes.
        from concurrent.futures import ThreadPoolExecutor

        path = tmp_path / "cache.json"
        writers = [ResultCache(path=path) for _ in range(4)]
        grid = _grid()

        def spam(writer_index):
            writer = writers[writer_index]
            for i in range(10):
                key = CacheKey.for_solve(
                    grid, "fake", seed=writer_index * 100 + i
                )
                writer.put(key, CutResult(value=1.0, side=frozenset({0})))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(spam, range(4)))
        merged = json.loads(path.read_text(encoding="utf-8"))
        assert len(merged["entries"]) == 40  # every writer's entries survived

    def test_clear_truncates_the_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.put(
            CacheKey.for_solve(_grid(), "fake"),
            CutResult(value=1.0, side=frozenset({0})),
        )
        cache.clear()
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == {"schema": CACHE_SCHEMA_VERSION, "entries": {}}

    def test_failed_batch_still_caches_completed_results(self, tmp_path):
        registry = SolverRegistry()

        @registry.register("flaky", kind="exact", guarantee="exact")
        def _flaky(graph, **kw):
            if graph.number_of_nodes == 4:
                raise AlgorithmError("boom")
            node = graph.nodes[0]
            return CutResult(
                value=graph.weighted_degree(node), side=frozenset({node})
            )

        graphs = [
            build_family("cycle", 6),
            build_family("complete", 4),  # the failing instance
            build_family("cycle", 8),
        ]
        cache = ResultCache(path=tmp_path / "cache.json")
        # Custom registries cannot ship to the process backend; pin one
        # that can run them so $REPRO_BACKEND never redirects this test.
        with pytest.raises(AlgorithmError, match=r"graph #1.*boom"):
            solve_batch(
                graphs, "flaky", registry=registry, cache=cache,
                backend="serial",
            )
        # The two completed results were cached (memory and disk) anyway.
        assert cache.stats()["memory_entries"] == 2
        assert cache.stats()["disk_entries"] == 2
        # Retrying the full batch recomputes only the failing graph.
        with pytest.raises(AlgorithmError, match=r"graph #1"):
            solve_batch(
                graphs, "flaky", registry=registry, cache=cache,
                backend="thread",
            )
        assert cache.hits == 2

    def test_corrupt_cache_file_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json", encoding="utf-8")
        cache = ResultCache(path=path)
        graph = _grid()
        result = solve(graph, solver="stoer_wagner", cache=cache)
        assert result.extras["cache"]["hit"] is False
        # And the file is healed (valid JSON with the entry) on the store.
        assert json.loads(path.read_text(encoding="utf-8"))

    def test_tuple_extras_round_trip_exactly(self, tmp_path):
        # The paper solvers report tuple extras (e.g. per_tree_values);
        # the tagged encoding must restore them as tuples, not lists.
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        key = CacheKey.for_solve(_grid(), "fake")
        tupled = CutResult(
            value=1.0,
            side=frozenset({0}),
            extras={"pair": (1, 2), "nested": {"deep": (3.0, (4, 5))}},
        )
        cache.put(key, tupled)
        cold = ResultCache(path=path)
        restored = cold.get(key)
        assert restored is not None
        assert restored.extras == tupled.extras
        assert restored.extras["pair"] == (1, 2)
        assert restored.extras["nested"]["deep"][1] == (4, 5)

    def test_exact_solver_result_survives_disk_tier(self, tmp_path):
        # Regression: 'exact' carries per_tree_values (a tuple) in
        # extras; the disk tier must still serve it across instances.
        path = tmp_path / "cache.json"
        graph = _grid()
        warm = ResultCache(path=path)
        first = solve(graph, solver="exact", cache=warm)
        assert isinstance(first.extras["per_tree_values"], tuple)
        cold = ResultCache(path=path)
        second = solve(graph, solver="exact", cache=cold)
        assert second.extras["cache"]["hit"] is True
        assert second.value == first.value
        assert second.side == first.side
        assert (
            second.extras["per_tree_values"] == first.extras["per_tree_values"]
        )
        assert second.matches(graph)

    def test_unfaithful_extras_stay_memory_only(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        for extras in (
            {"mapping": {1: "non-string key"}},
            {"clash": {"__tuple__": [1]}},  # reserved tag key
        ):
            key = CacheKey.for_solve(_grid(), "fake", options=extras)
            result = CutResult(value=1.0, side=frozenset({0}), extras=extras)
            cache.put(key, result)
            assert cache.get(key) is not None  # memory tier serves it
            cold = ResultCache(path=path)
            assert cold.get(key) is None  # JSON would mangle it
