"""Incremental GraphIndex + content-hash maintenance under mutation.

The contract under test: after every op absorbed by
:class:`IncrementalIndexer`, ``graph.index()`` and
``graph.content_hash()`` are **bit-identical** to a from-scratch
rebuild of the mutated graph — and after undoing a whole op sequence
they are bit-identical to the *original* graph's (same CSR layout,
same digest), because undo restores adjacency insertion order exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic import (
    AddEdge,
    AddNode,
    DigestState,
    IncrementalIndexer,
    MutationLog,
    RemoveEdge,
    RemoveNode,
    Reweight,
    index_equal,
)
from repro.graphs import GraphIndex, WeightedGraph, build_family

DEFAULT_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def base_graph() -> WeightedGraph:
    graph = build_family("grid", 16, seed=0)
    graph.add_edge(0, 15, 2.5)  # a non-grid chord
    return graph


def assert_matches_rebuild(graph: WeightedGraph) -> None:
    """The adopted caches must equal a cold rebuild of the same graph."""
    assert index_equal(graph.index(), GraphIndex(graph))
    assert graph.content_hash() == graph.copy().content_hash()


SINGLE_OPS = [
    Reweight(0, 1, 7.5),
    Reweight(0, 1, 1.0),            # noop
    AddEdge(0, 5, 2.0),             # fresh edge, existing endpoints
    AddEdge(0, 1, 0.5),             # merge
    AddEdge(3, 99, 1.5),            # fresh endpoint
    AddEdge("p", "q", 3.0),         # two fresh endpoints
    RemoveEdge(5, 6),
    AddNode(77),
    RemoveNode(10),
    RemoveNode(15),                 # last-inserted node (pop-last path)
]


class TestSingleOpEquivalence:
    @pytest.mark.parametrize(
        "op", SINGLE_OPS, ids=lambda op: op.to_text().replace(" ", "_")
    )
    @pytest.mark.parametrize("budget", [None, 0], ids=["patch", "rebuild"])
    def test_apply_then_undo(self, op, budget):
        graph = base_graph()
        log = MutationLog(graph)
        indexer = IncrementalIndexer(graph, patch_budget=budget)
        # Snapshot with a *fresh* build: patches mutate the cached
        # GraphIndex object in place, so graph.index() aliases the live one.
        original_index = GraphIndex(graph)
        original_hash = graph.content_hash()

        indexer.apply(log.apply(op))
        assert_matches_rebuild(graph)

        indexer.unapply(log.undo())
        assert_matches_rebuild(graph)
        assert index_equal(graph.index(), original_index)
        assert graph.content_hash() == original_hash

    def test_zero_budget_forces_rebuild_verb(self):
        graph = base_graph()
        log = MutationLog(graph)
        indexer = IncrementalIndexer(graph, patch_budget=0)
        assert indexer.apply(log.apply(AddEdge(0, 5, 2.0))) == "rebuilt"
        # Weight overwrites never splice, so they patch under any budget.
        assert indexer.apply(log.apply(Reweight(0, 1, 9.0))) == "patched"
        assert indexer.stats()["rebuilt"] == 1

    def test_noop_verb(self):
        graph = base_graph()
        log = MutationLog(graph)
        indexer = IncrementalIndexer(graph)
        assert indexer.apply(log.apply(Reweight(0, 1, 1.0))) == "noop"
        assert indexer.stats() == {"patched": 0, "rebuilt": 0, "noops": 1}


class TestSequenceRoundTrip:
    def test_mixed_sequence_full_undo_is_bit_identical(self):
        graph = base_graph()
        log = MutationLog(graph)
        indexer = IncrementalIndexer(graph, validate=True)
        original_index = GraphIndex(graph)
        original_hash = graph.content_hash()
        for op in SINGLE_OPS:
            indexer.apply(log.apply(op))
        assert graph.content_hash() != original_hash
        while len(log):
            indexer.unapply(log.undo())
        assert index_equal(graph.index(), original_index)
        assert graph.content_hash() == original_hash

    def test_adopted_caches_avoid_rebuilds(self):
        """After a patched op, graph.index() must not rebuild."""
        graph = base_graph()
        log = MutationLog(graph)
        indexer = IncrementalIndexer(graph)
        indexer.apply(log.apply(Reweight(0, 1, 9.0)))
        first = graph.index()
        assert graph.index() is first  # cache adopted at current version


class TestDigestState:
    def test_matches_cold_hash_through_mutations(self):
        graph = base_graph()
        state = DigestState(graph)
        assert state.digest() == graph.content_hash()
        log = MutationLog(graph)
        for op in SINGLE_OPS:
            state.apply(log.apply(op))
            assert state.digest() == graph.copy().content_hash()
        while len(log):
            state.unapply(log.undo())
            assert state.digest() == graph.copy().content_hash()


def draw_op(data, graph: WeightedGraph):
    """Draw one valid op against the graph's current state."""
    nodes = graph.nodes
    edges = [(u, v) for u, v, _w in graph.edges()]
    choices = ["add_edge", "add_node"]
    if edges:
        choices += ["reweight", "remove_edge"]
    if len(nodes) > 1:
        choices.append("remove_node")
    kind = data.draw(st.sampled_from(choices))
    if kind == "add_node":
        return AddNode(data.draw(st.integers(0, 40)))
    if kind == "remove_node":
        return RemoveNode(data.draw(st.sampled_from(nodes)))
    if kind in ("reweight", "remove_edge"):
        u, v = data.draw(st.sampled_from(edges))
        if kind == "remove_edge":
            return RemoveEdge(u, v)
        return Reweight(u, v, float(data.draw(st.integers(1, 6))))
    u = data.draw(st.integers(0, 40))
    v = data.draw(st.integers(0, 40))
    if u == v or graph.has_edge(u, v):
        return AddNode(u)  # degrade to something always valid
    return AddEdge(u, v, float(data.draw(st.integers(1, 6))))


class TestPropertyBased:
    @DEFAULT_SETTINGS
    @given(
        st.data(),
        st.integers(min_value=1, max_value=25),
        st.sampled_from([None, 0, 8]),
    )
    def test_random_mutation_undo_round_trip(self, data, steps, budget):
        graph = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 3.0)])
        log = MutationLog(graph)
        # validate=True cross-checks every op against a rebuild inline.
        indexer = IncrementalIndexer(
            graph, patch_budget=budget, validate=True
        )
        original_index = GraphIndex(graph)
        original_hash = graph.content_hash()
        applied = 0
        for _ in range(steps):
            if applied and data.draw(st.booleans(), label="undo?"):
                indexer.unapply(log.undo())
                applied -= 1
            else:
                indexer.apply(log.apply(draw_op(data, graph)))
                applied += 1
        while applied:
            indexer.unapply(log.undo())
            applied -= 1
        assert index_equal(graph.index(), original_index)
        assert graph.content_hash() == original_hash
