"""Unit tests for the CONGEST engine: delivery, pipelining, bandwidth."""

import pytest

from repro.errors import (
    BandwidthExceededError,
    CongestError,
    RoundLimitExceededError,
)
from repro.congest import (
    CongestNetwork,
    Message,
    NodeProgram,
    check_message_size,
    payload_words,
    single_message,
)
from repro.graphs import WeightedGraph, path_graph, star_graph


class _Silent(NodeProgram):
    pass


class _PingOnce(NodeProgram):
    """Node 0 sends one ping to every neighbour; receivers record it."""

    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.broadcast("ping", 42)

    def on_round(self, ctx, inbox):
        got = single_message(inbox, "ping")
        if got is not None:
            ctx.output("ping", got[1].payload[0])


class _Burst(NodeProgram):
    """Node 0 enqueues `count` messages to node 1 at start (pipelining)."""

    def __init__(self, count):
        self.count = count

    def on_start(self, ctx):
        if ctx.node == 0:
            for i in range(self.count):
                ctx.send(1, "item", i)

    def on_round(self, ctx, inbox):
        if ctx.node == 1:
            arrived = ctx.memory.setdefault("arrived", [])
            for _src, msg in inbox:
                arrived.append((ctx.round, msg.payload[0]))


class TestMessageSizing:
    def test_payload_words_scalars(self):
        assert payload_words(5) == 1
        assert payload_words(2.5) == 1
        assert payload_words("tag") == 1
        assert payload_words(None) == 0

    def test_payload_words_nested(self):
        assert payload_words((1, 2, (3, 4))) == 4

    def test_payload_words_rejects_dict(self):
        with pytest.raises(BandwidthExceededError):
            payload_words({"a": 1})

    def test_check_message_size(self):
        check_message_size(Message("k", (1, 2)), max_words=2)
        with pytest.raises(BandwidthExceededError):
            check_message_size(Message("k", (1, 2, 3)), max_words=2)

    def test_oversize_message_raises_in_strict_mode(self):
        class Oversend(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "big", *range(50))

        net = CongestNetwork(path_graph(2))
        with pytest.raises(BandwidthExceededError):
            net.run_phase("big", lambda u: Oversend())

    def test_oversize_allowed_when_not_strict(self):
        class Oversend(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "big", *range(50))

        net = CongestNetwork(path_graph(2), strict=False)
        result = net.run_phase("big", lambda u: Oversend())
        assert result.metrics.max_message_words == 50


class TestDelivery:
    def test_empty_phase_costs_zero_rounds(self):
        net = CongestNetwork(path_graph(3))
        result = net.run_phase("idle", lambda u: _Silent())
        assert result.metrics.rounds == 0
        assert result.metrics.messages == 0

    def test_ping_delivered_next_round(self):
        net = CongestNetwork(star_graph(5))
        result = net.run_phase("ping", lambda u: _PingOnce())
        assert result.metrics.rounds == 1
        pings = result.output_map("ping")
        assert pings == {u: 42 for u in range(1, 5)}

    def test_send_to_non_neighbour_raises(self):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(2, "x")

        net = CongestNetwork(path_graph(3))
        with pytest.raises(KeyError):
            net.run_phase("bad", lambda u: Bad())

    def test_pipelining_one_message_per_round(self):
        net = CongestNetwork(path_graph(2))
        result = net.run_phase("burst", lambda u: _Burst(5))
        # 5 messages over one edge need exactly 5 rounds.
        assert result.metrics.rounds == 5
        arrived = net.memory[1]["arrived"]
        assert arrived == [(r + 1, r) for r in range(5)]

    def test_backlog_metric_tracks_queue(self):
        net = CongestNetwork(path_graph(2))
        result = net.run_phase("burst", lambda u: _Burst(7))
        assert result.metrics.max_edge_backlog == 7

    def test_round_limit_enforced(self):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "tick")

            def on_round(self, ctx, inbox):
                for src, _msg in inbox:
                    ctx.send(src, "tick")

        net = CongestNetwork(path_graph(2))
        with pytest.raises(RoundLimitExceededError):
            net.run_phase("forever", lambda u: Forever(), max_rounds=25)

    def test_send_from_on_stop_rejected(self):
        class SneakySend(NodeProgram):
            def on_stop(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "late")

        net = CongestNetwork(path_graph(2))
        with pytest.raises(CongestError):
            net.run_phase("sneaky", lambda u: SneakySend())


class TestTicksAndContext:
    def test_request_tick_schedules_without_messages(self):
        class Counter(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.memory["ticks"] = 0
                    ctx.request_tick()

            def on_round(self, ctx, inbox):
                ctx.memory["ticks"] += 1
                if ctx.memory["ticks"] < 3:
                    ctx.request_tick()

        net = CongestNetwork(path_graph(2))
        result = net.run_phase("ticks", lambda u: Counter())
        assert net.memory[0]["ticks"] == 3
        assert result.metrics.rounds == 3

    def test_context_exposes_initial_knowledge(self):
        seen = {}

        class Probe(NodeProgram):
            def on_start(self, ctx):
                seen[ctx.node] = (
                    sorted(ctx.neighbors),
                    ctx.weighted_degree(),
                    ctx.network_size,
                )

        g = WeightedGraph([(0, 1, 2.0), (1, 2, 3.0)])
        net = CongestNetwork(g)
        net.run_phase("probe", lambda u: Probe())
        assert seen[1] == ([0, 2], 5.0, 3)
        assert seen[0] == ([1], 2.0, 3)

    def test_memory_persists_across_phases(self):
        class WriteOnce(NodeProgram):
            def on_start(self, ctx):
                ctx.memory["x"] = ctx.node * 10

        class ReadBack(NodeProgram):
            def on_start(self, ctx):
                ctx.output("x", ctx.memory["x"])

        net = CongestNetwork(path_graph(3))
        net.run_phase("w", lambda u: WriteOnce())
        result = net.run_phase("r", lambda u: ReadBack())
        assert result.output_map("x") == {0: 0, 1: 10, 2: 20}

    def test_reset_memory(self):
        net = CongestNetwork(path_graph(2))
        net.memory[0]["x"] = 1
        net.reset_memory()
        assert net.memory[0] == {}


class TestMetricsAccumulation:
    def test_run_metrics_totals(self):
        net = CongestNetwork(star_graph(4))
        net.run_phase("p1", lambda u: _PingOnce())
        net.run_phase("p2", lambda u: _PingOnce())
        assert net.metrics.measured_rounds == 2
        assert net.metrics.total_messages == 6
        assert len(net.metrics.phases) == 2

    def test_charged_rounds_tracked_separately(self):
        net = CongestNetwork(path_graph(2))
        net.run_phase("p", lambda u: _PingOnce())
        net.charge(100, "substituted subroutine")
        assert net.metrics.charged_rounds == 100
        assert net.metrics.total_rounds == net.metrics.measured_rounds + 100
        assert "substituted subroutine" in net.metrics.charged_notes[0]

    def test_negative_charge_rejected(self):
        net = CongestNetwork(path_graph(2))
        with pytest.raises(ValueError):
            net.charge(-1, "bad")

    def test_metrics_summary_keys(self):
        net = CongestNetwork(path_graph(2))
        net.run_phase("p", lambda u: _PingOnce())
        summary = net.metrics.summary()
        assert summary["measured_rounds"] == 1
        assert summary["messages"] == 1
        assert summary["max_message_words"] == 1

    def test_single_message_helper_rejects_duplicates(self):
        msgs = [(0, Message("a", (1,))), (0, Message("a", (2,)))]
        with pytest.raises(ValueError):
            single_message(msgs, "a")
