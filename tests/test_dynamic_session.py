"""DynamicSession: certificate-gated solves must match cold solves.

The acceptance property: whatever mix of certificate skips, cache hits
and real solver runs a session uses, ``solve()`` returns the same
value and the same partition (up to side/complement) as a cold
``Engine.solve`` of the current graph with the same knobs.
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.dynamic import (
    AddEdge,
    AddNode,
    CERTIFICATE_KINDS,
    RemoveEdge,
    Reweight,
    certify_effect,
    apply_op,
)
from repro.errors import DisconnectedGraphError
from repro.exec import ResultCache
from repro.graphs import WeightedGraph, planted_cut_graph


def planted():
    """Two blobs joined by 3 unit edges — λ = 3, unique partition."""
    return planted_cut_graph((8, 8), 3, seed=7)


def same_partition(a, b, graph):
    return a == b or a == frozenset(graph.nodes) - b


def cold_solve(session):
    """A from-scratch solve of the session's current graph."""
    return Engine(solver=session.solver, seed=session.seed).solve(
        session.graph.copy(), epsilon=session.epsilon, mode=session.mode
    )


def crossing_edge(graph, side):
    for u, v, _w in graph.edges():
        if (u in side) != (v in side):
            return u, v
    raise AssertionError("no crossing edge")


def internal_pair(graph, side):
    """An existing edge with both endpoints inside the witness side."""
    for u, v, _w in graph.edges():
        if u in side and v in side:
            return u, v
    raise AssertionError("no internal edge")


@pytest.fixture
def session():
    engine = Engine(solver="stoer_wagner", seed=0, cache=ResultCache())
    return engine.dynamic_session(planted())


class TestCertifyEffect:
    def test_kinds_are_the_documented_ones(self):
        assert CERTIFICATE_KINDS == (
            "no-change", "non-crossing-increase", "crossing-decrease",
        )

    def test_table(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, 1.0)])
        side = frozenset({3})
        cases = [
            (Reweight(0, 1, 2.0), "exact", "no-change"),          # noop
            (Reweight(0, 1, 5.0), "exact", "non-crossing-increase"),
            (AddEdge(0, 1, 1.0), "exact", "non-crossing-increase"),  # merge
            (Reweight(2, 3, 0.5), "exact", "crossing-decrease"),
            (RemoveEdge(2, 3), "exact", "crossing-decrease"),
            (Reweight(2, 3, 0.5), "(1+eps)", None),  # not exact
            (Reweight(2, 3, 9.0), "exact", None),    # crossing increase
            (Reweight(0, 1, 1.0), "exact", None),    # non-crossing decrease
            (AddEdge(0, 9, 1.0), "exact", None),     # fresh endpoint
            (AddNode(9), "exact", None),             # node-set change
        ]
        for op, guarantee, expected in cases:
            probe = g.copy()
            effect = apply_op(probe, op)
            assert certify_effect(effect, side, guarantee) == expected, op


class TestCertifiedSolves:
    def test_non_crossing_increase_skips_solver(self, session):
        base = session.solve()
        u, v = internal_pair(session.graph, base.side)
        session.apply(AddEdge(u, v, 5.0))
        result = session.solve()
        assert session.counters["solver_runs"] == 1
        assert session.counters["certified"] == 1
        cert = result.extras["certificate"]
        assert cert["kinds"] == ["non-crossing-increase"]
        assert cert["base_value"] == base.value
        assert cert["source"] == "witness-monotonicity"
        fresh = cold_solve(session)
        assert result.value == fresh.value
        assert same_partition(result.side, fresh.side, session.graph)
        assert result.solver == fresh.solver
        assert result.seed == fresh.seed
        assert result.matches(session.graph)

    def test_crossing_decrease_skips_solver_for_exact(self, session):
        base = session.solve()
        u, v = crossing_edge(session.graph, base.side)
        session.apply(Reweight(u, v, 0.5))
        result = session.solve()
        assert result.extras["certificate"]["kinds"] == ["crossing-decrease"]
        assert result.value == base.value - 0.5
        fresh = cold_solve(session)
        assert result.value == fresh.value
        assert same_partition(result.side, fresh.side, session.graph)

    def test_noop_certifies_as_no_change_and_hits_cache(self, session):
        base = session.solve()
        weight = session.graph.weight(*internal_pair(session.graph, base.side))
        u, v = internal_pair(session.graph, base.side)
        session.apply(Reweight(u, v, weight))
        result = session.solve()
        cert = result.extras["certificate"]
        assert cert["kinds"] == ["no-change"]
        # Identical graph state => same cache key as the base solve.
        assert cert["cache"] == "revisited-state"
        assert result.extras["cache"]["hit"] is True
        assert result.value == base.value
        assert result.side == base.side

    def test_multi_op_certificate_lists_every_kind(self, session):
        base = session.solve()
        u, v = internal_pair(session.graph, base.side)
        a, b = crossing_edge(session.graph, base.side)
        session.apply(AddEdge(u, v, 2.0))
        session.apply(Reweight(a, b, 0.25))
        result = session.solve()
        cert = result.extras["certificate"]
        assert cert["kinds"] == ["non-crossing-increase", "crossing-decrease"]
        assert cert["ops"] == 2
        fresh = cold_solve(session)
        assert result.value == fresh.value


class TestSolverFallbacks:
    def test_crossing_increase_runs_solver(self, session):
        base = session.solve()
        u, v = crossing_edge(session.graph, base.side)
        session.apply(Reweight(u, v, 50.0))
        result = session.solve()
        assert "certificate" not in result.extras
        assert session.counters["solver_runs"] == 2
        fresh = cold_solve(session)
        assert result.value == fresh.value

    def test_node_addition_runs_solver(self, session):
        base = session.solve()
        some = next(iter(base.side))
        session.apply(AddEdge(some, "fresh", 0.5))
        result = session.solve()
        assert "certificate" not in result.extras
        # The new leaf's pendant cut (0.5) is now the minimum — exactly
        # why edges with created endpoints must never certify.
        assert result.value == 0.5
        assert session.counters["solver_runs"] == 2

    def test_approx_guarantee_blocks_crossing_decrease(self):
        # matula: approximate guarantee, no integer-weight requirement,
        # so the fractional reweight below stays solvable.
        engine = Engine(solver="matula", seed=0, cache=ResultCache())
        session = engine.dynamic_session(planted(), epsilon=0.5)
        base = session.solve()
        assert base.guarantee != "exact"
        u, v = crossing_edge(session.graph, base.side)
        session.apply(Reweight(u, v, 0.5))
        result = session.solve()
        assert "certificate" not in result.extras
        assert session.counters["solver_runs"] == 2
        # ... but a non-crossing increase still certifies for approx.
        a, b = internal_pair(session.graph, result.side)
        session.apply(AddEdge(a, b, 3.0))
        certified = session.solve()
        assert certified.extras["certificate"]["kinds"] == [
            "non-crossing-increase"
        ]

    def test_disconnection_surfaces_the_usual_error(self):
        engine = Engine(solver="stoer_wagner", cache=ResultCache())
        session = engine.dynamic_session(
            WeightedGraph([(0, 1, 1.0), (1, 2, 1.0)])
        )
        session.solve()
        session.apply(RemoveEdge(0, 1))
        with pytest.raises(DisconnectedGraphError):
            session.solve()


class TestUndoAndCache:
    def test_undo_across_solve_point_hits_engine_cache(self, session):
        base = session.solve()
        u, v = internal_pair(session.graph, base.side)
        session.apply(AddEdge(u, v, 5.0))
        session.solve()
        session.undo()  # back to the base graph state
        result = session.solve()
        assert result.extras["cache"]["hit"] is True
        assert session.counters["cache_hits"] >= 1
        assert result.value == base.value
        assert result.side == base.side
        assert result.solver == base.solver
        assert result.seed == base.seed

    def test_undo_before_solve_keeps_witness(self, session):
        base = session.solve()
        u, v = internal_pair(session.graph, base.side)
        session.apply(AddEdge(u, v, 5.0))
        assert session.pending_ops == 1
        session.undo()
        assert session.pending_ops == 0
        assert session.last_result is base

    def test_certified_value_recomputed_not_drifted(self, session):
        """Certified values come from cut_value on the live graph."""
        base = session.solve()
        u, v = crossing_edge(session.graph, base.side)
        for weight in (0.9, 0.8, 0.7):
            session.apply(Reweight(u, v, weight))
            result = session.solve()
            assert result.value == session.graph.cut_value(base.side)


class TestSessionPlumbing:
    def test_knobs_inherit_from_engine(self):
        engine = Engine(solver="stoer_wagner", seed=9, mode="reference")
        session = engine.dynamic_session(planted())
        assert session.solver == "stoer_wagner"
        assert session.seed == 9
        override = engine.dynamic_session(planted(), seed=3)
        assert override.seed == 3

    def test_copy_semantics(self):
        engine = Engine(solver="stoer_wagner")
        mine = planted()
        session = engine.dynamic_session(mine)
        session.apply(AddNode("extra"))
        assert "extra" not in mine
        shared = engine.dynamic_session(mine, copy=False)
        shared.apply(AddNode("extra"))
        assert "extra" in mine

    def test_validate_mode_cross_checks_certificates(self, session):
        session.validate = True
        base = session.solve()
        u, v = internal_pair(session.graph, base.side)
        session.apply(AddEdge(u, v, 2.0))
        result = session.solve()  # would raise on a bad certificate
        assert result.extras["certificate"]["kinds"]

    def test_stats_shape(self, session):
        session.solve()
        session.apply(AddNode("s"))
        session.undo()
        stats = session.stats()
        assert stats["ops"] == 1
        assert stats["undos"] == 1
        assert stats["solves"] == 1
        assert set(stats["index"]) == {"patched", "rebuilt", "noops"}
        assert stats["graph"]["hash"] == session.graph.content_hash()
        assert stats["graph"]["n"] == session.graph.number_of_nodes
