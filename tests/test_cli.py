"""CLI tests (direct main(argv) invocation, no subprocesses)."""

import pytest

from repro.cli import build_parser, main
from repro.graphs import WeightedGraph, write_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exact", "--family", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["exact"])
        assert args.family == "gnp"
        assert args.mode == "reference"


class TestCommands:
    def test_exact_reference(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "minimum cut value : 2" in out

    def test_exact_congest_reports_rounds(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "10", "--mode", "congest"]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "charged" in out

    def test_exact_pinned_trees(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "8", "--trees", "3"]) == 0
        assert "packing trees used: 3" in capsys.readouterr().out

    def test_approx(self, capsys):
        assert main(["approx", "--family", "complete", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "(1+eps) cut value : 23" in out

    def test_rounds_with_fit(self, capsys):
        assert main(["rounds", "--family", "cycle", "--sizes", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "fit: rounds ~" in out
        assert "measured" in out

    def test_compare(self, capsys):
        assert main(["compare", "--family", "cycle", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "Stoer-Wagner (ground truth)" in out
        assert "this paper, exact" in out

    def test_file_input(self, tmp_path, capsys):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        path = tmp_path / "triangle.edges"
        write_edge_list(g, path)
        assert main(["exact", "--file", str(path)]) == 0
        assert "minimum cut value : 2" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "--family", "complete", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "certified interval" in out
        assert "edge-disjoint trees: 4" in out

    def test_disconnected_file_fails_cleanly(self, tmp_path, capsys):
        g = WeightedGraph([(0, 1), (2, 3)])
        path = tmp_path / "disc.edges"
        write_edge_list(g, path)
        assert main(["exact", "--file", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
