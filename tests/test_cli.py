"""CLI tests (direct main(argv) invocation, no subprocesses)."""

import pytest

from repro.cli import build_parser, main
from repro.graphs import WeightedGraph, write_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exact", "--family", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["exact"])
        assert args.family == "gnp"
        assert args.mode == "reference"


class TestCommands:
    def test_exact_reference(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "minimum cut value : 2" in out

    def test_exact_congest_reports_rounds(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "10", "--mode", "congest"]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "charged" in out

    def test_exact_pinned_trees(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "8", "--trees", "3"]) == 0
        assert "packing trees used: 3" in capsys.readouterr().out

    def test_approx(self, capsys):
        assert main(["approx", "--family", "complete", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "(1+eps) cut value : 23" in out

    def test_rounds_with_fit(self, capsys):
        assert main(["rounds", "--family", "cycle", "--sizes", "16,32"]) == 0
        out = capsys.readouterr().out
        assert "fit: rounds ~" in out
        assert "measured" in out

    def test_compare(self, capsys):
        assert main(["compare", "--family", "cycle", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "Stoer-Wagner (ground truth)" in out
        assert "this paper, exact" in out

    def test_file_input(self, tmp_path, capsys):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        path = tmp_path / "triangle.edges"
        write_edge_list(g, path)
        assert main(["exact", "--file", str(path)]) == 0
        assert "minimum cut value : 2" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "--family", "complete", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "certified interval" in out
        assert "edge-disjoint trees: 4" in out

    def test_disconnected_file_fails_cleanly(self, tmp_path, capsys):
        g = WeightedGraph([(0, 1), (2, 3)])
        path = tmp_path / "disc.edges"
        write_edge_list(g, path)
        assert main(["exact", "--file", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestRegistryDrivenCommands:
    def test_solvers_lists_registry(self, capsys):
        from repro.api import default_registry

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in default_registry().names():
            assert name in out

    def test_exact_with_alternate_solver(self, capsys):
        assert main(
            ["exact", "--family", "cycle", "--n", "12", "--solver", "stoer_wagner"]
        ) == 0
        out = capsys.readouterr().out
        assert "minimum cut value : 2" in out
        assert "packing trees" not in out  # no tree extras for Stoer-Wagner

    def test_approx_with_alternate_solver(self, capsys):
        assert main(
            ["approx", "--family", "cycle", "--n", "12", "--solver", "matula"]
        ) == 0
        assert "(2+eps) cut value : 2" in capsys.readouterr().out

    def test_approx_congest_mode_forwarded(self, capsys):
        assert main(
            ["approx", "--family", "cycle", "--n", "10", "--mode", "congest"]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "charged" in out

    def test_compare_solver_filter(self, capsys):
        assert main(
            [
                "compare", "--family", "cycle", "--n", "10",
                "--solver", "exact", "--solver", "matula",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Stoer-Wagner (ground truth)" in out  # always included
        assert "this paper, exact" in out
        assert "Matula" in out
        assert "Karger" not in out

    def test_compare_explicitly_requested_heavy_solver_runs(self, capsys):
        assert main(
            ["compare", "--family", "cycle", "--n", "8",
             "--solver", "exact_congest_full"]
        ) == 0
        assert "this paper, fully distributed" in capsys.readouterr().out

    def test_compare_warns_about_inapplicable_requested_solver(self, capsys):
        assert main(
            ["compare", "--family", "gnp", "--n", "24", "--solver", "brute_force"]
        ) == 0
        captured = capsys.readouterr()
        assert "skipped (not applicable" in captured.err
        assert "brute_force" in captured.err

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exact", "--solver", "nope"])


class TestJsonOutput:
    def test_solvers_json(self, capsys):
        import json

        from repro.api import default_registry

        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {spec["name"] for spec in payload["solvers"]} == set(
            default_registry().names()
        )
        assert all("guarantee" in spec for spec in payload["solvers"])
        from repro.congest import ENGINE_CHOICES

        assert payload["congest_engine"] in ENGINE_CHOICES[1:]
        assert isinstance(payload["numpy_available"], bool)

    def test_cache_stats_json(self, tmp_path, capsys):
        import json

        cache_file = str(tmp_path / "cache.json")
        assert main(
            ["sweep", "--family", "cycle", "--n", "8", "--count", "2",
             "--cache-file", cache_file]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", cache_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["path"] == cache_file
        assert sum(payload["by_solver"].values()) == 2


class TestCacheStoreCli:
    """`repro cache` against segment-store directories (schema 3)."""

    def sweep_into(self, path, *, family="cycle", count=3):
        assert main(
            ["sweep", "--family", family, "--n", "8", "--count", str(count),
             "--solver", "stoer_wagner", "--cache-file", str(path)]
        ) == 0

    def test_merge_reports_counts(self, tmp_path, capsys):
        import json

        self.sweep_into(tmp_path / "a_store", family="cycle")
        self.sweep_into(tmp_path / "b_store", family="grid")
        newer = tmp_path / "future.json"
        newer.write_text(json.dumps({"schema": 99, "entries": {}}))
        capsys.readouterr()
        assert main(
            ["cache", "merge", "--out", str(tmp_path / "merged_store"),
             str(tmp_path / "a_store"), str(tmp_path / "a_store"),
             str(newer), str(tmp_path / "b_store")]
        ) == 0
        out = capsys.readouterr().out
        # First pass adds, the duplicate pass keeps ours, the newer
        # schema file is skipped with its reason — all reported.
        assert "a_store: added 3 entries, kept ours for 0" in out
        assert "a_store: added 0 entries, kept ours for 3" in out
        assert "future.json: skipped (" in out
        assert "schema 99" in out
        assert "6 entries (store schema 3" in out
        assert "1 input(s) skipped" in out

    def test_merge_fails_when_every_input_skipped(self, tmp_path, capsys):
        import json

        newer = tmp_path / "future.json"
        newer.write_text(json.dumps({"schema": 99, "entries": {}}))
        assert main(
            ["cache", "merge", "--out", str(tmp_path / "out.json"),
             str(newer)]
        ) == 2

    def test_stats_store_fields(self, tmp_path, capsys):
        import json

        self.sweep_into(tmp_path / "st")
        capsys.readouterr()
        assert main(["cache", "stats", str(tmp_path / "st"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 3
        assert payload["entries"] == 3
        store = payload["store"]
        assert store["segments"] == 1
        assert store["live_entries"] == 3
        assert store["dead_records"] == 0
        assert store["store_bytes"] > 0
        assert store["oldest_entry_age"] >= store["newest_entry_age"] >= 0

    def test_compact_gc_segments_flow(self, tmp_path, capsys):
        import json

        self.sweep_into(tmp_path / "st", count=4)
        capsys.readouterr()
        export = tmp_path / "warm.json"
        assert main(
            ["cache", "compact", str(tmp_path / "st"), "--max-entries", "2",
             "--export", str(export), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kept_entries"] == 2
        assert report["dropped_entries"] == 2
        assert report["segments_after"] == 1
        # The export is a schema-2 warm-start file with the survivors.
        warm = json.loads(export.read_text(encoding="utf-8"))
        assert warm["schema"] == 2
        assert len(warm["entries"]) == 2

        assert main(["cache", "segments", str(tmp_path / "st"), "--json"]) == 0
        segments = json.loads(capsys.readouterr().out)["segments"]
        assert len(segments) == 1
        assert segments[0]["sealed"] is True
        assert segments[0]["puts"] == 2

        assert main(["cache", "gc", str(tmp_path / "st")]) == 0
        assert "kept 2 entries" in capsys.readouterr().out

    def test_compact_policy_comes_from_config_flags_win(self, tmp_path,
                                                        capsys, monkeypatch):
        import json

        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        self.sweep_into(tmp_path / "st", count=4)
        config = tmp_path / "repro.toml"
        config.write_text("[cache]\nmax_entries = 3\n")
        capsys.readouterr()
        assert main(
            ["--config", str(config), "cache", "compact", str(tmp_path / "st"),
             "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["kept_entries"] == 3
        assert main(
            ["--config", str(config), "cache", "compact", str(tmp_path / "st"),
             "--max-entries", "1", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["kept_entries"] == 1

    def test_compact_env_beats_file(self, tmp_path, capsys, monkeypatch):
        import json

        self.sweep_into(tmp_path / "st", count=4)
        config = tmp_path / "repro.toml"
        config.write_text("[cache]\nmax_entries = 3\n")
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        capsys.readouterr()
        assert main(
            ["--config", str(config), "cache", "compact", str(tmp_path / "st"),
             "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["kept_entries"] == 2

    def test_store_tools_reject_non_store_directories(self, tmp_path):
        (tmp_path / "plain").mkdir()
        assert main(["cache", "compact", str(tmp_path / "plain")]) == 2
        assert main(["cache", "segments", str(tmp_path / "plain")]) == 2


class TestStreamMode:
    def write_ops(self, tmp_path, text):
        path = tmp_path / "ops.txt"
        path.write_text(text)
        return str(path)

    def test_stream_replay(self, tmp_path, capsys):
        ops = self.write_ops(tmp_path, "\n".join([
            "# warm the witness first",
            "solve",
            "add_edge 0 5 2.0",
            "solve",
            "undo",
            "solve",
        ]))
        assert main(
            ["sweep", "--stream", ops, "--family", "grid", "--n", "16",
             "--cache", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "mutations/sec" in out
        assert "certificate" in out       # table column
        assert "index maintenance" in out
        assert "undo add_edge" in out
        assert "1 op(s), 1 undo(s), 3 solve(s)" in out

    def test_stream_solve_every(self, tmp_path, capsys):
        ops = self.write_ops(tmp_path, "\n".join([
            "solve",
            "reweight 0 1 3.0",
            "add_edge 0 5 2.0",
        ]))
        assert main(
            ["sweep", "--stream", ops, "--family", "grid", "--n", "16",
             "--solve-every", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 op(s), 0 undo(s), 3 solve(s)" in out

    def test_stream_malformed_ops_file_fails_cleanly(self, tmp_path, capsys):
        ops = self.write_ops(tmp_path, "explode 1 2\n")
        assert main(
            ["sweep", "--stream", ops, "--family", "grid", "--n", "16"]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "line 1" in err
