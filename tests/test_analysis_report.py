"""Tests for the report aggregator."""

import pytest

from repro.analysis import build_report, write_report
from repro.analysis.report import EXPERIMENT_ORDER
from repro.errors import AlgorithmError


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "E1_one_respect_rounds.txt").write_text("E1 table\n", encoding="utf-8")
    (d / "T1_claims_table.txt").write_text("T1 table\n", encoding="utf-8")
    (d / "X9_custom.txt").write_text("custom table\n", encoding="utf-8")
    return d


class TestBuildReport:
    def test_known_experiments_in_order(self, results_dir):
        report = build_report(results_dir)
        e1 = report.index("## E1_one_respect_rounds")
        t1 = report.index("## T1_claims_table")
        assert e1 < t1
        assert "E1 table" in report
        assert "T1 table" in report

    def test_unknown_files_appended(self, results_dir):
        report = build_report(results_dir)
        assert "## X9_custom (unregistered)" in report
        assert report.index("X9_custom") > report.index("T1_claims_table")

    def test_missing_experiments_listed(self, results_dir):
        report = build_report(results_dir)
        assert "Pending" in report
        assert "E2_exact_rounds_vs_lambda" in report

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(AlgorithmError):
            build_report(tmp_path / "nope")

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "REPORT.md")
        assert out.exists()
        assert out.read_text(encoding="utf-8").startswith("# Reproduction report")

    def test_order_covers_all_benchmarks(self):
        # Keep the registry in sync with the benchmark files on disk.
        from pathlib import Path

        bench_dir = Path(__file__).parent.parent / "benchmarks"
        bench_ids = {
            p.stem.replace("test_bench_", "")
            for p in bench_dir.glob("test_bench_*.py")
        }
        registry_ids = {x.split("_")[0].lower() + "_" + "_".join(x.split("_")[1:]).lower() for x in EXPERIMENT_ORDER}
        prefixes = {x.split("_")[0].lower() for x in EXPERIMENT_ORDER}
        for bench in bench_ids:
            assert bench.split("_")[0] in prefixes, bench
