"""The ``remote`` backend: sharding, determinism, failover, fallbacks.

Real :class:`ThreadingHTTPServer` workers are spun up in-process (the
same harness the service tests use), so these tests exercise the full
HTTP path: `Engine.build_batch_tasks` → shard slices with frozen
seeds/solvers → worker-side `Engine.solve_tasks` → reassembly.
"""

import socket
import threading

import pytest

from repro.api import solve_all, solve_batch
from repro.api.registry import SolverRegistry
from repro.errors import AlgorithmError
from repro.exec.remote import REPRO_REMOTE_WORKERS_ENV, RemoteExecutor
from repro.graphs import build_family
from repro.service import ServiceConfig, create_server


def _identity(results):
    return [
        (r.solver, r.value, tuple(sorted(r.side, key=repr)), r.seed)
        for r in results
    ]


@pytest.fixture
def workers():
    """Two live service workers; yields (urls, servers)."""
    servers = [create_server(port=0) for _ in range(2)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield [server.url for server in servers], servers
    finally:
        for server in servers:
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass


def _graphs(count, family="gnp", n=12):
    return [build_family(family, n, seed=s) for s in range(count)]


class TestRemoteDeterminism:
    def test_batch_identical_to_serial(self, workers):
        urls, _ = workers
        graphs = _graphs(7)
        serial = solve_batch(graphs, "stoer_wagner")
        remote = solve_batch(
            graphs, "stoer_wagner", backend=RemoteExecutor(urls)
        )
        assert _identity(remote) == _identity(serial)
        for graph, result in zip(graphs, remote):
            assert result.matches(graph)

    def test_auto_and_randomized_solvers_identical_to_serial(self, workers):
        urls, _ = workers
        graphs = _graphs(5, family="grid", n=9)
        serial = solve_batch(graphs, "karger", seed=7, budget=16)
        remote = solve_batch(
            graphs, "karger", seed=7, budget=16, backend=RemoteExecutor(urls)
        )
        assert _identity(remote) == _identity(serial)
        auto_serial = solve_batch(graphs)
        auto_remote = solve_batch(graphs, backend=RemoteExecutor(urls))
        assert _identity(auto_remote) == _identity(auto_serial)

    def test_solve_all_fan_out_identical_to_serial(self, workers):
        urls, _ = workers
        graph = build_family("gnp", 12, seed=3)
        serial = solve_all(graph, epsilon=0.5, seed=2)
        remote = solve_all(
            graph, epsilon=0.5, seed=2, backend=RemoteExecutor(urls)
        )
        assert _identity(remote) == _identity(serial)

    def test_single_worker_pool_works(self, workers):
        urls, _ = workers
        graphs = _graphs(4)
        remote = solve_batch(
            graphs, "stoer_wagner", backend=RemoteExecutor(urls[:1])
        )
        assert _identity(remote) == _identity(
            solve_batch(graphs, "stoer_wagner")
        )

    def test_env_var_configures_the_pool(self, workers, monkeypatch):
        urls, _ = workers
        monkeypatch.setenv(REPRO_REMOTE_WORKERS_ENV, ",".join(urls))
        graphs = _graphs(4)
        remote = solve_batch(graphs, "stoer_wagner", backend="remote")
        assert _identity(remote) == _identity(
            solve_batch(graphs, "stoer_wagner")
        )


class TestRemoteFailover:
    def test_worker_killed_before_sweep(self, workers):
        urls, servers = workers
        serial = solve_batch(_graphs(6), "stoer_wagner")
        servers[1].shutdown()
        servers[1].server_close()
        remote = solve_batch(
            _graphs(6), "stoer_wagner", backend=RemoteExecutor(urls)
        )
        assert _identity(remote) == _identity(serial)

    def test_worker_dies_mid_sweep(self, workers):
        # A "worker" that accepts the connection and slams it shut is
        # the observable shape of a worker dying mid-batch: the client
        # sees a dropped connection (status 0) and must fail the shard
        # over to the survivor.
        urls, _ = workers
        killer = socket.socket()
        killer.bind(("127.0.0.1", 0))
        killer.listen(8)
        dying_url = f"http://127.0.0.1:{killer.getsockname()[1]}"
        accepted = []

        def slam():
            try:
                while True:
                    conn, _addr = killer.accept()
                    accepted.append(1)
                    conn.close()  # mid-request hangup
            except OSError:
                pass

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        try:
            graphs = _graphs(6)
            serial = solve_batch(graphs, "stoer_wagner")
            remote = solve_batch(
                graphs,
                "stoer_wagner",
                backend=RemoteExecutor([dying_url, urls[0]]),
            )
            assert _identity(remote) == _identity(serial)
            assert accepted  # the dying worker really was contacted
        finally:
            killer.close()

    def test_all_workers_dead_raises(self):
        executor = RemoteExecutor(
            ["http://127.0.0.1:9", "http://127.0.0.1:10"], timeout=2.0
        )
        with pytest.raises(AlgorithmError, match="every worker failed"):
            solve_batch(_graphs(2), "stoer_wagner", backend=executor)

    def test_exhausted_shard_captures_failures_per_task(self):
        # The executor contract: run_tasks never raises mid-map — a
        # shard that exhausts every worker records a captured
        # AlgorithmError per task, so sibling shards' completed results
        # survive for the caller to cache before re-raising.
        from repro.api import Engine

        executor = RemoteExecutor(["http://127.0.0.1:9"], timeout=2.0)
        tasks = Engine().build_batch_tasks(_graphs(3), solver="stoer_wagner")
        outcomes = executor.run_tasks(tasks)
        assert len(outcomes) == 3
        assert all(isinstance(o, AlgorithmError) for o in outcomes)
        assert all("every worker failed" in str(o) for o in outcomes)

    def test_no_workers_configured_raises(self, monkeypatch):
        monkeypatch.delenv(REPRO_REMOTE_WORKERS_ENV, raising=False)
        with pytest.raises(AlgorithmError, match="worker URLs"):
            solve_batch(_graphs(2), "stoer_wagner", backend="remote")

    def test_custom_registry_rejected(self):
        registry = SolverRegistry()

        @registry.register("only", kind="exact", guarantee="exact")
        def _only(graph, **kw):  # pragma: no cover - rejected before running
            raise AssertionError

        with pytest.raises(AlgorithmError, match="custom registry"):
            solve_batch(
                _graphs(1),
                "only",
                registry=registry,
                backend=RemoteExecutor(["http://127.0.0.1:9"]),
            )


class TestCostPlanning:
    """Cost-packed shards stay bit-identical to striped and serial runs."""

    def _skewed_graphs(self):
        # Mixed sizes give strongly skewed per-task costs under the
        # registry's hand-fit models (cost ~ poly(n, m)).
        return [
            build_family("gnp", 24 if i % 3 == 0 else 10, seed=i)
            for i in range(7)
        ]

    def test_cost_and_stripe_plans_identical_to_serial(self, workers):
        urls, _ = workers
        graphs = self._skewed_graphs()
        serial = solve_batch(graphs, "stoer_wagner")
        cost_exec = RemoteExecutor(urls, plan="cost")
        stripe_exec = RemoteExecutor(urls, plan="stripe")
        assert _identity(
            solve_batch(graphs, "stoer_wagner", backend=cost_exec)
        ) == _identity(serial)
        assert _identity(
            solve_batch(graphs, "stoer_wagner", backend=stripe_exec)
        ) == _identity(serial)
        assert cost_exec.last_plan["plan"] == "cost"
        assert stripe_exec.last_plan["plan"] == "stripe"
        # The engine attached its registry cost function, so the cost
        # plan saw non-uniform predictions and isolated the heavy tasks.
        assert len(set(cost_exec.last_plan["loads"])) > 1

    def test_last_plan_records_prediction_and_actuals(self, workers):
        urls, _ = workers
        graphs = self._skewed_graphs()
        executor = RemoteExecutor(urls)
        solve_batch(graphs, "stoer_wagner", backend=executor)
        plan = executor.last_plan
        assert plan["tasks"] == len(graphs)
        assert plan["bins"] == len(plan["actual_loads"]) == 2
        assert sum(plan["sizes"]) == len(graphs)
        assert plan["workers"] == 2
        assert plan["makespan"] >= plan["lower_bound"] > 0
        assert plan["actual_makespan"] >= max(plan["actual_loads"]) - 1e-9

    def test_cost_plan_survives_worker_kill(self, workers):
        urls, servers = workers
        graphs = self._skewed_graphs()
        serial = solve_batch(graphs, "stoer_wagner")
        servers[0].shutdown()
        servers[0].server_close()
        executor = RemoteExecutor(urls, plan="cost")
        remote = solve_batch(graphs, "stoer_wagner", backend=executor)
        assert _identity(remote) == _identity(serial)

    def test_unknown_plan_mode_rejected(self):
        with pytest.raises(AlgorithmError, match="unknown shard plan"):
            RemoteExecutor(["http://127.0.0.1:9"], plan="greedy")

    def test_explicit_cost_fn_wins_over_engine(self, workers):
        urls, _ = workers
        graphs = self._skewed_graphs()
        serial = solve_batch(graphs, "stoer_wagner")
        executor = RemoteExecutor(urls, cost_fn=lambda task: 1.0)
        remote = solve_batch(graphs, "stoer_wagner", backend=executor)
        assert _identity(remote) == _identity(serial)
        # The explicit uniform cost function won over the engine's
        # skewed registry predictions: every task cost exactly 1.0 and
        # the layout degenerated to the 4/3 stripe.
        assert executor.last_plan["plan"] == "cost"
        assert sorted(executor.last_plan["loads"], reverse=True) == [4.0, 3.0]

    def test_process_backend_packs_chunks_by_cost(self):
        from repro.exec.backends import ProcessExecutor

        graphs = self._skewed_graphs()
        serial = solve_batch(graphs, "stoer_wagner")
        executor = ProcessExecutor(max_workers=2)
        packed = solve_batch(graphs, "stoer_wagner", backend=executor)
        assert _identity(packed) == _identity(serial)
        plan = executor.last_plan
        assert plan is not None
        assert sum(plan["sizes"]) == len(graphs)
        assert len(set(plan["loads"])) > 1  # engine cost fn was attached


class TestRemoteFallbacks:
    def test_shard_over_max_batch_recovers_per_task(self):
        # A worker with --max-batch 1 rejects every multi-task shard
        # with 413; the executor must degrade to per-task POSTs and
        # still return the full, correctly ordered batch.
        server = create_server(port=0, config=ServiceConfig(max_batch=1))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            graphs = _graphs(4)
            serial = solve_batch(graphs, "stoer_wagner")
            remote = solve_batch(
                graphs, "stoer_wagner", backend=RemoteExecutor([server.url])
            )
            assert _identity(remote) == _identity(serial)
        finally:
            server.shutdown()
            server.server_close()

    def test_max_shard_chunks_requests_under_the_limit(self):
        server = create_server(port=0, config=ServiceConfig(max_batch=2))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            graphs = _graphs(5)
            remote = solve_batch(
                graphs,
                "stoer_wagner",
                backend=RemoteExecutor([server.url], max_shard=2),
            )
            assert _identity(remote) == _identity(
                solve_batch(graphs, "stoer_wagner")
            )
            # Every request stayed under the worker's limit: no error
            # was counted (the 413 path bumps the error counter).
            assert server.service.counters["errors"] == 0
        finally:
            server.shutdown()
            server.server_close()

    def test_workers_refuse_distribution_backends_per_request(self, workers):
        # A request must not be able to turn a worker into a shard
        # router (or a client of itself): the per-request backend knob
        # is whitelisted to local executors, structured 400 otherwise.
        from repro.errors import ServiceError
        from repro.service import ServiceClient

        urls, _ = workers
        client = ServiceClient(urls[0], timeout=10.0)
        with pytest.raises(ServiceError, match="backend") as info:
            client.solve_batch(
                _graphs(2), "stoer_wagner", backend="remote"
            )
        assert info.value.status == 400

    def test_solver_failure_named_by_graph_index(self, workers):
        urls, _ = workers
        graphs = _graphs(3, family="cycle", n=8)
        # An unknown option detonates inside the solver adapter on the
        # worker; the executor captures it per task and the engine
        # raises the first failure in task order, naming the graph.
        with pytest.raises(AlgorithmError, match=r"graph #0.*stoer_wagner"):
            solve_batch(
                graphs,
                "stoer_wagner",
                backend=RemoteExecutor(urls),
                bogus=1,
            )
