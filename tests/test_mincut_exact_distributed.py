"""Tests for the fully-measured exact pipeline (distributed packing +
distributed partition + Theorem 2.1; zero charged rounds)."""

import pytest

from repro.baselines import stoer_wagner_min_cut
from repro.congest import CongestNetwork
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    connected_gnp_graph,
    cycle_graph,
    planted_cut_graph,
)
from repro.mincut import minimum_cut_exact_congest_full
from repro.mincut.exact_distributed import LOAD_KEY, _load_metric
from repro.mst.boruvka_congest import boruvka_mst
from repro.packing import GreedyTreePacking


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ground_truth(self, seed):
        g = connected_gnp_graph(14, 0.35, seed=seed + 5)
        truth = stoer_wagner_min_cut(g).value
        result = minimum_cut_exact_congest_full(g)
        assert result.value == pytest.approx(truth)
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_planted(self):
        g = planted_cut_graph((10, 10), 2, seed=1)
        assert minimum_cut_exact_congest_full(g).value == pytest.approx(2.0)

    def test_cycle(self):
        assert minimum_cut_exact_congest_full(cycle_graph(9)).value == pytest.approx(2.0)

    def test_no_charged_rounds(self):
        g = planted_cut_graph((9, 9), 1, seed=0)
        result = minimum_cut_exact_congest_full(g)
        assert result.metrics.charged_rounds == 0
        assert result.metrics.measured_rounds > 0

    def test_pinned_tree_count(self):
        g = cycle_graph(8)
        result = minimum_cut_exact_congest_full(g, tree_count=3)
        assert result.trees_used == 3

    def test_tiny_rejected(self):
        g = WeightedGraph()
        g.add_node(0)
        with pytest.raises(AlgorithmError):
            minimum_cut_exact_congest_full(g)


class TestDistributedPackingFidelity:
    @pytest.mark.parametrize("seed", range(3))
    def test_trees_match_centralized_packing(self, seed):
        g = connected_gnp_graph(16, 0.3, seed=seed + 30, weight_range=(1.0, 3.0))
        net = CongestNetwork(g)
        loads = {u: {} for u in net.nodes}
        central = GreedyTreePacking(g)
        for index in range(3):
            for u in net.nodes:
                net.memory[u][LOAD_KEY] = loads[u]
            distributed_tree = boruvka_mst(net, edge_key=_load_metric)
            for child, parent in distributed_tree.edges():
                loads[child][parent] = loads[child].get(parent, 0) + 1
                loads[parent][child] = loads[parent].get(child, 0) + 1
            central_tree = central.next_tree()
            assert {frozenset(e) for e in distributed_tree.edges()} == {
                frozenset(e) for e in central_tree.edges()
            }, f"tree {index} diverged"

    def test_loads_are_node_local(self):
        # After a run each load entry mentions only incident edges.
        g = cycle_graph(7)
        net = CongestNetwork(g)
        loads = {u: {} for u in net.nodes}
        for u in net.nodes:
            net.memory[u][LOAD_KEY] = loads[u]
        tree = boruvka_mst(net, edge_key=_load_metric)
        for child, parent in tree.edges():
            loads[child][parent] = loads[child].get(parent, 0) + 1
            loads[parent][child] = loads[parent].get(child, 0) + 1
        for u, table in loads.items():
            for v in table:
                assert g.has_edge(u, v)
