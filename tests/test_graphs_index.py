"""Tests for the indexed graph core (GraphIndex + caching on the graph)."""

import pickle

import pytest

from repro.errors import GraphError
from repro.graphs import (
    GraphIndex,
    WeightedGraph,
    build_family,
    diameter,
    eccentricity,
    grid_graph,
    path_graph,
)


class TestCSRLayout:
    def test_nodes_in_insertion_order(self):
        g = WeightedGraph([(3, 1), (1, 7)])
        idx = g.index()
        assert idx.nodes == (3, 1, 7)
        assert idx.node_id == {3: 0, 1: 1, 7: 2}

    def test_adjacency_slices_match_graph(self):
        g = build_family("gnp", 40, seed=3)
        idx = g.index()
        for u in g.nodes:
            i = idx.node_id[u]
            start, stop = idx.adj_start[i], idx.adj_start[i + 1]
            targets = [idx.nodes[idx.adj_target[e]] for e in range(start, stop)]
            assert targets == g.neighbors(u)
            weights = idx.adj_weight[start:stop]
            assert weights == [g.weight(u, v) for v in targets]

    def test_directed_edge_count_is_twice_undirected(self):
        g = grid_graph(4, 5)
        assert g.index().directed_edge_count == 2 * g.number_of_edges

    def test_reverse_edge_is_involution(self):
        g = build_family("regular", 36, seed=1)
        idx = g.index()
        for e in range(idx.directed_edge_count):
            r = idx.reverse_edge[e]
            assert idx.reverse_edge[r] == e
            assert idx.edge_source[r] == idx.adj_target[e]
            assert idx.adj_target[r] == idx.edge_source[e]

    def test_edge_id_round_trip(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 3.0)])
        idx = g.index()
        e = idx.edge_id(1, 2)
        assert idx.adj_weight[e] == 3.0
        assert idx.nodes[idx.adj_target[e]] == 2
        with pytest.raises(GraphError):
            idx.edge_id(0, 2)

    def test_neighbor_lists_and_weight_maps(self):
        g = WeightedGraph([(0, 1, 2.0), (0, 2, 5.0)])
        idx = g.index()
        assert idx.neighbor_lists[0] == (1, 2)
        assert idx.weight_maps[0] == {1: 2.0, 2: 5.0}
        assert idx.degree_of(0) == 2
        assert idx.weighted_degree_of(0) == 7.0


class TestTraversal:
    def test_bfs_distances(self):
        g = path_graph(5)
        idx = g.index()
        assert idx.bfs_distances_from(0) == [0, 1, 2, 3, 4]
        assert idx.eccentricity_of(2) == 2

    def test_disconnected_marks_unreachable(self):
        g = WeightedGraph([(0, 1)])
        g.add_node(2)
        idx = g.index()
        assert idx.bfs_distances_from(0) == [0, 1, -1]
        assert not idx.is_connected()
        with pytest.raises(GraphError):
            idx.eccentricity_of(0)

    def test_properties_agree_with_index(self):
        g = build_family("grid", 49, seed=0)
        assert diameter(g) == 12
        assert eccentricity(g, g.nodes[0]) == 12


class TestCaching:
    def test_index_is_cached(self):
        g = path_graph(4)
        assert g.index() is g.index()

    def test_mutation_invalidates_index(self):
        g = path_graph(4)
        first = g.index()
        g.add_edge(0, 3)
        second = g.index()
        assert second is not first
        assert second.degree_of(0) == 2

    def test_every_mutator_invalidates(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0)])
        for mutate in (
            lambda: g.add_node(9),
            lambda: g.add_edge(0, 2),
            lambda: g.set_edge_weight(0, 1, 4.0),
            lambda: g.remove_edge(0, 2),
            lambda: g.remove_node(9),
        ):
            before = g.index()
            mutate()
            assert g.index() is not before

    def test_add_existing_node_keeps_cache(self):
        g = path_graph(3)
        before = g.index()
        g.add_node(1)
        assert g.index() is before

    def test_content_hash_cached_and_invalidated(self):
        g = WeightedGraph([(0, 1, 1.0)])
        first = g.content_hash()
        assert g.content_hash() == first
        g.add_edge(1, 2)
        assert g.content_hash() != first
        assert g.content_hash() == WeightedGraph(
            [(0, 1, 1.0), (1, 2, 1.0)]
        ).content_hash()

    def test_pickle_drops_caches_but_keeps_content(self):
        g = build_family("gnp", 24, seed=5)
        expected = g.content_hash()
        g.index()
        clone = pickle.loads(pickle.dumps(g))
        assert clone._index_cache is None
        assert clone.content_hash() == expected
        assert clone.index().nodes == g.index().nodes

    def test_direct_construction_snapshot(self):
        g = path_graph(3)
        idx = GraphIndex(g)
        assert idx.nodes == (0, 1, 2)
