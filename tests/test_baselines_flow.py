"""Tests for the max-flow substrate and the Gomory–Hu cut tree."""

import itertools

import pytest

from repro.baselines import (
    gomory_hu_min_cut,
    gomory_hu_tree,
    max_flow_min_cut,
    minimum_st_cut_value,
    stoer_wagner_min_cut,
)
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    barbell_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    path_graph,
    planted_cut_graph,
)


class TestMaxFlow:
    def test_path_bottleneck(self):
        g = WeightedGraph([(0, 1, 5.0), (1, 2, 2.0), (2, 3, 4.0)])
        result = max_flow_min_cut(g, 0, 3)
        assert result.value == 2.0
        assert result.source_side == frozenset({0, 1})

    def test_parallel_paths_sum(self):
        g = WeightedGraph(
            [(0, 1, 3.0), (1, 3, 3.0), (0, 2, 2.0), (2, 3, 2.0)]
        )
        assert minimum_st_cut_value(g, 0, 3) == 5.0

    def test_complete_graph_flow(self):
        g = complete_graph(6)
        # Between any pair: direct edge (1) + 4 two-hop paths (1 each).
        assert minimum_st_cut_value(g, 0, 5) == 5.0

    def test_undirected_symmetry(self):
        g = connected_gnp_graph(12, 0.4, seed=1, weight_range=(1.0, 5.0))
        for s, t in [(0, 5), (3, 9)]:
            assert minimum_st_cut_value(g, s, t) == pytest.approx(
                minimum_st_cut_value(g, t, s)
            )

    def test_cut_side_realises_flow_value(self):
        g = connected_gnp_graph(14, 0.3, seed=2)
        result = max_flow_min_cut(g, 0, 13)
        assert g.cut_value(result.source_side) == pytest.approx(result.value)

    def test_flow_bounded_by_degrees(self):
        g = connected_gnp_graph(12, 0.5, seed=3, weight_range=(1.0, 2.0))
        value = minimum_st_cut_value(g, 0, 7)
        assert value <= min(g.weighted_degree(0), g.weighted_degree(7)) + 1e-9

    def test_same_endpoints_rejected(self):
        with pytest.raises(AlgorithmError):
            max_flow_min_cut(cycle_graph(4), 1, 1)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(AlgorithmError):
            max_flow_min_cut(cycle_graph(4), 0, 99)


class TestGomoryHu:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_pairs_property(self, seed):
        g = connected_gnp_graph(9, 0.5, seed=seed, weight_range=(1.0, 4.0))
        tree = gomory_hu_tree(g)
        for s, t in itertools.combinations(g.nodes, 2):
            assert tree.min_cut_value(s, t) == pytest.approx(
                minimum_st_cut_value(g, s, t)
            )

    def test_tree_shape(self):
        g = connected_gnp_graph(10, 0.4, seed=5)
        tree = gomory_hu_tree(g)
        assert len(tree.parent) == 9
        assert set(tree.weight) == set(tree.parent)

    @pytest.mark.parametrize("seed", range(8))
    def test_global_min_cut_matches_stoer_wagner(self, seed):
        g = connected_gnp_graph(12, 0.4, seed=seed + 30)
        assert gomory_hu_min_cut(g).value == pytest.approx(
            stoer_wagner_min_cut(g).value
        )

    def test_planted_cut(self):
        g = planted_cut_graph((8, 9), 2, seed=1)
        result = gomory_hu_min_cut(g)
        assert result.value == 2.0
        assert g.cut_value(result.side) == 2.0

    def test_barbell(self):
        assert gomory_hu_min_cut(barbell_graph(5)).value == 1.0

    def test_path_tree_weights(self):
        g = path_graph(5, weight=3.0)
        tree = gomory_hu_tree(g)
        assert all(w == 3.0 for w in tree.weight.values())

    def test_same_endpoint_query_rejected(self):
        tree = gomory_hu_tree(cycle_graph(5))
        with pytest.raises(AlgorithmError):
            tree.min_cut_value(2, 2)

    def test_single_node_rejected(self):
        g = WeightedGraph()
        g.add_node(0)
        with pytest.raises(AlgorithmError):
            gomory_hu_tree(g)


class TestCrossValidationPyramid:
    """Gomory–Hu as an independent check on the paper's algorithm."""

    @pytest.mark.parametrize("seed", range(4))
    def test_three_way_agreement(self, seed):
        from repro.mincut import minimum_cut_exact

        g = connected_gnp_graph(13, 0.4, seed=seed + 90)
        sw = stoer_wagner_min_cut(g).value
        gh = gomory_hu_min_cut(g).value
        ours = minimum_cut_exact(g).value
        assert sw == pytest.approx(gh)
        assert ours == pytest.approx(gh)
