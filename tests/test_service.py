"""Service-layer tests: protocol, transport-free dispatch, live HTTP.

Three tiers mirroring the architecture:

* protocol round trips (graph payload forms, CutResult JSON fidelity);
* ``ReproService.dispatch`` — the full request surface without sockets
  (validation 4xx bodies, limits, cache counters);
* one real ``ThreadingHTTPServer`` + ``ServiceClient`` exercising the
  acceptance round-trip property against direct ``repro.solve``.
"""

import json
import threading

import pytest

from repro.api import default_registry, solve
from repro.errors import GraphError, ServiceError
from repro.exec import ResultCache
from repro.graphs import (
    WeightedGraph,
    graph_from_json,
    graph_to_json,
    planted_cut_graph,
)
from repro.service import (
    ReproService,
    ServiceClient,
    ServiceConfig,
    create_server,
    cut_result_from_json,
    cut_result_to_json,
    parse_graph,
    parse_solve_request,
)


def small_graph():
    """Small, integer-weighted, within every non-heavy solver's limits."""
    return planted_cut_graph((6, 6), cut_value=2, seed=3)


def post(service, path, body):
    """Dispatch a JSON body and decode the reply."""
    blob = body if isinstance(body, bytes) else json.dumps(body).encode()
    return service.dispatch("POST", path, blob)


class TestGraphJson:
    def test_round_trip(self):
        graph = small_graph()
        again = graph_from_json(graph_to_json(graph))
        assert again.content_hash() == graph.content_hash()

    def test_isolated_nodes_survive(self):
        graph = WeightedGraph([(0, 1, 2.0)])
        graph.add_node(7)
        assert graph_from_json(graph_to_json(graph)).nodes == graph.nodes

    @pytest.mark.parametrize(
        "data",
        [
            "not a dict",
            {"edges": [[0]]},                    # arity
            {"edges": [[0, 1, 2, 3]]},           # arity
            {"edges": [[0, 1, "x"]]},            # weight type
            {"edges": [[0, 1, True]]},           # bool weight
            {"edges": [[0, 1, float("nan")]]},   # json.loads lets NaN in
            {"edges": [[0, 1, float("inf")]]},   # ... and Infinity
            {"edges": [[True, 1]]},              # bool node
            {"edges": [[0, [1], 1.0]]},          # node type
            {"edges": [], "nodes": 3},           # nodes not a list
            {"edges": [], "extra": 1},           # unknown key
        ],
    )
    def test_bad_payloads_rejected(self, data):
        with pytest.raises(GraphError):
            graph_from_json(data)

    def test_non_json_nodes_rejected_on_encode(self):
        graph = WeightedGraph([((0, 0), (0, 1), 1.0)])
        with pytest.raises(GraphError):
            graph_to_json(graph)


class TestParseGraph:
    def test_edge_list_text(self):
        graph = parse_graph("0 1 2.0\n1 2 1.0\n2 0 1.0\n")
        assert graph.number_of_edges == 3
        assert graph.weight(0, 1) == 2.0

    def test_bare_edge_array(self):
        graph = parse_graph([[0, 1, 1.0], [1, 2]])
        assert graph.weight(1, 2) == 1.0

    def test_bad_edge_list_text(self):
        with pytest.raises(GraphError):
            parse_graph("0 1\n")  # two tokens: neither node line nor edge

    def test_non_finite_edge_list_text(self):
        with pytest.raises(GraphError):
            parse_graph("0 1 nan\n")
        with pytest.raises(GraphError):
            parse_graph("0 1 inf\n")

    def test_unsupported_type(self):
        with pytest.raises(ServiceError):
            parse_graph(42)


class TestCutResultJson:
    def test_round_trip_fidelity(self):
        graph = small_graph()
        direct = solve(graph, solver="exact", seed=5)
        again = cut_result_from_json(
            json.loads(json.dumps(cut_result_to_json(direct)))
        )
        assert again == direct  # dataclass equality: every field, extras too
        assert again.matches(graph)

    def test_tuple_extras_survive(self):
        graph = small_graph()
        direct = solve(graph, solver="exact")
        assert any(
            isinstance(value, tuple) for value in direct.extras.values()
        ), "exact solver extras lost their tuples; adjust the fixture"
        again = cut_result_from_json(cut_result_to_json(direct))
        assert again.extras == direct.extras

    def test_congest_metrics_become_summary(self):
        graph = small_graph()
        direct = solve(graph, solver="exact", mode="congest")
        again = cut_result_from_json(cut_result_to_json(direct))
        assert again.metrics is None
        assert again.extras["congest"] == direct.metrics.summary()

    def test_malformed_payload(self):
        with pytest.raises(ServiceError):
            cut_result_from_json({"value": 1.0})  # missing fields


class TestParseSolveRequest:
    @pytest.mark.parametrize(
        "body,fragment",
        [
            ([], "must be a JSON object"),
            ({}, "missing the 'graph'"),
            ({"graph": [[0, 1]], "nope": 1}, "unknown solve request fields"),
            ({"graph": [[0, 1]], "solver": 3}, "'solver' must be a string"),
            ({"graph": [[0, 1]], "epsilon": "x"}, "'epsilon'"),
            ({"graph": [[0, 1]], "epsilon": float("nan")}, "'epsilon'"),
            ({"graph": [[0, 1]], "mode": "turbo"}, "'mode'"),
            ({"graph": [[0, 1]], "seed": 1.5}, "'seed'"),
            ({"graph": [[0, 1]], "seed": True}, "'seed'"),
            ({"graph": [[0, 1]], "budget": -1}, "'budget'"),
            ({"graph": [[0, 1]], "options": [1]}, "'options'"),
        ],
    )
    def test_envelope_validation(self, body, fragment):
        with pytest.raises(ServiceError) as excinfo:
            parse_solve_request(body)
        assert fragment in str(excinfo.value)


class TestDispatch:
    def test_health(self):
        service = ReproService()
        status, payload = service.dispatch("GET", "/healthz", b"")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["cache"] == {
            "hits": 0, "misses": 0, "memory_entries": 0, "disk_entries": 0,
        }
        assert payload["solvers"] == len(default_registry())

    def test_health_reports_store_counters(self, tmp_path):
        # With the cache persisted to a segment-store directory, the
        # store's segment/compaction counters ride along in /healthz.
        service = ReproService(cache=ResultCache(path=tmp_path / "store"))
        post(service, "/solve", {"graph": graph_to_json(small_graph())})
        status, payload = service.dispatch("GET", "/healthz", b"")
        assert status == 200
        cache = payload["cache"]
        assert cache["disk_entries"] == 1
        assert cache["segments"] == 1
        assert cache["live_entries"] == 1
        assert cache["compactions"] == 0
        assert cache["store_bytes"] > 0

    def test_solvers_listing(self):
        service = ReproService()
        status, payload = service.dispatch("GET", "/solvers", b"")
        assert status == 200
        names = {spec["name"] for spec in payload["solvers"]}
        assert names == set(default_registry().names())

    def test_solve_matches_direct(self):
        service = ReproService()
        graph = small_graph()
        status, payload = post(service, "/solve", {"graph": graph_to_json(graph)})
        assert status == 200
        remote = cut_result_from_json(payload["result"])
        direct = solve(graph)
        assert remote.value == direct.value
        assert remote.side == direct.side
        assert remote.solver == direct.solver

    def test_cache_hit_on_identical_requests(self):
        service = ReproService()
        body = {"graph": graph_to_json(small_graph())}
        _, first = post(service, "/solve", body)
        assert first["result"]["extras"]["cache"] == {
            "hit": False, "hits": 0, "misses": 1,
        }
        _, second = post(service, "/solve", body)
        assert second["result"]["extras"]["cache"] == {
            "hit": True, "hits": 1, "misses": 1,
        }
        health = service.dispatch("GET", "/healthz", b"")[1]
        assert health["cache"]["hits"] == 1
        assert health["requests"]["solve"] == 2

    def test_batch_with_backend(self):
        service = ReproService()
        graphs = [graph_to_json(planted_cut_graph((5, 5), 2, seed=s)) for s in (1, 2)]
        status, payload = post(
            service, "/solve_batch",
            {"graphs": graphs, "solver": "stoer_wagner", "backend": "thread"},
        )
        assert status == 200
        assert [r["value"] for r in payload["results"]] == [2.0, 2.0]

    def error_type(self, payload):
        return payload["error"]["type"]

    def test_malformed_json_body(self):
        service = ReproService()
        status, payload = service.dispatch("POST", "/solve", b"{not json")
        assert status == 400
        assert self.error_type(payload) == "ServiceError"
        assert payload["error"]["status"] == 400

    def test_bad_edge_list_is_400(self):
        service = ReproService()
        status, payload = post(service, "/solve", {"graph": [[0, 1, "x"]]})
        assert status == 400
        assert self.error_type(payload) == "GraphError"

    def test_nan_weight_is_400_not_500(self):
        service = ReproService()
        status, payload = service.dispatch(
            "POST", "/solve", b'{"graph": [[0, 1, NaN], [1, 2, 1.0], [2, 0, 1.0]]}'
        )
        assert status == 400
        assert self.error_type(payload) == "GraphError"

    def test_batch_error_names_the_offending_graph(self):
        service = ReproService()
        status, payload = post(
            service, "/solve_batch",
            {"graphs": [[[0, 1]], [[0, 1, "x"]]]},
        )
        assert status == 400
        assert "graph #1" in payload["error"]["message"]

    def test_unknown_solver_is_400(self):
        service = ReproService()
        status, payload = post(
            service, "/solve",
            {"graph": graph_to_json(small_graph()), "solver": "nope"},
        )
        assert status == 400
        assert self.error_type(payload) == "AlgorithmError"
        assert "unknown solver" in payload["error"]["message"]

    def test_disconnected_graph_is_400(self):
        service = ReproService()
        status, payload = post(
            service, "/solve", {"graph": [[0, 1], [2, 3]]}
        )
        assert status == 400
        assert self.error_type(payload) == "DisconnectedGraphError"

    def test_over_node_limit_is_413(self):
        service = ReproService(config=ServiceConfig(max_nodes=4))
        status, payload = post(
            service, "/solve", {"graph": graph_to_json(small_graph())}
        )
        assert status == 413
        assert "over this service's limit" in payload["error"]["message"]

    def test_over_batch_limit_is_413(self):
        service = ReproService(config=ServiceConfig(max_batch=1))
        graphs = [graph_to_json(small_graph())] * 2
        status, payload = post(service, "/solve_batch", {"graphs": graphs})
        assert status == 413

    def test_unknown_path_and_method(self):
        service = ReproService()
        assert service.dispatch("GET", "/nope", b"")[0] == 404
        assert service.dispatch("GET", "/solve", b"")[0] == 405
        assert service.dispatch("POST", "/healthz", b"")[0] == 405

    def test_trailing_slash_and_query_string_tolerated(self):
        service = ReproService()
        assert service.dispatch("GET", "/healthz/", b"")[0] == 200
        assert service.dispatch("GET", "/healthz?verbose=1", b"")[0] == 200


@pytest.fixture(scope="module")
def live():
    """One shared server + client for the HTTP tier."""
    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=30.0)
    client.wait_until_ready()
    yield server, client
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHTTP:
    def test_round_trip_property_every_non_heavy_solver(self, live):
        """The acceptance criterion: remote == direct, solver by solver."""
        _server, client = live
        graph = small_graph()
        registry = default_registry()
        specs = [
            spec
            for spec in registry.applicable(graph, include_heavy=False)
            if spec.kind in ("exact", "approx")
        ]
        assert len(specs) >= 8, "fixture graph filters out too many solvers"
        for spec in specs:
            epsilon = 0.5 if spec.kind == "approx" else None
            direct = solve(graph, solver=spec.name, epsilon=epsilon, seed=0)
            remote = client.solve(graph, solver=spec.name, epsilon=epsilon, seed=0)
            assert remote.value == direct.value, spec.name
            assert remote.side == direct.side, spec.name
            assert remote.solver == direct.solver == spec.name
            assert remote.guarantee == direct.guarantee
            assert remote.seed == direct.seed
            remote_extras = {
                key: value
                for key, value in remote.extras.items()
                if key != "cache"
            }
            assert remote_extras == direct.extras, spec.name
            assert remote.matches(graph)

    def test_batch_matches_direct_and_caches(self, live):
        _server, client = live
        graphs = [planted_cut_graph((5, 5), 2, seed=s) for s in (10, 11, 12)]
        first = client.solve_batch(graphs, solver="stoer_wagner")
        again = client.solve_batch(graphs, solver="stoer_wagner")
        assert [r.value for r in first] == [r.value for r in again] == [2.0] * 3
        assert all(r.extras["cache"]["hit"] for r in again)

    def test_error_payload_surfaces(self, live):
        _server, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.solve(small_graph(), solver="nope")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error"]["type"] == "AlgorithmError"

    def test_health_and_solvers(self, live):
        _server, client = live
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert {spec["name"] for spec in client.solvers()} == set(
            default_registry().names()
        )

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 0

    def test_edge_list_text_payload_over_http(self, live):
        _server, client = live
        result = client.solve("0 1 1.0\n1 2 1.0\n2 0 1.0\n", solver="stoer_wagner")
        assert result.value == 2.0

    def test_oversized_body_is_413_before_parsing(self):
        from repro.service import ServiceConfig

        server = create_server(
            port=0, config=ServiceConfig(max_body_bytes=1024)
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=10.0)
            client.wait_until_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.solve([[0, 1, 1.0]] * 2000)
            assert excinfo.value.status == 413
            assert "over this service's limit" in str(excinfo.value)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_non_object_error_body_still_raises_service_error(self, live):
        # A proxy may answer a non-2xx with a JSON array/scalar body;
        # the client must still raise the typed error.
        import http.server

        class Proxyish(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                blob = b'["busy"]'
                self.send_response(503)
                self.send_header("Content-Length", str(len(blob)))
                self.end_headers()
                self.wfile.write(blob)

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Proxyish)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
