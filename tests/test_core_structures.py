"""Tests for the centralized Step 1–4 structure reference, pinned on the
Figure 1 instance and cross-checked on random instances."""

import pytest

from repro.core.figure1 import (
    EXPECTED_A_OF_11,
    EXPECTED_FRAGMENT_IDS,
    EXPECTED_FRAGMENT_MEMBERS,
    EXPECTED_LCA_CASES,
    EXPECTED_MERGING_NODES,
    EXPECTED_SKELETON_PARENTS,
    figure1_instance,
)
from repro.core.structures import StructuresReference
from repro.fragments import partition_tree
from repro.graphs import connected_gnp_graph, random_spanning_tree


@pytest.fixture(scope="module")
def fig1():
    inst = figure1_instance()
    return inst, StructuresReference(inst.graph, inst.tree, inst.decomposition)


class TestFigure1Decomposition:
    def test_fragment_ids(self, fig1):
        inst, _ = fig1
        assert tuple(inst.decomposition.fragment_ids()) == EXPECTED_FRAGMENT_IDS

    def test_fragment_members(self, fig1):
        inst, _ = fig1
        for fid, members in EXPECTED_FRAGMENT_MEMBERS.items():
            assert inst.decomposition.members_of(fid) == set(members)

    def test_child_fragments_of_root_fragment(self, fig1):
        inst, _ = fig1
        tf = inst.decomposition.fragment_tree()
        assert sorted(tf.children(0)) == [3, 4, 5]

    def test_decomposition_is_valid(self, fig1):
        inst, _ = fig1
        inst.decomposition.validate()


class TestFigure1Structures:
    def test_merging_nodes(self, fig1):
        _, s = fig1
        assert s.merging_nodes == set(EXPECTED_MERGING_NODES)

    def test_skeleton_parents(self, fig1):
        _, s = fig1
        assert s.skeleton_parent == EXPECTED_SKELETON_PARENTS

    def test_skeleton_tree_rooted_at_tree_root(self, fig1):
        _, s = fig1
        tfp = s.skeleton_tree()
        assert tfp.root == 0
        assert sorted(tfp.nodes) == [0, 1, 3, 4, 5]

    def test_scope_ancestors_of_deep_node(self, fig1):
        _, s = fig1
        assert tuple(s.scope_ancestors[11]) == EXPECTED_A_OF_11

    def test_scope_ancestors_of_root(self, fig1):
        _, s = fig1
        assert s.scope_ancestors[0] == [0]

    def test_fragments_below_excludes_own_fragment(self, fig1):
        inst, s = fig1
        for v in inst.tree.nodes:
            assert inst.decomposition.fragment_id(v) not in s.fragments_below[v]

    def test_fragments_below_of_merging_node(self, fig1):
        _, s = fig1
        assert s.fragments_below[1] == {3, 4}
        assert s.fragments_below[0] == {3, 4, 5}

    def test_lca_cases(self, fig1):
        _, s = fig1
        for (u, v), case in EXPECTED_LCA_CASES.items():
            assert s.lca_case(u, v) == case
            assert s.lca_case(v, u) == case

    def test_rho_message_types(self, fig1):
        _, s = fig1
        # Case 2 edges are type 1 (global); others type 2.
        mtype, lca, _holder = s.rho_message_type(13, 15)
        assert (mtype, lca) == (1, 0)
        mtype, lca, _holder = s.rho_message_type(12, 14)
        assert (mtype, lca) == (1, 1)
        mtype, lca, holder = s.rho_message_type(1, 7)
        assert (mtype, lca, holder) == (2, 1, 1)
        mtype, lca, holder = s.rho_message_type(11, 12)
        assert (mtype, lca) == (2, 3)
        assert holder in (11, 12)

    def test_type2_holder_shares_lca_fragment(self, fig1):
        inst, s = fig1
        for u, v, _w in inst.graph.edges():
            mtype, lca, holder = s.rho_message_type(u, v)
            if mtype == 2:
                assert inst.decomposition.same_fragment(holder, lca)


class TestStructuresOnRandomInstances:
    @pytest.mark.parametrize("seed", range(5))
    def test_skeleton_chain_contains_all_skeleton_ancestors(self, seed):
        g = connected_gnp_graph(30, 0.2, seed=seed)
        tree = random_spanning_tree(g, seed=seed)
        dec = partition_tree(tree)
        s = StructuresReference(g, tree, dec)
        for v in tree.nodes:
            chain = s.skeleton_ancestors(v)
            expected = [
                a
                for a in tree.ancestors(v, include_self=True)
                if a in s.skeleton_nodes
            ]
            assert chain == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_merging_nodes_have_two_loaded_children(self, seed):
        g = connected_gnp_graph(40, 0.15, seed=seed + 20)
        tree = random_spanning_tree(g, seed=seed)
        dec = partition_tree(tree)
        s = StructuresReference(g, tree, dec)
        for v in s.merging_nodes:
            loaded = [
                c
                for c in tree.children(v)
                if any(
                    dec.fragment_root(fid) in tree.subtree(c)
                    for fid in dec.fragment_ids()
                )
            ]
            assert len(loaded) >= 2

    @pytest.mark.parametrize("seed", range(5))
    def test_fragments_below_matches_subtree_check(self, seed):
        g = connected_gnp_graph(26, 0.25, seed=seed + 40)
        tree = random_spanning_tree(g, seed=seed)
        dec = partition_tree(tree)
        s = StructuresReference(g, tree, dec)
        for v in tree.nodes:
            subtree = tree.subtree(v)
            expected = {
                fid
                for fid in dec.fragment_ids()
                if dec.members_of(fid) <= subtree and fid != dec.fragment_id(v)
            }
            assert s.fragments_below[v] == expected
