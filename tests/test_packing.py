"""Tree packing tests: greedy loads, respect predicates, Thorup behaviour."""

import pytest

from repro.errors import AlgorithmError
from repro.graphs import (
    RootedTree,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    edge_key,
    is_spanning_tree,
    planted_cut_graph,
    planted_cut_sides,
)
from repro.packing import (
    GreedyTreePacking,
    crossing_count,
    crossing_tree_edges,
    greedy_tree_packing,
    one_respects,
    respecting_subtree_node,
    thorup_tree_bound,
    trees_until_one_respecting,
)


class TestGreedyPacking:
    def test_trees_are_spanning(self):
        g = connected_gnp_graph(18, 0.35, seed=2)
        for tree in greedy_tree_packing(g, 4):
            assert is_spanning_tree(g, list(tree.edges()))

    def test_loads_count_tree_usage(self):
        g = cycle_graph(5)
        packing = GreedyTreePacking(g)
        packing.grow_to(3)
        total_usage = sum(packing.usage.values())
        assert total_usage == 3 * 4  # 3 trees x (n-1) edges

    def test_second_tree_minimises_reuse_on_dense_graph(self):
        g = complete_graph(6)
        packing = GreedyTreePacking(g)
        t1 = packing.next_tree()
        t2 = packing.next_tree()
        e1 = {frozenset(e) for e in t1.edges()}
        e2 = {frozenset(e) for e in t2.edges()}
        # The first K6 tree is the star at node 0 (ties by endpoint
        # order), which exhausts node 0's edges — so the second tree must
        # reuse exactly one loaded edge (to reach node 0) and no more.
        assert len(e1 & e2) == 1
        (reused,) = e1 & e2
        assert 0 in reused

    def test_relative_load_uses_weight_as_capacity(self):
        g = cycle_graph(4)
        g.set_edge_weight(0, 1, 4.0)
        packing = GreedyTreePacking(g)
        packing.grow_to(2)
        # The heavy edge absorbs usage at a quarter of the load cost.
        assert packing.relative_load(0, 1) == packing.usage[edge_key(0, 1)] / 4.0

    def test_cycle_packing_rotates_excluded_edge(self):
        g = cycle_graph(4)
        packing = GreedyTreePacking(g)
        excluded = []
        for tree in packing.grow_to(4):
            tree_edges = {frozenset(e) for e in tree.edges()}
            all_edges = {frozenset({u, v}) for u, v, _ in g.edges()}
            (missing,) = all_edges - tree_edges
            excluded.append(missing)
        assert len(set(excluded)) >= 3  # different edges get excluded

    def test_invalid_count(self):
        with pytest.raises(AlgorithmError):
            greedy_tree_packing(cycle_graph(4), 0)

    def test_iterator_protocol(self):
        packing = GreedyTreePacking(cycle_graph(5))
        it = iter(packing)
        first = next(it)
        second = next(it)
        assert len(packing.trees) == 2
        assert first is packing.trees[0]
        assert second is packing.trees[1]


class TestRespectPredicates:
    def test_crossing_edges_on_path(self):
        tree = RootedTree.path(6)
        assert crossing_tree_edges(tree, {3, 4, 5}) == [(3, 2)]
        assert crossing_count(tree, {0, 2, 4}) == 5

    def test_one_respects(self):
        tree = RootedTree.path(6)
        assert one_respects(tree, {4, 5})
        assert not one_respects(tree, {1, 4})

    def test_respecting_subtree_node(self):
        tree = RootedTree.path(6)
        assert respecting_subtree_node(tree, {2, 3, 4, 5}) == 2

    def test_respecting_subtree_node_requires_one_crossing(self):
        tree = RootedTree.path(6)
        with pytest.raises(AlgorithmError):
            respecting_subtree_node(tree, {1, 3})

    def test_unknown_nodes_rejected(self):
        tree = RootedTree.path(4)
        with pytest.raises(AlgorithmError):
            crossing_count(tree, {0, 99})


class TestThorupBehaviour:
    @pytest.mark.parametrize("cut,seed", [(1, 0), (2, 1), (3, 2), (4, 3)])
    def test_packing_finds_one_respecting_tree_fast(self, cut, seed):
        g = planted_cut_graph((12, 13), cut, seed=seed)
        side = planted_cut_sides((12, 13))
        packing = GreedyTreePacking(g)
        index = trees_until_one_respecting(packing.grow_to(30), side)
        # Thorup's bound allows λ^7·log³n trees; empirically a handful.
        assert index <= 3 * cut + 4

    def test_trees_until_raises_when_absent(self):
        tree = RootedTree.path(4)
        with pytest.raises(AlgorithmError):
            trees_until_one_respecting([tree], {1, 3})

    def test_bound_monotonic(self):
        assert thorup_tree_bound(1, 100) < thorup_tree_bound(2, 100)
        assert thorup_tree_bound(2, 100) < thorup_tree_bound(2, 10000)

    def test_bound_is_large(self):
        # The theoretical bound dwarfs practical needs — documenting the
        # gap the adaptive schedule exploits.
        assert thorup_tree_bound(3, 1000) > 10**5
