"""Tests for the distributed Su pipeline (sampling + Theorem 2.1)."""

import pytest

from repro.baselines import stoer_wagner_min_cut, su_minimum_cut_congest
from repro.baselines.su_congest import EdgeSamplingPhase, SkeletonBFSBuild
from repro.congest import CongestNetwork
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    barbell_graph,
    complete_graph,
    connected_gnp_graph,
    planted_cut_graph,
)


class TestSamplingPhase:
    def test_both_endpoints_agree_on_sample(self):
        g = connected_gnp_graph(15, 0.4, seed=1)
        net = CongestNetwork(g)
        net.run_phase("sample", lambda u: EdgeSamplingPhase(0.5, seed=3))
        for u, v, _w in g.edges():
            assert net.memory[u]["su:skel"].get(v) == net.memory[v][
                "su:skel"
            ].get(u)

    def test_rate_one_keeps_everything(self):
        g = complete_graph(6)
        net = CongestNetwork(g)
        net.run_phase("sample", lambda u: EdgeSamplingPhase(1.0, seed=0))
        for u in g.nodes:
            assert set(net.memory[u]["su:skel"]) == set(g.neighbors(u))

    def test_rate_zero_keeps_nothing(self):
        g = complete_graph(5)
        net = CongestNetwork(g)
        net.run_phase("sample", lambda u: EdgeSamplingPhase(0.0, seed=0))
        assert all(net.memory[u]["su:skel"] == {} for u in g.nodes)

    def test_integer_weights_required(self):
        g = WeightedGraph([(0, 1, 1.5)])
        net = CongestNetwork(g)
        with pytest.raises(AlgorithmError):
            net.run_phase("sample", lambda u: EdgeSamplingPhase(0.5, seed=0))

    def test_deterministic_per_seed(self):
        g = connected_gnp_graph(12, 0.4, seed=2)
        samples = []
        for _ in range(2):
            net = CongestNetwork(g)
            net.run_phase("sample", lambda u: EdgeSamplingPhase(0.5, seed=9))
            samples.append(
                {u: dict(net.memory[u]["su:skel"]) for u in g.nodes}
            )
        assert samples[0] == samples[1]


class TestSkeletonBFS:
    def test_spans_when_sample_is_full(self):
        g = connected_gnp_graph(14, 0.3, seed=5)
        net = CongestNetwork(g)
        net.run_phase("sample", lambda u: EdgeSamplingPhase(1.0, seed=0))
        net.run_phase("bfs", lambda u: SkeletonBFSBuild(0))
        assert all(net.memory[u]["suT:reached"] for u in g.nodes)

    def test_detects_disconnection(self):
        g = barbell_graph(4, bridges=1)
        net = CongestNetwork(g)
        net.run_phase("sample", lambda u: EdgeSamplingPhase(1.0, seed=0))
        # Remove the bridge from both endpoints' sampled view.
        net.memory[0]["su:skel"].pop(4, None)
        net.memory[4]["su:skel"].pop(0, None)
        net.run_phase("bfs", lambda u: SkeletonBFSBuild(0))
        reached = [u for u in g.nodes if net.memory[u]["suT:reached"]]
        assert len(reached) == 4


class TestPipeline:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_upper_bound_and_usually_exact(self, seed):
        g = planted_cut_graph((11, 11), 2, seed=seed)
        truth = stoer_wagner_min_cut(g).value
        result = su_minimum_cut_congest(g, seed=seed)
        assert result.value >= truth - 1e-9
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_finds_planted_cut_across_seeds(self):
        hits = 0
        for seed in range(5):
            g = planted_cut_graph((11, 11), 2, seed=seed + 40)
            truth = stoer_wagner_min_cut(g).value
            if su_minimum_cut_congest(g, seed=seed).value == pytest.approx(truth):
                hits += 1
        assert hits >= 3

    def test_metrics_accumulate_across_rates(self):
        g = planted_cut_graph((9, 9), 1, seed=0)
        result = su_minimum_cut_congest(g, seed=0, rate_steps=3, trials_per_rate=1)
        assert result.metrics.measured_rounds > 0
        assert result.rates_tried >= 1
        sample_phases = [
            p for p in result.metrics.phases if p.name.startswith("su:sample")
        ]
        assert len(sample_phases) == 3

    def test_rate_one_always_available(self):
        # Even with a single rate step (p=1) the pipeline returns a cut.
        g = connected_gnp_graph(12, 0.4, seed=3)
        result = su_minimum_cut_congest(g, seed=0, rate_steps=1, trials_per_rate=1)
        assert result.best_rate == 1.0
        assert result.value >= stoer_wagner_min_cut(g).value - 1e-9
