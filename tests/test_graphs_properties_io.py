"""Unit tests for graph properties and edge-list IO."""

import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import (
    WeightedGraph,
    bfs_distances,
    bfs_tree_parents,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    degree_statistics,
    diameter,
    eccentricity,
    grid_graph,
    is_spanning_tree,
    min_weighted_degree,
    path_graph,
    read_edge_list,
    write_edge_list,
)


class TestDistances:
    def test_bfs_distances_path(self):
        g = path_graph(6)
        dist = bfs_distances(g, 0)
        assert dist == {i: i for i in range(6)}

    def test_bfs_distances_unreachable_omitted(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        assert set(bfs_distances(g, 0)) == {0, 1}

    def test_bfs_unknown_source(self):
        with pytest.raises(GraphError):
            bfs_distances(WeightedGraph([(0, 1)]), 9)

    def test_bfs_tree_parents_consistent(self):
        g = grid_graph(4, 4)
        parent = bfs_tree_parents(g, 0)
        dist = bfs_distances(g, 0)
        assert len(parent) == 15
        for child, par in parent.items():
            assert dist[child] == dist[par] + 1

    def test_eccentricity(self):
        g = path_graph(9)
        assert eccentricity(g, 0) == 8
        assert eccentricity(g, 4) == 4

    def test_eccentricity_disconnected(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            eccentricity(g, 0)


class TestDiameter:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(10), 9),
            (cycle_graph(10), 5),
            (complete_graph(7), 1),
            (grid_graph(3, 5), 6),
        ],
    )
    def test_exact_diameters(self, graph, expected):
        assert diameter(graph) == expected

    def test_double_sweep_on_large_path(self):
        # Above the exact threshold the double-sweep estimate runs —
        # exact on trees/paths.
        g = path_graph(700)
        assert diameter(g) == 699

    def test_diameter_requires_connected(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            diameter(g)


class TestDegreeStatistics:
    def test_statistics(self):
        g = WeightedGraph([(0, 1, 3.0), (1, 2, 1.0)])
        stats = degree_statistics(g)
        assert stats["min_degree"] == 1
        assert stats["max_degree"] == 2
        assert stats["min_weighted_degree"] == 1.0

    def test_min_weighted_degree_upper_bounds_cut(self):
        from repro.baselines import stoer_wagner_min_cut

        g = connected_gnp_graph(16, 0.4, seed=1, weight_range=(1.0, 3.0))
        assert stoer_wagner_min_cut(g).value <= min_weighted_degree(g) + 1e-9

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            degree_statistics(WeightedGraph())


class TestSpanningTreeCheck:
    def test_accepts_valid(self):
        g = cycle_graph(5)
        assert is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (3, 4)])

    def test_rejects_cycle(self):
        g = cycle_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_rejects_wrong_count(self):
        g = cycle_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2)])

    def test_rejects_non_edges(self):
        g = path_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (0, 3)])


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = WeightedGraph([(0, 1, 1.5), (1, 2, 2.0)])
        g.add_node(7)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.edge_list() == g.edge_list()
        assert 7 in back

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n\n0 1 2.0\n", encoding="utf-8")
        g = read_edge_list(path)
        assert g.weight(0, 1) == 2.0

    def test_read_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_string_nodes_round_trip(self, tmp_path):
        g = WeightedGraph([("a", "b", 1.0)])
        path = tmp_path / "s.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_edge("a", "b")


class TestNetworkxBridge:
    def test_round_trip_via_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs import from_networkx, to_networkx

        g = WeightedGraph([(0, 1, 2.0), (1, 2, 3.0)])
        nx_graph = to_networkx(g)
        assert nx_graph.number_of_edges() == 2
        back = from_networkx(nx_graph)
        assert back.edge_list() == g.edge_list()

    def test_from_networkx_default_weight(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs import from_networkx

        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        assert from_networkx(nx_graph).weight(0, 1) == 1.0
