"""Tests for the packing-based exact minimum-cut driver."""

import pytest

from repro.baselines import stoer_wagner_min_cut
from repro.errors import AlgorithmError
from repro.graphs import (
    barbell_graph,
    connected_gnp_graph,
    cycle_graph,
    path_graph,
    planted_cut_graph,
    star_graph,
    weighted_ring_of_cliques,
)
from repro.mincut import default_tree_schedule, minimum_cut_exact


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_stoer_wagner_random(self, seed):
        g = connected_gnp_graph(16 + 2 * seed, 0.3, seed=seed)
        exact = minimum_cut_exact(g)
        truth = stoer_wagner_min_cut(g)
        assert exact.value == pytest.approx(truth.value)

    @pytest.mark.parametrize("cut", [1, 2, 3, 5])
    def test_planted_cuts(self, cut):
        g = planted_cut_graph((14, 15), cut, seed=cut)
        exact = minimum_cut_exact(g)
        assert exact.value == pytest.approx(float(cut))

    def test_side_realises_value(self):
        g = connected_gnp_graph(20, 0.3, seed=3)
        exact = minimum_cut_exact(g)
        assert g.cut_value(exact.side) == pytest.approx(exact.value)

    def test_bridge_graph(self):
        g = barbell_graph(5, bridges=1)
        exact = minimum_cut_exact(g)
        assert exact.value == pytest.approx(1.0)
        assert len(exact.side) in (5, 6)  # one bell, possibly w/ bridge node

    def test_weighted_ring(self):
        g = weighted_ring_of_cliques(4, 4, bridge_weight=0.5)
        exact = minimum_cut_exact(g)
        assert exact.value == pytest.approx(1.0)

    def test_path_graph_cut_one(self):
        exact = minimum_cut_exact(path_graph(12))
        assert exact.value == pytest.approx(1.0)

    def test_star_graph(self):
        exact = minimum_cut_exact(star_graph(9))
        assert exact.value == pytest.approx(1.0)
        assert len(exact.side) in (1, 8)

    def test_cycle_graph_cut_two(self):
        exact = minimum_cut_exact(cycle_graph(10))
        assert exact.value == pytest.approx(2.0)


class TestSchedule:
    def test_adaptive_stops_early(self):
        g = planted_cut_graph((12, 12), 1, seed=0)
        _patience, max_trees = default_tree_schedule(24)
        exact = minimum_cut_exact(g)
        assert exact.trees_used <= max_trees

    def test_explicit_tree_count_is_exact_count(self):
        g = cycle_graph(8)
        exact = minimum_cut_exact(g, tree_count=5)
        assert exact.trees_used == 5
        assert len(exact.per_tree_values) == 5

    def test_per_tree_values_lower_bounded_by_best(self):
        g = connected_gnp_graph(18, 0.3, seed=4)
        exact = minimum_cut_exact(g, tree_count=6)
        assert min(exact.per_tree_values) == pytest.approx(exact.value)
        assert exact.per_tree_values[exact.tree_index - 1] == pytest.approx(
            exact.value
        )

    def test_patience_parameter(self):
        g = cycle_graph(12)
        exact = minimum_cut_exact(g, patience=1)
        # stops quickly: first tree achieves 2 everywhere on a cycle
        assert exact.trees_used <= 3

    def test_invalid_mode(self):
        with pytest.raises(AlgorithmError):
            minimum_cut_exact(cycle_graph(4), mode="quantum")


class TestCongestMode:
    def test_matches_reference_mode(self):
        g = planted_cut_graph((10, 10), 2, seed=2)
        ref = minimum_cut_exact(g)
        congest = minimum_cut_exact(g, mode="congest")
        assert congest.value == pytest.approx(ref.value)

    def test_metrics_present_and_charged(self):
        g = planted_cut_graph((10, 10), 2, seed=2)
        congest = minimum_cut_exact(g, mode="congest")
        assert congest.metrics is not None
        assert congest.metrics.measured_rounds > 0
        # One KP MST charge per tree + per-tree partition charges.
        kp_notes = [
            note
            for note in congest.metrics.charged_notes
            if "Kutten-Peleg MST" in note
        ]
        assert len(kp_notes) == congest.trees_used

    def test_reference_mode_has_no_metrics(self):
        g = cycle_graph(6)
        assert minimum_cut_exact(g).metrics is None
