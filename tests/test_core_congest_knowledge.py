"""Deep validation of the distributed knowledge phases (Steps 1b–5a):
after a distributed run, every node's memory must match the centralized
StructuresReference — A(v), F(v), merging flags, T'_F, per-edge LCAs."""

import pytest

from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.core.figure1 import figure1_instance
from repro.core.structures import StructuresReference
from repro.fragments import partition_tree
from repro.graphs import connected_gnp_graph, random_spanning_tree


def _run(graph, tree, threshold=None):
    net = CongestNetwork(graph)
    one_respecting_min_cut_congest(
        graph, tree, network=net, partition_threshold=threshold
    )
    dec = partition_tree(tree, threshold)
    ref = StructuresReference(graph, tree, dec)
    return net, dec, ref


@pytest.fixture(scope="module")
def fig1_run():
    inst = figure1_instance()
    net, dec, ref = _run(inst.graph, inst.tree, threshold=4)
    return inst, net, dec, ref


class TestFigure1Knowledge:
    def test_fragment_ids_installed(self, fig1_run):
        inst, net, dec, _ = fig1_run
        for u in inst.graph.nodes:
            assert net.memory[u]["frag:id"] == dec.fragment_id(u)

    def test_fragment_tree_known_to_all(self, fig1_run):
        inst, net, dec, _ = fig1_run
        expected = {
            fid: dec.parent_fragment(fid) for fid in dec.fragment_ids()
        }
        for u in inst.graph.nodes:
            assert net.memory[u]["or:tf"] == expected

    def test_fragment_roots_known_to_all(self, fig1_run):
        inst, net, dec, _ = fig1_run
        expected = {fid: dec.fragment_root(fid) for fid in dec.fragment_ids()}
        for u in inst.graph.nodes:
            assert net.memory[u]["or:frag_roots"] == expected

    def test_fragments_below(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u in inst.graph.nodes:
            assert net.memory[u]["or:F"] == ref.fragments_below[u]

    def test_scope_ancestors(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u in inst.graph.nodes:
            recorded = sorted(net.memory[u]["or:A"], key=lambda t: t[2])
            assert [a for a, _f, _h in recorded] == ref.scope_ancestors[u]

    def test_merging_flags(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u in inst.graph.nodes:
            assert net.memory[u]["or:is_merging"] == (u in ref.merging_nodes)

    def test_skeleton_tree_global(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u in inst.graph.nodes:
            assert net.memory[u]["or:tfprime"] == ref.skeleton_parent

    def test_skeleton_chains(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u in inst.graph.nodes:
            assert net.memory[u]["or:skeleton_chain"] == ref.skeleton_ancestors(u)

    def test_per_edge_lca(self, fig1_run):
        inst, net, _dec, _ref = fig1_run
        for u, v, _w in inst.graph.edges():
            expected = inst.tree.lca(u, v)
            assert net.memory[u]["or:lca"][v].lca == expected
            assert net.memory[v]["or:lca"][u].lca == expected

    def test_lca_types_match_reference(self, fig1_run):
        inst, net, _dec, ref = fig1_run
        for u, v, _w in inst.graph.edges():
            mtype, _lca, _holder = ref.rho_message_type(u, v)
            assert net.memory[u]["or:lca"][v].message_type == mtype

    def test_exactly_one_holder_per_edge(self, fig1_run):
        inst, net, _dec, _ref = fig1_run
        for u, v, _w in inst.graph.edges():
            holders = int(net.memory[u]["or:lca"][v].i_am_holder) + int(
                net.memory[v]["or:lca"][u].i_am_holder
            )
            assert holders == 1

    def test_type2_holder_in_lca_fragment(self, fig1_run):
        inst, net, dec, _ref = fig1_run
        for u, v, _w in inst.graph.edges():
            edge = net.memory[u]["or:lca"][v]
            if edge.message_type == 2 and edge.i_am_holder:
                assert dec.same_fragment(u, edge.lca)


class TestRandomInstanceKnowledge:
    @pytest.mark.parametrize("seed", range(6))
    def test_lcas_on_random_instances(self, seed):
        g = connected_gnp_graph(22, 0.3, seed=seed + 30)
        tree = random_spanning_tree(g, seed=seed)
        net, _dec, _ref = _run(g, tree)
        for u, v, _w in g.edges():
            assert net.memory[u]["or:lca"][v].lca == tree.lca(u, v), (u, v)

    @pytest.mark.parametrize("seed", range(6))
    def test_structures_on_random_instances(self, seed):
        g = connected_gnp_graph(18, 0.3, seed=seed + 80)
        tree = random_spanning_tree(g, seed=seed)
        net, _dec, ref = _run(g, tree)
        for u in g.nodes:
            assert net.memory[u]["or:F"] == ref.fragments_below[u]
            assert net.memory[u]["or:is_merging"] == (u in ref.merging_nodes)
            recorded = sorted(net.memory[u]["or:A"], key=lambda t: t[2])
            assert [a for a, _f, _h in recorded] == ref.scope_ancestors[u]

    @pytest.mark.parametrize("threshold", [2, 3, 6, 12])
    def test_thresholds_vary_fragmentation_not_answers(self, threshold):
        g = connected_gnp_graph(20, 0.3, seed=99)
        tree = random_spanning_tree(g, seed=99)
        net, dec, ref = _run(g, tree, threshold=threshold)
        for u, v, _w in g.edges():
            assert net.memory[u]["or:lca"][v].lca == tree.lca(u, v)
