"""Unit tests for distributed primitives: BFS, convergecast, dissemination,
pipelined keyed sums."""


from repro.congest import CongestNetwork
from repro.graphs import (
    RootedTree,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    bfs_distances,
)
from repro.primitives import (
    BFS_TREE,
    SPANNING_TREE,
    Convergecast,
    DowncastItems,
    PipelinedKeyedSum,
    UpcastUnion,
    build_bfs_tree,
    gossip_items,
    load_tree_into_memory,
    min_pair,
)


class TestBFS:
    def test_depths_match_bfs_distances(self):
        g = grid_graph(4, 5)
        net = CongestNetwork(g)
        build_bfs_tree(net, root=0)
        dist = bfs_distances(g, 0)
        for u in g.nodes:
            assert net.memory[u][BFS_TREE.depth_key] == dist[u]

    def test_parents_are_one_level_up(self):
        g = connected_gnp_graph(25, 0.2, seed=1)
        net = CongestNetwork(g)
        build_bfs_tree(net, root=0)
        for u in g.nodes:
            parent = net.memory[u][BFS_TREE.parent_key]
            if parent is None:
                assert u == 0
            else:
                assert (
                    net.memory[u][BFS_TREE.depth_key]
                    == net.memory[parent][BFS_TREE.depth_key] + 1
                )

    def test_children_lists_mirror_parents(self):
        g = cycle_graph(9)
        net = CongestNetwork(g)
        build_bfs_tree(net, root=0)
        for u in g.nodes:
            for c in net.memory[u][BFS_TREE.children_key]:
                assert net.memory[c][BFS_TREE.parent_key] == u

    def test_rounds_close_to_eccentricity(self):
        g = path_graph(30)
        net = CongestNetwork(g)
        result = build_bfs_tree(net, root=0)
        # D rounds to reach the far end + 1 adopt round.
        assert result.metrics.rounds <= 30 + 2

    def test_default_root_is_min_node(self):
        g = star_graph(5)
        net = CongestNetwork(g)
        build_bfs_tree(net)
        assert net.memory[0][BFS_TREE.parent_key] is None

    def test_deterministic_tie_break_lowest_id_parent(self):
        g = complete_graph(6)
        net = CongestNetwork(g)
        build_bfs_tree(net, root=0)
        for u in range(1, 6):
            assert net.memory[u][BFS_TREE.parent_key] == 0


def _install_tree(net, tree):
    load_tree_into_memory(net, tree, SPANNING_TREE)


class TestConvergecast:
    def test_subtree_sums_on_known_tree(self):
        tree = RootedTree(0, {1: 0, 2: 0, 3: 1, 4: 1})
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        net.run_phase(
            "sum",
            lambda u: Convergecast(
                SPANNING_TREE, initial=lambda ctx: ctx.node, out_key="s"
            ),
        )
        assert net.memory[0]["s"] == 10
        assert net.memory[1]["s"] == 8
        assert net.memory[2]["s"] == 2

    def test_min_pair_combiner(self):
        tree = RootedTree.path(6)
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        net.run_phase(
            "min",
            lambda u: Convergecast(
                SPANNING_TREE,
                initial=lambda ctx: (10 - ctx.node, ctx.node),
                combine=min_pair,
                out_key="m",
            ),
        )
        assert net.memory[0]["m"] == (5, 5)

    def test_rounds_proportional_to_depth(self):
        tree = RootedTree.path(25)
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        result = net.run_phase(
            "sum",
            lambda u: Convergecast(SPANNING_TREE, initial=lambda ctx: 1, out_key="s"),
        )
        assert result.metrics.rounds == 24

    def test_star_is_constant_rounds(self):
        tree = RootedTree.star(30)
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        result = net.run_phase(
            "sum",
            lambda u: Convergecast(SPANNING_TREE, initial=lambda ctx: 1, out_key="s"),
        )
        assert net.memory[0]["s"] == 30
        assert result.metrics.rounds == 1


class TestDissemination:
    def test_downcast_reaches_all_descendants(self):
        tree = RootedTree(0, {1: 0, 2: 0, 3: 1, 4: 3})
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        net.run_phase(
            "down",
            lambda u: DowncastItems(
                SPANNING_TREE,
                items=lambda ctx: [("hello", 1)] if ctx.node == 0 else [],
                out_key="d",
            ),
        )
        for u in tree.nodes:
            assert net.memory[u]["d"] == [("hello", 1)]

    def test_downcast_pipelines_k_items(self):
        tree = RootedTree.path(10)
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        k = 6
        result = net.run_phase(
            "down",
            lambda u: DowncastItems(
                SPANNING_TREE,
                items=lambda ctx: [(i,) for i in range(k)] if ctx.node == 0 else [],
                out_key="d",
            ),
        )
        assert len(net.memory[9]["d"]) == k
        # O(depth + k), not O(depth * k)
        assert result.metrics.rounds <= 9 + k

    def test_upcast_union_dedups(self):
        tree = RootedTree(0, {1: 0, 2: 0, 3: 1, 4: 2})
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        result = net.run_phase(
            "up",
            lambda u: UpcastUnion(
                SPANNING_TREE,
                items=lambda ctx: [("shared",), (ctx.node,)],
                out_key="u",
            ),
        )
        assert net.memory[0]["u"] == {("shared",), (0,), (1,), (2,), (3,), (4,)}
        assert net.memory[1]["u"] == {("shared",), (1,), (3,)}
        # 'shared' travels each edge at most once.
        assert result.metrics.messages <= 4 * 2 + 4

    def test_gossip_makes_union_global(self):
        g = connected_gnp_graph(18, 0.25, seed=5)
        net = CongestNetwork(g)
        gossip_items(net, lambda ctx: [(ctx.node,)] if ctx.node % 3 == 0 else [], "g")
        expected = {(u,) for u in g.nodes if u % 3 == 0}
        for u in g.nodes:
            assert net.memory[u]["g"] == expected

    def test_gossip_reuses_existing_bfs_tree(self):
        g = path_graph(6)
        net = CongestNetwork(g)
        build_bfs_tree(net)
        phases_before = len(net.metrics.phases)
        gossip_items(net, lambda ctx: [(ctx.node,)], "g")
        names = [p.name for p in net.metrics.phases[phases_before:]]
        assert names == ["gossip:up", "gossip:down"]


class TestPipelinedKeyedSum:
    def _run(self, tree, contributions, **kwargs):
        net = CongestNetwork(tree.to_graph())
        _install_tree(net, tree)
        result = net.run_phase(
            "ks",
            lambda u: PipelinedKeyedSum(
                SPANNING_TREE,
                contributions,
                out_key="k",
                **kwargs,
            ),
        )
        return net, result

    def test_root_collects_all_key_sums(self):
        tree = RootedTree(0, {1: 0, 2: 0, 3: 1, 4: 1})
        net, _ = self._run(tree, lambda ctx: [(100, ctx.node + 1), (200, 1)])
        root_map = net.memory[0]["k:root"]
        assert root_map[100] == 1 + 2 + 3 + 4 + 5
        assert root_map[200] == 5

    def test_capture_own_key_absorbs_at_owner(self):
        # Contributions keyed by an ancestor: each node contributes 1 to
        # every ancestor (including itself).
        tree = RootedTree(0, {1: 0, 2: 1, 3: 2, 4: 2})
        def contributions(ctx):
            chain = []
            node = ctx.node
            parents = {1: 0, 2: 1, 3: 2, 4: 2}
            while node is not None:
                chain.append((node, 1))
                node = parents.get(node)
            return chain

        net, _ = self._run(tree, contributions, capture_own_key=True)
        # Captured value at v = subtree size of v.
        assert net.memory[0]["k"] == 5
        assert net.memory[1]["k"] == 4
        assert net.memory[2]["k"] == 3
        assert net.memory[3]["k"] == 1

    def test_pipelining_rounds_bound(self):
        depth = 20
        keys = 15
        tree = RootedTree.path(depth + 1)
        net, result = self._run(
            tree, lambda ctx: [(k, 1) for k in range(keys)]
        )
        # O(depth + k) with small constants, far below depth * k.
        assert result.metrics.rounds <= depth + keys + 5
        assert net.memory[0]["k:root"] == {k: depth + 1 for k in range(keys)}

    def test_empty_contributions(self):
        tree = RootedTree.star(4)
        net, result = self._run(tree, lambda ctx: [])
        assert net.memory[0].get("k:root", {}) == {}

    def test_duplicate_keys_merge(self):
        tree = RootedTree.path(2)
        net, _ = self._run(tree, lambda ctx: [(7, 2), (7, 3)])
        assert net.memory[0]["k:root"][7] == 10
