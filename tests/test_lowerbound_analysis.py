"""Tests for the Das Sarma hard family and the analysis helpers."""


import pytest

from repro.analysis import fit_power_law, format_table, normalized_rounds
from repro.errors import AlgorithmError
from repro.graphs import diameter
from repro.lowerbound import das_sarma_instance, square_instance


class TestHardInstances:
    def test_connected_and_sized(self):
        inst = das_sarma_instance(5, 8)
        assert inst.graph.is_connected()
        assert inst.graph.number_of_nodes >= 5 * 8

    def test_low_diameter(self):
        inst = das_sarma_instance(8, 16)
        d = diameter(inst.graph)
        # Tree overlay keeps the diameter logarithmic in path length.
        assert d <= 4 * (inst.tree_depth + 2)

    def test_planted_side_value_recorded(self):
        inst = das_sarma_instance(4, 6)
        assert inst.graph.cut_value(inst.planted_side) == pytest.approx(
            inst.planted_cut_value
        )

    def test_planted_cut_is_minimum(self):
        from repro.baselines import stoer_wagner_min_cut

        inst = das_sarma_instance(3, 5)
        assert stoer_wagner_min_cut(inst.graph).value == pytest.approx(
            inst.planted_cut_value
        )

    def test_square_instance_scales(self):
        inst = square_instance(100)
        assert inst.paths == inst.path_length == 10

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            das_sarma_instance(0, 5)
        with pytest.raises(AlgorithmError):
            das_sarma_instance(3, 1)


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [3.0 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100.0) == pytest.approx(30.0)

    def test_linear_relationship(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        fit = fit_power_law(xs, [5 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(AlgorithmError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(AlgorithmError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(AlgorithmError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, 2.0])
        with pytest.raises(AlgorithmError):
            fit_power_law([2.0, 2.0], [1.0, 1.0])

    def test_normalized_rounds(self):
        assert normalized_rounds(100, 100, 10) == pytest.approx(100 / 20.0)


class TestTables:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "2.500" in out
        assert "3" in out  # integral floats render without decimals

    def test_column_alignment(self):
        out = format_table(["col"], [["wide-value"], ["x"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("wide-value")
