"""Baseline algorithm tests: Stoer–Wagner, brute force, Karger(-Stein),
bridges, Nagamochi–Ibaraki, Matula, Su."""

import pytest

from repro.baselines import (
    MAX_BRUTE_FORCE_NODES,
    bridge_component,
    brute_force_min_cut,
    contractible_edges,
    find_bridges,
    karger_min_cut,
    karger_stein_min_cut,
    matula_approx_min_cut,
    scan_intervals,
    sparse_certificate,
    stoer_wagner_min_cut,
    su_approx_min_cut,
)
from repro.errors import AlgorithmError
from repro.graphs import (
    WeightedGraph,
    barbell_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    path_graph,
    planted_cut_graph,
    star_graph,
)


class TestStoerWagner:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        g = connected_gnp_graph(9, 0.5, seed=seed, weight_range=(1.0, 4.0))
        assert stoer_wagner_min_cut(g).value == pytest.approx(
            brute_force_min_cut(g).value
        )

    def test_witness_side_realises_value(self):
        g = connected_gnp_graph(14, 0.4, seed=3)
        result = stoer_wagner_min_cut(g)
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_two_nodes(self):
        g = WeightedGraph([(0, 1, 2.5)])
        result = stoer_wagner_min_cut(g)
        assert result.value == 2.5
        assert result.side in ({frozenset({0})}, {frozenset({1})}) or len(
            result.side
        ) == 1

    def test_known_families(self):
        assert stoer_wagner_min_cut(cycle_graph(9)).value == 2.0
        assert stoer_wagner_min_cut(star_graph(7)).value == 1.0
        assert stoer_wagner_min_cut(complete_graph(6)).value == 5.0

    def test_weighted_instance(self):
        g = WeightedGraph(
            [(0, 1, 4.0), (1, 2, 4.0), (2, 0, 4.0), (2, 3, 0.5), (3, 4, 2.0), (4, 2, 2.0)]
        )
        result = stoer_wagner_min_cut(g)
        assert result.value == pytest.approx(0.5 + 2.0) or result.value <= 2.5

    def test_other_side_helper(self):
        g = cycle_graph(5)
        result = stoer_wagner_min_cut(g)
        assert result.side | result.other_side(g) == set(g.nodes)
        assert not result.side & result.other_side(g)

    def test_disconnected_rejected(self):
        with pytest.raises(Exception):
            stoer_wagner_min_cut(WeightedGraph([(0, 1), (2, 3)]))


class TestBruteForce:
    def test_size_guard(self):
        g = complete_graph(MAX_BRUTE_FORCE_NODES + 1)
        with pytest.raises(AlgorithmError):
            brute_force_min_cut(g)

    def test_witness_realises_value(self):
        g = planted_cut_graph((5, 6), 2, seed=1)
        result = brute_force_min_cut(g)
        assert result.value == 2.0
        assert g.cut_value(result.side) == 2.0

    def test_two_nodes(self):
        g = WeightedGraph([(0, 1, 7.0)])
        assert brute_force_min_cut(g).value == 7.0


class TestKargerFamily:
    @pytest.mark.parametrize("seed", range(4))
    def test_karger_finds_min_cut_with_enough_runs(self, seed):
        g = connected_gnp_graph(10, 0.5, seed=seed)
        truth = stoer_wagner_min_cut(g).value
        result = karger_min_cut(g, seed=seed)
        assert result.value == pytest.approx(truth)

    @pytest.mark.parametrize("seed", range(4))
    def test_karger_stein_finds_min_cut(self, seed):
        g = connected_gnp_graph(16, 0.4, seed=seed + 10)
        truth = stoer_wagner_min_cut(g).value
        result = karger_stein_min_cut(g, repetitions=25, seed=seed)
        assert result.value == pytest.approx(truth)

    def test_any_run_returns_valid_cut(self):
        g = connected_gnp_graph(12, 0.4, seed=2)
        result = karger_min_cut(g, repetitions=1, seed=0)
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_deterministic_per_seed(self):
        g = connected_gnp_graph(12, 0.4, seed=5)
        a = karger_min_cut(g, repetitions=5, seed=3)
        b = karger_min_cut(g, repetitions=5, seed=3)
        assert a.value == b.value and a.side == b.side

    def test_weighted_contraction_respects_weights(self):
        # One tiny-weight edge: contraction should essentially never pick
        # it first, so the min cut (that edge) survives most runs.
        g = complete_graph(6)
        g.add_node(6)
        g.add_edge(0, 6, 0.001)
        result = karger_min_cut(g, repetitions=30, seed=1)
        assert result.value == pytest.approx(0.001)


class TestBridges:
    def test_path_all_bridges(self):
        g = path_graph(6)
        assert len(find_bridges(g)) == 5

    def test_cycle_no_bridges(self):
        assert find_bridges(cycle_graph(6)) == []

    def test_barbell_bridge(self):
        g = barbell_graph(4, bridges=1)
        bridges = find_bridges(g)
        assert len(bridges) == 1
        assert set(bridges[0]) == {0, 4}

    def test_bridge_component(self):
        g = barbell_graph(4, bridges=1)
        (bridge,) = find_bridges(g)
        side = bridge_component(g, bridge)
        assert len(side) == 4
        assert g.cut_value(side) == 1.0

    def test_bridge_component_validates(self):
        g = cycle_graph(4)
        with pytest.raises(AlgorithmError):
            bridge_component(g, (0, 1))  # not a bridge

    def test_disconnected_graph_bridges(self):
        g = WeightedGraph([(0, 1), (2, 3), (3, 4), (4, 2)])
        assert find_bridges(g) == [(0, 1)]


class TestNagamochiIbaraki:
    def test_intervals_cover_all_edges(self):
        g = connected_gnp_graph(15, 0.4, seed=1)
        intervals = scan_intervals(g)
        assert len(intervals) == g.number_of_edges

    def test_certificate_preserves_small_cuts(self):
        g = planted_cut_graph((10, 10), 2, seed=3)
        cert = sparse_certificate(g, k=4.0)
        assert stoer_wagner_min_cut(cert).value == pytest.approx(2.0)

    def test_certificate_is_sparse(self):
        g = complete_graph(20)
        k = 3.0
        cert = sparse_certificate(g, k)
        assert cert.total_weight() <= k * (20 - 1) + 1e-9

    def test_certificate_caps_cut_values(self):
        g = complete_graph(10)
        cert = sparse_certificate(g, k=2.0)
        assert stoer_wagner_min_cut(cert).value <= 2.0 + 1e-9

    def test_contractible_edges_are_safe(self):
        g = planted_cut_graph((8, 8), 1, seed=0)
        truth = stoer_wagner_min_cut(g).value
        for u, v in contractible_edges(g, k=truth + 0.5):
            # Contracting must not destroy the min cut: both endpoints on
            # the same side of the planted cut.
            assert (u < 8) == (v < 8)

    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            sparse_certificate(cycle_graph(4), 0.0)


class TestMatula:
    @pytest.mark.parametrize("seed", range(8))
    def test_ratio_within_two_plus_eps(self, seed):
        g = connected_gnp_graph(20, 0.3, seed=seed)
        truth = stoer_wagner_min_cut(g).value
        result = matula_approx_min_cut(g, epsilon=0.5)
        assert truth - 1e-9 <= result.value <= (2.5) * truth + 1e-9

    def test_witness_realises_value(self):
        g = planted_cut_graph((9, 9), 2, seed=2)
        result = matula_approx_min_cut(g)
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_exact_on_star(self):
        assert matula_approx_min_cut(star_graph(8)).value == 1.0

    def test_invalid_epsilon(self):
        with pytest.raises(AlgorithmError):
            matula_approx_min_cut(cycle_graph(4), epsilon=0.0)


class TestSu:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_upper_bound(self, seed):
        g = planted_cut_graph((10, 10), 2, seed=seed)
        truth = stoer_wagner_min_cut(g).value
        result = su_approx_min_cut(g, seed=seed)
        assert result.value >= truth - 1e-9
        assert g.cut_value(result.side) == pytest.approx(result.value)

    def test_finds_planted_cut_usually(self):
        hits = 0
        for seed in range(6):
            g = planted_cut_graph((10, 10), 1, seed=seed)
            if su_approx_min_cut(g, seed=seed).value == pytest.approx(1.0):
                hits += 1
        assert hits >= 4

    def test_two_node_graph(self):
        g = WeightedGraph([(0, 1, 3.0)])
        assert su_approx_min_cut(g, seed=0).value == 3.0
