"""Karger skeleton sampling tests (determinism, concentration, edge cases)."""

import random

import pytest

from repro.errors import AlgorithmError
from repro.graphs import WeightedGraph, complete_graph, planted_cut_graph
from repro.sampling import (
    sample_skeleton,
    sampling_probability,
    skeleton_cut_estimate,
)


class TestProbability:
    def test_decreases_with_lambda(self):
        p_small = sampling_probability(100, 0.5, 80.0)
        p_large = sampling_probability(100, 0.5, 800.0)
        assert p_large < p_small < 1.0

    def test_decreases_with_epsilon(self):
        loose = sampling_probability(100, 1.0, 500.0)
        tight = sampling_probability(100, 0.5, 500.0)
        assert loose < tight < 1.0

    def test_capped_at_one(self):
        assert sampling_probability(100, 0.1, 1.0) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(AlgorithmError):
            sampling_probability(10, 0.0, 5.0)
        with pytest.raises(AlgorithmError):
            sampling_probability(10, 0.5, 0.0)


class TestSampling:
    def test_probability_one_keeps_everything(self):
        g = complete_graph(8)
        skeleton = sample_skeleton(g, 1.0, seed=0)
        assert skeleton.edge_list() == g.edge_list()

    def test_probability_zero_keeps_nodes_only(self):
        g = complete_graph(6)
        skeleton = sample_skeleton(g, 0.0, seed=0)
        assert skeleton.number_of_edges == 0
        assert skeleton.number_of_nodes == 6

    def test_deterministic_per_seed(self):
        g = complete_graph(10)
        a = sample_skeleton(g, 0.4, seed=3)
        b = sample_skeleton(g, 0.4, seed=3)
        c = sample_skeleton(g, 0.4, seed=4)
        assert a.edge_list() == b.edge_list()
        assert a.edge_list() != c.edge_list()

    def test_integer_weights_become_binomials(self):
        g = WeightedGraph([(0, 1, 50.0)])
        skeleton = sample_skeleton(g, 0.5, seed=1)
        kept = skeleton.weight(0, 1) if skeleton.has_edge(0, 1) else 0.0
        assert 10 <= kept <= 40  # Binomial(50, .5) tail bound, generous

    def test_non_integer_weight_rejected(self):
        g = WeightedGraph([(0, 1, 1.5)])
        with pytest.raises(AlgorithmError):
            sample_skeleton(g, 0.5)

    def test_invalid_probability(self):
        with pytest.raises(AlgorithmError):
            sample_skeleton(complete_graph(3), 1.5)

    def test_shared_rng_advances(self):
        g = complete_graph(8)
        rng = random.Random(0)
        a = sample_skeleton(g, 0.4, rng=rng)
        b = sample_skeleton(g, 0.4, rng=rng)
        assert a.edge_list() != b.edge_list()


class TestConcentration:
    def test_cut_values_concentrate(self):
        """Statistical reproduction of Karger's lemma: at the prescribed
        rate, the planted cut's sampled value rescales to within ~±ε."""
        g = planted_cut_graph((40, 40), 60, seed=5, intra_p=0.9)
        true_cut = 60.0
        epsilon = 0.8
        p = sampling_probability(g.number_of_nodes, epsilon, true_cut)
        assert p < 1.0  # the sampling branch must actually engage
        side = set(range(40))
        within = 0
        trials = 12
        for seed in range(trials):
            skeleton = sample_skeleton(g, p, seed=seed)
            estimate = skeleton_cut_estimate(skeleton.cut_value(side), p)
            if abs(estimate - true_cut) <= 1.2 * epsilon * true_cut:
                within += 1
        assert within >= trials - 1

    def test_estimate_rescaling(self):
        assert skeleton_cut_estimate(6.0, 0.5) == 12.0
        with pytest.raises(AlgorithmError):
            skeleton_cut_estimate(6.0, 0.0)
