"""Unit tests for the WeightedGraph substrate."""

import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import WeightedGraph, edge_key


class TestConstruction:
    def test_empty_graph(self):
        g = WeightedGraph()
        assert g.number_of_nodes == 0
        assert g.number_of_edges == 0

    def test_from_edge_tuples(self):
        g = WeightedGraph([(0, 1), (1, 2, 2.5)])
        assert g.number_of_nodes == 3
        assert g.weight(1, 2) == 2.5
        assert g.weight(0, 1) == 1.0

    def test_add_node_idempotent(self):
        g = WeightedGraph()
        g.add_node(5)
        g.add_node(5)
        assert g.nodes == [5]

    def test_parallel_edges_merge_weights(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.5)
        g.add_edge(1, 0, 2.5)
        assert g.weight(0, 1) == 4.0
        assert g.number_of_edges == 1

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_nonpositive_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -2.0)

    def test_set_edge_weight_overwrites(self):
        g = WeightedGraph([(0, 1, 2.0)])
        g.set_edge_weight(0, 1, 5.0)
        assert g.weight(1, 0) == 5.0

    def test_set_edge_weight_missing_edge(self):
        g = WeightedGraph([(0, 1)])
        with pytest.raises(GraphError):
            g.set_edge_weight(0, 2, 1.0)


class TestNoopMutators:
    """Mutators that provably change nothing must not invalidate caches."""

    def test_set_edge_weight_to_current_value_keeps_caches(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 3.0)])
        index = g.index()
        digest = g.content_hash()
        g.set_edge_weight(0, 1, 2.0)
        g.set_edge_weight(1, 0, 2)  # either orientation, int spelling too
        assert g.index() is index          # same cached object, no rebuild
        assert g.content_hash() == digest

    def test_set_edge_weight_to_new_value_still_invalidates(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0), (0, 2, 3.0)])
        index = g.index()
        digest = g.content_hash()
        g.set_edge_weight(0, 1, 2.5)
        assert g.index() is not index
        assert g.content_hash() != digest

    def test_add_existing_node_keeps_caches(self):
        g = WeightedGraph([(0, 1, 2.0)])
        index = g.index()
        digest = g.content_hash()
        g.add_node(0)
        assert g.index() is index
        assert g.content_hash() == digest


class TestMutation:
    def test_remove_edge(self):
        g = WeightedGraph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.number_of_nodes == 3

    def test_remove_missing_edge(self):
        g = WeightedGraph([(0, 1)])
        with pytest.raises(GraphError):
            g.remove_edge(0, 2)

    def test_remove_node_clears_incident_edges(self):
        g = WeightedGraph([(0, 1), (1, 2), (0, 2)])
        g.remove_node(1)
        assert 1 not in g
        assert g.has_edge(0, 2)
        assert g.degree(0) == 1

    def test_remove_missing_node(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.remove_node(9)


class TestQueries:
    def test_degree_and_weighted_degree(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.weighted_degree(0) == 4.0
        assert triangle.weighted_degree(1) == 3.0

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == 6.0

    def test_neighbors_order_is_insertion(self):
        g = WeightedGraph([(0, 2), (0, 1)])
        assert g.neighbors(0) == [2, 1]

    def test_unknown_node_queries_raise(self):
        g = WeightedGraph([(0, 1)])
        with pytest.raises(GraphError):
            g.neighbors(7)
        with pytest.raises(GraphError):
            g.degree(7)
        with pytest.raises(GraphError):
            g.weight(0, 7)

    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        keys = {edge_key(u, v) for u, v, _ in edges}
        assert len(keys) == 3

    def test_edge_list_sorted_for_int_nodes(self, triangle):
        assert triangle.edge_list() == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]

    def test_len_and_contains(self, triangle):
        assert len(triangle) == 3
        assert 2 in triangle
        assert 9 not in triangle


class TestCutValue:
    def test_triangle_cuts(self, triangle):
        assert triangle.cut_value({0}) == 4.0
        assert triangle.cut_value({1}) == 3.0
        assert triangle.cut_value({2}) == 5.0
        assert triangle.cut_value({0, 1}) == 5.0

    def test_cut_is_symmetric(self, small_planted):
        side = set(range(10))
        other = set(small_planted.nodes) - side
        assert small_planted.cut_value(side) == small_planted.cut_value(other)

    def test_planted_cut_value(self, small_planted):
        assert small_planted.cut_value(set(range(10))) == 3.0

    def test_trivial_cut_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.cut_value(set())
        with pytest.raises(GraphError):
            triangle.cut_value({0, 1, 2})

    def test_cut_with_unknown_node_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.cut_value({0, 99})


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(0, 1, 10.0)
        assert triangle.weight(0, 1) == 1.0
        assert clone.weight(0, 1) == 11.0

    def test_copy_preserves_isolated_nodes(self):
        g = WeightedGraph()
        g.add_node(42)
        assert g.copy().nodes == [42]

    def test_subgraph_induced(self):
        g = WeightedGraph([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = g.subgraph({0, 1, 2})
        assert sub.number_of_nodes == 3
        assert sub.number_of_edges == 2
        assert not sub.has_edge(0, 3)

    def test_subgraph_unknown_node(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph({0, 77})

    def test_reweighted(self, triangle):
        doubled = triangle.reweighted(lambda u, v, w: 2 * w)
        assert doubled.weight(1, 2) == 4.0
        assert triangle.weight(1, 2) == 2.0


class TestConnectivity:
    def test_connected_components(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        g.add_node(4)
        comps = sorted(g.connected_components(), key=lambda s: min(s))
        assert comps == [{0, 1}, {2, 3}, {4}]

    def test_is_connected(self, triangle):
        assert triangle.is_connected()
        assert not WeightedGraph().is_connected()

    def test_require_connected_raises(self):
        g = WeightedGraph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            g.require_connected()

    def test_single_node_is_connected(self):
        g = WeightedGraph()
        g.add_node(0)
        assert g.is_connected()


class TestEdgeKey:
    def test_canonical_for_ints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_canonical_for_mixed_types(self):
        assert edge_key("b", "a") == ("a", "b")


class TestContentHash:
    def test_stable_hex_digest(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0)])
        digest = g.content_hash()
        assert len(digest) == 64
        assert digest == g.content_hash()  # pure function of content

    def test_insertion_order_invariant(self):
        a = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0)])
        b = WeightedGraph([(2, 3, 4.0), (2, 1, 1.0), (1, 0, 2.0)])
        assert a.content_hash() == b.content_hash()

    def test_multigraph_merge_history_invariant(self):
        merged = WeightedGraph([(0, 1, 1.0), (0, 1, 1.0), (1, 2, 1.0)])
        direct = WeightedGraph([(0, 1, 2.0), (1, 2, 1.0)])
        assert merged.content_hash() == direct.content_hash()

    def test_weight_changes_hash(self):
        a = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0)])
        b = WeightedGraph([(0, 1, 1.0), (1, 2, 2.0)])
        assert a.content_hash() != b.content_hash()

    def test_extra_edge_changes_hash(self):
        a = WeightedGraph([(0, 1), (1, 2)])
        b = WeightedGraph([(0, 1), (1, 2), (2, 0)])
        assert a.content_hash() != b.content_hash()

    def test_isolated_node_changes_hash(self):
        a = WeightedGraph([(0, 1)])
        b = WeightedGraph([(0, 1)])
        b.add_node(2)
        assert a.content_hash() != b.content_hash()

    def test_integer_and_float_weights_agree(self):
        # add_edge stores floats; repr(float(w)) canonicalises both spellings.
        a = WeightedGraph([(0, 1, 1), (1, 2, 3)])
        b = WeightedGraph([(0, 1, 1.0), (1, 2, 3.0)])
        assert a.content_hash() == b.content_hash()
