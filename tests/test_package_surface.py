"""Public API surface tests: exports, error hierarchy, version."""

import pytest

import repro
from repro.errors import (
    AlgorithmError,
    BandwidthExceededError,
    CongestError,
    DisconnectedGraphError,
    GraphError,
    ProtocolError,
    ReproError,
    RoundLimitExceededError,
    TreeError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "child,parent",
        [
            (GraphError, ReproError),
            (DisconnectedGraphError, GraphError),
            (TreeError, ReproError),
            (CongestError, ReproError),
            (BandwidthExceededError, CongestError),
            (RoundLimitExceededError, CongestError),
            (ProtocolError, CongestError),
            (AlgorithmError, ReproError),
        ],
    )
    def test_subclassing(self, child, parent):
        assert issubclass(child, parent)

    def test_catch_all_via_base(self):
        with pytest.raises(ReproError):
            raise BandwidthExceededError("boom")

    def test_errors_are_not_each_other(self):
        assert not issubclass(GraphError, CongestError)
        assert not issubclass(TreeError, GraphError)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.graphs", ["WeightedGraph", "RootedTree", "planted_cut_graph"]),
            ("repro.congest", ["CongestNetwork", "NodeProgram", "MessageTracer"]),
            ("repro.primitives", ["PipelinedKeyedSum", "build_bfs_tree"]),
            ("repro.fragments", ["partition_tree", "run_distributed_partition"]),
            ("repro.mst", ["minimum_spanning_tree", "boruvka_mst"]),
            ("repro.packing", ["GreedyTreePacking", "certified_cut_bounds"]),
            ("repro.sampling", ["sample_skeleton", "sampling_probability"]),
            (
                "repro.core",
                [
                    "one_respecting_min_cut_congest",
                    "one_respecting_min_cut_reference",
                    "two_respecting_min_cut_reference",
                ],
            ),
            (
                "repro.mincut",
                [
                    "minimum_cut_exact",
                    "minimum_cut_approx",
                    "minimum_cut_exact_congest_full",
                ],
            ),
            (
                "repro.baselines",
                [
                    "stoer_wagner_min_cut",
                    "gomory_hu_tree",
                    "su_minimum_cut_congest",
                ],
            ),
            ("repro.lowerbound", ["das_sarma_instance"]),
            ("repro.analysis", ["fit_power_law", "format_table", "write_report"]),
        ],
    )
    def test_subpackage_exports(self, module, names):
        import importlib

        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"
            assert name in mod.__all__

    def test_every_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro as root

        for info in pkgutil.walk_packages(root.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"
