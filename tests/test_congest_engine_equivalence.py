"""Engine equivalence: batched/numpy delivery reproduces the oracle.

PR 3 rewrote :meth:`CongestNetwork.run_phase` on flat arrays indexed by
directed-edge id; PR 7 split delivery into three selectable engines
(per-message, batched, numpy) behind ``CongestNetwork(engine=...)``.
The **per-message** path — one dispatch branch per hop, the loop
tracers pin — is the semantic oracle here (the retired standalone
legacy loop shared its dispatch semantics bit for bit).  These tests
run representative protocols — BFS, convergecast, pipelined keyed
sums, gossip, Borůvka MST, and the full 1-respecting min-cut sweep —
on every engine and assert **identical** :class:`PhaseMetrics`
(rounds, messages, words, max backlog), bit-identical node outputs,
and bit-identical persistent memory, seed for seed.  Each engine's
delivery order mirrors the oracle's insertion-order iteration by
construction (down to building the active set from a dict, whose
CPython table layout differs from a set built off a list), so even
float accumulations and arrival orders agree to the last bit.

A hypothesis-driven generator closes the gap between the fixed protocol
matrix and the space of schedules: random programs draw their sends
from per-node RNGs, so any divergence in inbox order between engines
immediately cascades into divergent RNG streams and is caught by the
memory comparison.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import (
    CongestNetwork,
    NodeProgram,
    numpy_available,
)
from repro.errors import CongestError
from repro.core import one_respecting_min_cut_congest
from repro.graphs import (
    build_family,
    grid_graph,
    random_spanning_tree,
    weighted_ring_of_cliques,
)
from repro.mst import boruvka_mst
from repro.primitives import (
    BFS_TREE,
    Convergecast,
    PipelinedKeyedSum,
    build_bfs_tree,
    gossip_items,
)


def _engine_factories():
    """(name, factory) per engine; the per-message oracle is always first."""
    factories = [
        ("per-message", lambda g: CongestNetwork(g, engine="per-message")),
        ("batched", lambda g: CongestNetwork(g, engine="batched")),
    ]
    if numpy_available():
        factories.append(("numpy", lambda g: CongestNetwork(g, engine="numpy")))
    return factories


ENGINE_NAMES = tuple(name for name, _ in _engine_factories())


def _graph_cases():
    return [
        ("gnp-49", build_family("gnp", 49, seed=4)),
        ("grid-36", grid_graph(6, 6)),
        ("regular-36", build_family("regular", 36, seed=7)),
        # Float weights: bit-identical sums require identical delivery
        # *and* processing order, the strongest equivalence.
        ("ring-cliques", weighted_ring_of_cliques(5, 4, bridge_weight=0.7)),
    ]


def _phase_tuples(net):
    return [
        (p.name, p.rounds, p.messages, p.words, p.max_message_words,
         p.max_edge_backlog)
        for p in net.metrics.phases
    ]


def _run_on_all(graph, driver):
    """Run ``driver(network)`` on every engine; return networks+results."""
    nets, results = [], []
    for engine_name, factory in _engine_factories():
        net = factory(graph)
        assert net.active_engine == engine_name
        results.append(driver(net))
        nets.append(net)
    return nets, results


def _assert_networks_identical(nets):
    oracle = nets[0]
    for net, engine_name in zip(nets[1:], ENGINE_NAMES[1:]):
        assert _phase_tuples(net) == _phase_tuples(oracle), engine_name
        assert net.metrics.charged_rounds == oracle.metrics.charged_rounds
        assert tuple(net.nodes) == tuple(oracle.nodes)
        for u in oracle.nodes:
            assert net.memory[u] == oracle.memory[u], (
                f"{engine_name} memory differs at {u!r}"
            )


def _assert_all_equal(results, label):
    first = results[0]
    for result, engine_name in zip(results[1:], ENGINE_NAMES[1:]):
        assert result == first, f"{engine_name} {label} diverges"


@pytest.mark.parametrize("name,graph", _graph_cases())
class TestProtocolEquivalence:
    def test_bfs_tree(self, name, graph):
        nets, results = _run_on_all(graph, lambda net: build_bfs_tree(net))
        _assert_networks_identical(nets)
        _assert_all_equal([r.outputs for r in results], "outputs")

    def test_convergecast_weighted_degrees(self, name, graph):
        def driver(net):
            build_bfs_tree(net)
            return net.run_phase(
                "cc",
                lambda u: Convergecast(
                    BFS_TREE, initial=lambda ctx: ctx.weighted_degree()
                ),
            )

        nets, results = _run_on_all(graph, driver)
        _assert_networks_identical(nets)
        _assert_all_equal([r.outputs for r in results], "outputs")

    def test_pipelined_keyed_sums(self, name, graph):
        def driver(net):
            build_bfs_tree(net)
            return net.run_phase(
                "ks",
                lambda u: PipelinedKeyedSum(
                    BFS_TREE,
                    lambda ctx: [(ctx.node % 5, 1), (ctx.node % 3, 2)],
                ),
            )

        nets, results = _run_on_all(graph, driver)
        _assert_networks_identical(nets)

    def test_gossip(self, name, graph):
        def driver(net):
            gossip_items(
                net,
                lambda ctx: [(ctx.node, ctx.degree)] if ctx.degree >= 3 else [],
                out_key="eq:gossip",
            )
            return net.memory_map("eq:gossip")

        nets, results = _run_on_all(graph, driver)
        _assert_networks_identical(nets)
        _assert_all_equal(results, "gossip map")

    def test_boruvka_mst(self, name, graph):
        nets, results = _run_on_all(graph, boruvka_mst)
        _assert_networks_identical(nets)
        _assert_all_equal([sorted(t.edges()) for t in results], "mst edges")


@pytest.mark.parametrize("seed", [0, 1])
def test_one_respect_sweep_equivalence(seed):
    graph = build_family("gnp", 64, seed=seed)
    tree = random_spanning_tree(graph, seed=seed)

    def driver(net):
        return one_respecting_min_cut_congest(graph, tree, network=net)

    nets, results = _run_on_all(graph, driver)
    _assert_networks_identical(nets)
    _assert_all_equal([r.best_value for r in results], "best_value")
    _assert_all_equal([r.best_node for r in results], "best_node")
    _assert_all_equal([r.cut_values for r in results], "cut_values")


def test_one_respect_simulated_partition_equivalence():
    graph = grid_graph(7, 7)
    tree = random_spanning_tree(graph, seed=2)

    def driver(net):
        return one_respecting_min_cut_congest(
            graph, tree, network=net, simulate_partition=True
        )

    nets, results = _run_on_all(graph, driver)
    _assert_networks_identical(nets)
    _assert_all_equal([r.best_value for r in results], "best_value")
    _assert_all_equal([r.cut_values for r in results], "cut_values")


# -- randomized schedule equivalence ----------------------------------


class _RandomWalkProgram(NodeProgram):
    """A randomized, self-terminating protocol for schedule fuzzing.

    Each node owns a deterministic RNG seeded by ``(seed, node)``; on
    start it emits a few TTL-bounded tokens, and on every delivery it
    records the arrival (round, sender, payload) and forwards surviving
    tokens to randomly drawn neighbours, sometimes duplicating them.
    Every RNG draw happens in inbox order, so engines only stay in
    lockstep if their delivery and dispatch orders are bit-identical —
    any divergence snowballs into different sends, different metrics,
    and different memory.  TTLs strictly decrease, so quiescence is
    guaranteed.
    """

    KIND = "tok"

    def __init__(self, node, seed):
        self.rng = random.Random(hash((seed, node)))

    def on_start(self, ctx):
        ctx.memory["fuzz:log"] = log = []
        rng = self.rng
        for _ in range(rng.randint(0, 3)):
            ttl = rng.randint(0, 3)
            token = rng.randint(0, 99)
            target = rng.choice(ctx.neighbors)
            log.append(("start", target, ttl, token))
            ctx.send(target, self.KIND, ttl, token)

    def on_round(self, ctx, inbox):
        log = ctx.memory["fuzz:log"]
        rng = self.rng
        for src, msg in inbox:
            ttl, token = msg.payload
            log.append((ctx.round, src, ttl, token))
            if ttl > 0:
                for _ in range(rng.randint(1, 2)):
                    target = rng.choice(ctx.neighbors)
                    ctx.send(target, self.KIND, ttl - 1, token)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    graph_case=st.sampled_from(["gnp-49", "grid-36", "regular-36"]),
)
def test_random_program_equivalence(seed, graph_case):
    graph = dict(_graph_cases())[graph_case]

    def driver(net):
        return net.run_phase(
            "fuzz", lambda u: _RandomWalkProgram(u, seed), max_rounds=10_000
        )

    nets, results = _run_on_all(graph, driver)
    _assert_networks_identical(nets)
    _assert_all_equal([r.outputs for r in results], "outputs")


def test_per_message_engine_explicitly_selectable():
    """The oracle path is a first-class engine choice, not tracer-only."""
    net = CongestNetwork(grid_graph(3, 3), engine="per-message")
    assert net.active_engine == "per-message"


def test_unknown_engine_rejected():
    with pytest.raises(CongestError, match="unknown congest engine"):
        CongestNetwork(grid_graph(3, 3), engine="dict-loop")
