"""Engine equivalence: the indexed loop reproduces the legacy loop exactly.

PR 3 rewrote :meth:`CongestNetwork.run_phase` on flat arrays indexed by
directed-edge id; the original dict-based loop survives as
:class:`~repro.congest.legacy.LegacyCongestNetwork`.  These tests run
representative protocols — BFS, convergecast, pipelined keyed sums,
gossip, Borůvka MST, and the full 1-respecting min-cut sweep — on both
engines and assert **identical** :class:`PhaseMetrics` (rounds,
messages, words, max backlog), bit-identical node outputs, and
bit-identical persistent memory, seed for seed.  The indexed engine's
delivery order mirrors the legacy dict's insertion-order iteration by
construction, so even float accumulations agree to the last bit.
"""

import pytest

from repro.congest import CongestNetwork, LegacyCongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.graphs import (
    build_family,
    grid_graph,
    random_spanning_tree,
    weighted_ring_of_cliques,
)
from repro.mst import boruvka_mst
from repro.primitives import (
    BFS_TREE,
    Convergecast,
    PipelinedKeyedSum,
    build_bfs_tree,
    gossip_items,
)

ENGINES = (LegacyCongestNetwork, CongestNetwork)


def _graph_cases():
    return [
        ("gnp-49", build_family("gnp", 49, seed=4)),
        ("grid-36", grid_graph(6, 6)),
        ("regular-36", build_family("regular", 36, seed=7)),
        # Float weights: bit-identical sums require identical delivery
        # *and* processing order, the strongest equivalence.
        ("ring-cliques", weighted_ring_of_cliques(5, 4, bridge_weight=0.7)),
    ]


def _phase_tuples(net):
    return [
        (p.name, p.rounds, p.messages, p.words, p.max_message_words,
         p.max_edge_backlog)
        for p in net.metrics.phases
    ]


def _run_on_both(graph, driver):
    """Run ``driver(network)`` on both engines; return both networks and
    the driver results."""
    nets, results = [], []
    for engine in ENGINES:
        net = engine(graph)
        results.append(driver(net))
        nets.append(net)
    return nets, results


def _assert_networks_identical(nets):
    legacy, indexed = nets
    assert _phase_tuples(indexed) == _phase_tuples(legacy)
    assert indexed.metrics.charged_rounds == legacy.metrics.charged_rounds
    assert tuple(indexed.nodes) == tuple(legacy.nodes)
    for u in legacy.nodes:
        assert indexed.memory[u] == legacy.memory[u], f"memory differs at {u!r}"


@pytest.mark.parametrize("name,graph", _graph_cases())
class TestProtocolEquivalence:
    def test_bfs_tree(self, name, graph):
        nets, results = _run_on_both(graph, lambda net: build_bfs_tree(net))
        _assert_networks_identical(nets)
        legacy_result, indexed_result = results
        assert indexed_result.outputs == legacy_result.outputs

    def test_convergecast_weighted_degrees(self, name, graph):
        def driver(net):
            build_bfs_tree(net)
            return net.run_phase(
                "cc",
                lambda u: Convergecast(
                    BFS_TREE, initial=lambda ctx: ctx.weighted_degree()
                ),
            )

        nets, results = _run_on_both(graph, driver)
        _assert_networks_identical(nets)
        legacy_result, indexed_result = results
        assert indexed_result.outputs == legacy_result.outputs

    def test_pipelined_keyed_sums(self, name, graph):
        def driver(net):
            build_bfs_tree(net)
            return net.run_phase(
                "ks",
                lambda u: PipelinedKeyedSum(
                    BFS_TREE,
                    lambda ctx: [(ctx.node % 5, 1), (ctx.node % 3, 2)],
                ),
            )

        nets, results = _run_on_both(graph, driver)
        _assert_networks_identical(nets)

    def test_gossip(self, name, graph):
        def driver(net):
            gossip_items(
                net,
                lambda ctx: [(ctx.node, ctx.degree)] if ctx.degree >= 3 else [],
                out_key="eq:gossip",
            )
            return net.memory_map("eq:gossip")

        nets, results = _run_on_both(graph, driver)
        _assert_networks_identical(nets)
        legacy_map, indexed_map = results
        assert indexed_map == legacy_map

    def test_boruvka_mst(self, name, graph):
        nets, results = _run_on_both(graph, boruvka_mst)
        _assert_networks_identical(nets)
        legacy_tree, indexed_tree = results
        assert sorted(indexed_tree.edges()) == sorted(legacy_tree.edges())


@pytest.mark.parametrize("seed", [0, 1])
def test_one_respect_sweep_equivalence(seed):
    graph = build_family("gnp", 64, seed=seed)
    tree = random_spanning_tree(graph, seed=seed)

    def driver(net):
        return one_respecting_min_cut_congest(graph, tree, network=net)

    nets, results = _run_on_both(graph, driver)
    _assert_networks_identical(nets)
    legacy_result, indexed_result = results
    assert indexed_result.best_value == legacy_result.best_value
    assert indexed_result.best_node == legacy_result.best_node
    assert indexed_result.cut_values == legacy_result.cut_values


def test_one_respect_simulated_partition_equivalence():
    graph = grid_graph(7, 7)
    tree = random_spanning_tree(graph, seed=2)

    def driver(net):
        return one_respecting_min_cut_congest(
            graph, tree, network=net, simulate_partition=True
        )

    nets, results = _run_on_both(graph, driver)
    _assert_networks_identical(nets)
    legacy_result, indexed_result = results
    assert indexed_result.best_value == legacy_result.best_value
    assert indexed_result.cut_values == legacy_result.cut_values
