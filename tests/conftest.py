"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    RootedTree,
    WeightedGraph,
    connected_gnp_graph,
    planted_cut_graph,
    random_spanning_tree,
)


@pytest.fixture
def triangle() -> WeightedGraph:
    """K3 with distinct weights — smallest interesting cut instance."""
    return WeightedGraph([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])


@pytest.fixture
def small_planted() -> WeightedGraph:
    """Two dense blobs joined by exactly 3 unit edges (λ = 3)."""
    return planted_cut_graph((10, 12), 3, seed=7)


@pytest.fixture
def medium_graph() -> WeightedGraph:
    """A connected ER graph used by the heavier integration tests."""
    return connected_gnp_graph(28, 0.25, seed=11)


@pytest.fixture
def medium_tree(medium_graph) -> RootedTree:
    return random_spanning_tree(medium_graph, seed=3)


@pytest.fixture
def caterpillar() -> RootedTree:
    """A path 0-1-2-3-4 with a leaf hanging off every spine node."""
    parent = {}
    for i in range(1, 5):
        parent[i] = i - 1
    for i in range(5, 10):
        parent[i] = i - 5
    return RootedTree(0, parent)
