"""Tests for the message tracer and its engine hook."""

import pytest

from repro.congest import (
    CongestNetwork,
    MessageTracer,
    kind_filter,
    node_filter,
    numpy_available,
)
from repro.graphs import RootedTree, build_family, path_graph, star_graph
from repro.primitives import SPANNING_TREE, build_bfs_tree, load_tree_into_memory
from repro.primitives.keyed_sums import PipelinedKeyedSum


def _traced_bfs(graph, tracer):
    net = CongestNetwork(graph, tracer=tracer)
    build_bfs_tree(net, root=0)
    return net


class TestRecording:
    def test_records_all_messages(self):
        tracer = MessageTracer()
        net = _traced_bfs(star_graph(6), tracer)
        assert len(tracer) == net.metrics.total_messages

    def test_event_fields(self):
        tracer = MessageTracer()
        _traced_bfs(path_graph(3), tracer)
        first = tracer.events[0]
        assert first.phase == "bfs-tree"
        assert first.round == 1
        assert first.src == 0
        assert first.dst == 1
        assert first.kind == "bfs"

    def test_kind_histogram(self):
        tracer = MessageTracer()
        _traced_bfs(star_graph(5), tracer)
        histogram = tracer.kind_histogram()
        assert histogram == {"bfs": 4, "adopt": 4}

    def test_between_preserves_delivery_order(self):
        tracer = MessageTracer()
        tree = RootedTree.path(4)
        net = CongestNetwork(tree.to_graph(), tracer=tracer)
        load_tree_into_memory(net, tree, SPANNING_TREE)
        net.run_phase(
            "ks",
            lambda u: PipelinedKeyedSum(
                SPANNING_TREE, lambda ctx: [(k, 1) for k in range(5)], out_key="k"
            ),
        )
        stream = tracer.between(1, 0)
        keys = [e.payload[0] for e in stream if e.kind == "ks"]
        assert keys == sorted(keys)  # monotone streaming, observed

    def test_phases_in_order(self):
        tracer = MessageTracer()
        net = CongestNetwork(star_graph(4), tracer=tracer)
        build_bfs_tree(net, root=0)
        net.run_phase("noop2", lambda u: __import__("repro.congest", fromlist=["NodeProgram"]).NodeProgram())
        assert tracer.phases() == ["bfs-tree"]


class TestFilters:
    def test_node_filter(self):
        tracer = MessageTracer(event_filter=node_filter(3))
        _traced_bfs(star_graph(6), tracer)
        assert all(e.src == 3 or e.dst == 3 for e in tracer.events)
        assert len(tracer) == 2  # bfs to 3, adopt from 3

    def test_kind_filter(self):
        tracer = MessageTracer(event_filter=kind_filter("adopt"))
        _traced_bfs(star_graph(6), tracer)
        assert tracer.kind_histogram() == {"adopt": 5}

    def test_max_events_cap(self):
        tracer = MessageTracer(max_events=3)
        _traced_bfs(star_graph(8), tracer)
        assert len(tracer) == 3
        assert tracer.dropped > 0


class TestEngineInteraction:
    """A tracer must observe every hop, so batched delivery is illegal
    while one is attached: the engine silently degrades to the
    per-message path and produces the identical event stream."""

    def test_tracer_forces_per_message_path(self):
        graph = star_graph(5)
        for engine in (None, "auto", "batched", "numpy"):
            if engine == "numpy" and not numpy_available():
                continue
            net = CongestNetwork(graph, tracer=MessageTracer(), engine=engine)
            assert net.active_engine == "per-message"

    def test_active_engine_without_tracer(self):
        graph = star_graph(5)
        net = CongestNetwork(graph, engine="batched")
        assert net.active_engine == "batched"

    @pytest.mark.parametrize("engine", ["batched", "numpy"])
    def test_traced_events_identical_to_oracle(self, engine):
        if engine == "numpy" and not numpy_available():
            pytest.skip("numpy not installed")
        graph = build_family("gnp", 36, seed=3)

        def events(net, tracer):
            build_bfs_tree(net, root=0)
            return [
                (e.phase, e.round, e.src, e.dst, e.kind, e.payload)
                for e in tracer.events
            ]

        oracle_tracer = MessageTracer()
        oracle_net = CongestNetwork(
            graph, tracer=oracle_tracer, engine="per-message"
        )
        oracle_events = events(oracle_net, oracle_tracer)

        tracer = MessageTracer()
        net = CongestNetwork(graph, tracer=tracer, engine=engine)
        assert net.active_engine == "per-message"
        assert events(net, tracer) == oracle_events


class TestRendering:
    def test_render_contains_arrow_lines(self):
        tracer = MessageTracer()
        _traced_bfs(path_graph(3), tracer)
        text = tracer.render()
        assert "0 -> 1  bfs(0)" in text

    def test_render_truncation_note(self):
        tracer = MessageTracer()
        _traced_bfs(star_graph(10), tracer)
        text = tracer.render(limit=2)
        assert "more events" in text
