"""Unit tests for typed mutation ops, effects and the MutationLog."""

import json

import pytest

from repro.dynamic import (
    AddEdge,
    AddNode,
    MutationLog,
    RemoveEdge,
    RemoveNode,
    Reweight,
    apply_op,
    op_from_json,
    op_from_text,
    parse_stream,
    revert,
)
from repro.errors import AlgorithmError, GraphError
from repro.graphs import WeightedGraph

ALL_OPS = [
    AddEdge(0, 1, 2.5),
    AddEdge("a", "b"),
    RemoveEdge(1, 2),
    Reweight(0, 5, 0.25),
    AddNode(9),
    RemoveNode("x"),
]


class TestSerialization:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.to_text())
    def test_json_round_trip(self, op):
        blob = json.loads(json.dumps(op.to_json()))
        assert op_from_json(blob) == op

    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.to_text())
    def test_text_round_trip(self, op):
        assert op_from_text(op.to_text()) == op

    def test_text_int_labels_parse_as_ints(self):
        assert op_from_text("add_edge 0 1 2.0") == AddEdge(0, 1, 2.0)

    def test_text_string_labels_survive(self):
        assert op_from_text("remove_node left") == RemoveNode("left")

    def test_add_edge_default_weight(self):
        assert op_from_json({"op": "add_edge", "u": 0, "v": 1}).weight == 1.0
        assert op_from_text("add_edge 0 1").weight == 1.0

    @pytest.mark.parametrize(
        "blob,fragment",
        [
            ("not a dict", "must be a JSON object"),
            ({"op": "explode"}, "unknown mutation op"),
            ({"op": "add_edge", "u": 0, "v": 1, "nope": 2}, "unknown field"),
            ({"op": "remove_edge", "u": 0, "v": 1, "weight": 2}, "unknown field"),
            ({"op": "add_node", "u": True}, "int or str"),
            ({"op": "add_edge", "u": 0, "v": [1]}, "int or str"),
            ({"op": "reweight", "u": 0, "v": 1, "weight": "x"}, "number"),
            ({"op": "reweight", "u": 0, "v": 1, "weight": 0}, "positive"),
            ({"op": "reweight", "u": 0, "v": 1, "weight": -1.5}, "positive"),
        ],
    )
    def test_bad_json_rejected(self, blob, fragment):
        with pytest.raises(AlgorithmError) as excinfo:
            op_from_json(blob)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize(
        "line,fragment",
        [
            ("explode 1 2", "unknown mutation op"),
            ("add_edge 0", "argument"),
            ("reweight 0 1", "argument"),
            ("remove_node", "argument"),
            ("add_edge 0 1 zero", "bad weight"),
            ("add_edge 0 1 -3", "positive"),
        ],
    )
    def test_bad_text_rejected(self, line, fragment):
        with pytest.raises(AlgorithmError) as excinfo:
            op_from_text(line)
        assert fragment in str(excinfo.value)


class TestParseStream:
    def test_ops_directives_comments_and_blanks(self):
        lines = [
            "# a comment",
            "",
            "add_edge 0 1 2.0   # trailing comment",
            "solve",
            "undo",
            "   ",
            "remove_node 4",
        ]
        events = list(parse_stream(lines))
        assert events == [
            (3, "op", AddEdge(0, 1, 2.0)),
            (4, "solve", None),
            (5, "undo", None),
            (7, "op", RemoveNode(4)),
        ]

    def test_directive_with_arguments_rejected(self):
        with pytest.raises(AlgorithmError) as excinfo:
            list(parse_stream(["solve now"]))
        assert "takes no arguments" in str(excinfo.value)

    def test_errors_name_the_line(self):
        with pytest.raises(AlgorithmError) as excinfo:
            list(parse_stream(["add_edge 0 1", "explode"]))
        assert "line 2" in str(excinfo.value)


class TestApplyOp:
    def test_add_edge_fresh(self, triangle):
        effect = apply_op(triangle, AddEdge(0, 3, 2.0))
        assert effect.kind == "add_edge"
        assert effect.created_nodes == (3,)
        assert triangle.weight(0, 3) == 2.0

    def test_add_edge_merges(self, triangle):
        effect = apply_op(triangle, AddEdge(0, 1, 2.0))
        assert effect.kind == "merge_edge"
        assert (effect.old_weight, effect.new_weight) == (1.0, 3.0)
        assert effect.created_nodes == ()

    def test_add_edge_two_fresh_endpoints(self, triangle):
        effect = apply_op(triangle, AddEdge(7, 8))
        assert effect.created_nodes == (7, 8)

    def test_reweight_noop_detected(self, triangle):
        effect = apply_op(triangle, Reweight(1, 2, 2.0))
        assert effect.kind == "noop"

    def test_remove_edge_records_positions(self):
        g = WeightedGraph([(0, 2), (0, 1), (1, 2)])
        effect = apply_op(g, RemoveEdge(0, 1))
        # 1 was 0's second neighbour; 0 was 1's first.
        assert effect.positions == (1, 0)
        assert effect.old_weight == 1.0

    def test_add_node_noop_when_present(self, triangle):
        assert apply_op(triangle, AddNode(0)).kind == "noop"

    def test_remove_node_records_incident(self, triangle):
        effect = apply_op(triangle, RemoveNode(1))
        assert effect.node_pos == 1
        assert {(v, w) for v, w, _pos in effect.incident} == {
            (0, 1.0), (2, 2.0)
        }

    def test_missing_targets_raise_graph_error(self, triangle):
        with pytest.raises(GraphError):
            apply_op(triangle, RemoveEdge(0, 9))
        with pytest.raises(GraphError):
            apply_op(triangle, RemoveNode(9))
        with pytest.raises(GraphError):
            apply_op(triangle, Reweight(0, 9, 1.0))


class TestRevert:
    def test_each_kind_round_trips_exactly(self):
        g = WeightedGraph([(0, 2), (0, 1), (1, 2), (2, 3)])
        g.add_node(42)
        before_hash = g.content_hash()
        before_adj = {u: list(g.neighbors(u)) for u in g.nodes}
        ops = [
            AddEdge(1, 3, 2.0),
            AddEdge(0, 1, 0.5),      # merge
            Reweight(1, 2, 9.0),
            Reweight(0, 2, 1.0),     # noop
            RemoveEdge(0, 1),
            AddNode(5),
            AddNode(42),             # noop
            RemoveNode(2),
            AddEdge(6, 7, 3.0),      # two fresh endpoints
        ]
        effects = [apply_op(g, op) for op in ops]
        assert g.content_hash() != before_hash
        for effect in reversed(effects):
            revert(g, effect)
        assert g.content_hash() == before_hash
        assert {u: list(g.neighbors(u)) for u in g.nodes} == before_adj
        assert g.nodes == list(before_adj)  # node insertion order too


class TestMutationLog:
    def test_apply_undo_and_introspection(self, triangle):
        log = MutationLog(triangle)
        log.apply(AddEdge(0, 3, 2.0))
        log.apply(Reweight(1, 2, 5.0))
        assert len(log) == 2
        assert [e.kind for e in log.effects] == ["add_edge", "reweight"]
        assert log.to_json() == [
            {"op": "add_edge", "u": 0, "v": 3, "weight": 2.0},
            {"op": "reweight", "u": 1, "v": 2, "weight": 5.0},
        ]
        assert log.to_text().splitlines() == [
            "add_edge 0 3 2.0", "reweight 1 2 5.0",
        ]
        assert log.undo().kind == "reweight"
        assert triangle.weight(1, 2) == 2.0
        assert log.undo().kind == "add_edge"
        assert 3 not in triangle

    def test_undo_empty_raises(self, triangle):
        with pytest.raises(AlgorithmError):
            MutationLog(triangle).undo()
