"""Property-based tests (hypothesis) for the core invariants.

Strategies generate random weighted connected graphs and random rooted
trees; properties cover the cut function, Karger's lemma, fragment
partitions, tree packing loads, MST agreement and CONGEST pipelines.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import CongestNetwork
from repro.core import compute_karger_quantities, one_respecting_min_cut_reference
from repro.fragments import partition_tree
from repro.graphs import RootedTree, WeightedGraph
from repro.mst import minimum_spanning_tree, minimum_spanning_tree_prim, tree_weight
from repro.packing import GreedyTreePacking

DEFAULT_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, max_nodes: int = 14, weighted: bool = True):
    """A connected weighted graph: random tree + random extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    graph = WeightedGraph()
    graph.add_node(0)

    def weight():
        if not weighted:
            return 1.0
        return float(draw(st.integers(min_value=1, max_value=6)))

    for child in range(1, n):
        graph.add_edge(child, parents[child - 1], weight())
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, weight())
    return graph


@st.composite
def rooted_trees(draw, max_nodes: int = 20):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    parents = {i: draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)}
    return RootedTree(0, parents)


class TestCutFunctionProperties:
    @DEFAULT_SETTINGS
    @given(connected_graphs(), st.data())
    def test_cut_symmetry(self, graph, data):
        n = graph.number_of_nodes
        size = data.draw(st.integers(min_value=1, max_value=n - 1))
        side = set(graph.nodes[:size])
        other = set(graph.nodes) - side
        assert graph.cut_value(side) == graph.cut_value(other)

    @DEFAULT_SETTINGS
    @given(connected_graphs())
    def test_singleton_cut_is_weighted_degree(self, graph):
        for u in graph.nodes:
            assert graph.cut_value({u}) == graph.weighted_degree(u)

    @DEFAULT_SETTINGS
    @given(connected_graphs(), st.data())
    def test_cut_posimodularity_witness(self, graph, data):
        """C(A) + C(B) >= C(A∖B) + C(B∖A) (posimodularity of cuts)."""
        nodes = graph.nodes
        a = {u for u in nodes if data.draw(st.booleans())}
        b = {u for u in nodes if data.draw(st.booleans())}

        def val(s):
            if not s or len(s) == len(nodes):
                return 0.0
            return graph.cut_value(s)

        assert val(a) + val(b) >= val(a - b) + val(b - a) - 1e-6


class TestKargerLemmaProperty:
    @DEFAULT_SETTINGS
    @given(connected_graphs(max_nodes=12), st.randoms(use_true_random=False))
    def test_lemma_on_random_spanning_tree(self, graph, rnd):
        from repro.graphs import random_spanning_tree

        tree = random_spanning_tree(graph, seed=rnd.randrange(1000))
        quantities = compute_karger_quantities(graph, tree)
        for v in graph.nodes:
            if v == tree.root:
                continue
            direct = graph.cut_value(tree.subtree(v))
            assert abs(quantities.cut_below[v] - direct) < 1e-6

    @DEFAULT_SETTINGS
    @given(connected_graphs(max_nodes=12))
    def test_one_respect_min_is_min_over_tree_edges(self, graph):
        from repro.graphs import random_spanning_tree

        tree = random_spanning_tree(graph, seed=7)
        result = one_respecting_min_cut_reference(graph, tree)
        direct = min(
            graph.cut_value(tree.subtree(child)) for child, _p in tree.edges()
        )
        assert abs(result.best_value - direct) < 1e-6


class TestPartitionProperties:
    @DEFAULT_SETTINGS
    @given(rooted_trees(max_nodes=40), st.integers(min_value=1, max_value=8))
    def test_partition_always_valid(self, tree, threshold):
        dec = partition_tree(tree, threshold)
        dec.validate()

    @DEFAULT_SETTINGS
    @given(rooted_trees(max_nodes=40))
    def test_fragment_count_at_most_sqrt_bound(self, tree):
        n = len(tree)
        dec = partition_tree(tree)
        assert dec.fragment_count <= n // dec.threshold + 1

    @DEFAULT_SETTINGS
    @given(rooted_trees(max_nodes=40), st.integers(min_value=1, max_value=8))
    def test_fragments_partition_the_nodes(self, tree, threshold):
        dec = partition_tree(tree, threshold)
        union: set = set()
        for fid in dec.fragment_ids():
            members = dec.members_of(fid)
            assert union.isdisjoint(members)
            union |= members
        assert union == set(tree.nodes)


class TestPackingProperties:
    @DEFAULT_SETTINGS
    @given(connected_graphs(max_nodes=10, weighted=False), st.integers(2, 5))
    def test_loads_sum_to_trees_times_edges(self, graph, count):
        packing = GreedyTreePacking(graph)
        packing.grow_to(count)
        assert sum(packing.usage.values()) == count * (graph.number_of_nodes - 1)

    @DEFAULT_SETTINGS
    @given(connected_graphs(max_nodes=10))
    def test_mst_weight_agreement(self, graph):
        k = minimum_spanning_tree(graph)
        p = minimum_spanning_tree_prim(graph)
        assert abs(tree_weight(graph, k) - tree_weight(graph, p)) < 1e-9

    @DEFAULT_SETTINGS
    @given(connected_graphs(max_nodes=10))
    def test_mst_weight_minimal_vs_random_trees(self, graph):
        from repro.graphs import random_spanning_tree

        mst = minimum_spanning_tree(graph)
        for seed in range(3):
            other = random_spanning_tree(graph, seed=seed)
            assert (
                tree_weight(graph, mst) <= tree_weight(graph, other) + 1e-9
            )


class TestDistributedProperties:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(max_nodes=12))
    def test_distributed_one_respect_agrees(self, graph):
        from repro.core import one_respecting_min_cut_congest
        from repro.graphs import random_spanning_tree

        tree = random_spanning_tree(graph, seed=13)
        ref = one_respecting_min_cut_reference(graph, tree)
        dist = one_respecting_min_cut_congest(graph, tree)
        assert abs(dist.best_value - ref.best_value) < 1e-6
        for v, value in ref.cut_values.items():
            assert abs(dist.cut_values[v] - value) < 1e-6

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rooted_trees(max_nodes=20), st.integers(0, 10**6))
    def test_keyed_sum_matches_subtree_sums(self, tree, salt):
        from repro.primitives import PipelinedKeyedSum, SPANNING_TREE, load_tree_into_memory

        net = CongestNetwork(tree.to_graph())
        load_tree_into_memory(net, tree, SPANNING_TREE)
        net.run_phase(
            "ks",
            lambda u: PipelinedKeyedSum(
                SPANNING_TREE,
                lambda ctx: [((ctx.node * 7 + salt) % 5, 1)],
                out_key="k",
            ),
        )
        root_map = net.memory[tree.root].get("k:root", {})
        expected: dict = {}
        for u in tree.nodes:
            key = (u * 7 + salt) % 5
            expected[key] = expected.get(key, 0) + 1
        assert root_map == expected
