"""Tests for the BlockingKeyedSum ablation comparator."""

from repro.congest import CongestNetwork
from repro.graphs import RootedTree, random_tree
from repro.primitives import (
    BlockingKeyedSum,
    PipelinedKeyedSum,
    SPANNING_TREE,
    load_tree_into_memory,
)


def _run(program_cls, tree, contributions, **kwargs):
    net = CongestNetwork(tree.to_graph())
    load_tree_into_memory(net, tree, SPANNING_TREE)
    result = net.run_phase(
        "sum",
        lambda u: program_cls(SPANNING_TREE, contributions, out_key="k", **kwargs),
    )
    return net, result


class TestBlockingCorrectness:
    def test_same_root_map_as_pipelined(self):
        for seed in range(4):
            tree = random_tree(24, seed=seed)
            contributions = lambda ctx: [(ctx.node % 4, 1), (7, ctx.node)]
            net_b, _ = _run(BlockingKeyedSum, tree, contributions)
            net_p, _ = _run(PipelinedKeyedSum, tree, contributions)
            assert (
                net_b.memory[tree.root]["k:root"]
                == net_p.memory[tree.root]["k:root"]
            )

    def test_capture_mode_matches(self):
        tree = RootedTree(0, {1: 0, 2: 1, 3: 2, 4: 2})
        parents = {1: 0, 2: 1, 3: 2, 4: 2}

        def contributions(ctx):
            chain = []
            node = ctx.node
            while node is not None:
                chain.append((node, 1))
                node = parents.get(node)
            return chain

        net_b, _ = _run(BlockingKeyedSum, tree, contributions, capture_own_key=True)
        net_p, _ = _run(PipelinedKeyedSum, tree, contributions, capture_own_key=True)
        for u in tree.nodes:
            assert net_b.memory[u]["k"] == net_p.memory[u]["k"]

    def test_empty_contributions(self):
        tree = RootedTree.star(5)
        net, _ = _run(BlockingKeyedSum, tree, lambda ctx: [])
        assert net.memory[0].get("k:root", {}) == {}


class TestBlockingIsSlower:
    def test_rounds_scale_with_depth_times_keys(self):
        depth, keys = 24, 8
        tree = RootedTree.path(depth + 1)
        _, blocking = _run(
            BlockingKeyedSum, tree, lambda ctx: [(k, 1) for k in range(keys)]
        )
        _, pipelined = _run(
            PipelinedKeyedSum, tree, lambda ctx: [(k, 1) for k in range(keys)]
        )
        assert pipelined.metrics.rounds <= depth + keys + 4
        assert blocking.metrics.rounds >= (keys - 1) * depth / 2
        assert blocking.metrics.rounds > 3 * pipelined.metrics.rounds
