"""Unit tests for the fragment decomposition (Step 1)."""

import math

import pytest

from repro.congest import CongestNetwork
from repro.errors import AlgorithmError
from repro.fragments import (
    partition_tree,
    run_distributed_partition,
)
from repro.graphs import RootedTree, random_tree
from repro.primitives import FRAGMENT_TREE, SPANNING_TREE, load_tree_into_memory


class TestCentralizedPartition:
    def test_covers_all_nodes(self):
        tree = random_tree(50, seed=1)
        dec = partition_tree(tree)
        assert set(dec.root_of) == set(tree.nodes)

    @pytest.mark.parametrize("seed", range(6))
    def test_validates_on_random_trees(self, seed):
        tree = random_tree(80, seed=seed)
        partition_tree(tree).validate()

    def test_fragment_count_bound(self):
        for n in (10, 64, 200):
            tree = RootedTree.path(n)
            dec = partition_tree(tree)
            assert dec.fragment_count <= n // dec.threshold + 1

    def test_fragment_diameter_bound(self):
        tree = RootedTree.path(100)
        dec = partition_tree(tree)
        for fid in dec.fragment_ids():
            assert dec.fragment_diameter(fid) <= 2 * dec.threshold

    def test_star_is_one_fragment(self):
        tree = RootedTree.star(30)
        dec = partition_tree(tree)
        # The root absorbs every pending leaf in one commit.
        assert dec.fragment_count == 1
        assert dec.fragment_id(17) == 0

    def test_path_fragments_are_segments(self):
        tree = RootedTree.path(9)
        dec = partition_tree(tree, threshold=3)
        assert dec.fragment_count == 3
        for fid in dec.fragment_ids():
            members = sorted(dec.members_of(fid))
            assert members == list(range(members[0], members[-1] + 1))

    def test_fragment_ids_are_minima(self):
        tree = random_tree(60, seed=3)
        dec = partition_tree(tree)
        for fid in dec.fragment_ids():
            assert fid == min(dec.members_of(fid))

    def test_explicit_threshold_respected(self):
        tree = RootedTree.path(20)
        dec = partition_tree(tree, threshold=5)
        assert dec.threshold == 5
        for fid in dec.fragment_ids():
            if dec.fragment_root(fid) != tree.root:
                assert len(dec.members_of(fid)) >= 5

    def test_invalid_threshold(self):
        with pytest.raises(AlgorithmError):
            partition_tree(RootedTree.path(5), threshold=0)

    def test_single_node_tree(self):
        dec = partition_tree(RootedTree(0, {}))
        assert dec.fragment_count == 1


class TestFragmentTree:
    def test_parent_fragment_relation(self):
        tree = random_tree(70, seed=5)
        dec = partition_tree(tree)
        tf = dec.fragment_tree()
        assert tf.root == dec.fragment_id(tree.root)
        for fid in dec.fragment_ids():
            parent_fid = dec.parent_fragment(fid)
            if parent_fid is None:
                assert fid == tf.root
            else:
                assert tf.parent(fid) == parent_fid

    def test_inter_fragment_edge_count(self):
        tree = random_tree(90, seed=2)
        dec = partition_tree(tree)
        assert len(dec.inter_fragment_edges()) == dec.fragment_count - 1

    def test_same_fragment_predicate(self):
        tree = RootedTree.path(10)
        dec = partition_tree(tree, threshold=4)
        assert dec.same_fragment(2, 3)
        assert dec.same_fragment(0, 1)
        assert not dec.same_fragment(1, 2)
        assert not dec.same_fragment(0, 9)

    def test_intra_fragment_depth_zero_at_root(self):
        tree = random_tree(40, seed=8)
        dec = partition_tree(tree)
        for fid in dec.fragment_ids():
            assert dec.intra_fragment_depth(dec.fragment_root(fid)) == 0


class TestDistributedPartition:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_centralized(self, seed):
        tree = random_tree(36, seed=seed)
        graph = tree.to_graph()
        net = CongestNetwork(graph)
        load_tree_into_memory(net, tree, SPANNING_TREE)
        threshold = run_distributed_partition(net)
        dec = partition_tree(tree, threshold)
        for u in graph.nodes:
            assert net.memory[u]["frag:root"] == dec.root_of[u]
            assert net.memory[u]["frag:id"] == dec.fragment_id(u)

    def test_neighbour_fragment_knowledge(self):
        tree = random_tree(30, seed=7)
        net = CongestNetwork(tree.to_graph())
        load_tree_into_memory(net, tree, SPANNING_TREE)
        run_distributed_partition(net)
        for u in tree.nodes:
            for v, fid in net.memory[u]["frag:nbr"].items():
                assert net.memory[v]["frag:id"] == fid

    def test_fragment_restricted_tree_consistency(self):
        tree = random_tree(45, seed=9)
        net = CongestNetwork(tree.to_graph())
        load_tree_into_memory(net, tree, SPANNING_TREE)
        run_distributed_partition(net)
        for u in tree.nodes:
            parent = net.memory[u][FRAGMENT_TREE.parent_key]
            if parent is not None:
                assert net.memory[parent]["frag:id"] == net.memory[u]["frag:id"]
                assert u in net.memory[parent][FRAGMENT_TREE.children_key]

    def test_extra_graph_edges_do_not_confuse_partition(self):
        # The network may have non-tree edges; the partition must ignore
        # them (it runs over the spanning tree only).
        tree = RootedTree.path(12)
        graph = tree.to_graph()
        graph.add_edge(0, 11)
        graph.add_edge(3, 9)
        net = CongestNetwork(graph)
        load_tree_into_memory(net, tree, SPANNING_TREE)
        threshold = run_distributed_partition(net)
        dec = partition_tree(tree, threshold)
        for u in tree.nodes:
            assert net.memory[u]["frag:id"] == dec.fragment_id(u)

    def test_default_threshold_is_sqrt(self):
        tree = RootedTree.path(100)
        net = CongestNetwork(tree.to_graph())
        load_tree_into_memory(net, tree, SPANNING_TREE)
        threshold = run_distributed_partition(net)
        assert threshold == math.isqrt(99) + 1
