"""The LPT pack planner: determinism, stripe degeneration, LPT bound.

:func:`repro.exec.pack_tasks` sits under every distributing backend
(remote shards, process chunks), so its invariants carry the
bit-identity story of those backends: the plan must be a deterministic
pure function of (costs, bins), must cover every task exactly once,
and with uniform costs must reproduce the historic round-robin stripe
exactly.  The classic LPT guarantee — makespan at most twice the
trivial lower bound ``max(total/bins, max_cost)`` — is checked
property-style over random cost vectors.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.exec import PackPlan, pack_tasks


def _flatten(plan: PackPlan) -> list[int]:
    return sorted(i for indices in plan.assignments for i in indices)


class TestStripeDegeneration:
    @pytest.mark.parametrize("count,bins", [(10, 3), (7, 7), (4, 9), (1, 1)])
    def test_uniform_costs_reproduce_round_robin(self, count, bins):
        plan = pack_tasks(list(range(count)), bins)
        expected = tuple(
            tuple(i for i in range(count) if i % bins == b)
            for b in range(bins)
        )
        assert plan.assignments == expected

    def test_constant_cost_fn_matches_no_cost_fn(self):
        tasks = list(range(9))
        assert (
            pack_tasks(tasks, 4, lambda t: 3.5).assignments
            == pack_tasks(tasks, 4).assignments
        )


class TestPlanInvariants:
    def test_zero_bins_rejected(self):
        with pytest.raises(AlgorithmError, match="at least 1 bin"):
            pack_tasks([1, 2], 0)

    def test_empty_tasks(self):
        plan = pack_tasks([], 3)
        assert plan.assignments == ((), (), ())
        assert plan.makespan == 0.0
        assert plan.balance == 1.0

    def test_costs_follow_task_order_not_plan_order(self):
        tasks = ["a", "b", "c"]
        plan = pack_tasks(tasks, 2, lambda t: {"a": 1, "b": 5, "c": 2}[t])
        assert plan.costs == (1.0, 5.0, 2.0)

    def test_bin_indices_ascending(self):
        plan = pack_tasks(list(range(12)), 3, lambda t: float(t % 5))
        for indices in plan.assignments:
            assert list(indices) == sorted(indices)

    def test_broken_predictions_clamped(self):
        bad = {0: float("nan"), 1: float("inf"), 2: -4.0, 3: 2.0}
        plan = pack_tasks(list(range(4)), 2, lambda t: bad[t])
        assert plan.costs == (0.0, 0.0, 0.0, 2.0)
        assert _flatten(plan) == [0, 1, 2, 3]

    def test_heavy_head_is_isolated(self):
        # One brute-force-shaped task among cheap ones: LPT gives it a
        # bin of its own, the stripe would pair it with every 4th task.
        costs = [100.0] + [1.0] * 7
        plan = pack_tasks(list(range(8)), 4, lambda t: costs[t])
        heavy_bin = plan.assignments[0]
        assert heavy_bin == (0,)
        assert plan.makespan == 100.0
        stripe = pack_tasks(list(range(8)), 4)
        stripe_makespan = max(
            sum(costs[i] for i in indices) for indices in stripe.assignments
        )
        assert stripe_makespan == 101.0  # tasks 0 and 4 collide

    def test_summary_is_json_friendly(self):
        import json

        summary = pack_tasks(list(range(5)), 2, float).summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["bins"] == 2
        assert summary["tasks"] == 5
        assert sum(summary["sizes"]) == 5


@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    bins=st.integers(min_value=1, max_value=12),
)
def test_lpt_properties(costs, bins):
    tasks = list(range(len(costs)))
    plan = pack_tasks(tasks, bins, lambda t: costs[t])

    # Exact cover, deterministic replan.
    assert _flatten(plan) == tasks
    replay = pack_tasks(tasks, bins, lambda t: costs[t])
    assert replay == plan

    # Loads are consistent with the assignment.
    for b, indices in enumerate(plan.assignments):
        assert math.isclose(
            plan.loads[b], sum(costs[i] for i in indices), abs_tol=1e-6
        )

    # The LPT guarantee: makespan <= 2x the trivial lower bound.
    if sum(costs) > 0:
        assert plan.makespan <= 2.0 * plan.lower_bound + 1e-9
        assert plan.balance <= 2.0 + 1e-9
    else:
        assert plan.makespan == 0.0
