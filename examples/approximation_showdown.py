#!/usr/bin/env python
"""Compare the paper's (1+ε) algorithm against the (2+ε) baseline.

Reproduces the paper's Section 1 comparison as an experiment: on graphs
with known minimum cuts, measure the realised approximation ratio of

* this paper (Karger sampling + exact tree-packing solve),
* Ghaffari–Kuhn's guarantee class via the Matula (2+ε) analog,
* Su's concurrent sampling + bridge approach.

Run:  python examples/approximation_showdown.py
"""

from repro.analysis import format_table
from repro.baselines import (
    matula_approx_min_cut,
    stoer_wagner_min_cut,
    su_approx_min_cut,
)
from repro.graphs import complete_graph, connected_gnp_graph, planted_cut_graph
from repro.mincut import minimum_cut_approx


def main() -> None:
    instances = [
        ("planted λ=3", planted_cut_graph((16, 16), 3, seed=1)),
        ("planted λ=8", planted_cut_graph((20, 20), 8, seed=2)),
        ("dense ER", connected_gnp_graph(40, 0.5, seed=3)),
        ("complete K60", complete_graph(60)),
    ]
    epsilon = 0.5
    rows = []
    for name, graph in instances:
        truth = stoer_wagner_min_cut(graph).value
        ours = minimum_cut_approx(graph, epsilon=epsilon, seed=7)
        matula = matula_approx_min_cut(graph, epsilon=epsilon)
        su = su_approx_min_cut(graph, seed=7)
        rows.append(
            [
                name,
                truth,
                round(ours.value / truth, 3),
                round(matula.value / truth, 3),
                round(su.value / truth, 3),
                "sampling" if ours.used_sampling else "exact",
            ]
        )
    print(
        format_table(
            ["instance", "λ", "ours (1+ε)", "Matula (2+ε)", "Su (1+ε)", "our path"],
            rows,
            title=f"Approximation ratios at ε = {epsilon} "
            f"(guarantees: ours ≤ {1 + epsilon}, Matula ≤ {2 + epsilon})",
        )
    )
    print(
        "\nThe paper's improvement: the (1+ε) column stays at ~1.0 while the\n"
        "(2+ε) baseline is allowed to (and sometimes does) drift higher."
    )


if __name__ == "__main__":
    main()
