#!/usr/bin/env python
"""Compare the paper's (1+ε) algorithm against the (2+ε) baseline.

Reproduces the paper's Section 1 comparison as an experiment: on graphs
with known minimum cuts, run every registered *approximate* solver
through :func:`repro.api.solve_all` and measure realised approximation
ratios of

* this paper (Karger sampling + exact tree-packing solve),
* Ghaffari–Kuhn's guarantee class via the Matula (2+ε) analog,
* Su's concurrent sampling + bridge approach.

The solver set comes from the registry — registering a new approximate
solver adds a column here with no further changes.

Run:  python examples/approximation_showdown.py
"""

from repro.analysis import format_table
from repro.api import solve, solve_all
from repro.graphs import complete_graph, connected_gnp_graph, planted_cut_graph

SOLVER_ORDER = ["approx", "matula", "su"]


def main() -> None:
    instances = [
        ("planted λ=3", planted_cut_graph((16, 16), 3, seed=1)),
        ("planted λ=8", planted_cut_graph((20, 20), 8, seed=2)),
        ("dense ER", connected_gnp_graph(40, 0.5, seed=3)),
        ("complete K60", complete_graph(60)),
    ]
    epsilon = 0.5
    # Two passes so column set = union of solvers over all instances
    # (capability filters may exclude a solver on some instances).
    measured = []
    for name, graph in instances:
        truth = solve(graph, solver="stoer_wagner").value
        results = {
            r.solver: r for r in solve_all(graph, epsilon=epsilon, seed=7,
                                           kinds=("approx",))
        }
        measured.append((name, truth, results))
    seen = {n for _, _, results in measured for n in results}
    ordered = [n for n in SOLVER_ORDER if n in seen]
    ordered += sorted(seen - set(ordered))
    guarantee = {
        n: results[n].guarantee for _, _, results in measured for n in results
    }
    headers = (
        ["instance", "λ"]
        + [f"{n} ({guarantee[n]})" for n in ordered]
        + ["our path"]
    )
    rows = []
    for name, truth, results in measured:
        ours = results.get("approx")
        path = "-"
        if ours is not None:
            path = "sampling" if ours.extras["used_sampling"] else "exact"
        rows.append(
            [name, truth]
            + [
                round(results[n].value / truth, 3) if n in results else "-"
                for n in ordered
            ]
            + [path]
        )
    print(
        format_table(
            headers,
            rows,
            title=f"Approximation ratios at ε = {epsilon} "
            f"(guarantees: ours ≤ {1 + epsilon}, Matula ≤ {2 + epsilon})",
        )
    )
    print(
        "\nThe paper's improvement: the (1+ε) column stays at ~1.0 while the\n"
        "(2+ε) baseline is allowed to (and sometimes does) drift higher."
    )


if __name__ == "__main__":
    main()
