"""Sharded sweep over a pool of *running* workers (CI's shard-smoke job).

Usage::

    python -m repro serve --port 8101 --cache-file w1_cache.json &
    python -m repro serve --port 8102 --cache-file w2_cache.json &
    python examples/sharded_sweep.py http://127.0.0.1:8101 http://127.0.0.1:8102

    # later, after `python -m repro cache merge --out warm.json \\
    #     w1_cache.json w2_cache.json`:
    python examples/sharded_sweep.py --warm warm.json

Exercises the ROADMAP's sharded-execution + cache-warm-start loop
end to end and exits non-zero on the first broken property:

1. ``backend="remote"`` — a ``solve_batch`` sweep fanned out across
   the worker pool returns results identical (solver, value,
   partition, seed) to ``backend="serial"`` on the same inputs;
2. mixed-solver fan-out — a ``solve_all`` compare through the pool
   matches serial too (per-task solver names cross the wire);
3. with ``--warm MERGED`` instead of worker URLs, the same sweep
   replayed through ``Engine(cache=...)`` is answered entirely from
   the merged cache — 100% hits, zero solver runs.  ``MERGED`` is a
   merged cache file or a segment-store directory: the CI cache-smoke
   job runs workers on store directories (``--cache-file w1_store``),
   merges and compacts them (``repro cache merge`` + ``repro cache
   compact --export warm_cache.json``), and replays this sweep from
   the compacted artifact.
"""

import sys

from repro.api import Engine, solve_all, solve_batch
from repro.errors import ServiceError
from repro.exec.remote import RemoteExecutor
from repro.graphs import build_family
from repro.service import ServiceClient

FAMILIES = (("gnp", 24), ("grid", 25), ("cycle", 16))
COUNT = 4  # instances per family -> a 12-graph sweep


def sweep_graphs():
    return [
        build_family(family, n, seed=seed)
        for family, n in FAMILIES
        for seed in range(COUNT)
    ]


def identity(results):
    """The fields the acceptance criterion pins: solver, value, cut, seed."""
    return [
        (r.solver, r.value, tuple(sorted(r.side, key=repr)), r.seed)
        for r in results
    ]


def run_sharded(worker_urls) -> int:
    # Dead pool members are tolerated (routing around them is the
    # remote backend's job — CI re-runs this after killing a worker to
    # prove failover); at least one worker must answer.
    alive = 0
    for position, url in enumerate(worker_urls):
        try:
            # Generous budget for the first worker (cold CI start); the
            # rest were launched together, so a short probe suffices and
            # a killed worker doesn't stall the failover leg.
            budget = 30.0 if position == 0 and not alive else 5.0
            health = ServiceClient(url).wait_until_ready(timeout=budget)
        except ServiceError as exc:
            print(f"worker DOWN : {url} ({exc})")
            continue
        alive += 1
        print(f"worker up   : {url} (version {health['version']})")
    assert alive, "no worker answered /healthz"

    graphs = sweep_graphs()
    serial = solve_batch(graphs, "stoer_wagner", seed=3)
    pool = RemoteExecutor(worker_urls)
    remote = solve_batch(graphs, "stoer_wagner", seed=3, backend=pool)
    assert identity(remote) == identity(serial), "remote sweep diverged"
    for graph, result in zip(graphs, remote):
        assert result.matches(graph), "remote witness failed verification"
    print(f"solve_batch : {len(remote)} instances identical to serial")

    compare_graph = build_family("gnp", 20, seed=5)
    serial_all = solve_all(compare_graph, epsilon=0.5, seed=2)
    remote_all = solve_all(compare_graph, epsilon=0.5, seed=2, backend=pool)
    assert identity(remote_all) == identity(serial_all), "compare diverged"
    print(f"solve_all   : {len(remote_all)} solvers identical to serial")

    print("sharded sweep smoke: OK")
    return 0


def run_warm(cache_path: str) -> int:
    engine = Engine(cache=cache_path)
    graphs = sweep_graphs()
    results = engine.solve_batch(graphs, "stoer_wagner", seed=3)
    misses = [i for i, r in enumerate(results) if not r.extras["cache"]["hit"]]
    assert not misses, f"cold entries after warm start: graphs {misses}"
    serial = solve_batch(graphs, "stoer_wagner", seed=3)
    assert identity(results) == identity(serial), "warm replay diverged"
    print(
        f"warm replay : {len(results)}/{len(results)} hits from "
        f"{cache_path} (identical to serial)"
    )
    print("cache warm-start smoke: OK")
    return 0


if __name__ == "__main__":
    args = sys.argv[1:]
    if len(args) == 2 and args[0] == "--warm":
        raise SystemExit(run_warm(args[1]))
    if len(args) >= 2:
        raise SystemExit(run_sharded(args))
    print(__doc__)
    raise SystemExit(2)
