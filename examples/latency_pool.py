"""Health-driven worker pool under churn (CI's latency-smoke job).

Usage::

    python -m repro serve --port 8100 &                         # manager
    python -m repro serve --port 8111 --register http://127.0.0.1:8100 &
    python -m repro serve --port 8112 --register http://127.0.0.1:8100 &
    python -m repro serve --port 8113 --register http://127.0.0.1:8100 \\
        --delay 0.05 &                                          # straggler
    python examples/latency_pool.py http://127.0.0.1:8100 \\
        --expect 3 --kill-pid <straggler-pid>

Exercises the PR 9 tail-latency service core end to end and exits
non-zero on the first broken property:

1. **discovery** — the pool manager's ``/workers`` list converges to
   ``--expect`` registered workers (no static ``$REPRO_REMOTE_WORKERS``
   list anywhere);
2. **streaming identity** — a ``solve_batch`` sweep streamed over the
   discovered pool returns results identical (solver, value,
   partition, seed) to ``backend="serial"``, while the straggler's
   chunks are re-packed onto healthy workers mid-sweep;
3. **mid-sweep death** — with ``--kill-pid``, one worker is SIGTERMed
   *while the sweep is running*: the sweep must still finish
   bit-identical to serial, and membership must converge to
   ``--expect - 1`` afterwards — worker loss is an operational event,
   not an error.
"""

import argparse
import os
import signal
import sys
import threading

from repro.api import Engine, solve_batch
from repro.errors import ServiceError
from repro.exec.remote import RemoteExecutor
from repro.graphs import build_family

FAMILIES = (("gnp", 24), ("grid", 25), ("cycle", 16))
COUNT = 4  # instances per family -> a 12-graph sweep


def sweep_graphs():
    return [
        build_family(family, n, seed=seed)
        for family, n in FAMILIES
        for seed in range(COUNT)
    ]


def identity(results):
    """The fields the acceptance criterion pins: solver, value, cut, seed."""
    return [
        (r.solver, r.value, tuple(sorted(r.side, key=repr)), r.seed)
        for r in results
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manager", help="pool manager base URL")
    parser.add_argument(
        "--expect", type=int, default=3,
        help="registered workers to wait for before sweeping",
    )
    parser.add_argument(
        "--kill-pid", type=int, default=None,
        help="SIGTERM this worker pid mid-sweep, then assert the pool "
             "converges to expect-1 and results stay identical to serial",
    )
    parser.add_argument(
        "--kill-after", type=float, default=0.3,
        help="seconds into the sweep to fire --kill-pid (default: 0.3)",
    )
    args = parser.parse_args()

    from repro.service import WorkerPool

    pool = WorkerPool(manager=args.manager, interval=0.2).start()

    # 1. Discovery: membership converges to the registered fleet.
    try:
        members = pool.wait_for(args.expect, timeout=30.0)
    except ServiceError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"pool converged: {len(members)} worker(s) via {args.manager}")
    for url in members:
        print(f"  {url}")

    graphs = sweep_graphs()
    serial = identity(Engine().solve_batch(graphs, "stoer_wagner"))

    # 2 & 3. Streaming sweep over the discovered pool, optionally with
    # one worker killed while the sweep is in flight.
    executor = RemoteExecutor(pool=pool)
    killer = None
    if args.kill_pid is not None:
        def fire():
            print(f"killing worker pid {args.kill_pid} mid-sweep")
            try:
                os.kill(args.kill_pid, signal.SIGTERM)
            except OSError as exc:
                print(f"FAIL: could not kill {args.kill_pid}: {exc}")

        killer = threading.Timer(args.kill_after, fire)
        killer.start()
    try:
        remote = identity(solve_batch(graphs, "stoer_wagner", backend=executor))
    finally:
        if killer is not None:
            killer.join()

    if remote != serial:
        print("FAIL: streamed remote sweep diverged from serial")
        return 1
    plan = executor.last_plan
    print(
        f"streamed {plan['tasks']} task(s) in {plan['chunks']} chunk(s) "
        f"over {plan['workers']} worker(s); {plan['stolen']} re-packed, "
        f"dead={plan['dead']}, joined={plan['joined']}"
    )
    print("OK: streamed remote sweep identical to serial")

    if args.kill_pid is not None:
        try:
            survivors = pool.wait_for(args.expect - 1, timeout=30.0)
        except ServiceError as exc:
            print(f"FAIL: {exc}")
            return 1
        print(
            f"OK: membership converged to {len(survivors)} survivor(s) "
            f"after the kill"
        )

    pool.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
