#!/usr/bin/env python
"""Measure Theorem 2.1's round complexity across graph families.

A miniature of benchmark E1: run the distributed 1-respecting min-cut
on growing instances of several topologies, print measured rounds next
to √n + D, and fit the scaling exponent.

Run:  python examples/congest_rounds_scaling.py
"""

import math

from repro.analysis import fit_power_law, format_table, normalized_rounds
from repro.core import one_respecting_min_cut_congest
from repro.graphs import build_family, diameter, random_spanning_tree


def main() -> None:
    rows = []
    xs, ys = [], []
    for family in ("gnp", "grid"):
        for n in (64, 144, 324, 625):
            graph = build_family(family, n, seed=1)
            tree = random_spanning_tree(graph, seed=1)
            outcome = one_respecting_min_cut_congest(graph, tree)
            d = diameter(graph)
            actual_n = graph.number_of_nodes
            measured = outcome.metrics.measured_rounds
            rows.append(
                [
                    family,
                    actual_n,
                    d,
                    measured,
                    round(math.sqrt(actual_n) + d, 1),
                    round(normalized_rounds(measured, actual_n, d), 2),
                ]
            )
            xs.append(math.sqrt(actual_n) + d)
            ys.append(measured)
    print(
        format_table(
            ["family", "n", "D", "measured rounds", "sqrt(n)+D", "rounds/(sqrt(n)+D)"],
            rows,
            title="Theorem 2.1 measured rounds (paper bound: O~(sqrt(n)+D))",
        )
    )
    fit = fit_power_law(xs, ys)
    print(
        f"\npower-law fit rounds ~ (sqrt(n)+D)^alpha: alpha = {fit.exponent:.2f} "
        f"(R^2 = {fit.r_squared:.3f}) — near 1 reproduces the theorem's shape"
    )


if __name__ == "__main__":
    main()
