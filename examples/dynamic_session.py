"""End-to-end smoke of ``/mutate`` on a *running* repro service.

Usage::

    python -m repro serve --port 8138 --access-log access.log &
    python examples/dynamic_session.py http://127.0.0.1:8138

Drives one server-side dynamic-graph session through
:class:`repro.service.RemoteDynamicSession` and exits non-zero on the
first broken property:

1. open + cold solve — the remote result matches a direct in-process
   ``repro.solve`` of the same graph;
2. pod-style acks — every op is acknowledged with the resulting graph
   ``content_hash``, matching a local replay;
3. certificate skip — a non-crossing weight increase is answered from
   the witness (``extras["certificate"]``), no solver run;
4. cache hit — undoing back to a previously solved state is served
   from the shared result cache;
5. close — the session disappears from ``/healthz`` and further use
   answers 404.
"""

import sys

from repro.api import solve
from repro.dynamic import AddEdge
from repro.errors import ServiceError
from repro.graphs import planted_cut_graph
from repro.service import ServiceClient


def main(base_url: str) -> int:
    client = ServiceClient(base_url, timeout=60.0)
    health = client.wait_until_ready(timeout=30.0)
    print(f"service up: version {health['version']}, "
          f"{health.get('sessions', 0)} session(s) open")

    # 1. open + cold solve vs direct.
    graph = planted_cut_graph((10, 10), cut_value=3, seed=5)
    session = client.open_session(graph, solver="stoer_wagner", seed=0)
    base = session.solve()
    direct = solve(graph, solver="stoer_wagner", seed=0)
    assert base.value == direct.value == 3.0, (base.value, direct.value)
    assert base.side == direct.side
    print(f"open+solve  : session {session.session_id} -> {base.value:g} "
          "(matches direct)")

    # 2. pod-style acks: every op acknowledged with the resulting hash.
    u, v, w = next(
        (u, v, w) for u, v, w in graph.edges()
        if u in base.side and v in base.side
    )
    ack = session.apply(AddEdge(u, v, 5.0))
    graph.add_edge(u, v, 5.0)  # local replay of the same mutation
    assert ack["applied"] == "merge_edge", ack
    assert ack["graph_hash"] == graph.content_hash(), "ack hash diverged"
    print(f"mutate      : {ack['op']['op']} acked, hash "
          f"{ack['graph_hash'][:12]} matches local replay")

    # 3. certificate skip: the increase cannot move the min cut.
    certified = session.solve()
    provenance = certified.extras.get("certificate")
    assert provenance is not None, "expected a certificate-skipped solve"
    assert provenance["kinds"] == ["non-crossing-increase"], provenance
    assert certified.value == base.value
    stats = session.stats()
    assert stats["certified"] == 1 and stats["solver_runs"] == 1, stats
    print(f"certificate : solver skipped via {provenance['kinds'][0]} "
          f"({stats['certified']} certified / {stats['solver_runs']} run(s))")

    # 4. undo across the solve point: revisited state is a cache hit.
    session.undo()
    graph.set_edge_weight(u, v, w)
    assert session.graph_hash == graph.content_hash()
    revisited = session.solve()
    cache_info = revisited.extras.get("cache")
    assert cache_info and cache_info["hit"], revisited.extras
    assert revisited.value == base.value and revisited.side == base.side
    print(f"cache       : undo back to solved state hit the result cache "
          f"({cache_info['hits']} hit(s))")

    # 5. close: session gone from healthz, further use is 404.
    open_before = client.health()["sessions"]
    session.close()
    assert client.health()["sessions"] == open_before - 1
    try:
        client.mutate(session=session.session_id, solve=True)
    except ServiceError as exc:
        assert exc.status == 404, exc
        print(f"close       : 404 {str(exc)[:60]!r}")
    else:
        raise AssertionError("closed session still accepted requests")

    print("dynamic session smoke: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        raise SystemExit(2)
    raise SystemExit(main(sys.argv[1]))
