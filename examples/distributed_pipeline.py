#!/usr/bin/env python
"""The full distributed pipeline on one CONGEST network, end to end.

Everything here is real message passing on the simulator:

1. distributed Borůvka builds the MST (the Kutten–Peleg stand-in),
2. the distributed fragment partition splits it into O(√n) fragments,
3. Theorem 2.1's Steps 1–5 compute every C(v↓) and the global minimum.

Along the way the engine enforces the CONGEST constraint (one O(log n)-
bit message per edge per direction per round) and counts everything.

Run:  python examples/distributed_pipeline.py
"""

from repro.analysis import format_table
from repro.baselines import stoer_wagner_min_cut
from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.graphs import connected_gnp_graph, diameter
from repro.mst import boruvka_mst


def main() -> None:
    graph = connected_gnp_graph(96, 0.08, seed=5, weight_range=(1.0, 4.0))
    print(
        f"network: n={graph.number_of_nodes}, m={graph.number_of_edges}, "
        f"D={diameter(graph)}"
    )
    net = CongestNetwork(graph)

    tree = boruvka_mst(net)
    mst_rounds = net.metrics.measured_rounds
    print(f"\n[1] distributed Boruvka MST: {mst_rounds} rounds, height {tree.height()}")

    outcome = one_respecting_min_cut_congest(
        graph, tree, network=net, simulate_partition=True
    )
    print(
        f"[2+3] fragments + Theorem 2.1: c* = {outcome.best_value:g} below node "
        f"{outcome.best_node} ({outcome.fragment_count} fragments)"
    )

    print("\nper-phase round costs:")
    rows = [
        [p.name, p.rounds, p.messages, p.max_message_words]
        for p in net.metrics.phases
        if p.rounds > 0 and not p.name.startswith("mst:")
    ]
    print(format_table(["phase", "rounds", "messages", "max words/msg"], rows))

    summary = net.metrics.summary()
    print(
        f"\ntotals: {summary['measured_rounds']} measured rounds, "
        f"{summary['messages']} messages, "
        f"max message size {summary['max_message_words']} words "
        f"(budget {net.max_words_per_message})"
    )

    truth = stoer_wagner_min_cut(graph).value
    print(
        f"\nsanity: Stoer-Wagner global min cut = {truth:g}; the 1-respecting "
        f"minimum of this single tree is an upper bound: {outcome.best_value:g} "
        f">= {truth:g} is {outcome.best_value >= truth - 1e-9}"
    )


if __name__ == "__main__":
    main()
