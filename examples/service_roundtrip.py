"""End-to-end smoke of a *running* repro service (CI's service-smoke job).

Usage::

    python -m repro serve --port 8137 --access-log access.log &
    python examples/service_roundtrip.py http://127.0.0.1:8137

Exercises the full request surface against a live server and exits
non-zero on the first broken property:

1. ``/solve`` round trip — the remote ``CutResult`` matches a direct
   in-process ``repro.solve`` (value, witness side, solver) and the
   witness verifies locally;
2. ``/solve_batch`` — per-instance values match a direct batch;
3. cache-hit repeat — the identical request again is a server cache
   hit, visible both in ``extras["cache"]`` and ``/healthz`` counters;
4. malformed request — a non-JSON body answers a structured 400.
"""

import json
import sys
import urllib.error
import urllib.request

from repro.api import solve, solve_batch
from repro.graphs import planted_cut_graph
from repro.service import ServiceClient


def main(base_url: str) -> int:
    client = ServiceClient(base_url, timeout=60.0)
    health = client.wait_until_ready(timeout=30.0)
    print(f"service up: version {health['version']}, "
          f"{health['solvers']} solvers registered")

    # 1. solve round trip vs direct.
    graph = planted_cut_graph((12, 12), cut_value=3, seed=7)
    remote = client.solve(graph, seed=0)
    direct = solve(graph, seed=0)
    assert remote.value == direct.value == 3.0, (remote.value, direct.value)
    assert remote.side == direct.side
    assert remote.solver == direct.solver
    assert remote.matches(graph), "remote witness failed local verification"
    print(f"solve       : {remote.solver} -> {remote.value:g} (matches direct)")

    # 2. batch round trip vs direct.
    graphs = [planted_cut_graph((8, 8), 2, seed=s) for s in range(4)]
    remote_batch = client.solve_batch(graphs, solver="stoer_wagner")
    direct_batch = solve_batch(graphs, solver="stoer_wagner")
    assert [r.value for r in remote_batch] == [r.value for r in direct_batch]
    assert [r.side for r in remote_batch] == [r.side for r in direct_batch]
    print(f"solve_batch : {len(remote_batch)} instances match direct")

    # 3. identical request again: server cache hit.
    repeat = client.solve(graph, seed=0)
    assert repeat.extras["cache"]["hit"], repeat.extras
    assert repeat.value == remote.value and repeat.side == remote.side
    hits = client.health()["cache"]["hits"]
    assert hits >= 1, f"healthz reports no cache hits after a repeat: {hits}"
    print(f"cache       : repeat request hit ({hits} total hit(s))")

    # 4. malformed body: structured 400 (raw urllib — the typed client
    # cannot even emit a non-JSON body).
    request = urllib.request.Request(
        base_url.rstrip("/") + "/solve",
        data=b"definitely not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        urllib.request.urlopen(request, timeout=10.0)
    except urllib.error.HTTPError as exc:
        assert exc.code == 400, f"expected 400, got {exc.code}"
        body = json.loads(exc.read().decode("utf-8"))
        assert body["error"]["type"] == "ServiceError", body
        print(f"malformed   : 400 {body['error']['message']!r}")
    else:
        raise AssertionError("malformed request was accepted")

    print("service round-trip smoke: OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        raise SystemExit(2)
    raise SystemExit(main(sys.argv[1]))
