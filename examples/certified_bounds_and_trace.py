#!/usr/bin/env python
"""Certified cut bounds + watching the distributed algorithm's messages.

Part 1 uses tree packings the *other* way round: as certificates.
Pairwise edge-disjoint spanning trees prove λ ≥ their count
(Tutte/Nash-Williams); the cheapest 1-respecting cut over them proves an
upper bound — a guaranteed interval with zero trust in any solver.

Part 2 attaches a MessageTracer to a small Theorem 2.1 run and prints
the actual CONGEST messages of the per-edge LCA exchange — the
``ch``/``vd``/``sk`` protocol of Step 5 described in docs/algorithm.md.

Run:  python examples/certified_bounds_and_trace.py
"""

from repro.analysis import format_table
from repro.baselines import stoer_wagner_min_cut
from repro.congest import CongestNetwork, MessageTracer, kind_filter
from repro.core import one_respecting_min_cut_congest
from repro.core.figure1 import figure1_instance
from repro.graphs import hypercube_graph, planted_cut_graph, torus_graph
from repro.packing import certified_cut_bounds


def part1_certified_bounds() -> None:
    print("=== Part 1: certified bounds from tree packings ===")
    instances = [
        ("hypercube Q4", hypercube_graph(4)),
        ("torus 5x5", torus_graph(5, 5)),
        ("planted λ=3", planted_cut_graph((12, 12), 3, seed=1)),
    ]
    rows = []
    for name, graph in instances:
        bounds = certified_cut_bounds(graph)
        truth = stoer_wagner_min_cut(graph).value
        rows.append(
            [name, bounds.disjoint_trees, bounds.lower, truth, bounds.upper]
        )
    print(
        format_table(
            ["instance", "disjoint trees", "certified ≥", "true λ", "certified ≤"],
            rows,
        )
    )
    print("the interval is a proof: no solver needs to be trusted\n")


def part2_message_trace() -> None:
    print("=== Part 2: the Step 5 LCA exchange, message by message ===")
    inst = figure1_instance()
    tracer = MessageTracer(event_filter=kind_filter("ch", "che", "vd", "vdn", "sk", "ske"))
    net = CongestNetwork(inst.graph, tracer=tracer)
    outcome = one_respecting_min_cut_congest(
        inst.graph, inst.tree, network=net, partition_threshold=4
    )
    print(f"LCA-phase messages recorded: {len(tracer)}")
    print(f"kinds: {tracer.kind_histogram()}")
    print("\nthe exchange over the case-2 edge (13, 15):")
    for event in tracer.between(13, 15) + tracer.between(15, 13):
        print(f"  {event.render()}")
    print(
        f"\nresolved: LCA(13,15) = "
        f"{net.memory[13]['or:lca'][15].lca} (a merging node), "
        f"c* = {outcome.best_value:g}"
    )


if __name__ == "__main__":
    part1_certified_bounds()
    part2_message_trace()
