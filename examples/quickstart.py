#!/usr/bin/env python
"""Quickstart: find a minimum cut three ways through the unified API.

Builds a planted-cut graph (two dense communities joined by exactly 3
edges), then computes the minimum cut with :func:`repro.api.solve`:

1. ``solver="auto"`` — the paper's exact algorithm (Thorup packing +
   1-respecting cuts) wins the capability-based selection,
2. the paper's (1+ε)-approximation (Karger sampling + exact),
3. the Stoer–Wagner ground truth,

and prints the agreement.  Every call returns the same canonical
``CutResult``, whose ``verify(graph)`` recomputes the witness's cut
value straight from the graph.  Run:  python examples/quickstart.py
"""

from repro.api import solve
from repro.graphs import planted_cut_graph, planted_cut_sides


def main() -> None:
    sides = (16, 18)
    graph = planted_cut_graph(sides, cut_value=3, seed=42)
    print(
        f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges, "
        f"planted min cut = 3 (side = first {sides[0]} nodes)"
    )

    truth = solve(graph, solver="stoer_wagner")
    print(f"Stoer-Wagner ground truth : {truth.value:g}")

    exact = solve(graph)  # auto-selected: the paper's exact algorithm
    print(
        f"paper exact (tree packing): {exact.value:g}   "
        f"(solver={exact.solver!r}, found by packing tree "
        f"#{exact.extras['tree_index']} of {exact.extras['trees_used']})"
    )

    approx = solve(graph, solver="approx", epsilon=0.5, seed=1)
    mode = (
        "sampled skeleton" if approx.extras["used_sampling"]
        else "exact path (small lambda)"
    )
    print(f"paper (1+eps), eps=0.5    : {approx.value:g}   via {mode}")

    assert exact.value == truth.value
    assert approx.value <= 1.5 * truth.value
    # Every CutResult can be re-verified against the graph it came from.
    assert exact.verify(graph) == exact.value
    assert approx.matches(graph)

    recovered = exact.side if len(exact.side) <= sides[1] else set(graph.nodes) - exact.side
    planted = planted_cut_sides(sides)
    print(
        "witness side matches planted community: "
        f"{set(recovered) == planted or set(graph.nodes) - set(recovered) == planted}"
    )


if __name__ == "__main__":
    main()
