#!/usr/bin/env python
"""Quickstart: find a minimum cut three ways.

Builds a planted-cut graph (two dense communities joined by exactly 3
edges), then computes the minimum cut with

1. the paper's exact algorithm (Thorup packing + 1-respecting cuts),
2. the paper's (1+ε)-approximation (Karger sampling + exact),
3. the Stoer–Wagner ground truth,

and prints the agreement.  Run:  python examples/quickstart.py
"""

from repro.baselines import stoer_wagner_min_cut
from repro.graphs import planted_cut_graph, planted_cut_sides
from repro.mincut import minimum_cut_approx, minimum_cut_exact


def main() -> None:
    sides = (16, 18)
    graph = planted_cut_graph(sides, cut_value=3, seed=42)
    print(
        f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges, "
        f"planted min cut = 3 (side = first {sides[0]} nodes)"
    )

    truth = stoer_wagner_min_cut(graph)
    print(f"Stoer-Wagner ground truth : {truth.value:g}")

    exact = minimum_cut_exact(graph)
    print(
        f"paper exact (tree packing): {exact.value:g}   "
        f"(found by packing tree #{exact.tree_index} of {exact.trees_used})"
    )

    approx = minimum_cut_approx(graph, epsilon=0.5, seed=1)
    mode = "sampled skeleton" if approx.used_sampling else "exact path (small lambda)"
    print(f"paper (1+eps), eps=0.5    : {approx.value:g}   via {mode}")

    assert exact.value == truth.value
    assert approx.value <= 1.5 * truth.value
    recovered = exact.side if len(exact.side) <= sides[1] else set(graph.nodes) - exact.side
    planted = planted_cut_sides(sides)
    print(
        "witness side matches planted community: "
        f"{set(recovered) == planted or set(graph.nodes) - set(recovered) == planted}"
    )


if __name__ == "__main__":
    main()
