#!/usr/bin/env python
"""Walk through the paper's Figure 1 on the reconstructed 16-node instance.

Prints every structure the figure illustrates — fragments (1b), the
scope-ancestor set A(v) (1c), the skeleton tree T'_F (1d), the Step 5
LCA case of each non-tree edge (1e) and the ρ-message types (1f) — first
from the centralized reference, then re-derived *from node memory* after
a real distributed run on the CONGEST simulator.

Run:  python examples/figure1_walkthrough.py
"""

from repro.analysis import format_table
from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.core.figure1 import figure1_instance
from repro.core.structures import StructuresReference


def main() -> None:
    inst = figure1_instance()
    dec = inst.decomposition
    ref = StructuresReference(inst.graph, inst.tree, dec)

    print("=== Figure 1a: the 16-node spanning tree ===")
    for depth in range(inst.tree.height() + 1):
        level = [u for u in inst.tree.preorder() if inst.tree.depth(u) == depth]
        print(f"  depth {depth}: {level}")

    print("\n=== Figure 1b: fragments (id = min member) ===")
    rows = [
        [fid, dec.fragment_root(fid), sorted(dec.members_of(fid)),
         dec.parent_fragment(fid) if dec.parent_fragment(fid) is not None else "-"]
        for fid in dec.fragment_ids()
    ]
    print(format_table(["fragment", "root", "members", "parent fragment"], rows))

    print("\n=== Figure 1c: scope ancestors A(v) of the deep node 11 ===")
    print(f"  A(11) = {ref.scope_ancestors[11]}")

    print("\n=== Figure 1d: merging nodes and the skeleton tree T'_F ===")
    print(f"  merging nodes: {sorted(ref.merging_nodes)}")
    rows = [[v, p if p is not None else "-"] for v, p in sorted(ref.skeleton_parent.items())]
    print(format_table(["T'_F node", "parent"], rows))

    print("\n=== Figures 1e/1f: LCA cases and rho message types per edge ===")
    rows = []
    for u, v, _w in sorted(inst.graph.edges()):
        if inst.tree.parent(u) == v or inst.tree.parent(v) == u:
            continue  # skip tree edges: always case 1/3 trivially
        case = ref.lca_case(u, v)
        mtype, lca, holder = ref.rho_message_type(u, v)
        rows.append([f"({u},{v})", case, lca, "(i) global" if mtype == 1 else "(ii) fragment", holder])
    print(format_table(["edge", "LCA case", "LCA", "rho type", "holder"], rows))

    print("\n=== Distributed re-derivation (CONGEST simulator) ===")
    net = CongestNetwork(inst.graph)
    outcome = one_respecting_min_cut_congest(
        inst.graph, inst.tree, network=net, partition_threshold=4
    )
    mem11 = net.memory[11]
    print(f"  node 11 learned A(11)  = {[a for a, _f, _h in sorted(mem11['or:A'], key=lambda t: t[2])]}")
    print(f"  node 11 learned T'_F   = {mem11['or:tfprime']}")
    agree = all(
        net.memory[u]["or:lca"][v].lca == inst.tree.lca(u, v)
        for u, v, _w in inst.graph.edges()
    )
    print(f"  all per-edge LCAs match the centralized reference: {agree}")
    print(
        f"  1-respecting minimum cut c* = {outcome.best_value:g} below node "
        f"{outcome.best_node} in {outcome.metrics.measured_rounds} measured rounds"
    )


if __name__ == "__main__":
    main()
