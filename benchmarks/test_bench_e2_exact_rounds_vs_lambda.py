"""E2 — exact min cut in O~((√n + D)·poly(λ)) rounds.

Paper claim ("Our Results"): the exact algorithm costs O~((√n + D)
poly(λ)) — the λ-dependence enters only through the number of packing
trees, each of which costs one Theorem 2.1 run of O~(√n + D).

Regenerated series: on planted-cut instances with λ = 1..6 (constant n
and D), run every congest-capable exact solver in the registry
(via ``conftest.registry_comparison`` with ``mode="congest"`` — a newly
registered round-accounted solver joins this table automatically)
against the registry's ground truth, and report λ, trees packed, the
winning tree's index, total accounted rounds, and the per-tree cost
normalised by (√n + D).  Shape to match: exactness at every λ, and a
normalised per-tree cost that is flat in λ — the whole λ-dependence
lives in the tree count, exactly as the bound states.
"""

import math

from conftest import registry_comparison, run_once

from repro.analysis import format_table
from repro.graphs import diameter, planted_cut_graph

SIDES = (24, 24)
LAMBDAS = (1, 2, 3, 4, 5, 6)


def _experiment():
    rows = []
    normalised_costs = []
    for lam in LAMBDAS:
        graph = planted_cut_graph(SIDES, lam, seed=lam * 5)
        truth, results = registry_comparison(
            graph, kinds=("exact",), mode="congest", seed=lam
        )
        assert results, "no congest-capable exact solver registered"
        n = graph.number_of_nodes
        d = diameter(graph)
        for result in results:
            assert result.value == truth.value, (lam, result.solver)
            assert result.metrics is not None, (lam, result.solver)
            trees = result.extras["trees_used"]
            total = result.metrics.total_rounds
            per_tree = total / trees
            normalised = per_tree / (math.sqrt(n) + d)
            normalised_costs.append(normalised)
            rows.append(
                [
                    lam,
                    result.solver,
                    truth.value,
                    trees,
                    result.extras["tree_index"],
                    total,
                    round(per_tree, 1),
                    round(normalised, 2),
                ]
            )
    return rows, normalised_costs


def test_e2_exact_rounds_vs_lambda(benchmark, record_table):
    rows, normalised_costs = run_once(benchmark, _experiment)
    table = format_table(
        [
            "λ",
            "solver",
            "min cut",
            "trees packed",
            "winning tree",
            "total rounds",
            "rounds/tree",
            "per-tree / (sqrt(n)+D)",
        ],
        rows,
        title=(
            "E2 — exact min cut via tree packing (planted family, n=48)\n"
            "paper: O~((sqrt(n)+D)·poly(λ)); per-tree cost flat, "
            "λ enters via the tree count; registry-driven (every "
            "congest-capable exact solver)"
        ),
    )
    record_table("E2_exact_rounds_vs_lambda", table)

    # Per-tree cost normalised by (sqrt(n)+D) is flat in λ.
    assert max(normalised_costs) <= 2.0 * min(normalised_costs)
    # Exactness was asserted per instance inside the experiment; the
    # winning tree index stays minuscule next to Thorup's λ^7 budget.
    assert all(row[4] <= 12 for row in rows)
