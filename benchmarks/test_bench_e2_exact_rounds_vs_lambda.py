"""E2 — exact min cut in O~((√n + D)·poly(λ)) rounds.

Paper claim ("Our Results"): the exact algorithm costs O~((√n + D)
poly(λ)) — the λ-dependence enters only through the number of packing
trees, each of which costs one Theorem 2.1 run of O~(√n + D).

Regenerated series: on planted-cut instances with λ = 1..6 (constant n
and D), run the exact congest-mode algorithm and report λ, trees packed,
the winning tree's index, total accounted rounds, and the per-tree cost
normalised by (√n + D).  Shape to match: exactness at every λ, and a
normalised per-tree cost that is flat in λ — the whole λ-dependence
lives in the tree count, exactly as the bound states.
"""

import math

from conftest import run_once

from repro.analysis import format_table
from repro.baselines import stoer_wagner_min_cut
from repro.graphs import diameter, planted_cut_graph
from repro.mincut import minimum_cut_exact

SIDES = (24, 24)
LAMBDAS = (1, 2, 3, 4, 5, 6)


def _experiment():
    rows = []
    normalised_costs = []
    for lam in LAMBDAS:
        graph = planted_cut_graph(SIDES, lam, seed=lam * 5)
        truth = stoer_wagner_min_cut(graph).value
        exact = minimum_cut_exact(graph, mode="congest")
        assert exact.value == truth, (lam, exact.value, truth)
        n = graph.number_of_nodes
        d = diameter(graph)
        total = exact.metrics.total_rounds
        per_tree = total / exact.trees_used
        normalised = per_tree / (math.sqrt(n) + d)
        normalised_costs.append(normalised)
        rows.append(
            [
                lam,
                truth,
                exact.trees_used,
                exact.tree_index,
                total,
                round(per_tree, 1),
                round(normalised, 2),
            ]
        )
    return rows, normalised_costs


def test_e2_exact_rounds_vs_lambda(benchmark, record_table):
    rows, normalised_costs = run_once(benchmark, _experiment)
    table = format_table(
        [
            "λ",
            "min cut",
            "trees packed",
            "winning tree",
            "total rounds",
            "rounds/tree",
            "per-tree / (sqrt(n)+D)",
        ],
        rows,
        title=(
            "E2 — exact min cut via tree packing (planted family, n=48)\n"
            "paper: O~((sqrt(n)+D)·poly(λ)); per-tree cost flat, "
            "λ enters via the tree count"
        ),
    )
    record_table("E2_exact_rounds_vs_lambda", table)

    # Per-tree cost normalised by (sqrt(n)+D) is flat in λ.
    assert max(normalised_costs) <= 2.0 * min(normalised_costs)
    # Exactness was asserted per instance inside the experiment; the
    # winning tree index stays minuscule next to Thorup's λ^7 budget.
    assert all(row[3] <= 12 for row in rows)
