"""P5 — scheduler balance: LPT cost packing vs index striping.

Not a paper claim: this measures the execution layer's shard planner
(PR 8).  The sweep is deliberately skewed — every fourth task is a
``brute_force`` solve on a larger instance, the rest are cheap
``matula`` approximations — and the worker count divides the heavy
stride, so the historic index stripe (task ``i`` on worker ``i % W``)
piles **all** heavy tasks onto worker 0 and the whole sweep waits on
that one straggler.  :func:`repro.exec.pack_tasks` with the engine's
registry cost function isolates each heavy task instead, which is
where the near-linear makespan improvement comes from.

**How makespan is measured.**  Each plan's bins are executed one at a
time and the per-bin busy seconds are measured directly; the plan's
makespan is the maximum — the wall clock a pool of ``W`` independent
workers would see, each running its whole bin (the exact homing the
``remote`` backend uses: bin → worker is fixed up front, no work
stealing hides a bad plan).  Measuring per-bin busy time rather than
racing a local process pool keeps the number honest on small hosts:
on a single-CPU runner a 4-process pool serialises both plans equally
and shows nothing, while per-bin busy time is contention-free on any
host and is the quantity the planner actually optimises.

Both plans execute the identical frozen tasks, and the result
identity (solver, value, cut side, seed) is asserted bit-equal
between serial, striped, packed, and remote (2 live HTTP workers)
runs — the improvement is never allowed to come from divergent
behaviour.  The committed table also carries a tiny calibration run
(:func:`repro.exec.run_calibration` on a 4-point grid) so the
fit-quality story — fitted relative wall-time error vs the scaled
hand-fit baseline — is visible next to the makespans it feeds.
"""

import os
import threading
import time

from conftest import run_once

from repro.analysis import format_table
from repro.api import Engine
from repro.exec import pack_tasks, run_calibration
from repro.exec.backends import _run_chunk
from repro.exec.remote import RemoteExecutor
from repro.graphs import build_family
from repro.service import create_server

TASK_COUNT = 16
HEAVY_EVERY = 4  # heavy indices 0, 4, 8, 12 — all stripe onto worker 0
WORKERS = 4
HEAVY_N = 16
CHEAP_N = 10
REPEATS = 2

#: Makespan floor (LPT over stripe) asserted off-CI.  The plateau is
#: structural: the stripe serialises all four heavy tasks on one
#: worker, LPT gives each its own — see the committed margin.
LPT_FLOOR = 1.5


def _identity(outcomes):
    return [
        (o.solver, o.value, tuple(sorted(o.side, key=repr)), o.seed)
        for o in outcomes
    ]


def _skewed_tasks(engine):
    graphs, solvers = [], []
    for i in range(TASK_COUNT):
        if i % HEAVY_EVERY == 0:
            graphs.append(build_family("gnp", HEAVY_N, seed=i))
            solvers.append("brute_force")
        else:
            graphs.append(build_family("gnp", CHEAP_N, seed=i))
            solvers.append("matula")
    return engine.build_batch_tasks(graphs, epsilon=0.5, solvers=solvers)


def _measure_plan(tasks, cost_fn):
    """Per-bin busy seconds (best of ``REPEATS``) for one plan."""
    pack = pack_tasks(tasks, WORKERS, cost_fn)
    outcomes = [None] * len(tasks)
    bin_seconds = []
    for indices in pack.assignments:
        chunk = [tasks[i] for i in indices]
        best, kept = float("inf"), []
        for _ in range(REPEATS):
            started = time.perf_counter()
            result = _run_chunk(chunk)
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best, kept = elapsed, result
        for i, outcome in zip(indices, kept):
            outcomes[i] = outcome
        bin_seconds.append(best if indices else 0.0)
    return pack, bin_seconds, outcomes


def _remote_identity(tasks, cost_fn):
    """Run the same tasks through two live HTTP workers, cost-planned."""
    servers = [create_server(port=0) for _ in range(2)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        executor = RemoteExecutor(
            [server.url for server in servers], cost_fn=cost_fn
        )
        outcomes = executor.run_tasks(tasks)
        return outcomes, executor.last_plan
    finally:
        for server in servers:
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass


def _experiment():
    engine = Engine()
    tasks = _skewed_tasks(engine)
    cost_fn = engine.task_cost_fn()

    serial_started = time.perf_counter()
    serial = _run_chunk(tasks)
    serial_time = time.perf_counter() - serial_started

    stripe_pack, stripe_bins, stripe_out = _measure_plan(tasks, None)
    lpt_pack, lpt_bins, lpt_out = _measure_plan(tasks, cost_fn)

    assert _identity(stripe_out) == _identity(serial)
    assert _identity(lpt_out) == _identity(serial)

    remote_out, remote_plan = _remote_identity(tasks, cost_fn)
    assert _identity(remote_out) == _identity(serial)

    calibration = run_calibration(
        solvers=["stoer_wagner", "matula", "nagamochi_ibaraki"],
        families=("gnp",),
        sizes=(10, 14, 18, 22),
        repeats=1,
        include_dynamic=False,
    )
    return {
        "serial_time": serial_time,
        "stripe": (stripe_pack, stripe_bins),
        "lpt": (lpt_pack, lpt_bins),
        "remote_plan": remote_plan,
        "calibration": calibration,
    }


def test_p5_scheduler_balance(benchmark, record_table):
    data = run_once(benchmark, _experiment)
    serial_time = data["serial_time"]
    stripe_pack, stripe_bins = data["stripe"]
    lpt_pack, lpt_bins = data["lpt"]
    stripe_makespan = max(stripe_bins)
    lpt_makespan = max(lpt_bins)
    lpt_speedup = stripe_makespan / lpt_makespan

    def _heavy_counts(pack):
        return "/".join(
            str(sum(1 for i in indices if i % HEAVY_EVERY == 0))
            for indices in pack.assignments
        )

    def _plan_row(name, pack, bins):
        makespan = max(bins)
        return [
            name,
            WORKERS,
            _heavy_counts(pack),
            round(pack.balance, 2),
            round(makespan, 3),
            round(serial_time / makespan, 2),
            round(stripe_makespan / makespan, 2),
        ]

    plan_table = format_table(
        [
            "plan",
            "workers",
            "heavy per bin",
            "pred balance",
            "makespan s",
            "vs serial",
            "vs stripe",
        ],
        [
            ["serial", 1, str(TASK_COUNT // HEAVY_EVERY), "-",
             round(serial_time, 3), 1.0,
             round(stripe_makespan / serial_time, 2)],
            _plan_row("stripe", stripe_pack, stripe_bins),
            _plan_row("lpt", lpt_pack, lpt_bins),
        ],
        title=(
            "P5 — scheduler balance on a skewed sweep "
            f"({TASK_COUNT} tasks, every {HEAVY_EVERY}th brute_force "
            f"n={HEAVY_N}, rest matula n={CHEAP_N}; {WORKERS} "
            "whole-bin workers)\n"
            "makespan = max measured per-bin busy seconds (bin -> "
            "worker fixed up front, as in the remote pool);\n"
            "result identity asserted bit-equal across "
            "serial/stripe/lpt/remote"
        ),
    )
    profile = data["calibration"].profile
    beats = sum(
        1
        for model in profile.models.values()
        if model.hand_rel_error is not None
        and model.rel_error <= model.hand_rel_error + 1e-12
    )
    fit_table = format_table(
        ["solver", "samples", "r2", "fit rel err", "hand rel err",
         "s per cost unit", "status"],
        profile.rows(),
        title=(
            "calibration fit quality (tiny gnp grid, repeats=1) — "
            f"fitted beats scaled hand model on {beats}/"
            f"{len(profile.models)} solver(s)"
        ),
    )
    remote_plan = data["remote_plan"]
    remote_line = (
        f"remote (2 workers, cost plan): bit-identical to serial; "
        f"per-shard seconds {remote_plan['actual_loads']}, "
        f"actual makespan {remote_plan['actual_makespan']:.3f}s"
    )
    table = (
        f"{plan_table}\n\n"
        f"lpt-over-stripe makespan improvement: {lpt_speedup:.2f}x\n"
        f"{remote_line}\n\n{fit_table}"
    )
    record_table("P5_scheduler_balance", table)

    # The structural claims hold anywhere; the wall-clock floor only on
    # a quiet non-CI machine (same gating as P1).
    stripe_heavy = [
        sum(1 for i in indices if i % HEAVY_EVERY == 0)
        for indices in stripe_pack.assignments
    ]
    assert stripe_heavy == [TASK_COUNT // HEAVY_EVERY, 0, 0, 0]
    lpt_heavy = [
        sum(1 for i in indices if i % HEAVY_EVERY == 0)
        for indices in lpt_pack.assignments
    ]
    assert lpt_heavy == [1] * WORKERS  # one heavy task per worker
    if not benchmark.disabled and not os.environ.get("CI"):
        assert lpt_speedup >= LPT_FLOOR
