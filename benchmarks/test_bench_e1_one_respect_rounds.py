"""E1 — Theorem 2.1: 1-respecting min cut in O~(√n + D) rounds.

Paper claim: "There is an O~(n^{1/2} + D)-time distributed algorithm
that can compute c* as well as find a node v such that c* = C(v↓)."

Regenerated series: measured rounds of the full distributed Steps 1–5
across four topology families and growing n, next to √n + D, plus a
power-law fit of rounds against (√n + D).  Shape to match: exponent ≈ 1
(equivalently, the normalised column stays flat), not absolute numbers.
"""

import math

from conftest import run_once

from repro.analysis import fit_power_law, format_table, normalized_rounds
from repro.core import one_respecting_min_cut_congest, one_respecting_min_cut_reference
from repro.graphs import build_family, diameter, random_spanning_tree

FAMILIES = ("gnp", "grid", "regular")
SIZES = (64, 144, 324, 625, 1024)


def _experiment():
    rows = []
    xs, ys = [], []
    for family in FAMILIES:
        for n in SIZES:
            graph = build_family(family, n, seed=2)
            tree = random_spanning_tree(graph, seed=2)
            outcome = one_respecting_min_cut_congest(graph, tree)
            reference = one_respecting_min_cut_reference(graph, tree)
            assert abs(outcome.best_value - reference.best_value) < 1e-9
            actual_n = graph.number_of_nodes
            d = diameter(graph)
            measured = outcome.metrics.measured_rounds
            xs.append(math.sqrt(actual_n) + d)
            ys.append(measured)
            rows.append(
                [
                    family,
                    actual_n,
                    d,
                    measured,
                    outcome.metrics.charged_rounds,
                    round(math.sqrt(actual_n) + d, 1),
                    round(normalized_rounds(measured, actual_n, d), 2),
                ]
            )
    fit = fit_power_law(xs, ys)
    return rows, fit


def test_e1_one_respect_round_scaling(benchmark, record_table):
    rows, fit = run_once(benchmark, _experiment)
    table = format_table(
        [
            "family",
            "n",
            "D",
            "measured rounds",
            "charged rounds",
            "sqrt(n)+D",
            "rounds/(sqrt(n)+D)",
        ],
        rows,
        title=(
            "E1 / Theorem 2.1 — distributed 1-respecting min cut\n"
            "paper: O~(sqrt(n) + D) rounds; reproduce the shape, not constants"
        ),
    )
    table += (
        f"\n\nfit: rounds ~ (sqrt(n)+D)^{fit.exponent:.2f}  (R^2={fit.r_squared:.3f})"
    )
    record_table("E1_one_respect_rounds", table)

    # Shape assertions: near-linear in (sqrt(n)+D), and the normalised
    # ratio must not blow up with n (polylog slack allowed).
    assert 0.5 <= fit.exponent <= 1.6
    ratios = [row[6] for row in rows]
    assert max(ratios) <= 12 * min(ratios)
