"""A1 — ablation: why the fragment threshold is √n.

Step 1 partitions the tree into fragments of size ≤ s.  The paper picks
s = Θ(√n) because the round cost of the fragment-local phases is O(s)
while the global (gossip) phases cost O(k + D) with k = O(n/s) fragments
— balanced at s = √n.  This ablation sweeps s on a fixed instance and
shows the U-shape: both extremes (s → 1: many fragments, gossip-bound;
s → n: one deep fragment, intra-fragment-bound) cost more than √n.
"""

import math
import random

from conftest import run_once

from repro.analysis import format_table
from repro.core import one_respecting_min_cut_congest, one_respecting_min_cut_reference
from repro.graphs import RootedTree, path_graph

N = 400


def _experiment():
    # A deep spanning tree (the path) over a low-diameter graph (path +
    # random chords) makes both cost terms bite: intra-fragment phases
    # pay O(min(s, depth)), global phases pay O(n/s + D).
    graph = path_graph(N)
    rng = random.Random(8)
    for _ in range(3 * N):
        u, v = rng.randrange(N), rng.randrange(N)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    tree = RootedTree.path(N)
    expected = one_respecting_min_cut_reference(graph, tree).best_value
    sqrt_n = math.isqrt(graph.number_of_nodes)
    thresholds = [2, 5, sqrt_n, 4 * sqrt_n, graph.number_of_nodes]
    rows = []
    by_threshold = {}
    for s in thresholds:
        outcome = one_respecting_min_cut_congest(
            graph, tree, partition_threshold=s
        )
        assert abs(outcome.best_value - expected) < 1e-9
        rows.append(
            [s, outcome.fragment_count, outcome.metrics.measured_rounds]
        )
        by_threshold[s] = outcome.metrics.measured_rounds
    return rows, by_threshold, sqrt_n


def test_a1_fragment_threshold_ablation(benchmark, record_table):
    rows, by_threshold, sqrt_n = run_once(benchmark, _experiment)
    table = format_table(
        ["threshold s", "fragments", "measured rounds"],
        rows,
        title=(
            f"A1 — fragment-size ablation (n={N}, deep path tree over a "
            f"chordal low-D graph)\npaper's choice s = ceil(sqrt(n)) = "
            f"{sqrt_n} balances fragment-local O(s) vs global O(n/s + D)"
        ),
    )
    record_table("A1_threshold_ablation", table)

    # The √n choice beats both extremes (answers identical throughout —
    # asserted inside the experiment).
    assert by_threshold[sqrt_n] < by_threshold[2]
    assert by_threshold[sqrt_n] < by_threshold[N]
