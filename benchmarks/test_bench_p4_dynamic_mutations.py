"""P4 — dynamic mutation streams: DynamicSession vs re-solve-everything.

Not a paper claim: this is the dynamic-graph subsystem's performance
trajectory (ROADMAP item 4).  A ``DynamicSession`` absorbs a mutation
stream by patching the cached :class:`~repro.graphs.index.GraphIndex`
and content hash in place and answering most ``solve()`` calls with a
cut certificate (witness monotonicity) or an engine-cache hit instead
of a solver run.  The naive baseline answers the same stream by cold
re-solving the mutated graph after every op — rebuilt index, rebuilt
hash, full Stoer–Wagner.

The stream is generated adaptively against the current witness so that
~90% of ops are certifiable (non-crossing weight increases and
crossing decreases), with a deliberate ~10% of crossing increases that
force real solver runs.  Every per-step value is asserted equal
between the two paths — the speedup must not change a single answer.
"""

import os
import random
import time

from conftest import run_once

from repro.analysis import format_table
from repro.api import Engine
from repro.dynamic import Reweight, apply_op
from repro.exec import ResultCache
from repro.graphs import build_family

FAMILIES = (("gnp", 64), ("grid", 64))
OPS_PER_FAMILY = 60
SOLVER = "stoer_wagner"  # deterministic + exact: unlocks crossing-decrease


def _next_op(rng, graph, side):
    """One stream op, ~90% certifiable against the current witness."""
    edges = list(graph.edges())
    internal = [e for e in edges if (e[0] in side) == (e[1] in side)]
    crossing = [e for e in edges if (e[0] in side) != (e[1] in side)]
    roll = rng.random()
    if roll < 0.55 and internal:
        u, v, w = rng.choice(internal)
        return Reweight(u, v, w + rng.choice((0.5, 1.0, 2.0)))
    if roll < 0.90 and crossing:
        u, v, w = rng.choice(crossing)
        return Reweight(u, v, max(round(w * 0.75, 6), 0.125))
    u, v, w = rng.choice(crossing or internal)
    return Reweight(u, v, w + 4.0)  # crossing increase: a real solver run


def _dynamic_run(family, n):
    """Drive the session; record the ops and per-step values."""
    engine = Engine(solver=SOLVER, seed=0, cache=ResultCache())
    session = engine.dynamic_session(build_family(family, n, seed=2))
    rng = random.Random(7)
    started = time.perf_counter()
    base = session.solve()
    ops, values = [], []
    side = base.side
    for _ in range(OPS_PER_FAMILY):
        op = _next_op(rng, session.graph, side)
        session.apply(op)
        result = session.solve()
        side = result.side
        ops.append(op)
        values.append(result.value)
    elapsed = time.perf_counter() - started
    return session, ops, values, elapsed


def _naive_run(family, n, ops):
    """Replay the same ops with a cold cache-less re-solve per op."""
    engine = Engine(solver=SOLVER, seed=0)
    graph = build_family(family, n, seed=2)
    started = time.perf_counter()
    engine.solve(graph)
    values = []
    for op in ops:
        apply_op(graph, op)  # version bump: index + hash rebuilt per solve
        values.append(engine.solve(graph).value)
    return values, time.perf_counter() - started


def _experiment():
    rows = []
    speedups = []
    for family, n in FAMILIES:
        session, ops, dyn_values, dyn_elapsed = _dynamic_run(family, n)
        naive_values, naive_elapsed = _naive_run(family, n, ops)
        assert dyn_values == naive_values, (
            f"{family}: certified path diverged from cold re-solves"
        )
        stats = session.stats()
        certified_fraction = stats["certified"] / stats["solves"]
        assert certified_fraction >= 0.5, (
            f"{family}: stream no longer mostly certifiable "
            f"({certified_fraction:.0%})"
        )
        speedup = naive_elapsed / dyn_elapsed
        speedups.append(speedup)
        rows.append(
            [
                family,
                stats["graph"]["n"],
                stats["graph"]["m"],
                len(ops),
                stats["certified"],
                stats["solver_runs"],
                stats["index"]["patched"],
                stats["index"]["rebuilt"],
                round(len(ops) / dyn_elapsed, 1),
                round(len(ops) / naive_elapsed, 1),
                round(speedup, 1),
            ]
        )
    return rows, speedups


def test_p4_dynamic_mutations(benchmark, record_table):
    rows, speedups = run_once(benchmark, _experiment)
    table = format_table(
        [
            "family",
            "n",
            "m",
            "ops",
            "certified",
            "solver runs",
            "patched",
            "rebuilt",
            "dyn mut/s",
            "naive mut/s",
            "speedup",
        ],
        rows,
        title=(
            "P4 — dynamic mutation streams "
            f"(solve after every op, solver={SOLVER})\n"
            "dynamic: DynamicSession (in-place index patches + cut "
            "certificates + result cache)\n"
            "naive: cold re-solve of the mutated graph after every op\n"
            "per-step cut values asserted identical between both paths"
        ),
    )
    table += (
        "\n\nsustained speedup (naive time / dynamic time): "
        + ", ".join(
            f"{family}: {speedup:.1f}x"
            for (family, _n), speedup in zip(FAMILIES, speedups)
        )
    )
    record_table("P4_dynamic_mutations", table)

    # Value identity and certifiable fraction are always enforced in the
    # experiment body; the wall-clock floor only means something on a
    # quiet machine (same policy as P1/P2).
    if not benchmark.disabled and not os.environ.get("CI"):
        assert all(speedup >= 5.0 for speedup in speedups), speedups
