"""P1 — CONGEST engine throughput: indexed arrays vs the legacy dict loop.

Not a paper claim: this is the simulator's own performance trajectory.
PR 3 rewrote :meth:`CongestNetwork.run_phase` on the cached
:class:`~repro.graphs.index.GraphIndex` — slot-based per-directed-edge
FIFOs, activation-ordered busy-edge lists, reusable inboxes, a
construction-time message-size audit — with the seed's dict loop
preserved verbatim in :class:`LegacyCongestNetwork` as the reference.

Regenerated series: the E1 workload (the full distributed 1-respecting
min-cut of Theorem 2.1) across the standard topology families, run on
both engines.  Both produce identical rounds, messages, and cut values
(asserted here and bit-exactly in tests/test_congest_engine_equivalence
.py); the table records wall time, rounds/sec, and messages/sec per
engine.  Target: ≥2× rounds/sec over the legacy reference.
"""

import os
import time

from conftest import run_once

from repro.analysis import format_table
from repro.congest import CongestNetwork, LegacyCongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.graphs import build_family, random_spanning_tree

FAMILIES = ("gnp", "grid", "regular")
SIZES = (324, 625)
REPEATS = 3


def _timed_solve(engine, graph, tree):
    """Best-of-REPEATS wall time for one E1 solve on ``engine``."""
    best = float("inf")
    outcome = None
    for _ in range(REPEATS):
        network = engine(graph)
        started = time.perf_counter()
        result = one_respecting_min_cut_congest(graph, tree, network=network)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, outcome = elapsed, result
    return best, outcome


def _experiment():
    rows = []
    legacy_total = indexed_total = 0.0
    for family in FAMILIES:
        for n in SIZES:
            graph = build_family(family, n, seed=2)
            tree = random_spanning_tree(graph, seed=2)
            legacy_time, legacy_out = _timed_solve(
                LegacyCongestNetwork, graph, tree
            )
            indexed_time, indexed_out = _timed_solve(
                CongestNetwork, graph, tree
            )
            # Same protocol, same schedule, same answer — only the loop
            # differs.
            assert indexed_out.best_value == legacy_out.best_value
            assert (
                indexed_out.metrics.measured_rounds
                == legacy_out.metrics.measured_rounds
            )
            assert (
                indexed_out.metrics.total_messages
                == legacy_out.metrics.total_messages
            )
            rounds = indexed_out.metrics.measured_rounds
            messages = indexed_out.metrics.total_messages
            legacy_total += legacy_time
            indexed_total += indexed_time
            rows.append(
                [
                    family,
                    graph.number_of_nodes,
                    rounds,
                    messages,
                    round(legacy_time, 3),
                    round(indexed_time, 3),
                    int(rounds / legacy_time),
                    int(rounds / indexed_time),
                    int(messages / indexed_time),
                    round(legacy_time / indexed_time, 2),
                ]
            )
    return rows, legacy_total / indexed_total


def test_p1_engine_throughput(benchmark, record_table):
    rows, aggregate_speedup = run_once(benchmark, _experiment)
    table = format_table(
        [
            "family",
            "n",
            "rounds",
            "messages",
            "legacy s",
            "indexed s",
            "legacy rounds/s",
            "indexed rounds/s",
            "indexed msgs/s",
            "speedup",
        ],
        rows,
        title=(
            "P1 — engine throughput on the E1 workload "
            "(Theorem 2.1, full distributed run)\n"
            "indexed GraphIndex engine vs preserved legacy dict loop; "
            "identical rounds/messages/outputs"
        ),
    )
    table += f"\n\naggregate speedup (sum legacy / sum indexed): {aggregate_speedup:.2f}x"
    record_table("P1_engine_throughput", table)

    # Identity of results is asserted per instance above and is always
    # enforced.  The speedup floor is wall-clock and therefore only
    # meaningful on a quiet machine: it is skipped when benchmark timing
    # is disabled (the CI smoke leg) *and* on shared CI runners (where
    # the tier-1 jobs collect this file with timing enabled but load is
    # unpredictable).  The target is 2x (see committed results); the
    # hard floor leaves headroom for local load noise while still
    # catching a regression to parity with the legacy loop.
    if not benchmark.disabled and not os.environ.get("CI"):
        assert aggregate_speedup >= 1.4
        # Every family must individually beat the legacy loop.
        assert all(row[-1] > 1.0 for row in rows)
