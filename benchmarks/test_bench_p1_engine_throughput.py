"""P1 — CONGEST engine throughput: legacy vs batched vs numpy delivery.

Not a paper claim: this is the simulator's own performance trajectory.
PR 3 rewrote :meth:`CongestNetwork.run_phase` on the cached
:class:`~repro.graphs.index.GraphIndex`; PR 7 replaced that loop with a
run-scheduled batched delivery engine plus an optional numpy-backed
variant (``CongestNetwork(engine=...)``), keeping the seed's dict loop
verbatim in :class:`LegacyCongestNetwork` as the reference oracle.

Two series are regenerated:

* **Stream series (gated)** — a pipelined downcast drain: the BFS root
  streams K wide items (16 scalars, so ``max_words_per_message=16``)
  to every node through the tree, the workload the batched engine's run
  scheduling targets.  Program callbacks are trivial (record + relay),
  so wall time is dominated by the delivery engine itself: per-hop FIFO
  movement, receiver-set construction, and the per-message word audit
  (which the legacy loop recomputes recursively per hop while the new
  engines read a size cached at construction).  The ≥5× milestone is
  asserted on this series' aggregate.

* **E1 series (informational)** — the full distributed 1-respecting
  min-cut of Theorem 2.1, end to end.  Kept from the PR 3 table as the
  honest end-to-end number: roughly two thirds of an E1 solve is spent
  inside protocol callbacks that every engine shares, which caps the
  achievable ratio near 1.5–2× regardless of delivery cost (measured:
  a hypothetical zero-cost engine would reach only ~4.4×).  Asserting
  5× here would gate on the part of the system this PR does not touch —
  that mismatch is why the P1 workload was redefined; the solve rows
  remain so the end-to-end trajectory stays visible.

Every row asserts bit-identical results across engines (PhaseMetrics
equality and identical node memory for streams; cut value, rounds and
messages for E1) — the speedup is never allowed to come from divergent
behaviour.  The E1 rows run the *default* engine (``engine=None``), so
``$REPRO_CONGEST_ENGINE`` legs of the CI benchmark smoke exercise and
upload per-engine variants of this table.
"""

import math
import os
import time
import warnings

from conftest import run_once

from repro.analysis import format_table
from repro.congest import (
    CongestNetwork,
    LegacyCongestNetwork,
    numpy_available,
    resolve_engine,
)
from repro.core import one_respecting_min_cut_congest
from repro.graphs import build_family, random_spanning_tree
from repro.primitives.bfs import BFS_TREE, build_bfs_tree
from repro.primitives.dissemination import DowncastItems

STREAM_FAMILIES = (("gnp", 324), ("regular", 625), ("grid", 625))
STREAM_ITEMS = 512
STREAM_WIDTH = 16  # scalars per item == words per message
STREAM_REPEATS = 5

E1_FAMILIES = (("gnp", 324), ("grid", 625))
E1_REPEATS = 3


def _legacy_network(graph, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return LegacyCongestNetwork(graph, **kwargs)


def _stream_items(ctx):
    if BFS_TREE.parent(ctx) is None:
        return [
            tuple(range(k, k + STREAM_WIDTH)) for k in range(STREAM_ITEMS)
        ]
    return ()


def _timed_stream(make_network, graph):
    """Best-of-repeats drain time; returns (seconds, metrics, memory)."""
    best = float("inf")
    outcome = None
    for _ in range(STREAM_REPEATS):
        network = make_network(graph, max_words_per_message=STREAM_WIDTH)
        build_bfs_tree(network)
        started = time.perf_counter()
        result = network.run_phase(
            "p1:stream", lambda u: DowncastItems(BFS_TREE, _stream_items)
        )
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, outcome = elapsed, (result.metrics, network.memory)
    return best, outcome


def _timed_solve(make_network, graph, tree):
    best = float("inf")
    outcome = None
    for _ in range(E1_REPEATS):
        network = make_network(graph)
        started = time.perf_counter()
        result = one_respecting_min_cut_congest(graph, tree, network=network)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, outcome = elapsed, result
    return best, outcome


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _stream_series():
    """Per-engine stream rows plus aggregate speedups."""
    engines = ["batched"]
    if numpy_available():
        engines.append("numpy")
    rows = []
    speedups = {engine: [] for engine in engines}
    for family, size in STREAM_FAMILIES:
        graph = build_family(family, size, seed=2)
        legacy_time, (legacy_pm, legacy_mem) = _timed_stream(
            _legacy_network, graph
        )
        row = [
            family,
            graph.number_of_nodes,
            legacy_pm.rounds,
            legacy_pm.messages,
            round(legacy_time, 3),
        ]
        for engine in engines:
            engine_time, (pm, mem) = _timed_stream(
                lambda g, **kw: CongestNetwork(g, engine=engine, **kw), graph
            )
            # Bit-identical behaviour: same metrics (wall_time excluded
            # from dataclass comparison), same per-node item streams.
            assert pm == legacy_pm, f"{engine} metrics diverge on {family}"
            assert mem == legacy_mem, f"{engine} memory diverges on {family}"
            speedup = legacy_time / engine_time
            speedups[engine].append(speedup)
            row += [round(engine_time, 3), round(speedup, 2)]
        if "numpy" not in engines:
            row += ["-", "-"]
        rows.append(row)
    aggregates = {
        engine: _geomean(values) for engine, values in speedups.items()
    }
    return rows, aggregates


def _e1_series():
    """Legacy vs default-engine rows for the end-to-end solve."""
    rows = []
    ratios = []
    for family, size in E1_FAMILIES:
        graph = build_family(family, size, seed=2)
        tree = random_spanning_tree(graph, seed=2)
        legacy_time, legacy_out = _timed_solve(_legacy_network, graph, tree)
        engine_time, engine_out = _timed_solve(CongestNetwork, graph, tree)
        assert engine_out.best_value == legacy_out.best_value
        assert (
            engine_out.metrics.measured_rounds
            == legacy_out.metrics.measured_rounds
        )
        assert (
            engine_out.metrics.total_messages
            == legacy_out.metrics.total_messages
        )
        ratio = legacy_time / engine_time
        ratios.append(ratio)
        rows.append(
            [
                family,
                graph.number_of_nodes,
                engine_out.metrics.measured_rounds,
                engine_out.metrics.total_messages,
                round(legacy_time, 3),
                round(engine_time, 3),
                round(ratio, 2),
            ]
        )
    return rows, _geomean(ratios)


def _experiment():
    stream_rows, stream_aggregates = _stream_series()
    e1_rows, e1_aggregate = _e1_series()
    return stream_rows, stream_aggregates, e1_rows, e1_aggregate


def test_p1_engine_throughput(benchmark, record_table):
    stream_rows, stream_aggregates, e1_rows, e1_aggregate = run_once(
        benchmark, _experiment
    )
    stream_table = format_table(
        [
            "family",
            "n",
            "rounds",
            "messages",
            "legacy s",
            "batched s",
            "batched x",
            "numpy s",
            "numpy x",
        ],
        stream_rows,
        title=(
            "P1a — engine throughput, pipelined stream drain "
            f"(downcast of {STREAM_ITEMS} items x {STREAM_WIDTH} words)\n"
            "delivery-bound workload; identical PhaseMetrics and node "
            "memory asserted per row"
        ),
    )
    e1_table = format_table(
        [
            "family",
            "n",
            "rounds",
            "messages",
            "legacy s",
            "default s",
            "speedup",
        ],
        e1_rows,
        title=(
            "P1b — end-to-end E1 solve (Theorem 2.1), legacy vs default "
            f"engine ({resolve_engine()!r})\n"
            "callback-bound workload: ~2/3 of wall time is shared "
            "protocol code, capping any engine's ratio (informational)"
        ),
    )
    aggregate_lines = "\n".join(
        f"stream aggregate speedup ({engine}, geomean): {value:.2f}x"
        for engine, value in stream_aggregates.items()
    )
    table = (
        f"{stream_table}\n\n{aggregate_lines}\n\n{e1_table}\n\n"
        f"e1 aggregate speedup (default engine, geomean): {e1_aggregate:.2f}x"
    )
    record_table("P1_engine_throughput", table)

    # Identity of results is asserted per row above and always enforced.
    # Wall-clock floors are only meaningful on a quiet machine: skipped
    # when benchmark timing is disabled (the CI smoke leg) and on shared
    # CI runners.  The stream milestone is >=5x on the batched engine
    # (see committed results for the measured margin); numpy carries a
    # lower floor because tree streams have near-duplicate-free receiver
    # sets, the case where its vectorized receiver reduction buys the
    # least over the batched branch loop.
    if not benchmark.disabled and not os.environ.get("CI"):
        assert stream_aggregates["batched"] >= 5.0
        assert all(row[6] >= 3.0 for row in stream_rows)
        if "numpy" in stream_aggregates:
            assert stream_aggregates["numpy"] >= 3.0
        assert e1_aggregate >= 1.2
