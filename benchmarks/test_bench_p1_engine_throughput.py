"""P1 — CONGEST engine throughput: batched baseline vs per-message/numpy.

Not a paper claim: this is the simulator's own performance trajectory.
PR 3 rewrote :meth:`CongestNetwork.run_phase` on the cached
:class:`~repro.graphs.index.GraphIndex`; PR 7 replaced that loop with a
run-scheduled batched delivery engine plus an optional numpy-backed
variant (``CongestNetwork(engine=...)``), measured at >=5x aggregate
over the seed's preserved dict loop on this stream series (5.41x
batched / 5.43x numpy — see the PR 7 table in git history).  PR 8
retired that legacy loop, so the historical 5x milestone can no longer
be regenerated; this table is **re-baselined against the batched
engine** and now tracks *parity* across the production engines plus
the per-message oracle path (the indexed one-dispatch-per-hop branch
that tracers force and the equivalence suite pins).  The per-message
path shares the PR 3/7 wins — cached message sizes, flat directed-edge
arrays — so on delivery-bound streams it sits near 1x of batched; the
gate here is that no engine regresses past the parity band, and that
results stay bit-identical.

Two series are regenerated:

* **Stream series (gated)** — a pipelined downcast drain: the BFS root
  streams K wide items (16 scalars, so ``max_words_per_message=16``)
  to every node through the tree, the workload the batched engine's run
  scheduling targets.  Program callbacks are trivial (record + relay),
  so wall time is dominated by the delivery engine itself: per-hop FIFO
  movement, receiver-set construction, and the per-message word audit.

* **E1 series (informational)** — the full distributed 1-respecting
  min-cut of Theorem 2.1, end to end.  Kept as the honest end-to-end
  number: roughly two thirds of an E1 solve is spent inside protocol
  callbacks that every engine shares, so all engines sit near parity
  here by construction.  The solve rows remain so the end-to-end
  trajectory stays visible.

Every row asserts bit-identical results across engines (PhaseMetrics
equality and identical node memory for streams; cut value, rounds and
messages for E1) — the ratios are never allowed to come from divergent
behaviour.  The E1 rows run the *default* engine (``engine=None``), so
``$REPRO_CONGEST_ENGINE`` legs of the CI benchmark smoke exercise and
upload per-engine variants of this table.
"""

import math
import os
import time

from conftest import run_once

from repro.analysis import format_table
from repro.congest import CongestNetwork, numpy_available, resolve_engine
from repro.core import one_respecting_min_cut_congest
from repro.graphs import build_family, random_spanning_tree
from repro.primitives.bfs import BFS_TREE, build_bfs_tree
from repro.primitives.dissemination import DowncastItems

STREAM_FAMILIES = (("gnp", 324), ("regular", 625), ("grid", 625))
STREAM_ITEMS = 512
STREAM_WIDTH = 16  # scalars per item == words per message
STREAM_REPEATS = 5

E1_FAMILIES = (("gnp", 324), ("grid", 625))
E1_REPEATS = 3

# Any engine slower than 1/PARITY_FLOOR x the batched baseline on a
# delivery-bound stream is a regression worth failing on.
PARITY_FLOOR = 0.4


def _stream_items(ctx):
    if BFS_TREE.parent(ctx) is None:
        return [
            tuple(range(k, k + STREAM_WIDTH)) for k in range(STREAM_ITEMS)
        ]
    return ()


def _timed_stream(make_network, graph):
    """Best-of-repeats drain time; returns (seconds, metrics, memory)."""
    best = float("inf")
    outcome = None
    for _ in range(STREAM_REPEATS):
        network = make_network(graph, max_words_per_message=STREAM_WIDTH)
        build_bfs_tree(network)
        started = time.perf_counter()
        result = network.run_phase(
            "p1:stream", lambda u: DowncastItems(BFS_TREE, _stream_items)
        )
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, outcome = elapsed, (result.metrics, network.memory)
    return best, outcome


def _timed_solve(make_network, graph, tree):
    best = float("inf")
    outcome = None
    for _ in range(E1_REPEATS):
        network = make_network(graph)
        started = time.perf_counter()
        result = one_respecting_min_cut_congest(graph, tree, network=network)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, outcome = elapsed, result
    return best, outcome


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _stream_series():
    """Per-engine stream rows plus aggregate parity ratios vs batched."""
    engines = ["per-message"]
    if numpy_available():
        engines.append("numpy")
    rows = []
    ratios = {engine: [] for engine in engines}
    for family, size in STREAM_FAMILIES:
        graph = build_family(family, size, seed=2)
        base_time, (base_pm, base_mem) = _timed_stream(
            lambda g, **kw: CongestNetwork(g, engine="batched", **kw), graph
        )
        row = [
            family,
            graph.number_of_nodes,
            base_pm.rounds,
            base_pm.messages,
            round(base_time, 3),
        ]
        for engine in engines:
            engine_time, (pm, mem) = _timed_stream(
                lambda g, **kw: CongestNetwork(g, engine=engine, **kw), graph
            )
            # Bit-identical behaviour: same metrics (wall_time excluded
            # from dataclass comparison), same per-node item streams.
            assert pm == base_pm, f"{engine} metrics diverge on {family}"
            assert mem == base_mem, f"{engine} memory diverges on {family}"
            ratio = base_time / engine_time
            ratios[engine].append(ratio)
            row += [round(engine_time, 3), round(ratio, 2)]
        if "numpy" not in engines:
            row += ["-", "-"]
        rows.append(row)
    aggregates = {
        engine: _geomean(values) for engine, values in ratios.items()
    }
    return rows, aggregates


def _e1_series():
    """Batched vs default-engine rows for the end-to-end solve."""
    rows = []
    ratios = []
    for family, size in E1_FAMILIES:
        graph = build_family(family, size, seed=2)
        tree = random_spanning_tree(graph, seed=2)
        base_time, base_out = _timed_solve(
            lambda g: CongestNetwork(g, engine="batched"), graph, tree
        )
        engine_time, engine_out = _timed_solve(CongestNetwork, graph, tree)
        assert engine_out.best_value == base_out.best_value
        assert (
            engine_out.metrics.measured_rounds
            == base_out.metrics.measured_rounds
        )
        assert (
            engine_out.metrics.total_messages
            == base_out.metrics.total_messages
        )
        ratio = base_time / engine_time
        ratios.append(ratio)
        rows.append(
            [
                family,
                graph.number_of_nodes,
                engine_out.metrics.measured_rounds,
                engine_out.metrics.total_messages,
                round(base_time, 3),
                round(engine_time, 3),
                round(ratio, 2),
            ]
        )
    return rows, _geomean(ratios)


def _experiment():
    stream_rows, stream_aggregates = _stream_series()
    e1_rows, e1_aggregate = _e1_series()
    return stream_rows, stream_aggregates, e1_rows, e1_aggregate


def test_p1_engine_throughput(benchmark, record_table):
    stream_rows, stream_aggregates, e1_rows, e1_aggregate = run_once(
        benchmark, _experiment
    )
    stream_table = format_table(
        [
            "family",
            "n",
            "rounds",
            "messages",
            "batched s",
            "per-msg s",
            "per-msg x",
            "numpy s",
            "numpy x",
        ],
        stream_rows,
        title=(
            "P1a — engine parity, pipelined stream drain "
            f"(downcast of {STREAM_ITEMS} items x {STREAM_WIDTH} words)\n"
            "delivery-bound workload, batched engine as baseline "
            "(historical 5x-over-seed-loop table: PR 7, git history);\n"
            "identical PhaseMetrics and node memory asserted per row"
        ),
    )
    e1_table = format_table(
        [
            "family",
            "n",
            "rounds",
            "messages",
            "batched s",
            "default s",
            "ratio",
        ],
        e1_rows,
        title=(
            "P1b — end-to-end E1 solve (Theorem 2.1), batched vs "
            f"default engine ({resolve_engine()!r})\n"
            "callback-bound workload: ~2/3 of wall time is shared "
            "protocol code, so parity is expected (informational)"
        ),
    )
    aggregate_lines = "\n".join(
        f"stream aggregate ratio vs batched ({engine}, geomean): "
        f"{value:.2f}x"
        for engine, value in stream_aggregates.items()
    )
    table = (
        f"{stream_table}\n\n{aggregate_lines}\n\n{e1_table}\n\n"
        f"e1 aggregate ratio (default vs batched, geomean): "
        f"{e1_aggregate:.2f}x"
    )
    record_table("P1_engine_throughput", table)

    # Identity of results is asserted per row above and always enforced.
    # Wall-clock bands are only meaningful on a quiet machine: skipped
    # when benchmark timing is disabled (the CI smoke leg) and on shared
    # CI runners.  All engines share the PR 3/7 delivery wins, so the
    # gate is a parity band rather than a speedup floor: no engine may
    # fall past PARITY_FLOOR of the batched baseline on a
    # delivery-bound stream, and the default engine must hold parity on
    # the end-to-end solve.
    if not benchmark.disabled and not os.environ.get("CI"):
        for engine, value in stream_aggregates.items():
            assert value >= PARITY_FLOOR, (engine, value)
        assert e1_aggregate >= PARITY_FLOOR
