"""E6 — CONGEST-model compliance audit.

Paper's model (Section 1): "in each round, each node can send a message
of size O(log n) bits to each of its neighbors."

Regenerated table: for a representative workload, per-phase maxima of
message size (in words — one word models O(log n) bits) and the largest
per-edge queue backlog (pipelining depth).  The engine delivers at most
one message per edge per direction per round *by construction*; this
audit demonstrates the remaining obligation — constant-size messages —
holds across every phase of the algorithm, with strict mode enabled.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.graphs import connected_gnp_graph, random_spanning_tree

N = 256


def _experiment():
    graph = connected_gnp_graph(N, 3.5 / 16, seed=4)
    tree = random_spanning_tree(graph, seed=4)
    net = CongestNetwork(graph, strict=True)
    one_respecting_min_cut_congest(graph, tree, network=net)
    rows = [
        [p.name, p.rounds, p.messages, p.max_message_words, p.max_edge_backlog]
        for p in net.metrics.phases
        if p.messages > 0
    ]
    return rows, net.metrics.summary(), net.max_words_per_message


def test_e6_congestion_audit(benchmark, record_table):
    rows, summary, budget = run_once(benchmark, _experiment)
    table = format_table(
        ["phase", "rounds", "messages", "max words/msg", "max edge backlog"],
        rows,
        title=(
            f"E6 — CONGEST bandwidth audit (n={N}, strict mode)\n"
            "delivery is 1 message/edge/direction/round by construction; "
            f"message budget = {budget} words (1 word ≈ O(log n) bits)"
        ),
    )
    table += (
        f"\n\ntotals: {summary['measured_rounds']} measured rounds, "
        f"{summary['messages']} messages, max message "
        f"{summary['max_message_words']} words"
    )
    record_table("E6_congestion_audit", table)

    # Every phase respects the O(log n)-bit message budget.
    assert all(row[3] <= budget for row in rows)
    # Pipelining exists (some phase queues many messages per edge) —
    # i.e. the bound is enforced by serialisation, not by assumption.
    assert max(row[4] for row in rows) >= 4
