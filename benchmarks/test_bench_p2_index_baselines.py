"""P2 — index-first centralized baselines: GraphIndex vs per-call rebuilds.

Not a paper claim: this is the library's own performance trajectory
(the first slice of the ROADMAP "index-first algorithms" item).  Prim
and Stoer–Wagner historically rebuilt ``{u: {v: w}}`` adjacency (or
walked ``neighbors()``/``weight()`` per edge) on every call; they now
read the cached :class:`~repro.graphs.index.GraphIndex` — Stoer–Wagner
seeds its contractible super-node adjacency from the index's per-node
weight maps, Prim scans CSR slices — so one shared index serves the
whole ``compare`` fan-out.

Regenerated series: the legacy access patterns are preserved inline
here as the "before" reference and timed against the shipped
index-based implementations on the standard families.  The tree /
cut-value equality of both paths is asserted on every instance (the
index port must be a pure access-path change), and the table records
the before/after wall times for (a) the adjacency-rebuild slice alone
and (b) the end-to-end algorithms.
"""

import heapq
import os
import timeit

from conftest import run_once

from repro.analysis import format_table
from repro.baselines.stoer_wagner import stoer_wagner_min_cut
from repro.graphs import build_family
from repro.graphs.trees import RootedTree
from repro.mst.kruskal import edge_total_order
from repro.mst.prim import minimum_spanning_tree_prim

FAMILIES = (("gnp", 160), ("grid", 225), ("complete", 96))


def _legacy_rebuild(graph):
    """The pre-PR-5 Stoer–Wagner adjacency construction, verbatim."""
    return {
        u: {v: graph.weight(u, v) for v in graph.neighbors(u)}
        for u in graph.nodes
    }


def _index_rebuild(graph):
    """The shipped construction: copy the index's per-node weight maps."""
    index = graph.index()
    return {u: dict(w) for u, w in zip(index.nodes, index.weight_maps)}


def _legacy_prim(graph, root=None):
    """The pre-PR-5 Prim loop (dict walks per edge), verbatim."""
    graph.require_connected()
    start = root if root is not None else graph.nodes[0]
    parent = {}
    in_tree = {start}
    heap = [
        (edge_total_order(start, v, graph.weight(start, v)), start, v)
        for v in graph.neighbors(start)
    ]
    heapq.heapify(heap)
    while heap and len(in_tree) < graph.number_of_nodes:
        _rank, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        parent[v] = u
        for w in graph.neighbors(v):
            if w not in in_tree:
                heapq.heappush(
                    heap, (edge_total_order(v, w, graph.weight(v, w)), v, w)
                )
    return RootedTree(start, parent)


def _best(fn, number, repeat=3):
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


def _experiment():
    rows = []
    before_total = after_total = 0.0
    for family, n in FAMILIES:
        graph = build_family(family, n, seed=1)
        graph.require_connected()
        graph.index()  # pre-build: the index is cached and shared anyway

        # Identity: the index port is an access-path change only.
        assert _legacy_rebuild(graph) == _index_rebuild(graph)
        legacy_tree = _legacy_prim(graph)
        indexed_tree = minimum_spanning_tree_prim(graph)
        assert sorted(legacy_tree.edges()) == sorted(indexed_tree.edges())
        assert legacy_tree.root == indexed_tree.root
        cut = stoer_wagner_min_cut(graph)
        assert cut.matches(graph)

        rebuild_before = _best(lambda: _legacy_rebuild(graph), 50)
        rebuild_after = _best(lambda: _index_rebuild(graph), 50)
        prim_before = _best(lambda: _legacy_prim(graph), 10)
        prim_after = _best(lambda: minimum_spanning_tree_prim(graph), 10)
        sw_after = _best(lambda: stoer_wagner_min_cut(graph), 2)
        before_total += rebuild_before + prim_before
        after_total += rebuild_after + prim_after
        rows.append(
            [
                family,
                graph.number_of_nodes,
                graph.number_of_edges,
                round(rebuild_before * 1e6, 1),
                round(rebuild_after * 1e6, 1),
                round(rebuild_before / rebuild_after, 1),
                round(prim_before * 1e3, 3),
                round(prim_after * 1e3, 3),
                round(prim_before / prim_after, 2),
                round(sw_after * 1e3, 2),
            ]
        )
    return rows, before_total / after_total


def test_p2_index_baselines(benchmark, record_table):
    rows, aggregate_speedup = run_once(benchmark, _experiment)
    table = format_table(
        [
            "family",
            "n",
            "m",
            "rebuild before us",
            "rebuild after us",
            "speedup",
            "prim before ms",
            "prim after ms",
            "speedup",
            "stoer-wagner ms",
        ],
        rows,
        title=(
            "P2 — index-first centralized baselines (Prim / Stoer–Wagner)\n"
            "before: per-call {u: {v: w}} rebuilds and neighbors()/weight() "
            "walks; after: cached GraphIndex views\n"
            "identical trees and adjacency asserted per instance; "
            "Stoer–Wagner end-to-end shown for scale (its n-1 contraction "
            "phases dominate, so the rebuild win is a fixed setup saving)"
        ),
    )
    table += (
        "\n\naggregate rebuild+prim speedup "
        f"(sum before / sum after): {aggregate_speedup:.2f}x"
    )
    record_table("P2_index_baselines", table)

    # Identity is always enforced above; the wall-clock floor only means
    # something on a quiet machine (same policy as P1).
    if not benchmark.disabled and not os.environ.get("CI"):
        assert aggregate_speedup >= 1.1
        # The rebuild slice itself must clearly win on every family.
        assert all(row[5] > 2.0 for row in rows)
