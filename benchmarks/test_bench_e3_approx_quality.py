"""E3 — (1+ε) beats (2+ε): approximation quality via the solver registry.

Paper claim ("Our Results" + "Previous Work"): a (1+ε)-approximation in
O~((√n+D)/poly(ε)) rounds, improving the (2+ε) algorithm of
Ghaffari–Kuhn [DISC 2013]; Su's concurrent sampling-based (1+ε) result
cannot be exact even for small λ.

Registry-driven since PR 2: instead of hard-coding the three
algorithms, every registered non-heavy ``approx`` solver runs through
``solve_all`` (via :func:`conftest.registry_comparison`) and is judged
against the registry's ground-truth solver — a newly registered
approximation shows up in this table automatically.  Each solver's
realised ratio is checked against the guarantee band its own registry
metadata declares (``1+eps`` / ``2+eps``; ``whp`` guarantees are
recorded but not asserted).

Regenerated table: realised approximation ratios (value / ground truth)
across instances and ε values.  Shape to match: our ratio ≤ 1+ε
everywhere (and usually 1.0); Matula bounded by 2+ε; Su valid but
occasionally above ours.
"""

from conftest import registry_comparison, run_once

from repro.analysis import format_cut_results, format_table
from repro.api import default_registry
from repro.exec import ResultCache
from repro.graphs import complete_graph, connected_gnp_graph, planted_cut_graph

EPSILONS = (0.25, 0.5, 1.0)

#: guarantee string → base of the hard (base+ε) band; whp guarantees absent.
GUARANTEE_BASE = {"1+eps": 1.0, "2+eps": 2.0}


def _instances():
    return [
        ("planted λ=2", planted_cut_graph((14, 14), 2, seed=1)),
        ("planted λ=6", planted_cut_graph((18, 18), 6, seed=2)),
        ("ER n=36", connected_gnp_graph(36, 0.4, seed=3)),
        ("K64", complete_graph(64)),
    ]


def _experiment():
    rows = []
    sections = []
    checked = []  # (solver, guarantee, ratio, eps) with a hard band
    headline = []  # realised ratios of the paper's (1+eps) solver
    # The ground-truth solve is ε-independent; the shared result cache
    # dedups it across the ε loop (one exact solve per instance).
    cache = ResultCache()
    for name, graph in _instances():
        for eps in EPSILONS:
            truth, results = registry_comparison(
                graph, epsilon=eps, seed=11, kinds=("approx",), cache=cache
            )
            sections.append(
                format_cut_results(
                    results,
                    truth=truth.value,
                    registry=default_registry(),
                    title=f"{name}, ε={eps}",
                )
            )
            for result in results:
                ratio = result.value / truth.value
                path = result.extras.get("used_sampling")
                rows.append(
                    [
                        name,
                        eps,
                        truth.value,
                        result.solver,
                        result.guarantee,
                        round(ratio, 3),
                        "-" if path is None else ("sampling" if path else "exact"),
                    ]
                )
                if result.guarantee in GUARANTEE_BASE:
                    checked.append((result.solver, result.guarantee, ratio, eps))
                if result.solver == "approx":
                    headline.append(ratio)
    return rows, sections, checked, headline


def test_e3_approximation_quality(benchmark, record_table):
    rows, sections, checked, headline = run_once(benchmark, _experiment)
    table = format_table(
        ["instance", "ε", "λ", "solver", "guarantee", "ratio", "path"],
        rows,
        title=(
            "E3 — approximation ratios vs ground truth (registry-driven)\n"
            "paper: (1+ε) improves the previous (2+ε) [GK13]; Su concurrent "
            "(1+ε) cannot be exact"
        ),
    )
    record_table("E3_approx_quality", "\n\n".join([table, *sections]))

    # The paper's solver actually ran on every instance/ε pair.
    assert len(headline) == len(_instances()) * len(EPSILONS)
    # Guarantees realised: each solver within its own declared band.
    for solver, guarantee, ratio, eps in checked:
        base = GUARANTEE_BASE[guarantee]
        assert 1.0 - 1e-9 <= ratio <= base + eps + 1e-9, (solver, eps, ratio)
    # The headline: our worst ratio beats the (2+ε) *guarantee* band.
    assert max(headline) < 2.0
