"""E3 — (1+ε) beats (2+ε): approximation quality comparison.

Paper claim ("Our Results" + "Previous Work"): a (1+ε)-approximation in
O~((√n+D)/poly(ε)) rounds, improving the (2+ε) algorithm of
Ghaffari–Kuhn [DISC 2013]; Su's concurrent sampling-based (1+ε) result
cannot be exact even for small λ.

Regenerated table: realised approximation ratios (value / ground truth)
of the three algorithms across instances and ε values.  Shape to match:
our ratio ≤ 1+ε everywhere (and usually 1.0); Matula bounded by 2+ε;
Su valid but occasionally above ours.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.baselines import (
    matula_approx_min_cut,
    stoer_wagner_min_cut,
    su_approx_min_cut,
)
from repro.graphs import complete_graph, connected_gnp_graph, planted_cut_graph
from repro.mincut import minimum_cut_approx

EPSILONS = (0.25, 0.5, 1.0)


def _instances():
    return [
        ("planted λ=2", planted_cut_graph((14, 14), 2, seed=1)),
        ("planted λ=6", planted_cut_graph((18, 18), 6, seed=2)),
        ("ER n=36", connected_gnp_graph(36, 0.4, seed=3)),
        ("K64", complete_graph(64)),
    ]


def _experiment():
    rows = []
    ours_ratios, matula_ratios = [], []
    for name, graph in _instances():
        truth = stoer_wagner_min_cut(graph).value
        su = su_approx_min_cut(graph, seed=5)
        for eps in EPSILONS:
            ours = minimum_cut_approx(graph, epsilon=eps, seed=11)
            matula = matula_approx_min_cut(graph, epsilon=eps)
            r_ours = ours.value / truth
            r_matula = matula.value / truth
            ours_ratios.append((r_ours, eps))
            matula_ratios.append((r_matula, eps))
            rows.append(
                [
                    name,
                    eps,
                    truth,
                    round(r_ours, 3),
                    round(r_matula, 3),
                    round(su.value / truth, 3),
                    "sampling" if ours.used_sampling else "exact",
                ]
            )
    return rows, ours_ratios, matula_ratios


def test_e3_approximation_quality(benchmark, record_table):
    rows, ours_ratios, matula_ratios = run_once(benchmark, _experiment)
    table = format_table(
        ["instance", "ε", "λ", "ours (1+ε)", "Matula (2+ε)", "Su", "our path"],
        rows,
        title=(
            "E3 — approximation ratios vs ground truth\n"
            "paper: (1+ε) improves the previous (2+ε) [GK13]; Su concurrent "
            "(1+ε) cannot be exact"
        ),
    )
    record_table("E3_approx_quality", table)

    # Guarantees realised: ours within 1+ε, Matula within 2+ε.
    for ratio, eps in ours_ratios:
        assert 1.0 - 1e-9 <= ratio <= 1.0 + eps + 1e-9
    for ratio, eps in matula_ratios:
        assert 1.0 - 1e-9 <= ratio <= 2.0 + eps + 1e-9
    # The headline: our worst ratio beats the (2+ε) *guarantee* band.
    assert max(r for r, _ in ours_ratios) < 2.0
