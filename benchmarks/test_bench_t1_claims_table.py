"""T1 — the Section 1 comparison, regenerated with measured numbers.

The paper's "Previous Work" / "Our Results" prose is effectively a
comparison table:

    algorithm              guarantee   rounds
    ---------------------  ---------   -----------------------
    Ghaffari–Kuhn [GK13]   (2+ε)       O~(√n + D)
    this paper (exact)     exact       O~((√n + D)·poly(λ))
    this paper (approx)    (1+ε)       O~((√n + D)/poly(ε))
    lower bound [DHK+11]   any approx  Ω~(√n + D)

This benchmark regenerates it with *measured* quality and *accounted*
rounds on a common instance, demonstrating who wins (approximation
ratio) and what it costs (round counts on the simulator).
"""

import math

from conftest import run_once

from repro.analysis import format_table
from repro.baselines import matula_approx_min_cut, stoer_wagner_min_cut
from repro.graphs import diameter, planted_cut_graph
from repro.mincut import minimum_cut_approx, minimum_cut_exact

EPSILON = 0.5


def _experiment():
    graph = planted_cut_graph((40, 40), 3, seed=13)
    truth = stoer_wagner_min_cut(graph).value
    n = graph.number_of_nodes
    d = diameter(graph)

    exact = minimum_cut_exact(graph, mode="congest")
    approx = minimum_cut_approx(graph, epsilon=EPSILON, seed=13, mode="congest")
    matula = matula_approx_min_cut(graph, epsilon=EPSILON)

    rows = [
        [
            "Ghaffari-Kuhn (2+ε) [Matula analog]",
            f"≤ {2 + EPSILON}",
            round(matula.value / truth, 3),
            "O~(sqrt(n)+D) [theory]",
            "-",
        ],
        [
            "this paper, exact",
            "exact",
            round(exact.value / truth, 3),
            "O~((sqrt(n)+D)·poly(λ))",
            exact.metrics.total_rounds,
        ],
        [
            "this paper, (1+ε)",
            f"≤ {1 + EPSILON}",
            round(approx.value / truth, 3),
            "O~((sqrt(n)+D)/poly(ε))",
            approx.metrics.total_rounds if approx.metrics else exact.metrics.total_rounds,
        ],
        [
            "lower bound [DHK+11]",
            "any",
            "-",
            "Ω~(sqrt(n)+D)",
            math.ceil(math.sqrt(n) + d),
        ],
    ]
    return rows, truth, n, d, exact, approx


def test_t1_claims_table(benchmark, record_table):
    rows, truth, n, d, exact, approx = run_once(benchmark, _experiment)
    table = format_table(
        ["algorithm", "guarantee", "measured ratio", "round bound", "accounted rounds"],
        rows,
        title=(
            f"T1 — Section 1 comparison regenerated (planted λ={truth:g}, "
            f"n={n}, D={d})\n'accounted rounds' = measured simulator rounds "
            "+ charged substituted costs"
        ),
    )
    record_table("T1_claims_table", table)

    # Who wins: both of our algorithms are exact here; the (2+ε)
    # baseline is allowed to be worse but never better than exact.
    assert exact.value == truth
    assert approx.value <= (1 + EPSILON) * truth + 1e-9
    # The accounted rounds sit above the lower-bound quantity (we are an
    # upper bound, with polylog/poly(λ) slack) but within poly factors.
    lower = math.sqrt(n) + d
    assert exact.metrics.total_rounds >= lower
    assert exact.metrics.total_rounds <= 1000 * lower
