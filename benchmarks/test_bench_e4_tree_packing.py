"""E4 — Thorup's tree packing: how many trees until one 1-respects?

Paper technique: "if we generate Θ(λ^7 log^3 n) trees … then one of
these trees will contain exactly one edge in the minimum cut."

Regenerated table: on planted-cut instances with λ = 1..6, the 1-based
index of the first greedy packing tree that 1-respects the planted
minimum cut, versus Thorup's theoretical budget.  Shape to match: a
1-respecting tree always exists within the budget — empirically within
a handful of trees, which is exactly the gap the exact driver's adaptive
schedule exploits.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.graphs import planted_cut_graph, planted_cut_sides
from repro.packing import (
    GreedyTreePacking,
    crossing_count,
    thorup_tree_bound,
    trees_until_one_respecting,
)

LAMBDAS = (1, 2, 3, 4, 5, 6)
SIDES = (15, 15)
MAX_TREES = 64


def _experiment():
    rows = []
    for lam in LAMBDAS:
        graph = planted_cut_graph(SIDES, lam, seed=lam * 3)
        side = planted_cut_sides(SIDES)
        packing = GreedyTreePacking(graph)
        trees = packing.grow_to(MAX_TREES)
        index = trees_until_one_respecting(trees, side)
        min_crossings = min(crossing_count(t, side) for t in trees)
        rows.append(
            [
                lam,
                index,
                min_crossings,
                thorup_tree_bound(lam, graph.number_of_nodes),
            ]
        )
    return rows


def test_e4_tree_packing(benchmark, record_table):
    rows = run_once(benchmark, _experiment)
    table = format_table(
        ["λ", "first 1-respecting tree", "min crossings seen", "Thorup bound λ^7·log³n"],
        rows,
        title=(
            "E4 — greedy tree packing vs the minimum cut (planted instances)\n"
            "paper: some tree among Θ(λ^7 log³ n) 1-respects a min cut; "
            "empirically a handful suffice"
        ),
    )
    record_table("E4_tree_packing", table)

    for lam, index, min_crossings, bound in rows:
        assert min_crossings == 1  # a 1-respecting tree was found...
        assert index <= MAX_TREES  # ...quickly,
        assert index <= bound  # ...and certainly within Thorup's budget.
    # The gap the adaptive schedule exploits: empirical ≪ theoretical
    # (compared per λ; at λ=1 the bound is only polylog, so skip it).
    for _lam, index, _mc, bound in rows[1:]:
        assert index * 100 < bound
