"""P3 — service tail latency: streaming dispatch vs blocking fan-out.

Not a paper claim: this measures the PR 9 service core.  The fleet is
deliberately unbalanced — two healthy workers plus one **straggler**
(``ServiceConfig.delay`` injects a fixed sleep per task solved), the
deployment shape that motivated streaming dispatch.  Two effects are
measured:

* **solve_batch latency.**  The blocking path posts one whole shard
  per worker and waits for all of them, so every sweep ends
  ``delay x bin_size`` late — the straggler's entire bin serialises on
  it.  The streaming path keeps one small chunk in flight per worker
  and lets the healthy workers steal the straggler's remaining chunks
  (the LPT planner's remainder re-packed mid-sweep), so a sweep ends at
  most ~one chunk after the healthy workers drain everything else.
  p50/p99 over repeated sweeps are recorded and the committed margin
  asserts streaming p99 beats blocking p99 by at least
  ``STREAM_FLOOR``x off CI.
* **concurrent single solves.**  A small client fleet hammers one
  async-transport server over keep-alive connections; per-request
  p50/p99 and aggregate throughput are recorded (the queue-depth gate
  is sized so nothing is throttled — the table records the counter to
  prove it).

Correctness is never traded: every measured configuration's results
are asserted bit-identical (solver, value, cut side, seed) to the
serial backend — including a sweep where the straggler is **killed**
mid-``solve_batch`` (survivors adopt its chunks) and one where a fresh
worker **joins via discovery** (``POST /register`` on a pool manager)
while the sweep is running, with no executor restart.
"""

import os
import threading
import time

from conftest import run_once

from repro.analysis import format_table
from repro.api import Engine
from repro.exec.remote import RemoteExecutor
from repro.graphs import build_family
from repro.service import ServiceClient, ServiceConfig, WorkerPool, create_server

GRAPHS = 12          # instances per solve_batch sweep
N = 12               # instance size (stoer_wagner at this size is ~ms)
SWEEPS = 5           # repeated sweeps per dispatch mode (p99 = worst)
STRAGGLER_DELAY = 0.10   # injected seconds per task on the slow worker
CLIENTS = 4          # concurrent single-solve clients
REQUESTS = 8         # requests per client

#: Off-CI floor: streaming p99 must beat blocking p99 by this factor
#: under the injected straggler.  Structural, not a tuning accident:
#: blocking waits for the straggler's whole bin (4 tasks here =
#: ~0.4s), streaming leaves it at most ~one chunk (~0.1s).
STREAM_FLOOR = 1.5


def _identity(outcomes):
    return [
        (o.solver, o.value, tuple(sorted(o.side, key=repr)), o.seed)
        for o in outcomes
    ]


def _graphs():
    return [build_family("gnp", N, seed=s) for s in range(GRAPHS)]


def _start_server(**config_kwargs):
    server = create_server(
        port=0,
        config=ServiceConfig(**config_kwargs) if config_kwargs else None,
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def _stop_server(server):
    try:
        server.shutdown()
        server.server_close()
    except OSError:
        pass


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _sweep_latencies(engine, graphs, sweeps):
    latencies = []
    results = None
    for _ in range(sweeps):
        started = time.perf_counter()
        results = engine.solve_batch(graphs, "stoer_wagner")
        latencies.append(time.perf_counter() - started)
    return latencies, results


def _run_experiment():
    graphs = _graphs()
    serial = Engine().solve_batch(graphs, "stoer_wagner")
    truth = _identity(serial)
    rows = []

    fleet = [_start_server(), _start_server(),
             _start_server(delay=STRAGGLER_DELAY)]
    urls = [server.url for server in fleet]
    try:
        # -- blocking vs streaming solve_batch under the straggler ----
        stats = {}
        for mode in ("block", "stream"):
            executor = RemoteExecutor(urls, dispatch=mode)
            latencies, results = _sweep_latencies(
                Engine(backend=executor), graphs, SWEEPS
            )
            assert _identity(results) == truth, f"{mode} diverged from serial"
            stats[mode] = {
                "p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
                "plan": executor.last_plan,
            }
            rows.append([
                f"solve_batch/{mode}", f"{GRAPHS} tasks x {SWEEPS} sweeps",
                f"{stats[mode]['p50'] * 1000:.0f}",
                f"{stats[mode]['p99'] * 1000:.0f}",
                f"{GRAPHS * SWEEPS / sum(latencies):.1f} task-batches: "
                f"{GRAPHS / stats[mode]['p50']:.0f} tasks/s",
            ])
        ratio = stats["block"]["p99"] / stats["stream"]["p99"]
        stolen = stats["stream"]["plan"]["stolen"]

        # -- straggler killed mid-sweep -------------------------------
        executor = RemoteExecutor(urls)
        killer = threading.Timer(
            STRAGGLER_DELAY, lambda: _stop_server(fleet[2])
        )
        killer.start()
        kill_results = Engine(backend=executor).solve_batch(
            graphs, "stoer_wagner"
        )
        killer.join()
        assert _identity(kill_results) == truth, "mid-sweep kill diverged"
        kill_dead = len(executor.last_plan["dead"])
    finally:
        for server in fleet:
            _stop_server(server)

    # -- worker joins via discovery mid-sweep -------------------------
    manager = _start_server()
    seed_worker = _start_server(delay=0.03)
    late_worker = _start_server()
    pool = WorkerPool(
        [seed_worker.url], manager=manager.url, interval=0.05
    ).start()
    try:
        executor = RemoteExecutor(pool=pool)
        joiner = threading.Timer(
            0.15,
            lambda: ServiceClient(manager.url).register(late_worker.url),
        )
        joiner.start()
        join_results = Engine(backend=executor).solve_batch(
            graphs, "stoer_wagner"
        )
        joiner.join()
        assert _identity(join_results) == truth, "discovery join diverged"
        joined = executor.last_plan["joined"]
    finally:
        pool.stop()
        for server in (manager, seed_worker, late_worker):
            _stop_server(server)

    # -- concurrent single solves over keep-alive ---------------------
    server = _start_server(queue_depth=CLIENTS * REQUESTS)
    try:
        request_latencies = []
        latency_lock = threading.Lock()

        def client_loop(offset):
            client = ServiceClient(server.url)
            mine = []
            for i in range(REQUESTS):
                graph = graphs[(offset + i) % len(graphs)]
                started = time.perf_counter()
                client.solve(graph, solver="stoer_wagner")
                mine.append(time.perf_counter() - started)
            with latency_lock:
                request_latencies.extend(mine)

        threads = [
            threading.Thread(target=client_loop, args=(c,), daemon=True)
            for c in range(CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        throttled = ServiceClient(server.url).health()["requests"]["throttled"]
        rows.append([
            f"/solve x{CLIENTS} clients",
            f"{CLIENTS * REQUESTS} requests, keep-alive",
            f"{_percentile(request_latencies, 0.50) * 1000:.0f}",
            f"{_percentile(request_latencies, 0.99) * 1000:.0f}",
            f"{CLIENTS * REQUESTS / elapsed:.0f} req/s "
            f"({throttled} throttled)",
        ])
    finally:
        _stop_server(server)

    return {
        "rows": rows,
        "ratio": ratio,
        "stolen": stolen,
        "kill_dead": kill_dead,
        "joined": joined,
    }


class TestServiceLatency:
    def test_tail_latency_and_membership_churn(
        self, benchmark, record_table
    ):
        report = run_once(benchmark, _run_experiment)

        table = format_table(
            ["scenario", "load", "p50 (ms)", "p99 (ms)", "throughput"],
            report["rows"],
            title=(
                f"P3 — service tail latency: 2 healthy + 1 straggler "
                f"worker ({STRAGGLER_DELAY * 1000:.0f}ms/task injected)"
            ),
        )
        summary = (
            f"\nstreaming vs blocking p99 : {report['ratio']:.2f}x better "
            f"(floor {STREAM_FLOOR}x; {report['stolen']} chunk(s) of the "
            f"straggler's bin re-packed mid-sweep)"
            f"\nmid-sweep worker kill     : {report['kill_dead']} worker "
            f"dead, results bit-identical to serial"
            f"\nmid-sweep discovery join  : joined={report['joined']}, "
            f"results bit-identical to serial"
        )
        record_table("P3_service_latency", table + summary)

        assert report["kill_dead"] == 1
        if not benchmark.disabled and not os.environ.get("CI"):
            assert report["ratio"] >= STREAM_FLOOR, (
                f"streaming p99 only {report['ratio']:.2f}x better than "
                f"blocking under a straggler (floor {STREAM_FLOOR}x)"
            )
            assert report["stolen"] >= 1
