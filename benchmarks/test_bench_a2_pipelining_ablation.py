"""A2 — ablation: what the paper's pipelining trick buys.

Step 5 aggregates O(√n) independent keyed sums per fragment "by
pipelining" — the monotone-streaming rule that overlaps the k streams
into O(depth + k) rounds.  The naive alternative (each node waits for
its whole subtree before forwarding) costs O(depth · k) on adversarial
shapes.  This ablation runs both primitives on deep trees with k keys
per node and reports the measured gap; results are asserted identical.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.congest import CongestNetwork
from repro.graphs import RootedTree
from repro.primitives import (
    BlockingKeyedSum,
    PipelinedKeyedSum,
    SPANNING_TREE,
    load_tree_into_memory,
)

CASES = [(30, 10), (60, 20), (90, 30)]  # (path depth, keys per node)


def _run(program_cls, tree, keys):
    net = CongestNetwork(tree.to_graph())
    load_tree_into_memory(net, tree, SPANNING_TREE)
    result = net.run_phase(
        "sum",
        lambda u: program_cls(
            SPANNING_TREE,
            lambda ctx: [(k, 1) for k in range(keys)],
            out_key="k",
        ),
    )
    return result.metrics.rounds, net.memory[tree.root].get("k:root", {})


def _experiment():
    rows = []
    for depth, keys in CASES:
        tree = RootedTree.path(depth + 1)
        pipelined_rounds, pipelined_map = _run(PipelinedKeyedSum, tree, keys)
        blocking_rounds, blocking_map = _run(BlockingKeyedSum, tree, keys)
        assert pipelined_map == blocking_map  # identical answers
        rows.append(
            [
                depth,
                keys,
                pipelined_rounds,
                blocking_rounds,
                round(blocking_rounds / pipelined_rounds, 2),
                depth + keys,
            ]
        )
    return rows


def test_a2_pipelining_ablation(benchmark, record_table):
    rows = run_once(benchmark, _experiment)
    table = format_table(
        ["depth", "keys k", "pipelined rounds", "blocking rounds", "speedup", "depth+k"],
        rows,
        title=(
            "A2 — pipelined keyed sums vs blocking strawman (path trees)\n"
            "paper's Step 5 pipelining: O(depth + k) instead of O(depth · k)"
        ),
    )
    record_table("A2_pipelining_ablation", table)

    for depth, keys, pipelined, blocking, _speedup, bound in rows:
        assert pipelined <= bound + 5          # the O(depth + k) claim
        assert blocking >= 2 * pipelined       # pipelining matters
    # The gap widens with scale — the asymptotic separation.
    speedups = [row[4] for row in rows]
    assert speedups[-1] > speedups[0]
