"""E5 — tightness against the Das Sarma et al. Ω~(√n + D) lower bound.

Paper claim: "Due to the lower bound of Ω~(√n + D) by Das Sarma et al.,
this running time is tight up to a poly log n factor."

Regenerated series: run the distributed algorithm on the lower-bound
topology family (Γ ≈ ℓ ≈ √n parallel paths + low-diameter tree overlay,
D = O(log n)) and fit measured rounds against √n.  Shape to match: with
D essentially constant, rounds scale like √n (exponent ≈ 1 against √n),
i.e. the upper bound meets the lower-bound family's √n behaviour — and
the planted minimum cut is recovered exactly.

Ground truth and exactness checks go through
``conftest.registry_comparison``: the registry's ground-truth solver
certifies the planted value and every applicable registered exact
solver must agree on each instance (so a newly registered solver is
exercised on the hard family automatically).
"""

import math

from conftest import registry_comparison, run_once

from repro.analysis import fit_power_law, format_table
from repro.core import one_respecting_min_cut_congest
from repro.graphs import diameter, random_spanning_tree
from repro.lowerbound import square_instance
from repro.packing import GreedyTreePacking, one_respects

TARGETS = (64, 144, 256, 576, 1024)
REGISTRY_CHECK_LIMIT = 144  # full solver fan-out on the smaller instances


def _experiment():
    rows = []
    xs, ys = [], []
    for target in TARGETS:
        inst = square_instance(target)
        graph = inst.graph
        n = graph.number_of_nodes
        # Registry-driven ground truth: the oracle certifies the planted
        # value, and every applicable exact solver must reproduce it.
        solvers_checked = 0
        if n <= REGISTRY_CHECK_LIMIT:
            truth, results = registry_comparison(graph, kinds=("exact",))
            assert abs(truth.value - inst.planted_cut_value) < 1e-9
            for result in results:
                assert abs(result.value - truth.value) < 1e-9, result.solver
            solvers_checked = len(results)
        # Use a packing tree that 1-respects the planted cut so the run
        # must recover the planted value exactly.
        packing = GreedyTreePacking(graph)
        tree = None
        for candidate in packing.grow_to(8):
            if one_respects(candidate, inst.planted_side):
                tree = candidate
                break
        if tree is None:
            tree = random_spanning_tree(graph, seed=1)
        outcome = one_respecting_min_cut_congest(graph, tree)
        found_exact = abs(outcome.best_value - inst.planted_cut_value) < 1e-9
        d = diameter(graph)
        measured = outcome.metrics.measured_rounds
        xs.append(math.sqrt(n))
        ys.append(measured)
        rows.append(
            [
                n,
                inst.paths,
                d,
                measured,
                round(measured / math.sqrt(n), 2),
                found_exact,
                solvers_checked or "-",
            ]
        )
    fit = fit_power_law(xs, ys)
    return rows, fit


def test_e5_lower_bound_family(benchmark, record_table):
    rows, fit = run_once(benchmark, _experiment)
    table = format_table(
        [
            "n",
            "Γ=ℓ",
            "D",
            "measured rounds",
            "rounds/sqrt(n)",
            "exact cut found",
            "registry solvers agreeing",
        ],
        rows,
        title=(
            "E5 — Das Sarma et al. hard family (low D, information must "
            "cross √n paths)\npaper: Ω~(sqrt(n)+D) lower bound ⇒ our "
            "O~(sqrt(n)+D) upper bound is tight"
        ),
    )
    table += f"\n\nfit: rounds ~ sqrt(n)^{fit.exponent:.2f}  (R^2={fit.r_squared:.3f})"
    record_table("E5_lower_bound_family", table)

    # Shape: D stays logarithmic while rounds track sqrt(n).
    assert all(row[2] <= 3 * math.log2(row[0]) + 8 for row in rows)
    assert 0.6 <= fit.exponent <= 1.5
    # The planted cut is recovered whenever the tree 1-respects it.
    assert all(row[5] for row in rows)
    # The registry fan-out ran on the smaller instances.
    assert any(isinstance(row[6], int) and row[6] >= 2 for row in rows)
