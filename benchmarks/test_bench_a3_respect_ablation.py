"""A3 — ablation: 1-respecting vs 2-respecting reductions.

The paper reduces to 1-respecting cuts (simpler distributed step);
Karger's original framework uses 2-respecting cuts, which smaller
packings satisfy.  This ablation measures, per planted λ, the first
packing-tree index at which each reduction can see the minimum cut —
quantifying the trees-vs-step-complexity trade-off the paper makes.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.baselines import stoer_wagner_min_cut
from repro.core import (
    one_respecting_min_cut_reference,
    two_respecting_min_cut_reference,
)
from repro.graphs import planted_cut_graph
from repro.packing import GreedyTreePacking

LAMBDAS = (2, 3, 4, 5, 6)
SIDES = (13, 13)
MAX_TREES = 48


def _first_hit(values, truth):
    for index, value in enumerate(values, start=1):
        if abs(value - truth) < 1e-9:
            return index
    return None


def _experiment():
    rows = []
    for lam in LAMBDAS:
        graph = planted_cut_graph(SIDES, lam, seed=lam * 7)
        truth = stoer_wagner_min_cut(graph).value
        packing = GreedyTreePacking(graph)
        one_values, two_values = [], []
        for tree in packing.grow_to(MAX_TREES):
            one_values.append(one_respecting_min_cut_reference(graph, tree).best_value)
            two_values.append(two_respecting_min_cut_reference(graph, tree).best_value)
        first_one = _first_hit(one_values, truth)
        first_two = _first_hit(two_values, truth)
        rows.append([lam, truth, first_one, first_two])
    return rows


def test_a3_respect_ablation(benchmark, record_table):
    rows = run_once(benchmark, _experiment)
    table = format_table(
        ["λ", "min cut", "first tree (1-respect)", "first tree (2-respect)"],
        rows,
        title=(
            "A3 — packing trees needed: 1-respecting (this paper) vs "
            "2-respecting (Karger)\n2-respect sees the cut no later; the "
            "paper trades extra trees for a simpler distributed step"
        ),
    )
    record_table("A3_respect_ablation", table)

    for _lam, _truth, first_one, first_two in rows:
        assert first_one is not None and first_two is not None
        # A cut 1-respecting a tree also 2-respects it, so the
        # 2-respecting reduction can never need more trees.
        assert first_two <= first_one
