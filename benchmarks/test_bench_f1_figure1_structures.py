"""F1 — Figure 1: the worked 16-node example, regenerated.

The paper's only figure illustrates Steps 1–5 on a 16-node tree:
fragments (1b), A(v) (1c), T'_F (1d), LCA cases (1e) and ρ-message
types (1f).  This benchmark regenerates every panel's content from the
reconstructed instance (DESIGN.md §5 records the reconstruction) and
verifies the distributed run reproduces it from node memory.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.congest import CongestNetwork
from repro.core import one_respecting_min_cut_congest
from repro.core.figure1 import (
    EXPECTED_A_OF_11,
    EXPECTED_FRAGMENT_MEMBERS,
    EXPECTED_LCA_CASES,
    EXPECTED_MERGING_NODES,
    EXPECTED_SKELETON_PARENTS,
    figure1_instance,
)
from repro.core.structures import StructuresReference


def _experiment():
    inst = figure1_instance()
    ref = StructuresReference(inst.graph, inst.tree, inst.decomposition)
    net = CongestNetwork(inst.graph)
    outcome = one_respecting_min_cut_congest(
        inst.graph, inst.tree, network=net, partition_threshold=4
    )
    return inst, ref, net, outcome


def test_f1_figure1_structures(benchmark, record_table):
    inst, ref, net, outcome = run_once(benchmark, _experiment)
    dec = inst.decomposition

    sections = []
    rows = [
        [fid, dec.fragment_root(fid), str(sorted(dec.members_of(fid)))]
        for fid in dec.fragment_ids()
    ]
    sections.append(
        format_table(
            ["fragment", "root", "members"],
            rows,
            title="F1 / Figure 1b — fragment decomposition (threshold 4)",
        )
    )
    sections.append(
        f"Figure 1c — A(11) = {ref.scope_ancestors[11]}"
    )
    rows = [[v, p if p is not None else "-"] for v, p in sorted(ref.skeleton_parent.items())]
    sections.append(
        format_table(
            ["T'_F node", "parent"],
            rows,
            title=f"Figure 1d — merging nodes {sorted(ref.merging_nodes)} + T'_F",
        )
    )
    rows = [
        [f"({u},{v})", ref.lca_case(u, v), inst.tree.lca(u, v),
         "(i)" if ref.rho_message_type(u, v)[0] == 1 else "(ii)"]
        for (u, v) in sorted(EXPECTED_LCA_CASES)
    ]
    sections.append(
        format_table(
            ["edge", "LCA case", "LCA", "rho type"],
            rows,
            title="Figures 1e/1f — LCA cases and message types (non-tree edges)",
        )
    )
    sections.append(
        f"distributed run: c* = {outcome.best_value:g} at node {outcome.best_node}, "
        f"{outcome.metrics.measured_rounds} measured rounds, all node memories "
        "validated against the centralized reference"
    )
    record_table("F1_figure1_structures", "\n\n".join(sections))

    # Pin every caption-level assertion.
    for fid, members in EXPECTED_FRAGMENT_MEMBERS.items():
        assert dec.members_of(fid) == set(members)
    assert ref.merging_nodes == set(EXPECTED_MERGING_NODES)
    assert ref.skeleton_parent == EXPECTED_SKELETON_PARENTS
    assert tuple(ref.scope_ancestors[11]) == EXPECTED_A_OF_11
    for (u, v), case in EXPECTED_LCA_CASES.items():
        assert ref.lca_case(u, v) == case
    # Distributed memories agree (spot-check the deep node + all LCAs).
    recorded = sorted(net.memory[11]["or:A"], key=lambda t: t[2])
    assert tuple(a for a, _f, _h in recorded) == EXPECTED_A_OF_11
    for u, v, _w in inst.graph.edges():
        assert net.memory[u]["or:lca"][v].lca == inst.tree.lca(u, v)
