"""A4 — validation harness: certified bounds bracket every answer.

Not a paper claim, but the safety net behind the exact driver's
adaptive schedule: tree packings *certify* (Tutte/Nash-Williams) a
lower bound on λ while the cheapest discovered cut certifies an upper
bound.  This harness tabulates [lower, upper] against the ground truth
across every named family and asserts containment — if the adaptive
exact driver ever returned a wrong answer, this interval would expose
it.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.baselines import stoer_wagner_min_cut
from repro.graphs import (
    caveman_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    cycle_power_graph,
    hypercube_graph,
    planted_cut_graph,
    torus_graph,
)
from repro.mincut import minimum_cut_exact
from repro.packing import certified_cut_bounds

INSTANCES = [
    ("K10", lambda: complete_graph(10)),
    ("cycle-16", lambda: cycle_graph(16)),
    ("cycle^3-20", lambda: cycle_power_graph(20, 3)),
    ("Q4", lambda: hypercube_graph(4)),
    ("torus-5x5", lambda: torus_graph(5, 5)),
    ("caveman-4x5", lambda: caveman_graph(4, 5)),
    ("planted λ=3", lambda: planted_cut_graph((12, 12), 3, seed=1)),
    ("ER n=24", lambda: connected_gnp_graph(24, 0.3, seed=4)),
]


def _experiment():
    rows = []
    for name, build in INSTANCES:
        graph = build()
        bounds = certified_cut_bounds(graph)
        truth = stoer_wagner_min_cut(graph).value
        exact = minimum_cut_exact(graph).value
        rows.append(
            [
                name,
                bounds.lower,
                truth,
                exact,
                bounds.upper,
                "yes" if bounds.is_tight else "no",
            ]
        )
    return rows


def test_a4_certified_bounds(benchmark, record_table):
    rows = run_once(benchmark, _experiment)
    table = format_table(
        ["instance", "certified lower", "true λ", "exact driver", "certified upper", "tight"],
        rows,
        title=(
            "A4 — certified interval [disjoint trees, best cut] vs ground "
            "truth\nλ and the exact driver's answer must lie inside, always"
        ),
    )
    record_table("A4_certified_bounds", table)

    for _name, lower, truth, exact, upper, _tight in rows:
        assert lower - 1e-9 <= truth <= upper + 1e-9
        assert exact == truth  # the driver is exact on every family
