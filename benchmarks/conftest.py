"""Shared helpers for the benchmark harness.

Every benchmark regenerates one 'artifact' of the paper (a claim, the
figure, or the prose comparison table) and emits an ASCII table.  Tables
are printed (visible with ``pytest -s``) and always written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can reference
stable outputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Fixture: ``record_table(experiment_id, text)`` persists + prints."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}", file=sys.stderr)

    return _record


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
