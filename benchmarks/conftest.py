"""Shared helpers for the benchmark harness.

Every benchmark regenerates one 'artifact' of the paper (a claim, the
figure, or the prose comparison table) and emits an ASCII table.  Tables
are printed (visible with ``pytest -s``) and always written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can reference
stable outputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Fixture: ``record_table(experiment_id, text)`` persists + prints."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}", file=sys.stderr)

    return _record


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def registry_comparison(graph, *, epsilon=None, seed=0, kinds=None,
                        names=None, mode="reference", include_heavy=False,
                        backend=None, cache=None):
    """Ground truth + every applicable registered solver on ``graph``.

    The façade-driven benchmark path: ``solve`` pins the registry's
    ground-truth solver (always in reference mode — it is the oracle),
    ``solve_all`` fans out over every applicable registered solver —
    so a newly registered solver is measured by the harness
    automatically, with no benchmark edit.  ``mode="congest"`` runs the
    fan-out on the CONGEST simulator (round-accounted solvers only),
    which is how the round-scaling experiments (E2, E5) go through the
    registry; ``names`` narrows to an explicit solver selection.  Both
    calls honour the execution engine's ``backend``/``cache`` knobs, so
    sweeps can parallelise and replayed instances skip recomputation.

    Returns ``(truth_result, results)``; render ``results`` with
    :func:`repro.analysis.format_cut_results` (pass
    ``truth=truth_result.value`` for the ratio column).
    """
    from repro.api import default_registry, solve, solve_all

    registry = default_registry()
    truth = solve(
        graph, solver=registry.ground_truth().name, seed=seed, cache=cache
    )
    results = solve_all(
        graph, epsilon=epsilon, seed=seed, kinds=kinds, names=names,
        mode=mode, include_heavy=include_heavy, backend=backend, cache=cache,
    )
    return truth, results
