"""P6 — cache store: segment appends vs schema-2 rewrite-the-world.

Not a paper claim: this measures the persistence tier behind
``ResultCache`` (PR 10).  The schema-2 single-file tier rewrites the
entire JSON envelope on every flush, so persisting one more entry into
a cache of N costs O(N) — a long-lived ``repro serve`` worker pays
that rewrite per batch forever.  The segment store appends the new
records instead, so the same operation is O(1) in the store size.

**What is measured.**  Both tiers are preloaded with the same
``BASE_ENTRIES`` synthetic entries, then ``TAIL_ENTRIES`` more are
persisted one flush at a time — the service pattern, one small batch
per request — against a cache already holding ~5k entries.  The
committed floor asserts the store's append path is ≥5× faster than
the file tier's rewrite path (off-CI; in practice the gap is orders
of magnitude).  Entry maps are asserted identical across both tiers
afterwards, so the speedup can never come from dropping data.

The second table times warm-start parsing: opening the schema-2 file,
the uncompacted store (its log bloated by per-entry hit records — the
shape a long-lived worker's store grows into), and the same store
after ``compact()`` folded the log to one put record per entry.
Compaction determinism is asserted on the way (compacting twice
yields the same content-addressed segment).
"""

import os
import time

from conftest import run_once

from repro.analysis import format_table
from repro.api import CutResult
from repro.exec import CacheKey, ResultCache
from repro.store import SegmentStore

BASE_ENTRIES = 4800
TAIL_ENTRIES = 200  # appended one flush at a time, at ~5k entries held
HIT_ROUNDS = 2      # per-entry hit records bloating the uncompacted log

#: Append-vs-rewrite floor asserted off-CI.  Structural: the file tier
#: re-reads and rewrites ~5k entries per flush, the store writes one
#: line — the measured gap is orders of magnitude, 5x is the margin
#: that survives any quiet machine.
APPEND_FLOOR = 5.0


def _key(i):
    return CacheKey(
        graph_hash=f"h{i:05d}", solver="fake", epsilon=None,
        mode="reference", seed=0, budget=None,
    )


def _result(i):
    return CutResult(value=float(i % 97), side=frozenset({0, i % 13}))


def _preload(cache, count):
    for i in range(count):
        cache.put(_key(i), _result(i), flush=False)
    cache.flush()


def _persist_tail(cache):
    """The service pattern: one small flush per persisted entry."""
    started = time.perf_counter()
    for i in range(BASE_ENTRIES, BASE_ENTRIES + TAIL_ENTRIES):
        cache.put(_key(i), _result(i), flush=True)
    return time.perf_counter() - started


def _parse_time(opener):
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        opened = opener()
        best = min(best, time.perf_counter() - started)
    return best, opened


def _experiment(tmp_path):
    file_path = tmp_path / "cache.json"
    store_path = tmp_path / "cache_store"

    file_cache = ResultCache(maxsize=8192, path=file_path)
    store_cache = ResultCache(maxsize=8192, path=store_path)
    _preload(file_cache, BASE_ENTRIES)
    _preload(store_cache, BASE_ENTRIES)

    file_seconds = _persist_tail(file_cache)
    store_seconds = _persist_tail(store_cache)

    # The speedup must never come from losing entries: both tiers hold
    # the identical digest -> payload map afterwards.
    total = BASE_ENTRIES + TAIL_ENTRIES
    file_entries = ResultCache(path=file_path)._disk
    store = SegmentStore(store_path)
    assert len(file_entries) == total
    assert store.entries() == file_entries

    # Bloat the store's log the way a long-lived worker does: usage
    # metadata appended per warm replay.
    digests = [_key(i).digest() for i in range(total)]
    for _ in range(HIT_ROUNDS):
        store.append([], [(digest, 1) for digest in digests])
    uncompacted_records = store.total_records
    uncompacted_bytes = store.disk_bytes()

    file_parse, _ = _parse_time(lambda: ResultCache(path=file_path))
    raw_parse, _ = _parse_time(lambda: SegmentStore(store_path))

    report = store.compact()
    again = SegmentStore(store_path).compact()
    assert again.segment == report.segment  # deterministic + idempotent
    compact_parse, compacted = _parse_time(lambda: SegmentStore(store_path))
    assert compacted.entries() == file_entries  # compaction kept the map

    return {
        "file_seconds": file_seconds,
        "store_seconds": store_seconds,
        "file_bytes": file_path.stat().st_size,
        "uncompacted_records": uncompacted_records,
        "uncompacted_bytes": uncompacted_bytes,
        "compacted_bytes": report.bytes_after,
        "file_parse": file_parse,
        "raw_parse": raw_parse,
        "compact_parse": compact_parse,
    }


def test_p6_cache_store(benchmark, record_table, tmp_path):
    data = run_once(benchmark, lambda: _experiment(tmp_path))
    total = BASE_ENTRIES + TAIL_ENTRIES
    speedup = data["file_seconds"] / data["store_seconds"]

    per_entry = [
        ["schema-2 file (rewrite)", round(data["file_seconds"], 3),
         round(1e3 * data["file_seconds"] / TAIL_ENTRIES, 3), 1.0],
        ["segment store (append)", round(data["store_seconds"], 3),
         round(1e3 * data["store_seconds"] / TAIL_ENTRIES, 3),
         round(speedup, 1)],
    ]
    append_table = format_table(
        ["tier", "total s", "ms per entry", "speedup"],
        per_entry,
        title=(
            f"P6 — persisting {TAIL_ENTRIES} entries one flush at a "
            f"time into a cache of {total} (schema-2 rewrite vs "
            "segment append)"
        ),
    )
    warm_rows = [
        ["schema-2 file", total, data["file_bytes"],
         round(1e3 * data["file_parse"], 2)],
        ["store, uncompacted", data["uncompacted_records"],
         data["uncompacted_bytes"], round(1e3 * data["raw_parse"], 2)],
        ["store, compacted", total, data["compacted_bytes"],
         round(1e3 * data["compact_parse"], 2)],
    ]
    warm_table = format_table(
        ["warm-start source", "records", "bytes", "parse ms"],
        warm_rows,
        title=(
            f"warm-start parse time ({total} live entries; uncompacted "
            f"log carries {HIT_ROUNDS} hit records per entry, "
            "compaction folds to one put per entry — byte-identical "
            "and idempotent, asserted)"
        ),
    )
    record_table(
        "P6_cache_store",
        f"{append_table}\n\n"
        f"append-over-rewrite speedup: {speedup:.1f}x\n\n{warm_table}",
    )

    # Entry-map identity and compaction determinism asserted inside the
    # experiment; the wall-clock floor only on a quiet non-CI machine.
    if not benchmark.disabled and not os.environ.get("CI"):
        assert speedup >= APPEND_FLOOR
