"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks wheel support (the legacy
editable path needs a setup.py).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
