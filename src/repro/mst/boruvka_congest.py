"""Distributed Borůvka MST on the CONGEST simulator.

Each Borůvka iteration lets every component pick its minimum outgoing
edge under the library's deterministic edge total order (ties broken by
endpoint ids), which makes the MST unique and *identical* to the
centralized Kruskal result — the property the tree-packing experiments
rely on.

An iteration runs five small phases:

1. component-id exchange with neighbours,
2. component-tree construction (flood from the component leader — the
   node whose id equals the component id — over already-chosen edges),
3. convergecast of the minimum outgoing edge,
4. announcement of the chosen edge down the component tree and marking
   at its endpoints,
5. min-label flooding over chosen edges to form the merged components.

The number of iterations is ≤ ⌈log2 n⌉; the round cost per iteration is
O(component diameter), so the total is O(n) worst case — this is the
*simple* substitute for Kutten–Peleg's O(√n·log*n + D) MST (see
DESIGN.md §5); drivers that model the paper's cost use
:mod:`repro.mst.kutten_peleg` instead.

``edge_key(ctx, v)`` customises the metric (default: the edge weight);
tree packing passes the node-local load tables through it.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import Optional

from ..errors import AlgorithmError
from ..congest.network import CongestNetwork
from ..congest.node import Inbox, NodeContext, NodeProgram
from ..graphs.trees import RootedTree
from ..primitives.treespec import TreeSpec

EdgeKey = Callable[[NodeContext, object], float]

COMPONENT_TREE = TreeSpec("mstT")
SENTINEL = (float("inf"), -1, -1)


def _default_key(ctx: NodeContext, v) -> float:
    return ctx.edge_weight(v)


def _rank(ctx: NodeContext, v, key: EdgeKey):
    lo, hi = (ctx.node, v) if _ord(ctx.node) <= _ord(v) else (v, ctx.node)
    return (key(ctx, v), _ord(lo), _ord(hi))


def _ord(node):
    return node if isinstance(node, int) else repr(node)


class _CompExchange(NodeProgram):
    """Every node learns each neighbour's current component id."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory.setdefault("mst:comp", ctx.node)
        ctx.memory.setdefault("mst:marked", set())
        ctx.broadcast("comp", ctx.memory["mst:comp"])

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        table = ctx.memory.setdefault("mst:nbr_comp", {})
        for src, msg in inbox:
            if msg.kind == "comp":
                table[src] = msg.payload[0]


class _ComponentTreeBuild(NodeProgram):
    """Flood from each component leader over chosen edges to orient a
    spanning tree of the component."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory[COMPONENT_TREE.children_key] = []
        ctx.memory[COMPONENT_TREE.parent_key] = None
        self._adopted = ctx.memory["mst:comp"] == ctx.node
        if self._adopted:
            ctx.multicast(list(ctx.memory["mst:marked"]), "tree")

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "adopt":
                ctx.memory[COMPONENT_TREE.children_key].append(src)
            elif msg.kind == "tree" and not self._adopted:
                self._adopted = True
                ctx.memory[COMPONENT_TREE.parent_key] = src
                ctx.send(src, "adopt")
                ctx.multicast(
                    [v for v in ctx.memory["mst:marked"] if v != src], "tree"
                )


class _MinOutgoingEdge(NodeProgram):
    """Convergecast the minimum outgoing edge to the component leader."""

    def __init__(self, edge_key: EdgeKey) -> None:
        self.edge_key = edge_key
        self._pending: set = set()
        self._best = SENTINEL

    def on_start(self, ctx: NodeContext) -> None:
        my_comp = ctx.memory["mst:comp"]
        candidates = [
            _rank(ctx, v, self.edge_key)
            for v in ctx.neighbors
            if ctx.memory["mst:nbr_comp"][v] != my_comp
        ]
        self._best = min(candidates) if candidates else SENTINEL
        self._pending = set(ctx.memory[COMPONENT_TREE.children_key])
        if not self._pending:
            self._report(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "moe":
                self._best = min(self._best, tuple(msg.payload))
                self._pending.discard(src)
        if not self._pending:
            self._report(ctx)

    def _report(self, ctx: NodeContext) -> None:
        self._pending = {None}
        parent = ctx.memory[COMPONENT_TREE.parent_key]
        if parent is None:
            ctx.memory["mst:chosen"] = None if self._best == SENTINEL else self._best
        else:
            ctx.send(parent, "moe", *self._best)


class _AnnounceChosen(NodeProgram):
    """Leaders broadcast the chosen edge; its endpoints mark it."""

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.memory[COMPONENT_TREE.parent_key] is None:
            chosen = ctx.memory.pop("mst:chosen", None)
            if chosen is not None:
                self._handle(ctx, chosen)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "chosen":
                self._handle(ctx, tuple(msg.payload))
            elif msg.kind == "mark":
                ctx.memory["mst:marked"].add(src)

    def _handle(self, ctx: NodeContext, chosen) -> None:
        _key, lo, hi = chosen
        if ctx.node in (lo, hi):
            other = hi if ctx.node == lo else lo
            if other not in ctx.memory["mst:marked"]:
                ctx.memory["mst:marked"].add(other)
                ctx.send(other, "mark")
        ctx.multicast(ctx.memory[COMPONENT_TREE.children_key], "chosen", *chosen)


class _MinLabelFlood(NodeProgram):
    """Flood the minimum component label over chosen edges."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.multicast(
            list(ctx.memory["mst:marked"]), "label", ctx.memory["mst:comp"]
        )

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        best = ctx.memory["mst:comp"]
        improved = False
        for _src, msg in inbox:
            if msg.kind == "label" and _ord(msg.payload[0]) < _ord(best):
                best = msg.payload[0]
                improved = True
        if improved:
            ctx.memory["mst:comp"] = best
            ctx.multicast(list(ctx.memory["mst:marked"]), "label", best)


def boruvka_mst(
    network: CongestNetwork,
    edge_key: Optional[EdgeKey] = None,
    root=None,
) -> RootedTree:
    """Run distributed Borůvka; returns the (unique) MST as a RootedTree.

    Node memory keys ``mst:*`` are consumed/overwritten; the chosen tree
    is also left behind in each node's ``mst:marked`` set (its incident
    MST edges), which is the knowledge a real deployment would keep.
    """
    key = edge_key if edge_key is not None else _default_key
    for u in network.nodes:
        network.memory[u].pop("mst:comp", None)
        network.memory[u].pop("mst:marked", None)
    max_iterations = max(1, math.ceil(math.log2(max(2, network.size)))) + 1
    for iteration in range(max_iterations):
        network.run_phase(f"mst:comp[{iteration}]", lambda u: _CompExchange())
        if len({network.memory[u]["mst:comp"] for u in network.nodes}) == 1:
            break
        network.run_phase(f"mst:tree[{iteration}]", lambda u: _ComponentTreeBuild())
        network.run_phase(f"mst:moe[{iteration}]", lambda u: _MinOutgoingEdge(key))
        network.run_phase(f"mst:announce[{iteration}]", lambda u: _AnnounceChosen())
        network.run_phase(f"mst:labels[{iteration}]", lambda u: _MinLabelFlood())
    else:
        raise AlgorithmError(
            "Boruvka did not converge within log2(n) iterations; "
            "is the graph connected?"
        )
    edges = set()
    for u in network.nodes:
        for v in network.memory[u]["mst:marked"]:
            edges.add((u, v) if _ord(u) <= _ord(v) else (v, u))
    chosen_root = root if root is not None else min(network.nodes, key=_ord)
    return RootedTree.from_edges(chosen_root, sorted(edges))
