"""Kutten–Peleg MST stand-in: identical output, published charged cost.

The paper builds each packing tree with Kutten–Peleg's
O(√n·log*n + D)-round MST algorithm [KP98].  Implementing controlled-GHS
verbatim is out of scope for this reproduction (DESIGN.md §5): what the
downstream algorithm consumes is (i) the MST itself — which is *unique*
under the library's deterministic edge order, hence identical no matter
which algorithm produced it — and (ii) a round budget, for which we
charge the published bound.

:func:`kutten_peleg_mst` therefore computes the MST centrally (Kruskal)
and records the charged cost on the network's metrics; the *measured*
alternative (:func:`repro.mst.boruvka_congest.boruvka_mst`) produces the
same tree with real messages.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import Optional

from ..congest.network import CongestNetwork
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from .kruskal import minimum_spanning_tree


def log_star(n: int) -> int:
    """Iterated logarithm (base 2)."""
    count = 0
    value = float(max(2, n))
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def kutten_peleg_round_cost(n: int, diameter_hint: int) -> int:
    """The published MST bound O(√n·log*n + D), with unit constants."""
    return math.isqrt(max(1, n)) * log_star(n) + max(0, diameter_hint)


def kutten_peleg_mst(
    graph: WeightedGraph,
    network: Optional[CongestNetwork] = None,
    diameter_hint: Optional[int] = None,
    key: Optional[Callable[[Node, Node, float], float]] = None,
    root: Optional[Node] = None,
) -> RootedTree:
    """The unique MST under the deterministic order, with the KP round
    cost charged to ``network`` (if given).

    ``diameter_hint`` supplies D for the charge; when absent, a BFS
    eccentricity from the minimum-id node is used (an upper bound within
    a factor of two of D).
    """
    tree = minimum_spanning_tree(graph, key=key, root=root)
    if network is not None:
        if diameter_hint is None:
            from ..graphs.properties import eccentricity

            diameter_hint = eccentricity(graph, min(graph.nodes, key=repr))
        network.charge(
            kutten_peleg_round_cost(graph.number_of_nodes, diameter_hint),
            "Kutten-Peleg MST (substituted)",
        )
    return tree
