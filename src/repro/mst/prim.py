"""Centralized Prim MST — an independent implementation used to
cross-validate Kruskal in tests (both must produce spanning trees of the
same total weight; with the deterministic tie order they produce the
same edge set on distinct-weight graphs)."""

from __future__ import annotations

import heapq
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from .kruskal import edge_total_order


def minimum_spanning_tree_prim(
    graph: WeightedGraph, root: Optional[Node] = None
) -> RootedTree:
    """Prim's algorithm with a binary heap, rooted at ``root``."""
    graph.require_connected()
    start = root if root is not None else graph.nodes[0]
    if start not in graph:
        raise AlgorithmError(f"root {start!r} is not a graph node")
    parent: dict[Node, Node] = {}
    in_tree = {start}
    heap = [
        (edge_total_order(start, v, graph.weight(start, v)), start, v)
        for v in graph.neighbors(start)
    ]
    heapq.heapify(heap)
    while heap and len(in_tree) < graph.number_of_nodes:
        _rank, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        parent[v] = u
        for w in graph.neighbors(v):
            if w not in in_tree:
                heapq.heappush(
                    heap, (edge_total_order(v, w, graph.weight(v, w)), v, w)
                )
    if len(in_tree) != graph.number_of_nodes:
        raise AlgorithmError("graph is not connected; MST does not exist")
    return RootedTree(start, parent)
