"""Centralized Prim MST — an independent implementation used to
cross-validate Kruskal in tests (both must produce spanning trees of the
same total weight; with the deterministic tie order they produce the
same edge set on distinct-weight graphs)."""

from __future__ import annotations

import heapq
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from .kruskal import edge_total_order


def minimum_spanning_tree_prim(
    graph: WeightedGraph, root: Optional[Node] = None
) -> RootedTree:
    """Prim's algorithm with a binary heap, rooted at ``root``.

    Runs on the cached :class:`~repro.graphs.index.GraphIndex` CSR
    arrays — neighbour ids and edge weights come from flat slices
    instead of per-call ``neighbors()``/``weight()`` dict walks — while
    keeping the heap keyed on :func:`edge_total_order` over the
    original node labels, so the edge selection order (and therefore
    the tree, on distinct-weight graphs) is unchanged.
    """
    graph.require_connected()
    index = graph.index()
    nodes = index.nodes
    start = root if root is not None else nodes[0]
    if start not in index.node_id:
        raise AlgorithmError(f"root {start!r} is not a graph node")
    adj_start, adj_target, adj_weight = (
        index.adj_start, index.adj_target, index.adj_weight,
    )
    n = len(nodes)
    in_tree = bytearray(n)
    start_id = index.node_id[start]
    in_tree[start_id] = 1
    in_tree_count = 1
    parent: dict[Node, Node] = {}
    heap = [
        (edge_total_order(start, nodes[adj_target[e]], adj_weight[e]),
         start, adj_target[e])
        for e in range(adj_start[start_id], adj_start[start_id + 1])
    ]
    heapq.heapify(heap)
    while heap and in_tree_count < n:
        _rank, u, v_id = heapq.heappop(heap)
        if in_tree[v_id]:
            continue
        in_tree[v_id] = 1
        in_tree_count += 1
        v = nodes[v_id]
        parent[v] = u
        for e in range(adj_start[v_id], adj_start[v_id + 1]):
            w_id = adj_target[e]
            if not in_tree[w_id]:
                heapq.heappush(
                    heap,
                    (edge_total_order(v, nodes[w_id], adj_weight[e]), v, w_id),
                )
    if in_tree_count != n:
        raise AlgorithmError("graph is not connected; MST does not exist")
    return RootedTree(start, parent)
