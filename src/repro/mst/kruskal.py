"""Centralized minimum spanning tree (Kruskal) with deterministic ties.

Thorup's greedy tree packing repeatedly computes MSTs with respect to
evolving load metrics, so the MST routine must be *deterministic* under
ties — we order edges lexicographically by ``(key, min endpoint, max
endpoint)``.  The same total order is used by the distributed Borůvka
implementation, which keeps the two in exact agreement (tested).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree

EdgeKeyFn = Callable[[Node, Node, float], float]


class DisjointSets:
    """Union–find with path halving and union by size."""

    def __init__(self, items) -> None:
        self._parent = {x: x for x in items}
        self._size = {x: 1 for x in items}

    def find(self, x):
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a, b) -> bool:
        """Merge the sets of ``a`` and ``b``; False when already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


def edge_total_order(u: Node, v: Node, key: float):
    """The library-wide deterministic edge order (ties by endpoints)."""
    lo, hi = (u, v) if _ord(u) <= _ord(v) else (v, u)
    return (key, _ord(lo), _ord(hi))


def _ord(node: Node):
    return node if isinstance(node, int) else repr(node)


def minimum_spanning_tree(
    graph: WeightedGraph,
    key: Optional[EdgeKeyFn] = None,
    root: Optional[Node] = None,
) -> RootedTree:
    """Kruskal MST under an arbitrary edge key (default: the weight).

    ``key(u, v, w)`` lets callers supply load-based metrics (tree
    packing) without mutating the graph.  The result is rooted at
    ``root`` (default: minimum node id).
    """
    graph.require_connected()
    if graph.number_of_nodes == 1:
        only = graph.nodes[0]
        return RootedTree(only, {})
    key_fn = key if key is not None else (lambda u, v, w: w)
    ranked = sorted(
        ((edge_total_order(u, v, key_fn(u, v, w)), u, v) for u, v, w in graph.edges()),
    )
    ds = DisjointSets(graph.nodes)
    chosen: list[tuple[Node, Node]] = []
    for _rank, u, v in ranked:
        if ds.union(u, v):
            chosen.append((u, v))
            if len(chosen) == graph.number_of_nodes - 1:
                break
    if len(chosen) != graph.number_of_nodes - 1:
        raise AlgorithmError("graph is not connected; MST does not exist")
    chosen_root = root if root is not None else min(graph.nodes, key=_ord)
    return RootedTree.from_edges(chosen_root, chosen)


def tree_weight(graph: WeightedGraph, tree: RootedTree) -> float:
    """Total graph weight of the tree's edges."""
    return sum(graph.weight(child, parent) for child, parent in tree.edges())
