"""Minimum spanning tree substrate (system S5 of DESIGN.md)."""

from .kruskal import DisjointSets, edge_total_order, minimum_spanning_tree, tree_weight
from .prim import minimum_spanning_tree_prim
from .boruvka_congest import boruvka_mst, COMPONENT_TREE
from .kutten_peleg import kutten_peleg_mst, kutten_peleg_round_cost, log_star

__all__ = [
    "DisjointSets",
    "edge_total_order",
    "minimum_spanning_tree",
    "tree_weight",
    "minimum_spanning_tree_prim",
    "boruvka_mst",
    "COMPONENT_TREE",
    "kutten_peleg_mst",
    "kutten_peleg_round_cost",
    "log_star",
]
