"""Distributed bottom-up fragment decomposition on the CONGEST simulator.

This is the message-passing counterpart of
:func:`repro.fragments.partition.partition_tree`: the same pending-size
sweep, executed bottom-up over the input tree ``T`` with real messages.

Phases
------
1. ``frag:sizes`` — pending sizes convergecast: every node reports its
   pending-subtree size to its tree parent; a node whose pending size
   reaches the threshold declares itself a fragment root and reports 0.
2. ``frag:claim`` — fragment roots flood a claim down their pending
   children, so every node learns the *root* of its fragment.
3. ``frag:nbr`` — one exchange round in which every node tells each
   neighbour its fragment root (so inter-fragment tree edges become
   locally visible, as the paper assumes after Step 1).
4. ``frag:minid`` — intra-fragment convergecast + downcast of the
   minimum member id, establishing ``id(F) = min_{u∈F} id(u)``.

Round cost is O(depth(T) + √n), versus Kutten–Peleg's
O(√n·log*n + D); the simple variant exists for end-to-end fidelity and
is validated against the centralized sweep in tests.  Drivers that model
the paper's cost charge the published bound instead (DESIGN.md §5).

After the phases every node's memory holds::

    frag:root      the fragment root node
    frag:id        the fragment id (min member id)
    frag:is_root   bool
    frag:nbr       {neighbour: its fragment id} for all neighbours
    fragT:parent / fragT:children   T restricted to the fragment
"""

from __future__ import annotations

import math

from ..congest.network import CongestNetwork
from ..congest.node import Inbox, NodeContext, NodeProgram
from ..primitives.treespec import FRAGMENT_TREE, SPANNING_TREE, TreeSpec


class PendingSizePhase(NodeProgram):
    """Phase 1: pending-size convergecast; fragment roots self-declare."""

    def __init__(self, threshold: int, tree: TreeSpec = SPANNING_TREE) -> None:
        self.threshold = threshold
        self.tree = tree
        self._pending_from: dict = {}
        self._waiting: set = set()

    def on_start(self, ctx: NodeContext) -> None:
        self._waiting = set(self.tree.children(ctx))
        if not self._waiting:
            self._decide(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "pend":
                self._pending_from[src] = msg.payload[0]
                self._waiting.discard(src)
        if not self._waiting:
            self._decide(ctx)

    def _decide(self, ctx: NodeContext) -> None:
        self._waiting = {None}  # guard against double execution
        merged = [c for c, size in self._pending_from.items() if size > 0]
        size = 1 + sum(self._pending_from[c] for c in merged)
        is_root_of_tree = self.tree.parent(ctx) is None
        is_frag_root = size >= self.threshold or is_root_of_tree
        ctx.memory["frag:is_root"] = is_frag_root
        ctx.memory["frag:merged_children"] = merged
        if not is_root_of_tree:
            ctx.send(self.tree.parent(ctx), "pend", 0 if is_frag_root else size)


class ClaimPhase(NodeProgram):
    """Phase 2: fragment roots claim their pending subtrees."""

    def on_start(self, ctx: NodeContext) -> None:
        if ctx.memory["frag:is_root"]:
            ctx.memory["frag:root"] = ctx.node
            for child in ctx.memory["frag:merged_children"]:
                ctx.send(child, "claim", _encode_node(ctx.node))

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _src, msg in inbox:
            if msg.kind == "claim":
                frag_root = msg.payload[0]
                ctx.memory["frag:root"] = frag_root
                for child in ctx.memory["frag:merged_children"]:
                    ctx.send(child, "claim", frag_root)


class NeighbourExchangePhase(NodeProgram):
    """Phase 3: every node learns each neighbour's fragment root."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory["frag:nbr_root"] = {}
        ctx.broadcast("myfrag", _encode_node(ctx.memory["frag:root"]))

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "myfrag":
                ctx.memory["frag:nbr_root"][src] = msg.payload[0]


class MinIdPhase(NodeProgram):
    """Phase 4a: convergecast the minimum member id within each fragment."""

    def __init__(self, tree: TreeSpec = SPANNING_TREE) -> None:
        self.tree = tree
        self._waiting: set = set()
        self._best = None

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory[FRAGMENT_TREE.parent_key] = self._frag_parent(ctx)
        ctx.memory[FRAGMENT_TREE.children_key] = self._frag_children(ctx)
        self._waiting = set(ctx.memory[FRAGMENT_TREE.children_key])
        self._best = ctx.node
        if not self._waiting:
            self._report(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "minid":
                self._best = min(self._best, msg.payload[0])
                self._waiting.discard(src)
        if not self._waiting:
            self._report(ctx)

    def _report(self, ctx: NodeContext) -> None:
        self._waiting = {None}
        parent = ctx.memory[FRAGMENT_TREE.parent_key]
        if parent is None:
            ctx.memory["frag:id"] = self._best
        else:
            ctx.send(parent, "minid", self._best)

    def _frag_parent(self, ctx: NodeContext):
        parent = self.tree.parent(ctx)
        if parent is None:
            return None
        my_root = ctx.memory["frag:root"]
        return parent if ctx.memory["frag:nbr_root"].get(parent) == my_root else None

    def _frag_children(self, ctx: NodeContext) -> list:
        my_root = ctx.memory["frag:root"]
        return [
            c
            for c in self.tree.children(ctx)
            if ctx.memory["frag:nbr_root"].get(c) == my_root
        ]


class IdExchangePhase(NodeProgram):
    """Phase 5: every node tells each neighbour its fragment *id*."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory["frag:nbr"] = {}
        ctx.broadcast("myfragid", ctx.memory["frag:id"])

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "myfragid":
                ctx.memory["frag:nbr"][src] = msg.payload[0]


class IdFloodPhase(NodeProgram):
    """Phase 4b: flood the fragment id from the fragment root down."""

    def on_start(self, ctx: NodeContext) -> None:
        if "frag:id" in ctx.memory:
            self._spread(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _src, msg in inbox:
            if msg.kind == "fragid" and "frag:id" not in ctx.memory:
                ctx.memory["frag:id"] = msg.payload[0]
                self._spread(ctx)

    def _spread(self, ctx: NodeContext) -> None:
        for child in ctx.memory[FRAGMENT_TREE.children_key]:
            ctx.send(child, "fragid", ctx.memory["frag:id"])


def run_distributed_partition(
    network: CongestNetwork,
    threshold: int | None = None,
    tree: TreeSpec = SPANNING_TREE,
) -> int:
    """Run the four partition phases; returns the threshold used.

    Requires the input tree to be loaded into node memory (see
    :func:`repro.primitives.treespec.load_tree_into_memory`).  Afterwards
    every node knows its fragment root, fragment id, neighbour fragment
    roots, and the fragment-restricted tree (``fragT``).
    """
    n = network.size
    s = threshold if threshold is not None else max(1, math.isqrt(max(0, n - 1)) + 1)
    network.run_phase("frag:sizes", lambda u: PendingSizePhase(s, tree))
    network.run_phase("frag:claim", lambda u: ClaimPhase())
    network.run_phase("frag:nbr", lambda u: NeighbourExchangePhase())
    network.run_phase("frag:minid", lambda u: MinIdPhase(tree))
    network.run_phase("frag:idflood", lambda u: IdFloodPhase())
    network.run_phase("frag:idexchange", lambda u: IdExchangePhase())
    return s


def _encode_node(node):
    return node
