"""Tree partition into O(√n) fragments of O(√n) diameter (Step 1).

The paper invokes Kutten–Peleg [KP98, §3.2] to split the spanning tree
``T`` into ``k = O(√n)`` connected subtrees ("fragments") of diameter
``O(√n)`` — a ``(√n + 1, O(√n))`` spanning forest.  Downstream steps use
only these *properties* plus "every node knows its fragment", so any
partition with them is interchangeable (DESIGN.md §5).

We build the partition with the classic bottom-up accumulation: sweep
``T`` in postorder keeping, at every node, the set of *pending*
descendants not yet committed to a fragment; once the pending set
reaches the size threshold ``s = ⌈√n⌉`` (or at the root), it becomes a
fragment rooted at the current node.  Each child's pending set is a
connected subtree of fewer than ``s`` nodes, so:

* every fragment is connected with depth < ``s`` (diameter < ``2s``),
* every non-root fragment has at least ``s`` nodes, so there are at most
  ``n/s + 1 ≤ √n + 1`` fragments.

Fragment identifiers follow the paper: ``id(F) = min_{u ∈ F} id(u)``.

The same sweep is also implemented as a distributed bottom-up protocol
in :mod:`repro.fragments.distributed`, for fidelity; the centralized
version is the default substrate and its round cost is charged as the
published Kutten–Peleg bound by the drivers.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.trees import RootedTree

Node = Hashable


class FragmentDecomposition:
    """The Step 1 artefact: fragments of ``tree``, their ids and roots.

    Attributes
    ----------
    tree:
        The underlying rooted spanning tree ``T``.
    threshold:
        The size threshold ``s`` used by the sweep.
    root_of:
        ``{node: fragment root}`` — the root of the fragment containing
        each node (the fragment member closest to ``T``'s root).
    members:
        ``{fragment root: set of member nodes}``.
    """

    def __init__(self, tree: RootedTree, threshold: int, root_of: dict[Node, Node]):
        self.tree = tree
        self.threshold = threshold
        self.root_of = root_of
        self.members: dict[Node, set[Node]] = {}
        for node, frag_root in root_of.items():
            self.members.setdefault(frag_root, set()).add(node)
        self._id_of_root = {
            frag_root: min(members) for frag_root, members in self.members.items()
        }
        self._root_of_id = {fid: fr for fr, fid in self._id_of_root.items()}
        if len(self._root_of_id) != len(self._id_of_root):
            raise AlgorithmError("fragment min-ids collide; ids must be unique")

    # ------------------------------------------------------------------
    @property
    def fragment_count(self) -> int:
        return len(self.members)

    def fragment_id(self, node: Node) -> Node:
        """``id(F)`` of the fragment containing ``node`` (its min member)."""
        return self._id_of_root[self.root_of[node]]

    def fragment_ids(self) -> list[Node]:
        return sorted(self._root_of_id)

    def fragment_root(self, fragment_id: Node) -> Node:
        """The member of the fragment nearest to the tree root."""
        return self._root_of_id[fragment_id]

    def members_of(self, fragment_id: Node) -> set[Node]:
        return set(self.members[self._root_of_id[fragment_id]])

    def same_fragment(self, u: Node, v: Node) -> bool:
        return self.root_of[u] == self.root_of[v]

    def parent_fragment(self, fragment_id: Node) -> Optional[Node]:
        """Id of the parent fragment in ``T_F`` (None for the root
        fragment)."""
        frag_root = self._root_of_id[fragment_id]
        parent = self.tree.parent(frag_root)
        if parent is None:
            return None
        return self.fragment_id(parent)

    def fragment_tree(self) -> RootedTree:
        """The fragment tree ``T_F``: contract each fragment to one node.

        Nodes of the returned tree are fragment ids; the root is the
        fragment containing ``T``'s root.
        """
        parent_map: dict[Node, Node] = {}
        root_fragment = self.fragment_id(self.tree.root)
        for fid in self.fragment_ids():
            parent_fid = self.parent_fragment(fid)
            if parent_fid is not None:
                parent_map[fid] = parent_fid
        tf = RootedTree(root_fragment, parent_map)
        return tf

    def inter_fragment_edges(self) -> list[tuple[Node, Node]]:
        """Tree edges ``(child, parent)`` that cross fragments; there are
        exactly ``fragment_count - 1`` of them."""
        return [
            (child, parent)
            for child, parent in self.tree.edges()
            if self.root_of[child] != self.root_of[parent]
        ]

    # ------------------------------------------------------------------
    def intra_fragment_depth(self, node: Node) -> int:
        """Depth of ``node`` within its fragment (0 at the fragment root)."""
        depth = 0
        frag_root = self.root_of[node]
        while node != frag_root:
            node = self.tree.parent(node)
            depth += 1
        return depth

    def fragment_diameter(self, fragment_id: Node) -> int:
        """Worst-case intra-fragment tree distance (≤ 2·max depth)."""
        members = self.members_of(fragment_id)
        depths = [self.intra_fragment_depth(u) for u in members]
        return 2 * max(depths) if depths else 0

    def validate(self) -> None:
        """Check every Step 1 property; raise :class:`AlgorithmError` on
        violation.  Used by tests and the strict drivers."""
        n = len(self.tree)
        if set(self.root_of) != set(self.tree.nodes):
            raise AlgorithmError("partition does not cover every tree node")
        s = self.threshold
        if self.fragment_count > n // max(1, s) + 1 and self.fragment_count > math.isqrt(n) + 1:
            raise AlgorithmError(
                f"too many fragments: {self.fragment_count} for n={n}, s={s}"
            )
        for fid in self.fragment_ids():
            frag_root = self._root_of_id[fid]
            members = self.members_of(fid)
            if fid != min(members):
                raise AlgorithmError(f"fragment id {fid!r} is not the min member")
            # Connectivity: walking up from any member reaches the
            # fragment root without leaving the fragment.
            for u in members:
                steps = 0
                x = u
                while x != frag_root:
                    x = self.tree.parent(x)
                    steps += 1
                    if x not in members:
                        raise AlgorithmError(
                            f"fragment {fid!r} is not connected at {u!r}"
                        )
                    if steps > 2 * s + 2:
                        raise AlgorithmError(
                            f"fragment {fid!r} is too deep at {u!r}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentDecomposition(fragments={self.fragment_count}, "
            f"threshold={self.threshold})"
        )


def partition_tree(tree: RootedTree, threshold: Optional[int] = None) -> FragmentDecomposition:
    """Partition ``tree`` into fragments (see module docstring).

    ``threshold`` defaults to ``⌈√n⌉``; passing an explicit value lets
    tests and benchmarks explore the trade-off (e.g. fragment counts vs
    fragment diameter).
    """
    n = len(tree)
    s = threshold if threshold is not None else max(1, math.isqrt(n - 1) + 1)
    if s < 1:
        raise AlgorithmError(f"threshold must be at least 1, got {s}")
    pending_size: dict[Node, int] = {}
    pending_children: dict[Node, list[Node]] = {}
    root_of: dict[Node, Node] = {}

    def commit(fragment_root: Node) -> None:
        """Assign fragment_root's pending subtree to a new fragment."""
        stack = [fragment_root]
        while stack:
            x = stack.pop()
            root_of[x] = fragment_root
            stack.extend(pending_children.pop(x, ()))
        pending_size[fragment_root] = 0

    for v in tree.postorder():
        kids = [c for c in tree.children(v) if pending_size.get(c, 0) > 0]
        size = 1 + sum(pending_size[c] for c in kids)
        pending_children[v] = kids
        pending_size[v] = size
        if size >= s or v == tree.root:
            commit(v)
    return FragmentDecomposition(tree, s, root_of)
