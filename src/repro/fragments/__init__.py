"""Fragment decomposition of spanning trees (system S6 of DESIGN.md).

Implements Step 1 of the paper: partition the input tree into O(√n)
fragments of O(√n) diameter, both centrally (the default substrate) and
as a distributed bottom-up protocol on the CONGEST simulator.
"""

from .partition import FragmentDecomposition, partition_tree
from .distributed import run_distributed_partition

__all__ = [
    "FragmentDecomposition",
    "partition_tree",
    "run_distributed_partition",
]
