"""Typed exceptions shared across the :mod:`repro` library.

Every failure mode that callers may reasonably want to catch has its own
exception class; all of them derive from :class:`ReproError` so that
``except ReproError`` catches any library-raised condition without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding a self-loop, querying an edge that does not exist, or
    requesting a non-positive edge weight.
    """


class DisconnectedGraphError(GraphError):
    """Raised when an algorithm requires a connected graph but got one
    with two or more connected components."""


class TreeError(ReproError):
    """Raised for invalid rooted-tree operations (cycles in the parent
    map, unknown nodes, an edge set that is not a spanning tree, ...)."""


class CongestError(ReproError):
    """Base class for CONGEST simulator failures."""


class BandwidthExceededError(CongestError):
    """Raised in strict mode when a node attempts to send more than one
    message per incident edge per direction in a single round, or a
    message whose encoded size exceeds the per-round bit budget."""


class RoundLimitExceededError(CongestError):
    """Raised when a distributed program fails to terminate within the
    configured maximum number of rounds."""


class ProtocolError(CongestError):
    """Raised when a node program violates its own protocol contract,
    e.g. receives a message type it cannot handle in its current phase."""


class AlgorithmError(ReproError):
    """Raised when an algorithm's preconditions are violated (bad
    parameters, unsupported input shape) or an internal invariant fails."""


class ConfigError(ReproError):
    """Raised for invalid configuration: an unreadable or malformed
    config file, an unknown section or key, or a value of the wrong
    type (see :mod:`repro.config`)."""


class ServiceError(ReproError):
    """Raised for service-layer request/response failures.

    Server side it marks a rejected request envelope (non-JSON body,
    unknown fields, an instance over the configured limits) and carries
    the HTTP ``status`` the transport should answer with.  Client side
    (:class:`repro.service.ServiceClient`) it surfaces any non-2xx
    response, with the decoded structured error body in ``payload``
    (``status`` is 0 when the service was unreachable altogether).
    ``retry_after`` is set on backpressure rejections (429): the
    seconds the client should wait before retrying, carried in both
    the structured body and the ``Retry-After`` header.
    """

    def __init__(
        self, message: str, *, status: int = 400, payload=None, retry_after=None
    ):
        super().__init__(message)
        self.status = int(status)
        self.payload = payload
        self.retry_after = None if retry_after is None else float(retry_after)
