"""Bridge finding (Tarjan low-link, iterative) — the Thurimella stand-in.

Su's concurrent SPAA 2014 algorithm (discussed in the paper's
"Concurrent Result" paragraph) finds the minimum cut of a sampled graph
by locating a *bridge* with Thurimella's distributed algorithm.  The
behavioural contract is "find an edge whose removal disconnects the
graph, and the component it cuts off"; this centralized implementation
provides exactly that for the Su-style baseline (DESIGN.md §5).
"""

from __future__ import annotations

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph


def find_bridges(graph: WeightedGraph) -> list[tuple[Node, Node]]:
    """All bridges of ``graph`` (iterative DFS low-link, O(n + m)).

    Works on disconnected graphs (per component).  Parallel edges never
    exist in :class:`WeightedGraph` (merged by weight), so every edge is
    a candidate.
    """
    index: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node] = {}
    bridges: list[tuple[Node, Node]] = []
    counter = 0
    for start in graph.nodes:
        if start in index:
            continue
        stack: list[tuple[Node, iter]] = [(start, iter(graph.neighbors(start)))]
        index[start] = low[start] = counter
        counter += 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    parent[nxt] = node
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append((nxt, iter(graph.neighbors(nxt))))
                    advanced = True
                    break
                if nxt != parent.get(node):
                    low[node] = min(low[node], index[nxt])
            if not advanced:
                stack.pop()
                par = parent.get(node)
                if par is not None:
                    low[par] = min(low[par], low[node])
                    if low[node] > index[par]:
                        bridges.append((par, node))
    return bridges


def bridge_component(graph: WeightedGraph, bridge: tuple[Node, Node]) -> set[Node]:
    """The nodes reachable from ``bridge[1]`` without using the bridge —
    one side of the cut the bridge induces."""
    a, b = bridge
    if not graph.has_edge(a, b):
        raise AlgorithmError(f"({a!r}, {b!r}) is not an edge")
    seen = {b}
    frontier = [b]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if (u, v) == (b, a):
                    continue
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    if a in seen:
        raise AlgorithmError(f"({a!r}, {b!r}) is not a bridge")
    return seen
