"""Su's SPAA 2014 approach: sampling + bridge finding (concurrent result).

The paper's "Concurrent Result" section describes Su's independent
(1+ε)-approximation: sample edges at increasing rates until the sampled
graph's minimum cut drops to one, then find a *bridge* of the sampled
graph (Thurimella's algorithm, here Tarjan's — DESIGN.md §5); the bridge's
side is w.h.p. an approximate minimum cut of the original graph.  Unlike
the paper's own algorithm this cannot return the exact cut even for
small λ — the drawback the paper notes — which experiment E3 makes
visible as a ratio strictly above 1 on some seeds.

This implementation sweeps a geometric schedule of sampling rates; for
each rate it draws a few skeletons, and every skeleton that is
disconnected (rate too low — the component is itself a cut candidate)
or has a bridge contributes the *original-graph* value of the induced
side.  The best candidate over the sweep is returned.
"""

from __future__ import annotations

import random

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph
from ..sampling.skeleton import sample_skeleton
from .bridges import bridge_component, find_bridges
from .stoer_wagner import MinCutResult

DEFAULT_RATE_STEPS = 12
DEFAULT_TRIALS_PER_RATE = 3


def su_approx_min_cut(
    graph: WeightedGraph,
    seed: int = 0,
    rate_steps: int = DEFAULT_RATE_STEPS,
    trials_per_rate: int = DEFAULT_TRIALS_PER_RATE,
) -> MinCutResult:
    """Sampling + bridge baseline (see module docstring).

    Always returns a valid cut (candidates are re-evaluated in the
    original graph), falling back to the best singleton cut if no sampled
    skeleton produced a candidate — so the result is an upper bound on λ
    that concentrates near λ with enough trials.
    """
    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    rng = random.Random(seed)
    node_set = set(graph.nodes)

    best = _best_singleton(graph)
    for step in range(rate_steps):
        probability = 2.0 ** (-(step + 1))
        for _ in range(trials_per_rate):
            skeleton = sample_skeleton(graph, probability, rng=rng)
            candidate_sides = []
            components = skeleton.connected_components()
            if len(components) > 1:
                candidate_sides.extend(components[:-1])
            else:
                bridges = find_bridges(skeleton)
                if bridges:
                    candidate_sides.append(bridge_component(skeleton, bridges[0]))
            for side in candidate_sides:
                if 0 < len(side) < len(node_set):
                    value = graph.cut_value(side)
                    if value < best.value:
                        best = MinCutResult(value=value, side=frozenset(side))
    return best


def _best_singleton(graph: WeightedGraph) -> MinCutResult:
    node = min(graph.nodes, key=lambda u: (graph.weighted_degree(u), repr(u)))
    return MinCutResult(
        value=graph.weighted_degree(node), side=frozenset({node})
    )
