"""Baseline minimum-cut algorithms (system S10 of DESIGN.md).

Exact: Stoer–Wagner (ground truth), brute force (validates Stoer–Wagner),
Karger contraction and Karger–Stein (Monte Carlo).  Approximate:
Matula (2+ε) via Nagamochi–Ibaraki certificates — the centralized analog
of the paper's Ghaffari–Kuhn comparator — and Su's sampling + bridges
(1+ε) concurrent result.

Every global min-cut entry point here is also registered with
:mod:`repro.api`, so ``solve(graph, solver="stoer_wagner")`` (etc.)
returns the canonical :class:`repro.api.CutResult`.  ``MinCutResult``
is a deprecated thin alias of that class: importing it from this
package emits :class:`DeprecationWarning` (the sunset path is
``from repro.api import CutResult`` — results returned by the solvers
remain ``isinstance``-compatible either way).
"""

import warnings

from .stoer_wagner import stoer_wagner_min_cut
from .brute_force import MAX_BRUTE_FORCE_NODES, brute_force_min_cut
from .contraction import karger_min_cut, karger_stein_min_cut
from .bridges import bridge_component, find_bridges
from .nagamochi_ibaraki import contractible_edges, scan_intervals, sparse_certificate
from .matula import matula_approx_min_cut
from .su_sampling import su_approx_min_cut
from .su_congest import SuCongestResult, su_minimum_cut_congest
from .maxflow import FlowResult, max_flow_min_cut, minimum_st_cut_value
from .gomory_hu import GomoryHuTree, gomory_hu_min_cut, gomory_hu_tree


def __getattr__(name: str):
    """Deprecated aliases, warned on access rather than on import.

    ``repro.baselines.MinCutResult`` keeps working (tests and historic
    call sites rely on it) but now announces its sunset; internal
    modules construct it via :mod:`repro.baselines.stoer_wagner`
    directly, so solver calls stay quiet.
    """
    if name == "MinCutResult":
        warnings.warn(
            "repro.baselines.MinCutResult is a deprecated alias of "
            "repro.api.CutResult; import CutResult from repro.api instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .stoer_wagner import MinCutResult

        return MinCutResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MinCutResult",  # noqa: F822 - provided lazily by module __getattr__
    "stoer_wagner_min_cut",
    "MAX_BRUTE_FORCE_NODES",
    "brute_force_min_cut",
    "karger_min_cut",
    "karger_stein_min_cut",
    "bridge_component",
    "find_bridges",
    "contractible_edges",
    "scan_intervals",
    "sparse_certificate",
    "matula_approx_min_cut",
    "su_approx_min_cut",
    "SuCongestResult",
    "su_minimum_cut_congest",
    "FlowResult",
    "max_flow_min_cut",
    "minimum_st_cut_value",
    "GomoryHuTree",
    "gomory_hu_min_cut",
    "gomory_hu_tree",
]
