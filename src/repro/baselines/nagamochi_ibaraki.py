"""Nagamochi–Ibaraki scanning and sparse certificates.

The scan processes nodes in maximum-adjacency order; when node ``u`` is
scanned, each edge ``(u, v)`` to an unscanned ``v`` is assigned the
half-open *scan interval* ``[r(v), r(v) + w)`` where ``r(v)`` is the
total weight already scanned into ``v``.  The classic facts:

* the edges whose interval starts below ``k`` form a sparse
  ``k``-certificate: capping each edge at ``min(w, k − start)`` keeps
  every cut value of the original graph up to ``k``;
* an edge whose interval starts at or above ``k`` joins two endpoints
  that are ``k``-edge-connected, so contracting it preserves every cut
  of value below ``k``.

The second fact powers Matula's (2+ε) approximation
(:mod:`repro.baselines.matula`) — the centralized analog of the
Ghaffari–Kuhn baseline the paper improves on.
"""

from __future__ import annotations

import heapq

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph


def scan_intervals(graph: WeightedGraph) -> dict[tuple[Node, Node], tuple[float, float]]:
    """NI scan: ``{(u, v): (start, weight)}`` with canonical edge keys.

    ``start`` is the scanned weight into the later endpoint when the
    edge was assigned; smaller starts mean the edge is needed by sparser
    certificates.
    """
    graph.require_connected()
    start_of: dict[tuple[Node, Node], tuple[float, float]] = {}
    scanned: set[Node] = set()
    r = {v: 0.0 for v in graph.nodes}
    heap: list[tuple[float, int, Node]] = []
    counter = 0
    first = graph.nodes[0]
    heapq.heappush(heap, (0.0, counter, first))
    while heap:
        _neg, _tick, u = heapq.heappop(heap)
        if u in scanned:
            continue
        scanned.add(u)
        for v in graph.neighbors(u):
            if v in scanned:
                continue
            w = graph.weight(u, v)
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            start_of[key] = (r[v], w)
            r[v] += w
            counter += 1
            heapq.heappush(heap, (-r[v], counter, v))
    if len(scanned) != graph.number_of_nodes:
        raise AlgorithmError("scan did not reach every node; graph disconnected?")
    return start_of


def sparse_certificate(graph: WeightedGraph, k: float) -> WeightedGraph:
    """The weighted ``k``-certificate: every cut value is preserved up to
    ``k`` while total weight drops to at most ``k·(n−1)``."""
    if k <= 0:
        raise AlgorithmError(f"certificate parameter must be positive, got {k}")
    intervals = scan_intervals(graph)
    certificate = WeightedGraph()
    for u in graph.nodes:
        certificate.add_node(u)
    for (u, v), (start, weight) in intervals.items():
        kept = min(weight, max(0.0, k - start))
        if kept > 0:
            certificate.add_edge(u, v, kept)
    return certificate


def contractible_edges(graph: WeightedGraph, k: float) -> list[tuple[Node, Node]]:
    """Edges whose scan interval starts at or above ``k`` — safe to
    contract while hunting for cuts smaller than ``k``."""
    intervals = scan_intervals(graph)
    return [edge for edge, (start, _w) in intervals.items() if start >= k]
