"""Karger's randomized contraction and the Karger–Stein refinement.

Contraction picks a random edge with probability proportional to its
weight and merges its endpoints; after n−2 contractions the two
remaining super-nodes define a cut that is a minimum cut with
probability ≥ 2/n².  Karger–Stein recurses on two independent copies
once the graph shrinks below ``n/√2 + 1``, lifting the success
probability to Ω(1/log n) per run.

Both return the best cut over ``repetitions`` runs; seeds make them
reproducible.  These are *Monte Carlo* baselines: tests compare them to
Stoer–Wagner with enough repetitions to make failure vanishingly rare.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from .stoer_wagner import MinCutResult


class _ContractedGraph:
    """Mutable contraction state: super-node adjacency + member sets."""

    def __init__(self, graph: WeightedGraph) -> None:
        self.adjacency: dict[Node, dict[Node, float]] = {
            u: {v: graph.weight(u, v) for v in graph.neighbors(u)}
            for u in graph.nodes
        }
        self.members: dict[Node, set[Node]] = {u: {u} for u in graph.nodes}

    def copy(self) -> "_ContractedGraph":
        clone = object.__new__(_ContractedGraph)
        clone.adjacency = {u: dict(nbrs) for u, nbrs in self.adjacency.items()}
        clone.members = {u: set(m) for u, m in self.members.items()}
        return clone

    @property
    def size(self) -> int:
        return len(self.adjacency)

    def random_edge(self, rng: random.Random) -> tuple[Node, Node]:
        """Sample an edge with probability proportional to weight."""
        total = 0.0
        edges: list[tuple[Node, Node, float]] = []
        seen = set()
        for u, nbrs in self.adjacency.items():
            for v, w in nbrs.items():
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                if key in seen:
                    continue
                seen.add(key)
                edges.append((key[0], key[1], w))
                total += w
        pick = rng.random() * total
        acc = 0.0
        for u, v, w in edges:
            acc += w
            if pick <= acc:
                return u, v
        return edges[-1][0], edges[-1][1]

    def contract(self, keep: Node, absorb: Node) -> None:
        for v, w in self.adjacency[absorb].items():
            if v == keep:
                continue
            self.adjacency[keep][v] = self.adjacency[keep].get(v, 0.0) + w
            self.adjacency[v][keep] = self.adjacency[keep][v]
            del self.adjacency[v][absorb]
        self.adjacency[keep].pop(absorb, None)
        del self.adjacency[absorb]
        self.members[keep] |= self.members.pop(absorb)

    def contract_down_to(self, target: int, rng: random.Random) -> None:
        while self.size > target:
            u, v = self.random_edge(rng)
            self.contract(u, v)

    def as_cut(self) -> MinCutResult:
        if self.size != 2:
            raise AlgorithmError("cut extraction requires exactly two super-nodes")
        u, v = self.adjacency
        return MinCutResult(
            value=self.adjacency[u][v], side=frozenset(self.members[u])
        )


def karger_min_cut(
    graph: WeightedGraph,
    repetitions: Optional[int] = None,
    seed: int = 0,
) -> MinCutResult:
    """Best cut over ``repetitions`` basic contraction runs.

    The default repetition count ``⌈n² ln n / 2⌉`` makes the failure
    probability O(1/n); tests use smaller counts on tiny graphs.
    """
    graph.require_connected()
    n = graph.number_of_nodes
    if n < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    runs = repetitions if repetitions is not None else _default_runs(n)
    rng = random.Random(seed)
    best: Optional[MinCutResult] = None
    base = _ContractedGraph(graph)
    for _ in range(runs):
        state = base.copy()
        state.contract_down_to(2, rng)
        candidate = state.as_cut()
        if best is None or candidate.value < best.value:
            best = candidate
    assert best is not None
    return best


def karger_stein_min_cut(
    graph: WeightedGraph,
    repetitions: Optional[int] = None,
    seed: int = 0,
) -> MinCutResult:
    """Best cut over ``repetitions`` Karger–Stein recursions (default
    ``⌈log2(n)²⌉`` runs)."""
    graph.require_connected()
    n = graph.number_of_nodes
    if n < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    runs = (
        repetitions
        if repetitions is not None
        else max(1, int(math.ceil(math.log2(max(2, n)) ** 2)))
    )
    rng = random.Random(seed)
    base = _ContractedGraph(graph)
    best: Optional[MinCutResult] = None
    for _ in range(runs):
        candidate = _recursive_contract(base.copy(), rng)
        if best is None or candidate.value < best.value:
            best = candidate
    assert best is not None
    return best


def _recursive_contract(state: _ContractedGraph, rng: random.Random) -> MinCutResult:
    n = state.size
    if n <= 6:
        state.contract_down_to(2, rng)
        return state.as_cut()
    target = int(math.ceil(n / math.sqrt(2))) + 1
    first = state.copy()
    first.contract_down_to(target, rng)
    second = state
    second.contract_down_to(target, rng)
    left = _recursive_contract(first, rng)
    right = _recursive_contract(second, rng)
    return left if left.value <= right.value else right


def _default_runs(n: int) -> int:
    return max(1, int(math.ceil(n * n * math.log(max(2, n)) / 2)))
