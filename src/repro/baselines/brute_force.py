"""Exhaustive minimum cut for tiny graphs — the base of the validation
pyramid (Stoer–Wagner is checked against it; everything else against
Stoer–Wagner)."""

from __future__ import annotations

from itertools import combinations

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph
from .stoer_wagner import MinCutResult

MAX_BRUTE_FORCE_NODES = 18


def brute_force_min_cut(graph: WeightedGraph) -> MinCutResult:
    """Try every proper nonempty side containing the first node.

    Fixing the first node on one side halves the work and enumerates
    every cut exactly once.  Limited to ``MAX_BRUTE_FORCE_NODES`` nodes.
    """
    graph.require_connected()
    nodes = graph.nodes
    n = len(nodes)
    if n < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    if n > MAX_BRUTE_FORCE_NODES:
        raise AlgorithmError(
            f"brute force is limited to {MAX_BRUTE_FORCE_NODES} nodes, got {n}"
        )
    anchor, *rest = nodes
    best_value = float("inf")
    best_side: frozenset = frozenset()
    for take in range(len(rest) + 1):
        for extra in combinations(rest, take):
            side = {anchor, *extra}
            if len(side) == n:
                continue
            value = graph.cut_value(side)
            if value < best_value:
                best_value = value
                best_side = frozenset(side)
    return MinCutResult(value=best_value, side=best_side)
