"""Matula's (2+ε) minimum-cut approximation — the Ghaffari–Kuhn analog.

The paper's headline comparison is against Ghaffari–Kuhn [DISC 2013],
whose (2+ε) guarantee comes from distributing Matula's certificate
argument.  We reproduce the *approximation behaviour* with the
centralized algorithm (DESIGN.md §5):

repeat until two super-nodes remain:
  1. the minimum weighted degree of the current contracted graph is a
     genuine cut of the original graph — track the best;
  2. with threshold ``k = best/(2+ε)``, contract every edge whose NI
     scan interval starts at or above ``k`` (its endpoints are
     k-edge-connected, so no cut smaller than ``k`` is destroyed);
  3. if nothing was contractible, fall back to one Stoer–Wagner phase
     (contract the last two nodes of a maximum-adjacency order, after
     recording the phase cut) — this preserves correctness and
     guarantees progress.

The returned value lies in ``[λ, (2+ε)·λ]``; experiment E3 measures the
realised ratios against the ground truth and against this library's
(1+ε) algorithm.
"""

from __future__ import annotations

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from .nagamochi_ibaraki import scan_intervals
from .stoer_wagner import MinCutResult


def matula_approx_min_cut(graph: WeightedGraph, epsilon: float = 0.5) -> MinCutResult:
    """(2+ε)-approximate minimum cut (value and witness side)."""
    if epsilon <= 0:
        raise AlgorithmError(f"epsilon must be positive, got {epsilon}")
    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")

    work = graph.copy()
    members: dict[Node, set[Node]] = {u: {u} for u in graph.nodes}
    best_value = float("inf")
    best_side: frozenset = frozenset()

    def consider(value: float, side: set[Node]) -> None:
        nonlocal best_value, best_side
        if value < best_value:
            best_value = value
            best_side = frozenset(side)

    while work.number_of_nodes > 1:
        arg = min(work.nodes, key=lambda u: (work.weighted_degree(u), repr(u)))
        consider(work.weighted_degree(arg), members[arg])
        if work.number_of_nodes == 2:
            break
        threshold = best_value / (2.0 + epsilon)
        contracted = _contract_above(work, members, threshold)
        if not contracted:
            _stoer_wagner_phase_fallback(work, members, consider)
    return MinCutResult(value=best_value, side=best_side)


def _contract_above(work: WeightedGraph, members, threshold: float) -> bool:
    """Contract all edges whose scan interval starts at/above threshold.

    Returns True when at least one contraction happened.  Contractions
    are applied through a union–find so that edges invalidated by
    earlier merges fold into the surviving super-node.
    """
    edges = [
        (u, v)
        for (u, v), (start, _w) in scan_intervals(work).items()
        if start >= threshold
    ]
    if not edges:
        return False
    leader = {u: u for u in work.nodes}

    def find(x):
        while leader[x] != x:
            leader[x] = leader[leader[x]]
            x = leader[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            leader[rv] = ru
    groups: dict[Node, list[Node]] = {}
    for u in work.nodes:
        groups.setdefault(find(u), []).append(u)
    for keep, group in groups.items():
        for absorb in group:
            if absorb != keep:
                _merge_nodes(work, members, keep, absorb)
    return True


def _stoer_wagner_phase_fallback(work: WeightedGraph, members, consider) -> None:
    """One maximum-adjacency phase: record the phase cut, contract the
    last two nodes (classic progress guarantee)."""
    order: list[Node] = []
    in_order: set[Node] = set()
    weights = {u: 0.0 for u in work.nodes}
    for _ in range(work.number_of_nodes):
        pick = max(
            (u for u in work.nodes if u not in in_order),
            key=lambda u: (weights[u], -_ord_rank(u)),
        )
        order.append(pick)
        in_order.add(pick)
        for v in work.neighbors(pick):
            if v not in in_order:
                weights[v] += work.weight(pick, v)
    last, second_last = order[-1], order[-2]
    consider(work.weighted_degree(last), members[last])
    _merge_nodes(work, members, second_last, last)


def _ord_rank(node: Node) -> float:
    return node if isinstance(node, int) else float(len(repr(node)))


def _merge_nodes(work: WeightedGraph, members, keep: Node, absorb: Node) -> None:
    for v in work.neighbors(absorb):
        if v != keep:
            work.add_edge(keep, v, work.weight(absorb, v))
    work.remove_node(absorb)
    members[keep] |= members.pop(absorb)
