"""Maximum s–t flow (Edmonds–Karp) and minimum s–t cuts.

A from-scratch flow substrate supporting the Gomory–Hu baseline: by
max-flow/min-cut duality, the minimum s–t cut value equals the maximum
flow, and the source side of the residual graph after termination is a
minimum s–t cut witness.  Undirected edges are modelled as a pair of
directed residual arcs sharing capacity.

Edmonds–Karp (BFS augmenting paths) runs in O(V·E²) — comfortably fast
at the evaluation sizes and completely deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph


@dataclass(frozen=True)
class FlowResult:
    """Max-flow value plus the source-side minimum-cut witness."""

    value: float
    source_side: frozenset


def max_flow_min_cut(graph: WeightedGraph, source: Node, sink: Node) -> FlowResult:
    """Maximum ``source``→``sink`` flow and the induced minimum s–t cut.

    Raises :class:`AlgorithmError` when the endpoints coincide or are
    missing; disconnected pairs yield flow 0 with the source's component
    as the cut side.
    """
    if source not in graph or sink not in graph:
        raise AlgorithmError("flow endpoints must be graph nodes")
    if source == sink:
        raise AlgorithmError("source and sink must differ")

    # Residual capacities: both directions start at the edge weight.
    residual: dict[Node, dict[Node, float]] = {
        u: {v: graph.weight(u, v) for v in graph.neighbors(u)} for u in graph.nodes
    }

    total = 0.0
    while True:
        parent = _bfs_augmenting_path(residual, source, sink)
        if parent is None:
            break
        # Find the bottleneck along the path.
        bottleneck = float("inf")
        node = sink
        while node != source:
            prev = parent[node]
            bottleneck = min(bottleneck, residual[prev][node])
            node = prev
        # Apply it.
        node = sink
        while node != source:
            prev = parent[node]
            residual[prev][node] -= bottleneck
            residual[node][prev] = residual[node].get(prev, 0.0) + bottleneck
            node = prev
        total += bottleneck

    side = _reachable(residual, source)
    return FlowResult(value=total, source_side=frozenset(side))


def _bfs_augmenting_path(residual, source, sink):
    parent = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, capacity in residual[u].items():
            if capacity > 1e-12 and v not in parent:
                parent[v] = u
                if v == sink:
                    return parent
                queue.append(v)
    return None


def _reachable(residual, source):
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, capacity in residual[u].items():
            if capacity > 1e-12 and v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def minimum_st_cut_value(graph: WeightedGraph, source: Node, sink: Node) -> float:
    """Convenience: just the min s–t cut value (= max-flow value)."""
    return max_flow_min_cut(graph, source, sink).value
