"""Gomory–Hu cut trees — the all-pairs min-cut oracle baseline.

A Gomory–Hu tree is a weighted tree on the graph's nodes such that for
every pair ``(s, t)`` the minimum s–t cut value equals the smallest
edge weight on the tree path between them, and the corresponding tree
edge's sides realise a minimum s–t cut.  The *global* minimum cut is
therefore the lightest Gomory–Hu tree edge — giving an exact baseline
built on an entirely different principle (n−1 max-flows) from both
Stoer–Wagner (MA orderings) and this paper (tree packings), which makes
it a strong independent cross-check.

Implementation: Gusfield's simplification — no node contractions; for
node ``i``, run a max-flow against its current tree parent and re-hang
neighbours that fall on ``i``'s side.  Produces a valid equivalent-flow
tree for undirected graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from .maxflow import max_flow_min_cut
from .stoer_wagner import MinCutResult


@dataclass(frozen=True)
class GomoryHuTree:
    """Parent/weight maps of the cut tree, rooted at ``root``."""

    root: Node
    parent: dict
    weight: dict

    def min_cut_value(self, s: Node, t: Node) -> float:
        """Minimum s–t cut: lightest edge on the tree path s → t."""
        if s == t:
            raise AlgorithmError("endpoints must differ")
        depth = self._depths()
        best = float("inf")
        while s != t:
            if depth[s] >= depth[t]:
                best = min(best, self.weight[s])
                s = self.parent[s]
            else:
                best = min(best, self.weight[t])
                t = self.parent[t]
        return best

    def _depths(self) -> dict:
        depth = {self.root: 0}
        pending = [u for u in self.parent]
        while pending:
            remaining = []
            for u in pending:
                p = self.parent[u]
                if p in depth:
                    depth[u] = depth[p] + 1
                else:
                    remaining.append(u)
            if len(remaining) == len(pending):
                raise AlgorithmError("cycle in Gomory-Hu parent map")
            pending = remaining
        return depth

    def lightest_edge(self) -> tuple[Node, Node, float]:
        """The tree edge realising the global minimum cut."""
        child = min(self.weight, key=lambda u: (self.weight[u], repr(u)))
        return (child, self.parent[child], self.weight[child])


def gomory_hu_tree(graph: WeightedGraph) -> GomoryHuTree:
    """Build the cut tree with n−1 max-flow computations (Gusfield)."""
    graph.require_connected()
    nodes = graph.nodes
    if len(nodes) < 2:
        raise AlgorithmError("a cut tree needs at least two nodes")
    root = nodes[0]
    parent: dict[Node, Node] = {u: root for u in nodes[1:]}
    weight: dict[Node, float] = {}
    for i, u in enumerate(nodes[1:], start=1):
        target = parent[u]
        flow = max_flow_min_cut(graph, u, target)
        weight[u] = flow.value
        side = flow.source_side
        for v in nodes[i + 1 :]:
            if v in side and parent[v] == target:
                parent[v] = u
    return GomoryHuTree(root=root, parent=parent, weight=weight)


def gomory_hu_min_cut(graph: WeightedGraph) -> MinCutResult:
    """Global minimum cut via the cut tree's lightest edge.

    The witness side is recomputed with one extra max-flow across the
    lightest tree edge (keeps the tree construction simple)."""
    tree = gomory_hu_tree(graph)
    child, parent, value = tree.lightest_edge()
    flow = max_flow_min_cut(graph, child, parent)
    if abs(flow.value - value) > 1e-9:
        raise AlgorithmError(
            f"cut tree inconsistency: edge weight {value} vs flow {flow.value}"
        )
    return MinCutResult(value=value, side=frozenset(flow.source_side))
