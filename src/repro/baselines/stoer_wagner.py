"""Stoer–Wagner global minimum cut — the exact ground-truth oracle.

Implemented from scratch (no networkx): n−1 maximum-adjacency phases,
each ending with a *cut of the phase* (the last-added super-node against
the rest); the lightest phase cut is a global minimum cut.  Merged
super-nodes track their member sets so the witness side is returned.

Complexity O(n·m + n² log n)-ish with the heap-based phase; plenty for
the evaluation sizes.  Every other min-cut algorithm in the library is
cross-validated against this one (and this one against brute force).
"""

from __future__ import annotations

import heapq

from ..api.result import CutResult
from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph


class MinCutResult(CutResult):
    """Deprecated alias of :class:`repro.api.result.CutResult`.

    Historically the baselines carried their own ``(value, side)``
    dataclass; it is now a thin subclass of the canonical
    :class:`~repro.api.result.CutResult` so existing imports,
    ``isinstance`` checks and ``MinCutResult(value=..., side=...)``
    constructor calls keep working.  New code should import
    ``CutResult`` from :mod:`repro.api` and use the façade's
    :func:`repro.api.solve`, which stamps provenance (solver name,
    guarantee, seed, wall time) onto every result.
    """


def stoer_wagner_min_cut(graph: WeightedGraph) -> MinCutResult:
    """Global minimum cut of a connected graph with ≥ 2 nodes."""
    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")

    # Working adjacency over super-nodes; ``members`` maps a super-node
    # to the original nodes merged into it.  Seeded from the cached
    # GraphIndex's per-node weight maps (copies — the phases contract
    # them) instead of per-edge ``graph.weight`` lookups, so one shared
    # index serves every solver in a ``compare`` fan-out.
    index = graph.index()
    adjacency: dict[Node, dict[Node, float]] = {
        u: dict(weights) for u, weights in zip(index.nodes, index.weight_maps)
    }
    members: dict[Node, set[Node]] = {u: {u} for u in index.nodes}

    best_value = float("inf")
    best_side: frozenset = frozenset()

    while len(adjacency) > 1:
        last, second_last, phase_cut = _maximum_adjacency_phase(adjacency)
        if phase_cut < best_value:
            best_value = phase_cut
            best_side = frozenset(members[last])
        _merge(adjacency, members, second_last, last)

    return MinCutResult(value=best_value, side=best_side)


def _maximum_adjacency_phase(adjacency):
    """One MA phase: returns (last node, second-to-last, cut of phase)."""
    start = next(iter(adjacency))
    in_order = {start}
    weights = {v: 0.0 for v in adjacency}
    heap: list[tuple[float, int, Node]] = []
    counter = 0
    for v, w in adjacency[start].items():
        weights[v] = w
        counter += 1
        heapq.heappush(heap, (-w, counter, v))
    last, second_last = start, start
    phase_cut = 0.0
    while len(in_order) < len(adjacency):
        while True:
            neg_w, _tick, v = heapq.heappop(heap)
            if v not in in_order and -neg_w == weights[v]:
                break
        second_last, last = last, v
        phase_cut = weights[v]
        in_order.add(v)
        for u, w in adjacency[v].items():
            if u not in in_order:
                weights[u] += w
                counter += 1
                heapq.heappush(heap, (-weights[u], counter, u))
    return last, second_last, phase_cut


def _merge(adjacency, members, keep: Node, absorb: Node) -> None:
    """Contract ``absorb`` into ``keep`` (summing parallel weights)."""
    for v, w in adjacency[absorb].items():
        if v == keep:
            continue
        adjacency[keep][v] = adjacency[keep].get(v, 0.0) + w
        adjacency[v][keep] = adjacency[keep][v]
        del adjacency[v][absorb]
    adjacency[keep].pop(absorb, None)
    del adjacency[absorb]
    members[keep] |= members.pop(absorb)
