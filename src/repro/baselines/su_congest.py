"""Su's concurrent (1+ε) algorithm, *distributed* on the simulator.

The paper's "Concurrent Result" section sketches Su's SPAA 2014
approach: sample edges so the minimum cut of the sampled graph drops to
one, find a bridge of the sampled graph (Thurimella), and output the
side it cuts off.  This module implements the whole pipeline as CONGEST
phases, with one twist that strengthens it for free: once the sampled
graph's spanning tree `T_H` is built, running the paper's own
Theorem 2.1 on the *original* graph with tree `T_H` returns
`min_v C_G(v↓)` — at least as good as the single bridge cut Su's
argument promises (the bridge edge is one of the candidates).

Phases per sampling rate:

1. ``su:sample`` — the smaller-id endpoint of every edge draws the
   binomial survival count and tells its neighbour (one message per
   edge; both ends then know the sampled weight);
2. ``su:bfs`` — BFS spanning tree of the *sampled* subgraph from the
   globally known minimum node id (skipped when the sample is
   disconnected — detected because the BFS does not span);
3. Theorem 2.1 on `G` with tree `T_H` (all Steps 1–5, measured).

The best candidate across a geometric rate schedule is returned.  Su's
analysis picks the rate near `Θ(log n/(ε²λ))`; sweeping all
O(log W) rates keeps the algorithm parameter-free at a polylog factor,
mirroring the paper's O~(·) accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..congest.metrics import RunMetrics
from ..congest.network import CongestNetwork
from ..congest.node import Inbox, NodeContext, NodeProgram
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree

DEFAULT_RATE_STEPS = 6


class EdgeSamplingPhase(NodeProgram):
    """Distributed Karger sampling: per-edge binomial survival.

    The smaller-id endpoint owns the coin flips (its private randomness,
    seeded deterministically per edge for reproducibility) and announces
    the surviving weight; afterwards both endpoints' memory maps
    ``su:skel`` hold ``{neighbour: surviving weight}`` (zero-weight
    entries omitted).
    """

    def __init__(self, probability: float, seed: int) -> None:
        if not 0.0 <= probability <= 1.0:
            raise AlgorithmError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self.seed = seed

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory["su:skel"] = {}
        for v in ctx.neighbors:
            if _owns_edge(ctx.node, v):
                kept = self._draw(ctx.node, v, ctx.edge_weight(v))
                if kept:
                    ctx.memory["su:skel"][v] = float(kept)
                ctx.send(v, "kept", kept)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "kept" and msg.payload[0]:
                ctx.memory["su:skel"][src] = float(msg.payload[0])

    def _draw(self, u, v, weight: float) -> int:
        units = int(round(weight))
        if abs(units - weight) > 1e-9 or units < 1:
            raise AlgorithmError(
                "distributed sampling needs positive integer weights"
            )
        rng = random.Random(f"{self.seed}:{u}:{v}")
        if self.probability >= 1.0:
            return units
        return sum(1 for _ in range(units) if rng.random() < self.probability)


class SkeletonBFSBuild(NodeProgram):
    """BFS tree over the sampled subgraph only (``su:skel`` edges)."""

    def __init__(self, root) -> None:
        self.root = root
        self._decided = False

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory["suT:children"] = []
        ctx.memory["suT:parent"] = None
        ctx.memory["suT:reached"] = False
        if ctx.node == self.root:
            self._decided = True
            ctx.memory["suT:reached"] = True
            for v in ctx.memory["su:skel"]:
                ctx.send(v, "sbfs")

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == "sadopt":
                ctx.memory["suT:children"].append(src)
        if self._decided:
            return
        offers = [src for src, msg in inbox if msg.kind == "sbfs"]
        if not offers:
            return
        parent = min(offers, key=_order)
        self._decided = True
        ctx.memory["suT:parent"] = parent
        ctx.memory["suT:reached"] = True
        ctx.send(parent, "sadopt")
        for v in ctx.memory["su:skel"]:
            if v != parent:
                ctx.send(v, "sbfs")


@dataclass(frozen=True)
class SuCongestResult:
    """Outcome of the distributed Su pipeline."""

    value: float
    side: frozenset
    best_rate: float
    rates_tried: int
    metrics: RunMetrics


def su_minimum_cut_congest(
    graph: WeightedGraph,
    seed: int = 0,
    rate_steps: int = DEFAULT_RATE_STEPS,
    trials_per_rate: int = 2,
    network: Optional[CongestNetwork] = None,
) -> SuCongestResult:
    """The full distributed Su pipeline (see module docstring).

    Returns the best 1-respecting cut of `G` over spanning trees of
    sampled subgraphs at rates ``1, 1/2, …, 2^-(rate_steps-1)``.
    Always valid (every candidate is a real cut of `G`); approximates λ
    with the quality Su's sampling argument gives the swept rates.
    """
    from ..core.one_respect_congest import one_respecting_min_cut_congest

    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    net = network if network is not None else CongestNetwork(graph)
    root = min(graph.nodes, key=_order)

    best_value = float("inf")
    best_side: frozenset = frozenset()
    best_rate = 1.0
    tried = 0
    combined = RunMetrics()

    for step in range(rate_steps * trials_per_rate):
        probability = 2.0 ** (-(step // trials_per_rate))
        net.reset_memory()
        net.run_phase(
            f"su:sample[{step}]",
            lambda u: EdgeSamplingPhase(probability, seed + step),
        )
        net.run_phase(f"su:bfs[{step}]", lambda u: SkeletonBFSBuild(root))
        reached = [u for u in net.nodes if net.memory[u]["suT:reached"]]
        if len(reached) != net.size:
            # Sampled subgraph disconnected — rate too low; skip (the
            # schedule always contains p=1, which spans).
            combined.extend(_take_metrics(net))
            continue
        tree = RootedTree(
            root,
            {
                u: net.memory[u]["suT:parent"]
                for u in net.nodes
                if net.memory[u]["suT:parent"] is not None
            },
        )
        combined.extend(_take_metrics(net))
        outcome = one_respecting_min_cut_congest(graph, tree, network=net)
        combined.extend(_take_metrics(net))
        tried += 1
        if outcome.best_value < best_value - 1e-12:
            best_value = outcome.best_value
            best_side = frozenset(tree.subtree(outcome.best_node))
            best_rate = probability

    if not best_side:
        raise AlgorithmError("no sampling rate produced a spanning sample")
    return SuCongestResult(
        value=best_value,
        side=best_side,
        best_rate=best_rate,
        rates_tried=tried,
        metrics=combined,
    )


def _take_metrics(net: CongestNetwork) -> RunMetrics:
    taken = net.metrics
    net.metrics = RunMetrics()
    return taken


def _owns_edge(u, v) -> bool:
    return _order(u) < _order(v)


def _order(node: Node):
    return node if isinstance(node, int) else repr(node)
