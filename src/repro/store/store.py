"""The segmented cache store: immutable segments + manifest + compaction.

Layout of a store directory::

    cache_store/
        MANIFEST.json        {"schema": 3, "kind": "repro-cache-store",
                              "segments": [...], "compactions": N}
        seg-<hash16>.jsonl   sealed, immutable segments (manifest order)
        active.jsonl         the append tail (implicit, folded in last)

The manifest is **schema 3** — the successor of the single-file result
cache's ``{"schema": 2, "entries": ...}`` envelope.  Schema ≤ 2 files
are still read by :func:`repro.exec.cache.load_cache_file`, and the
migration path is a merge: adopting a schema-2 file into a store-backed
cache appends its entries as ``put`` records (``python -m repro cache
merge --out STORE_DIR old_cache.json``).

Why segments: the schema-2 tier rewrites the whole JSON file on every
flush, so a long-lived ``repro serve`` worker pays O(cache size) per
persisted batch.  Here a flush *appends* the new records — O(new
entries) — and the rewrite cost is paid only at :meth:`SegmentStore.
compact` time, under an explicit size/age retention policy.

Determinism: ``compact()`` never reads the clock (the age reference
defaults to the newest record timestamp in the store) and orders
retained entries canonically, so the same segments plus the same
policy produce a **byte-identical** compacted segment — compacting
twice is a no-op, and merging worker stores is segment concatenation
followed by one deterministic compact, no coordination required.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

try:
    import fcntl
except ImportError:  # non-POSIX: appends stay best-effort serialised
    fcntl = None

from ..errors import AlgorithmError
from .segment import (
    ACTIVE_SEGMENT,
    SEGMENT_SUFFIX,
    append_lines,
    encode_record,
    hit_record,
    put_record,
    read_segment,
    segment_name,
)

#: Version of the store's on-disk manifest format.  The single-file
#: result cache stopped at schema 2; the directory store is schema 3.
STORE_SCHEMA_VERSION = 3

#: The ``kind`` tag keeping foreign JSON from masquerading as a manifest.
STORE_KIND = "repro-cache-store"

MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class RetentionPolicy:
    """What :meth:`SegmentStore.compact` keeps.

    ``None`` for every field means "keep all live entries" (compaction
    then only folds duplicate records and hit metadata).  Entries are
    ranked most-frequently-hit first, most-recently-used to break
    ties, digest order last — a total, deterministic order:

    * ``max_age`` drops entries whose last use is more than this many
      seconds older than the *newest* record in the store (not the
      wall clock, so the same inputs always age the same way; pass
      ``now=`` to :meth:`SegmentStore.compact` for wall-clock expiry).
    * ``max_entries`` keeps the best-ranked N entries.
    * ``max_bytes`` keeps the best-ranked prefix whose encoded
      compacted records fit the budget.
    """

    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    max_age: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 0:
            raise AlgorithmError(
                f"max_entries must be >= 0, got {self.max_entries}"
            )
        if self.max_bytes is not None and self.max_bytes < 0:
            raise AlgorithmError(f"max_bytes must be >= 0, got {self.max_bytes}")
        if self.max_age is not None and self.max_age < 0:
            raise AlgorithmError(f"max_age must be >= 0, got {self.max_age}")

    @property
    def unbounded(self) -> bool:
        return (
            self.max_entries is None
            and self.max_bytes is None
            and self.max_age is None
        )


@dataclass
class _Live:
    """Folded per-digest state: the entry plus its usage metadata."""

    payload: dict
    hits: int
    last_ts: float


@dataclass
class _SegmentInfo:
    """Per-file bookkeeping for ``repro cache segments`` and stats."""

    name: str
    records: int = 0
    puts: int = 0
    hit_records: int = 0
    bytes: int = 0
    sealed: bool = True

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CompactionReport:
    """What one ``compact()``/``gc()`` run did, for CLI and tests."""

    kept_entries: int
    dropped_entries: int
    dropped_records: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int
    segment: Optional[str]
    orphans_removed: int = 0


class SegmentStore:
    """A directory of JSONL segments behind one digest → entry map.

    Opening folds every sealed segment (strictly — they were written
    atomically) and then the active segment (leniently — a crash
    mid-append leaves a truncated tail line, which is dropped and
    repaired by truncating the file).  All mutation runs under an
    advisory ``flock`` on a sibling ``.lock`` file so concurrent
    workers sharing one store append instead of clobbering.
    """

    def __init__(self, root: Union[str, Path], *, create: bool = True) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise AlgorithmError(
                f"cache store path {self.root} exists and is not a directory"
            )
        if not self.root.exists():
            if not create:
                raise AlgorithmError(f"cache store {self.root} does not exist")
            self.root.mkdir(parents=True, exist_ok=True)
        elif not create and not (
            (self.root / MANIFEST_NAME).exists()
            or (self.root / ACTIVE_SEGMENT).exists()
        ):
            # Strict tooling (`repro cache stats DIR`, merge sources)
            # must not read an arbitrary directory as an empty store.
            raise AlgorithmError(
                f"{self.root} is not a cache store (no {MANIFEST_NAME})"
            )
        self._live: dict[str, _Live] = {}
        self._sealed: list[_SegmentInfo] = []
        self._active = _SegmentInfo(name=ACTIVE_SEGMENT, sealed=False)
        self._manifest_segments: list[str] = []
        self.compactions = 0
        self.total_records = 0
        self.dropped_tail = 0
        self.appended_records = 0
        self._load()

    # -- open ----------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            return  # fresh store: no segments yet
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise AlgorithmError(
                f"cache store manifest {path} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("kind") != STORE_KIND:
            raise AlgorithmError(f"{path} is not a cache store manifest")
        schema = manifest.get("schema")
        if schema != STORE_SCHEMA_VERSION:
            raise AlgorithmError(
                f"cache store {self.root} has schema {schema!r}; this "
                f"version reads schema {STORE_SCHEMA_VERSION} only"
            )
        segments = manifest.get("segments")
        if not isinstance(segments, list) or not all(
            isinstance(name, str) for name in segments
        ):
            raise AlgorithmError(f"{path} has a malformed segment list")
        self._manifest_segments = list(segments)
        compactions = manifest.get("compactions", 0)
        self.compactions = compactions if isinstance(compactions, int) else 0

    def _load(self) -> None:
        self._read_manifest()
        for name in self._manifest_segments:
            records, _ = read_segment(self.root / name)
            info = _SegmentInfo(
                name=name, bytes=(self.root / name).stat().st_size
            )
            self._fold(records, info)
            self._sealed.append(info)
        active = self.root / ACTIVE_SEGMENT
        if active.exists():
            records, truncated_at = read_segment(active, lenient_tail=True)
            if truncated_at is not None:
                # Repair: drop the half-written tail so later appends
                # start on a clean line boundary instead of gluing new
                # bytes onto the partial record.
                self.dropped_tail += 1
                with self._lock():
                    with open(active, "r+b") as handle:
                        handle.truncate(truncated_at)
            self._active.bytes = active.stat().st_size
            self._fold(records, self._active)

    def _fold(self, records: Sequence[dict], info: _SegmentInfo) -> None:
        """Apply ``records`` to the live map and charge them to ``info``."""
        for record in records:
            digest = record["digest"]
            live = self._live.get(digest)
            if record["op"] == "put":
                info.puts += 1
                if live is None:
                    self._live[digest] = _Live(
                        payload=record["entry"],
                        hits=record["hits"],
                        last_ts=float(record["ts"]),
                    )
                else:
                    # Duplicate put (another worker raced the insert, or
                    # a merge re-adopted): first entry wins — digests pin
                    # the full solve configuration, so payloads agree —
                    # and the usage metadata folds.
                    live.hits += record["hits"]
                    live.last_ts = max(live.last_ts, float(record["ts"]))
            else:
                info.hit_records += 1
                if live is not None:
                    live.hits += record["count"]
                    live.last_ts = max(live.last_ts, float(record["ts"]))
        info.records += len(records)
        self.total_records += len(records)

    # -- locking -------------------------------------------------------

    @contextmanager
    def _lock(self):
        """Advisory exclusive lock shared by every writer of this store.

        The lock file is never deleted — unlinking a lock file is the
        classic race (see :meth:`repro.exec.cache.ResultCache._file_lock`).
        """
        if fcntl is None:
            yield
            return
        with open(self.root / ".lock", "w", encoding="utf-8") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    def _write_manifest(self) -> None:
        manifest = {
            "schema": STORE_SCHEMA_VERSION,
            "kind": STORE_KIND,
            "segments": self._manifest_segments,
            "compactions": self.compactions,
        }
        tmp = self.root / f"{MANIFEST_NAME}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self._manifest_path())

    # -- append --------------------------------------------------------

    def append(
        self,
        puts: Iterable[tuple[str, dict]] = (),
        hits: Iterable[tuple[str, int]] = (),
        *,
        ts: Optional[float] = None,
    ) -> int:
        """Append insert/hit records to the active segment — O(new).

        ``puts`` are ``(digest, entry)`` pairs, ``hits`` are
        ``(digest, count)`` pairs.  Returns the number of records
        written.  The in-memory view folds the same records, and the
        manifest is materialised on first write so a store directory
        becomes self-describing as soon as it holds data.
        """
        stamp = time.time() if ts is None else float(ts)
        records = [put_record(digest, entry, ts=stamp) for digest, entry in puts]
        records += [
            hit_record(digest, count=count, ts=stamp)
            for digest, count in hits
            if count > 0
        ]
        return self._append_records(records)

    def _append_records(self, records: list[dict]) -> int:
        if not records:
            return 0
        lines = [encode_record(record) for record in records]
        with self._lock():
            added = append_lines(self.root / ACTIVE_SEGMENT, lines)
            if not self._manifest_path().exists():
                self._write_manifest()
        self._fold(records, self._active)
        self._active.bytes += added
        self.appended_records += len(records)
        return len(records)

    # -- read ----------------------------------------------------------

    def entries(self) -> dict[str, dict]:
        """Digest → entry payload for every live entry (fold order)."""
        return {digest: live.payload for digest, live in self._live.items()}

    def entry_meta(self) -> dict[str, tuple[int, float]]:
        """Digest → ``(hits, last_ts)`` usage metadata for every live entry."""
        return {
            digest: (live.hits, live.last_ts)
            for digest, live in self._live.items()
        }

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, digest: str) -> bool:
        return digest in self._live

    def newest_ts(self) -> Optional[float]:
        if not self._live:
            return None
        return max(live.last_ts for live in self._live.values())

    def oldest_ts(self) -> Optional[float]:
        if not self._live:
            return None
        return min(live.last_ts for live in self._live.values())

    def _infos(self) -> list[_SegmentInfo]:
        infos = list(self._sealed)
        if self._active.records or (self.root / ACTIVE_SEGMENT).exists():
            infos.append(self._active)
        return infos

    def disk_bytes(self) -> int:
        return sum(info.bytes for info in self._infos())

    def segment_infos(self) -> list[dict]:
        """Per-segment breakdown (sealed first, active last)."""
        return [info.as_dict() for info in self._infos()]

    def stats(self) -> dict:
        """Store counters, merged into :meth:`ResultCache.stats` and
        surfaced by ``/healthz`` and ``repro cache stats``."""
        return {
            "segments": len(self._infos()),
            "live_entries": len(self._live),
            "dead_records": self.total_records - len(self._live),
            "store_bytes": self.disk_bytes(),
            "compactions": self.compactions,
            "appended_records": self.appended_records,
        }

    # -- retention -----------------------------------------------------

    def _ranked(self) -> list[str]:
        """Every live digest, best-to-keep first (total, deterministic)."""
        return sorted(
            self._live,
            key=lambda digest: (
                -self._live[digest].hits,
                -self._live[digest].last_ts,
                digest,
            ),
        )

    def select(
        self, policy: Optional[RetentionPolicy], *, now: Optional[float] = None
    ) -> list[str]:
        """Digests the policy retains, in canonical (digest) order."""
        if policy is None or policy.unbounded:
            return sorted(self._live)
        reference = self.newest_ts() if now is None else float(now)
        kept: list[str] = []
        budget = policy.max_bytes
        for digest in self._ranked():
            live = self._live[digest]
            if (
                policy.max_age is not None
                and reference is not None
                and reference - live.last_ts > policy.max_age
            ):
                continue
            if policy.max_entries is not None and len(kept) >= policy.max_entries:
                break
            if budget is not None:
                cost = len(self._compacted_line(digest).encode("utf-8"))
                if cost > budget:
                    continue
                budget -= cost
            kept.append(digest)
        return sorted(kept)

    def _compacted_line(self, digest: str) -> str:
        live = self._live[digest]
        return encode_record(
            put_record(digest, live.payload, ts=live.last_ts, hits=live.hits)
        )

    # -- compaction ----------------------------------------------------

    def compact(
        self,
        policy: Optional[RetentionPolicy] = None,
        *,
        now: Optional[float] = None,
    ) -> CompactionReport:
        """Fold every segment into one, under the retention policy.

        Deterministic and idempotent: the output segment's bytes are a
        pure function of the live entry state and the policy (entries
        are written in digest order, timestamps are carried over, the
        age reference defaults to the newest record in the store), and
        its name is the hash of those bytes — so compacting an
        already-compacted store changes nothing, byte for byte.
        """
        bytes_before = self.disk_bytes()
        segments_before = len(self._infos())
        records_before = self.total_records
        entries_before = len(self._live)
        kept = self.select(policy, now=now)
        blob = "".join(self._compacted_line(d) for d in kept).encode("utf-8")
        with self._lock():
            old_files = [info.name for info in self._infos()]
            if kept:
                name: Optional[str] = segment_name(blob)
                tmp = self.root / f"{name}.tmp.{os.getpid()}"
                tmp.write_bytes(blob)
                os.replace(tmp, self.root / name)
                self._manifest_segments = [name]
            else:
                name = None
                self._manifest_segments = []
            self.compactions += 1
            self._write_manifest()
            for old in old_files:
                if old != name:
                    try:
                        (self.root / old).unlink()
                    except OSError:
                        pass
        self._live = {digest: self._live[digest] for digest in kept}
        self.total_records = len(kept)
        self._sealed = (
            [
                _SegmentInfo(
                    name=name, records=len(kept), puts=len(kept),
                    bytes=len(blob),
                )
            ]
            if name is not None
            else []
        )
        self._active = _SegmentInfo(name=ACTIVE_SEGMENT, sealed=False)
        return CompactionReport(
            kept_entries=len(kept),
            dropped_entries=entries_before - len(kept),
            dropped_records=records_before - len(kept),
            segments_before=segments_before,
            segments_after=len(self._sealed),
            bytes_before=bytes_before,
            bytes_after=len(blob),
            segment=name,
        )

    def gc(self) -> CompactionReport:
        """Drop dead records and orphan files; keep every live entry.

        ``gc`` is compaction without a retention policy, plus a sweep
        for ``*.jsonl`` files the manifest no longer references (left
        by a crash between segment write and manifest replace).
        """
        report = self.compact(None)
        referenced = {info.name for info in self._infos()}
        referenced.add(ACTIVE_SEGMENT)
        orphans = 0
        with self._lock():
            for path in self.root.glob(f"*{SEGMENT_SUFFIX}"):
                if path.name not in referenced:
                    try:
                        path.unlink()
                        orphans += 1
                    except OSError:
                        pass
        if orphans:
            report = dataclasses.replace(report, orphans_removed=orphans)
        return report

    def adopt_segments(self, other: "SegmentStore") -> int:
        """Concatenate another store's records into this one.

        The merge primitive: adopting appends the other store's live
        entries (with their folded usage metadata) as ``put`` records —
        segment concatenation — after which one deterministic
        :meth:`compact` yields the canonical merged segment.  Entries
        already present fold as duplicate puts (ours win; their hit
        counts still accumulate).  Returns the records appended.
        """
        records = [
            put_record(digest, live.payload, ts=live.last_ts, hits=live.hits)
            for digest, live in other._live.items()
        ]
        return self._append_records(records)

    def clear(self) -> None:
        """Drop every segment and entry; the manifest survives, empty."""
        with self._lock():
            for info in self._infos():
                try:
                    (self.root / info.name).unlink()
                except OSError:
                    pass
            self._manifest_segments = []
            self._write_manifest()
        self._live = {}
        self._sealed = []
        self._active = _SegmentInfo(name=ACTIVE_SEGMENT, sealed=False)
        self.total_records = 0


def is_store_path(path: Union[str, Path]) -> bool:
    """Should this cache path open as a segment store (vs a JSON file)?

    A directory (existing) is always a store; a path that does not
    exist yet is a store when it has no file suffix (``cache_store``)
    and a single JSON file when it has one (``cache.json``) — the
    convention every repro cache file has followed.
    """
    path = Path(path)
    if path.exists():
        return path.is_dir()
    return path.suffix == ""


__all__ = [
    "CompactionReport",
    "MANIFEST_NAME",
    "RetentionPolicy",
    "STORE_KIND",
    "STORE_SCHEMA_VERSION",
    "SegmentStore",
    "is_store_path",
]
