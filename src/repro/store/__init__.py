"""Segmented cache store: append-only JSONL segments + compaction.

The disk tier behind :class:`repro.exec.cache.ResultCache` when its
``path`` is a *directory*: workers append ``put``/``hit`` records to an
active segment in O(new entries) instead of rewriting a monolithic
JSON file, and a deterministic :meth:`SegmentStore.compact` folds the
log back down under a :class:`RetentionPolicy` (size / bytes / age,
keeping the most-frequently- and most-recently-hit entries).  See
:mod:`repro.store.store` for the on-disk layout and the determinism
contract, and :mod:`repro.store.segment` for the record format and
crash-safety story.

Usage::

    from repro.api import Engine

    engine = Engine(cache="cache_store")      # directory -> segment store
    engine.solve_batch(graphs)                # appends, never rewrites

    # maintenance (also: python -m repro cache compact|gc|segments)
    from repro.store import RetentionPolicy, SegmentStore
    store = SegmentStore("cache_store")
    store.compact(RetentionPolicy(max_entries=10_000))
"""

from .segment import ACTIVE_SEGMENT, SEGMENT_SUFFIX, read_segment
from .store import (
    MANIFEST_NAME,
    STORE_KIND,
    STORE_SCHEMA_VERSION,
    CompactionReport,
    RetentionPolicy,
    SegmentStore,
    is_store_path,
)

__all__ = [
    "ACTIVE_SEGMENT",
    "CompactionReport",
    "MANIFEST_NAME",
    "RetentionPolicy",
    "SEGMENT_SUFFIX",
    "STORE_KIND",
    "STORE_SCHEMA_VERSION",
    "SegmentStore",
    "is_store_path",
    "read_segment",
]
