"""JSONL segment records: the append-only unit of the cache store.

A segment is a plain-text file of newline-terminated JSON records, one
per line, in the spirit of pod's accountable append-only log: writers
only ever *append*, so persisting a new cache entry is O(1) in the
size of the store instead of a rewrite of the world.  Two record kinds
exist:

``put``
    ``{"digest": d, "entry": {...}, "hits": h, "op": "put", "ts": t}``
    — a cache entry keyed by its :meth:`~repro.exec.cache.CacheKey.
    digest`.  ``hits`` carries accumulated hit counts forward through
    compaction; a fresh insert writes ``hits = 0``.

``hit``
    ``{"count": k, "digest": d, "op": "hit", "ts": t}`` — ``k`` cache
    hits against an entry persisted earlier.  Pure metadata: it never
    resurrects a dropped entry, but it is what lets the retention
    policy keep the most-frequently / most-recently used entries.

Records are encoded canonically (sorted keys, no whitespace), so a
segment's bytes are a pure function of its record sequence — the
property :meth:`repro.store.store.SegmentStore.compact` leans on for
byte-identical deterministic output.

Crash safety: an append is one ``write()`` of a newline-terminated
line.  A crash mid-append leaves a *truncated tail line* (no trailing
newline, or unparsable bytes at EOF); :func:`read_segment` in lenient
mode drops exactly that tail and reports it, so a crashed worker's
store opens clean with every complete record intact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional, Union

from ..errors import AlgorithmError

#: Suffix every segment file (sealed and active) carries.
SEGMENT_SUFFIX = ".jsonl"

#: The mutable segment new records are appended to.  Not listed in the
#: manifest — its presence is implicit and it is folded in last.
ACTIVE_SEGMENT = "active" + SEGMENT_SUFFIX


def encode_record(record: dict) -> str:
    """One canonical JSONL line (newline-terminated) for ``record``."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def put_record(
    digest: str, entry: dict, *, ts: float, hits: int = 0
) -> dict:
    return {"digest": digest, "entry": entry, "hits": hits, "op": "put", "ts": ts}


def hit_record(digest: str, *, count: int, ts: float) -> dict:
    return {"count": count, "digest": digest, "op": "hit", "ts": ts}


def validate_record(record: object, where: str) -> dict:
    """Check one decoded record's shape; raise :class:`AlgorithmError`."""
    if not isinstance(record, dict):
        raise AlgorithmError(f"{where}: record is not an object: {record!r}")
    op = record.get("op")
    if op not in ("put", "hit"):
        raise AlgorithmError(f"{where}: unknown record op {op!r}")
    if not isinstance(record.get("digest"), str) or not record["digest"]:
        raise AlgorithmError(f"{where}: record has no digest")
    if not isinstance(record.get("ts"), (int, float)):
        raise AlgorithmError(f"{where}: record has no timestamp")
    if op == "put":
        if not isinstance(record.get("entry"), dict):
            raise AlgorithmError(f"{where}: put record has no entry object")
        if not isinstance(record.get("hits"), int) or record["hits"] < 0:
            raise AlgorithmError(f"{where}: put record has a bad hits count")
    else:
        if not isinstance(record.get("count"), int) or record["count"] < 1:
            raise AlgorithmError(f"{where}: hit record has a bad count")
    return record


def read_segment(
    path: Union[str, Path], *, lenient_tail: bool = False
) -> tuple[list[dict], Optional[int]]:
    """Decode one segment file into its records.

    Returns ``(records, truncated_at)``.  With ``lenient_tail`` (the
    *active* segment — the only file a crash can leave half-written) a
    final line that is missing its newline or fails to parse is
    dropped and its byte offset returned, so the caller can repair the
    file by truncating it there.  Sealed segments are read strictly:
    they were written atomically, so any damage means the file is not
    ours and silently dropping records would corrupt the store.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise AlgorithmError(f"cannot read segment {path}: {exc}") from exc
    records: list[dict] = []
    offset = 0
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        is_tail = newline < 0
        line = blob[offset:] if is_tail else blob[offset:newline]
        where = f"segment {path.name} @ byte {offset}"
        try:
            decoded = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            decoded = None
        if decoded is None or is_tail:
            # No trailing newline, or undecodable bytes: a crash
            # mid-append if (and only if) this is the file's tail.
            if lenient_tail and (is_tail or newline == len(blob) - 1):
                return records, offset
            raise AlgorithmError(
                f"{where}: truncated or corrupt record"
                + ("" if is_tail else f" {line[:80]!r}")
            )
        records.append(validate_record(decoded, where))
        offset = newline + 1
    return records, None


def append_lines(path: Union[str, Path], lines: Iterable[str]) -> int:
    """Append encoded lines to ``path`` (one write), returning bytes added."""
    blob = "".join(lines).encode("utf-8")
    if not blob:
        return 0
    with open(path, "ab") as handle:
        handle.write(blob)
    return len(blob)


def segment_name(content: bytes) -> str:
    """Content-addressed name for a sealed segment.

    Naming sealed segments by their content hash makes compaction
    idempotent at the *file* level too: re-compacting an already
    compacted store produces the same bytes, hence the same name, and
    the store's layout is observably unchanged.
    """
    return f"seg-{hashlib.sha256(content).hexdigest()[:16]}{SEGMENT_SUFFIX}"


__all__ = [
    "ACTIVE_SEGMENT",
    "SEGMENT_SUFFIX",
    "append_lines",
    "encode_record",
    "hit_record",
    "put_record",
    "read_segment",
    "segment_name",
    "validate_record",
]
