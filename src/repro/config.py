"""One typed schema for every operational knob in :mod:`repro`.

This module is the single source of truth for how the engine, the
service (``repro serve``), and the remote executor are configured.  It
was grown out of ROADMAP item 5's observation that each subsystem had
sprouted its own layer of flags and environment variables: the knobs
now live in three frozen dataclasses with typed defaults, loadable
from a config file as well as flags and env.

Precedence — one rule, applied everywhere::

    explicit argument  >  CLI flag  >  environment  >  config file  >  default

* *explicit argument* — a keyword passed to ``Engine(...)``,
  ``RemoteExecutor(...)``, ``create_server(...)``: always wins.
* *CLI flag* — ``repro --config repro.toml serve --port 9000`` serves
  on 9000 regardless of what the file says.  Flags are overlaid via
  :meth:`ReproConfig.merged`.
* *environment* — the historical variables (``$REPRO_BACKEND``,
  ``$REPRO_COST_PROFILE``, ``$REPRO_CONFIG``) overlay the file at
  :func:`load_config` time.  ``$REPRO_REMOTE_WORKERS`` still works as
  a deprecated compat shim, resolved inside
  :class:`~repro.exec.remote.RemoteExecutor` (it only applies when no
  config supplies workers, and warns).
* *config file* — TOML (``repro.toml``) or JSON, with ``[engine]``,
  ``[serve]``, ``[remote]`` and ``[cache]`` sections.  Unknown
  sections or keys are a :class:`~repro.errors.ConfigError`, not a
  silent ignore.
* *default* — the dataclass field defaults below.

Example ``repro.toml``::

    [engine]
    backend = "remote"
    cache = "sweep_cache.json"     # or `cache = true` for in-memory

    [remote]
    manager = "http://127.0.0.1:8100"   # health-driven discovery
    dispatch = "stream"                 # max-of-shards latency

    [serve]
    port = 8101
    queue_depth = 16                    # backpressure: 429 past this
    server = "async"

    [cache]
    max_entries = 10000                 # retention bound for `cache compact`
    max_age = 604800.0                  # drop entries idle > 7 days

Consumers: :meth:`repro.api.engine.Engine.from_config`,
``repro serve`` (via :meth:`repro.service.server.ServiceConfig`), and
:meth:`repro.exec.remote.RemoteExecutor.from_config`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .errors import ConfigError

#: Environment variable naming a config file to load when no ``--config``
#: flag / explicit path is given.
REPRO_CONFIG_ENV = "REPRO_CONFIG"

_BACKEND_ENV = "REPRO_BACKEND"
_COST_PROFILE_ENV = "REPRO_COST_PROFILE"
_CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"
_CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
_CACHE_MAX_AGE_ENV = "REPRO_CACHE_MAX_AGE"


@dataclass(frozen=True)
class EngineConfig:
    """Defaults for :class:`~repro.api.engine.Engine` sessions.

    ``cache`` accepts three forms: ``None``/``false`` (no cache),
    ``true`` (fresh in-memory cache) or a path string (disk-backed).
    """

    backend: Optional[str] = None
    solver: str = "auto"
    epsilon: Optional[float] = None
    mode: str = "reference"
    seed: int = 0
    budget: Optional[int] = None
    cache: Union[bool, str, None] = None
    cost_profile: Optional[str] = None


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one ``repro serve`` process.

    ``server`` selects the transport: ``"async"`` (asyncio event loop,
    bounded dispatch pool, connection reuse — the tail-latency path) or
    ``"threading"`` (the historical thread-per-connection server).
    ``queue_depth`` bounds requests queued or running on the solver
    path; past it the service answers a structured 429 telling clients
    to retry after ``retry_after`` seconds.  ``delay`` injects that
    many seconds of sleep per task solved — a straggler-worker knob for
    benchmarks and CI, never set in production.  ``register`` points at
    a pool-manager service the worker should heartbeat its
    ``advertise`` URL to every ``heartbeat`` seconds; ``worker_ttl`` is
    how long *this* server keeps a registered worker listed without a
    fresh heartbeat.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    server: str = "async"
    pool_workers: Optional[int] = None
    queue_depth: Optional[int] = 32
    retry_after: float = 1.0
    delay: float = 0.0
    max_nodes: Optional[int] = 4096
    max_batch: Optional[int] = 256
    max_body_bytes: Optional[int] = 32 * 1024 * 1024
    max_sessions: Optional[int] = 32
    backend: Optional[str] = None
    cost_profile: Optional[str] = None
    cache_file: Optional[str] = None
    warm_start: tuple = ()
    access_log: Optional[str] = None
    register: Optional[str] = None
    advertise: Optional[str] = None
    heartbeat: float = 5.0
    worker_ttl: float = 15.0


@dataclass(frozen=True)
class RemoteConfig:
    """Knobs for the ``remote`` backend's worker pool.

    Membership comes from exactly one of: ``manager`` (a pool-manager
    URL polled for its live ``/workers`` list — health-driven, workers
    join and leave without restarts) or ``workers`` (a static URL
    list).  ``dispatch`` selects ``"stream"`` (chunked dispatch with
    mid-sweep re-packing; batch latency is max-of-shards) or
    ``"block"`` (the historical one-shard-per-worker fan-out).
    """

    workers: tuple = ()
    manager: Optional[str] = None
    timeout: float = 300.0
    max_shard: Optional[int] = None
    plan: str = "cost"
    dispatch: str = "stream"
    health_interval: float = 1.0


@dataclass(frozen=True)
class CacheConfig:
    """Retention bounds for cache-store compaction (``repro cache``).

    ``None`` means *unbounded* along that axis.  ``max_age`` is in
    seconds, measured against the store's newest record timestamp (not
    the wall clock) so compaction stays deterministic.  These are the
    file/env layer behind ``repro cache compact``'s ``--max-entries``
    / ``--max-bytes`` / ``--max-age`` flags.
    """

    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    max_age: Optional[float] = None


@dataclass(frozen=True)
class ReproConfig:
    """The four sections plus the path they were loaded from."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    remote: RemoteConfig = field(default_factory=RemoteConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    source: Optional[str] = None

    def merged(
        self, engine=None, serve=None, remote=None, cache=None
    ) -> "ReproConfig":
        """Overlay per-section updates, skipping ``None`` values.

        This is the *CLI flag* layer of the precedence rule: flags that
        were not given arrive as ``None`` and leave the underlying
        (env/file/default) value untouched.
        """
        return ReproConfig(
            engine=_overlay(self.engine, engine or {}, "engine"),
            serve=_overlay(self.serve, serve or {}, "serve"),
            remote=_overlay(self.remote, remote or {}, "remote"),
            cache=_overlay(self.cache, cache or {}, "cache"),
            source=self.source,
        )

    def to_dict(self) -> dict:
        """The effective configuration as plain JSON-able data."""
        payload = {
            "engine": dataclasses.asdict(self.engine),
            "serve": dataclasses.asdict(self.serve),
            "remote": dataclasses.asdict(self.remote),
            "cache": dataclasses.asdict(self.cache),
            "source": self.source,
        }
        payload["serve"]["warm_start"] = list(self.serve.warm_start)
        payload["remote"]["workers"] = list(self.remote.workers)
        return payload


# -- field validation -----------------------------------------------------


def _opt(check):
    def inner(name, value):
        return None if value is None else check(name, value)

    return inner


def _str(name, value):
    if not isinstance(value, str) or not value:
        raise ConfigError(f"{name} must be a non-empty string, got {value!r}")
    return value


def _int(name, value):
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    return value


def _float(name, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    return float(value)


def _bool(name, value):
    if not isinstance(value, bool):
        raise ConfigError(f"{name} must be a boolean, got {value!r}")
    return value


def _cache(name, value):
    if value is None or isinstance(value, bool):
        return value
    return _str(name, value)


def _url_list(name, value):
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",") if part.strip()]
    if not isinstance(value, (list, tuple)):
        raise ConfigError(
            f"{name} must be a list of URLs (or a comma-separated "
            f"string), got {value!r}"
        )
    return tuple(_str(f"{name}[{i}]", url).rstrip("/") for i, url in enumerate(value))


def _choice(*allowed):
    def inner(name, value):
        if value not in allowed:
            raise ConfigError(
                f"{name} must be one of {', '.join(map(repr, allowed))}, "
                f"got {value!r}"
            )
        return value

    return inner


def _paths(name, value):
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)):
        raise ConfigError(f"{name} must be a path or list of paths, got {value!r}")
    return tuple(_str(f"{name}[{i}]", p) for i, p in enumerate(value))


_ENGINE_FIELDS = {
    "backend": _opt(_str),
    "solver": _str,
    "epsilon": _opt(_float),
    "mode": _choice("reference", "congest"),
    "seed": _int,
    "budget": _opt(_int),
    "cache": _cache,
    "cost_profile": _opt(_str),
}

_SERVE_FIELDS = {
    "host": _str,
    "port": _int,
    "server": _choice("async", "threading"),
    "pool_workers": _opt(_int),
    "queue_depth": _opt(_int),
    "retry_after": _float,
    "delay": _float,
    "max_nodes": _opt(_int),
    "max_batch": _opt(_int),
    "max_body_bytes": _opt(_int),
    "max_sessions": _opt(_int),
    "backend": _opt(_str),
    "cost_profile": _opt(_str),
    "cache_file": _opt(_str),
    "warm_start": _paths,
    "access_log": _opt(_str),
    "register": _opt(_str),
    "advertise": _opt(_str),
    "heartbeat": _float,
    "worker_ttl": _float,
}

_REMOTE_FIELDS = {
    "workers": _url_list,
    "manager": _opt(_str),
    "timeout": _float,
    "max_shard": _opt(_int),
    "plan": _choice("cost", "stripe"),
    "dispatch": _choice("stream", "block"),
    "health_interval": _float,
}

_CACHE_FIELDS = {
    "max_entries": _opt(_int),
    "max_bytes": _opt(_int),
    "max_age": _opt(_float),
}

_SECTIONS = {
    "engine": (EngineConfig, _ENGINE_FIELDS),
    "serve": (ServeConfig, _SERVE_FIELDS),
    "remote": (RemoteConfig, _REMOTE_FIELDS),
    "cache": (CacheConfig, _CACHE_FIELDS),
}


def _overlay(section, updates: dict, section_name: str):
    """Apply non-``None`` ``updates`` onto a section dataclass, typed."""
    _, fields = _SECTIONS[section_name]
    cleaned = {}
    for key, value in updates.items():
        if key not in fields:
            raise ConfigError(
                f"unknown config key {section_name}.{key} "
                f"(allowed: {', '.join(sorted(fields))})"
            )
        if value is None:
            continue
        cleaned[key] = fields[key](f"{section_name}.{key}", value)
    return dataclasses.replace(section, **cleaned) if cleaned else section


def _parse_file(path: Path) -> dict:
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path}: {exc}") from None
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            return tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ConfigError(f"config file {path} is not valid TOML: {exc}") from None
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConfigError(f"config file {path} is not valid JSON: {exc}") from None


def _env_number(name: str, kind):
    """Parse a numeric environment variable, or ``None`` when unset."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return kind(raw)
    except ValueError:
        raise ConfigError(
            f"${name} must be {'an integer' if kind is int else 'a number'}, "
            f"got {raw!r}"
        ) from None


def load_config(
    path: Union[str, Path, None] = None, *, env: bool = True
) -> ReproConfig:
    """Build the effective :class:`ReproConfig` (file + env layers).

    ``path=None`` consults ``$REPRO_CONFIG``; when that is unset too,
    the result is defaults plus the env layer.  The CLI-flag layer is
    the caller's job (:meth:`ReproConfig.merged`); explicit API
    arguments sit above everything, per the module precedence rule.
    """
    if path is None and env:
        path = os.environ.get(REPRO_CONFIG_ENV) or None
    sections: dict = {}
    source = None
    if path is not None:
        file_path = Path(path)
        data = _parse_file(file_path)
        if not isinstance(data, dict):
            raise ConfigError(
                f"config file {file_path} must hold an object with "
                f"[engine]/[serve]/[remote] sections, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_SECTIONS))
        if unknown:
            raise ConfigError(
                f"unknown config section(s) {', '.join(map(repr, unknown))} "
                f"in {file_path} (allowed: {', '.join(sorted(_SECTIONS))})"
            )
        for name, body in data.items():
            if not isinstance(body, dict):
                raise ConfigError(
                    f"config section [{name}] must be a table/object, "
                    f"got {type(body).__name__}"
                )
            sections[name] = body
        source = str(file_path)
    config = ReproConfig(source=source).merged(
        engine=sections.get("engine"),
        serve=sections.get("serve"),
        remote=sections.get("remote"),
        cache=sections.get("cache"),
    )
    if env:
        config = config.merged(
            engine={
                "backend": os.environ.get(_BACKEND_ENV) or None,
                "cost_profile": os.environ.get(_COST_PROFILE_ENV) or None,
            },
            cache={
                "max_entries": _env_number(_CACHE_MAX_ENTRIES_ENV, int),
                "max_bytes": _env_number(_CACHE_MAX_BYTES_ENV, int),
                "max_age": _env_number(_CACHE_MAX_AGE_ENV, float),
            },
        )
    return config


__all__ = [
    "REPRO_CONFIG_ENV",
    "CacheConfig",
    "EngineConfig",
    "RemoteConfig",
    "ReproConfig",
    "ServeConfig",
    "load_config",
]
