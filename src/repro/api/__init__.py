"""Unified min-cut API: solver registry, canonical result, façade.

This package is the single programmatic surface over every minimum-cut
algorithm in the library — the paper's exact and (1+ε) algorithms and
all baselines::

    from repro.api import solve, solve_all, CutResult

    result = solve(graph)                      # auto-picked exact solver
    result = solve(graph, solver="matula", epsilon=0.25)
    assert result.matches(graph)               # re-verify the witness

Modules
-------
:mod:`~repro.api.result`
    :class:`CutResult` — the canonical frozen result every solver
    returns, with ``verify(graph)`` recomputing the witness cut value.
:mod:`~repro.api.registry`
    :class:`SolverRegistry` / :class:`SolverSpec` / ``@register_solver``
    — capability metadata (kind, guarantee, congest support, …).
:mod:`~repro.api.solvers`
    The built-in adapters (imported lazily via
    :func:`default_registry` to avoid import cycles with the algorithm
    modules).
:mod:`~repro.api.engine`
    :class:`Engine` — the configurable session object owning registry,
    backend, cache and budget policy, with ``solve``/``solve_all``/
    ``solve_batch``/``compare`` methods plus the task plane
    (``build_batch_tasks``/``solve_tasks``) and cache warm-start.
:mod:`~repro.api.facade`
    ``solve`` / ``solve_all`` / ``solve_batch`` — thin delegations to
    the process-wide default engine (:func:`default_engine`).
"""

from .engine import Engine, default_engine
from .facade import solve, solve_all, solve_batch
from .registry import (
    DEFAULT_REGISTRY,
    GUARANTEE_RANK,
    SOLVER_KINDS,
    SolverRegistry,
    SolverSpec,
    default_registry,
    has_integer_weights,
    register_solver,
)
from .result import CutResult

__all__ = [
    "CutResult",
    "DEFAULT_REGISTRY",
    "Engine",
    "default_engine",
    "GUARANTEE_RANK",
    "SOLVER_KINDS",
    "SolverRegistry",
    "SolverSpec",
    "default_registry",
    "has_integer_weights",
    "register_solver",
    "solve",
    "solve_all",
    "solve_batch",
]
