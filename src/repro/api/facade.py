"""The programmatic façade: ``solve`` / ``solve_all`` / ``solve_batch``.

One stable entry point over every registered min-cut solver::

    from repro.api import solve

    result = solve(graph)                       # auto-picked exact solver
    result = solve(graph, solver="stoer_wagner")
    result = solve(graph, epsilon=0.25)         # auto-picked (1+eps) solver
    result = solve(graph, solver="exact", mode="congest")

Every call returns a canonical :class:`~repro.api.result.CutResult`
stamped with the solver name, guarantee class, seed and wall time, so
downstream consumers (CLI, comparison tables, benchmarks, the
:mod:`repro.service` HTTP layer) never touch per-algorithm result
types.

These module-level functions are **thin delegations to the default
:class:`~repro.api.engine.Engine`** (:func:`repro.api.default_engine`):
the engine is the session object that owns registry, backend, cache
and budget policy, and this module keeps the historic per-call-kwarg
surface stable on top of it.  Every knob accepted here — ``backend=``
(``"serial"``/``"thread"``/``"process"``/``"remote"`` or an
:class:`~repro.exec.backends.Executor`, default from
``$REPRO_BACKEND``), ``cache=`` (a
:class:`~repro.exec.cache.ResultCache`), ``registry=``, ``budget=`` —
forwards verbatim, with unset values falling back to the default
engine's configuration; long-lived callers should construct their own
:class:`~repro.api.engine.Engine` instead of re-passing kwargs.

``solve_all`` runs every applicable solver on one graph (the compare
workload); ``solve_batch`` maps ``solve`` over many graphs (the sweep
workload).  Per-task seeds are frozen up front and all backends run
the identical task path, so parallelism (including remote sharding)
only changes wall time, never results.  Cache-enabled results carry
``extras["cache"]`` with the hit flag and the cache's running hit/miss
counters.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from ..exec.backends import Executor
from ..exec.cache import ResultCache
from ..graphs.graph import WeightedGraph
from .engine import _UNSET, default_engine
from .registry import SolverRegistry
from .result import CutResult

Backend = Union[str, Executor, None]


def solve(
    graph: WeightedGraph,
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    cache: Optional[ResultCache] = None,
    **options: Any,
) -> CutResult:
    """Compute a minimum cut of ``graph`` with one registered solver.

    Parameters
    ----------
    solver:
        A registry name (see ``python -m repro solvers``) or ``"auto"``:
        with ``epsilon`` unset the strongest applicable *exact* solver is
        chosen; with ``epsilon`` set the strongest applicable *approx*
        solver (capability filters remove solvers that cannot run on the
        instance — e.g. integer-weight samplers on fractional graphs, or
        brute force beyond its node limit).
    epsilon:
        Approximation parameter forwarded to approximate solvers
        (default 0.5 when such a solver runs without one).
    mode:
        ``"reference"`` (centralized) or ``"congest"`` (simulated
        CONGEST execution with round accounting, for solvers that
        support it).
    seed / budget:
        ``seed`` is the determinism knob.  ``budget`` has two readings:
        with a *named* solver it is that solver's effort cap (packing
        trees, contraction repetitions, sampling rate steps — per-solver
        meaning is listed in the registry summary); with
        ``solver="auto"`` it is an **expected-cost ceiling** in the
        registry's cost units — the policy consults each candidate's
        registered cost model and skips solvers too expensive for this
        instance before running anything (falling back to the cheapest
        candidate when nothing fits), and the chosen solver then runs at
        its default effort.
    cache:
        Optional :class:`repro.exec.ResultCache`.  The key covers the
        graph content hash and every knob (resolved solver name, epsilon,
        mode, seed, budget, options); on a hit the stored result is
        returned without running the solver.  Cache-enabled results
        carry ``extras["cache"] = {"hit": bool, "hits": int,
        "misses": int}``.
    options:
        Extra keyword arguments forwarded verbatim to the solver adapter
        (e.g. ``tree_count=...`` for the packing solvers).
    """
    return default_engine().solve(
        graph,
        solver,
        epsilon=epsilon,
        mode=mode,
        seed=seed,
        budget=budget,
        registry=registry,
        cache=cache if cache is not None else _UNSET,
        **options,
    )


def solve_all(
    graph: WeightedGraph,
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    include_heavy: bool = False,
    registry: Optional[SolverRegistry] = None,
    backend: Backend = None,
    cache: Optional[ResultCache] = None,
) -> list[CutResult]:
    """Run every applicable registered solver on ``graph``.

    Solvers are filtered by capability (node limits, congest support,
    integer weights), by ``kinds``/``names`` when given, and — unless
    ``include_heavy`` — by the ``heavy`` flag (full CONGEST pipelines).
    Results come back in registration order.

    ``names`` is an explicit selection: unknown names raise
    :class:`~repro.errors.AlgorithmError` and the ``heavy`` filter is
    bypassed (you asked for them by name); capability filters still
    apply, so compare the returned solvers against your request to see
    what was skipped as inapplicable.

    ``backend`` fans the per-solver runs out through
    :mod:`repro.exec` (``"serial"``/``"thread"``/``"process"``/
    ``"remote"``, default from ``$REPRO_BACKEND``); ``cache``
    short-circuits solvers whose result for this exact instance and
    knob set is already known.
    """
    return default_engine().solve_all(
        graph,
        epsilon=epsilon,
        mode=mode,
        seed=seed,
        budget=budget,
        kinds=kinds,
        names=names,
        include_heavy=include_heavy,
        registry=registry,
        backend=backend if backend is not None else _UNSET,
        cache=cache if cache is not None else _UNSET,
    )


def solve_batch(
    graphs: Iterable[WeightedGraph],
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    backend: Backend = None,
    cache: Optional[ResultCache] = None,
    **options: Any,
) -> list[CutResult]:
    """``solve`` mapped over many graphs (one result per graph, in order).

    Each graph gets seed ``seed + index`` so batch runs are deterministic
    yet not correlated across instances — and because every task's seed
    is frozen before dispatch, the ``backend`` knob (``"serial"``,
    ``"thread"``, ``"process"``, ``"remote"``; default from
    ``$REPRO_BACKEND``) never changes the results, only the wall time.

    With ``solver="auto"``, ``budget`` is the expected-cost ceiling the
    per-graph selection trades on (see :func:`solve`) and is not
    forwarded to the chosen solvers; a named solver receives it as its
    effort cap, as before.

    ``graphs`` may be any iterable (it is materialised exactly once), and
    a failure anywhere raises :class:`~repro.errors.AlgorithmError`
    naming the offending graph index instead of bubbling a bare
    mid-batch error; results completed before the failure are still
    written to ``cache``.  ``cache`` is consulted per task before
    dispatch — because the key includes the per-index seed, replaying a
    batch hits (same instance, same index/seed), but a duplicate graph
    *within* a batch sits at a different index, gets a different seed,
    and recomputes.
    """
    return default_engine().solve_batch(
        graphs,
        solver,
        epsilon=epsilon,
        mode=mode,
        seed=seed,
        budget=budget,
        registry=registry,
        backend=backend if backend is not None else _UNSET,
        cache=cache if cache is not None else _UNSET,
        **options,
    )


__all__ = ["solve", "solve_all", "solve_batch"]
