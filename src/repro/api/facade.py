"""The programmatic façade: ``solve`` / ``solve_all`` / ``solve_batch``.

One stable entry point over every registered min-cut solver::

    from repro.api import solve

    result = solve(graph)                       # auto-picked exact solver
    result = solve(graph, solver="stoer_wagner")
    result = solve(graph, epsilon=0.25)         # auto-picked (1+eps) solver
    result = solve(graph, solver="exact", mode="congest")

Every call returns a canonical :class:`~repro.api.result.CutResult`
stamped with the solver name, guarantee class, seed and wall time, so
downstream consumers (CLI, comparison tables, benchmarks, the
:mod:`repro.service` HTTP layer) never touch per-algorithm result
types.  The service layer is a thin shell over exactly these three
entry points: a ``POST /solve`` body is one :func:`solve` call, a
``POST /solve_batch`` body one :func:`solve_batch` call whose graphs
become :class:`~repro.exec.task.SolveTask` fan-out on the same
backends, with the server's shared cache passed as ``cache=``.

``solve_all`` runs every applicable solver on one graph (the compare
workload); ``solve_batch`` maps ``solve`` over many graphs (the sweep
workload).  Both take a ``backend=`` knob — ``"serial"`` (default),
``"thread"`` or ``"process"``, with the ``REPRO_BACKEND`` environment
variable supplying the default — that fans the work out through
:mod:`repro.exec` without changing results: per-task seeds are frozen
up front and all backends run the identical task path, so parallelism
only changes wall time.

All three entry points also take ``cache=`` — a
:class:`repro.exec.ResultCache` keyed on the graph's canonical content
hash plus every solver knob.  Hits skip the solver entirely and every
cache-enabled result carries ``extras["cache"]`` with the hit flag and
the cache's running hit/miss counters.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Iterable, Optional, Sequence, Union

from ..errors import AlgorithmError, ReproError
from ..exec.backends import Executor, resolve_backend
from ..exec.cache import CacheKey, ResultCache
from ..exec.task import SolveTask
from ..graphs.graph import WeightedGraph
from .registry import SolverRegistry, SolverSpec, default_registry
from .result import CutResult

Backend = Union[str, Executor, None]


def solve(
    graph: WeightedGraph,
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    cache: Optional[ResultCache] = None,
    **options: Any,
) -> CutResult:
    """Compute a minimum cut of ``graph`` with one registered solver.

    Parameters
    ----------
    solver:
        A registry name (see ``python -m repro solvers``) or ``"auto"``:
        with ``epsilon`` unset the strongest applicable *exact* solver is
        chosen; with ``epsilon`` set the strongest applicable *approx*
        solver (capability filters remove solvers that cannot run on the
        instance — e.g. integer-weight samplers on fractional graphs, or
        brute force beyond its node limit).
    epsilon:
        Approximation parameter forwarded to approximate solvers
        (default 0.5 when such a solver runs without one).
    mode:
        ``"reference"`` (centralized) or ``"congest"`` (simulated
        CONGEST execution with round accounting, for solvers that
        support it).
    seed / budget:
        ``seed`` is the determinism knob.  ``budget`` has two readings:
        with a *named* solver it is that solver's effort cap (packing
        trees, contraction repetitions, sampling rate steps — per-solver
        meaning is listed in the registry summary); with
        ``solver="auto"`` it is an **expected-cost ceiling** in the
        registry's cost units — the policy consults each candidate's
        registered cost model and skips solvers too expensive for this
        instance before running anything (falling back to the cheapest
        candidate when nothing fits), and the chosen solver then runs at
        its default effort.
    cache:
        Optional :class:`repro.exec.ResultCache`.  The key covers the
        graph content hash and every knob (resolved solver name, epsilon,
        mode, seed, budget, options); on a hit the stored result is
        returned without running the solver.  Cache-enabled results
        carry ``extras["cache"] = {"hit": bool, "hits": int,
        "misses": int}``.
    options:
        Extra keyword arguments forwarded verbatim to the solver adapter
        (e.g. ``tree_count=...`` for the packing solvers).
    """
    registry = registry if registry is not None else default_registry()
    graph.require_connected()
    spec = _resolve_spec(
        registry, graph, solver, mode=mode, epsilon=epsilon, budget=budget
    )
    if solver == "auto":
        budget = None  # consumed by selection; the pick runs at default effort
    key = None
    if cache is not None:
        key = CacheKey.for_solve(
            graph, spec.name, epsilon=epsilon, mode=mode, seed=seed,
            budget=budget, options=options,
        )
        hit = cache.get(key)
        if hit is not None:
            return _stamp_cache(hit, cache, hit=True)
    result = _run(
        spec, graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget,
        **options,
    )
    if cache is not None:
        cache.put(key, result)
        result = _stamp_cache(result, cache, hit=False)
    return result


def solve_all(
    graph: WeightedGraph,
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    include_heavy: bool = False,
    registry: Optional[SolverRegistry] = None,
    backend: Backend = None,
    cache: Optional[ResultCache] = None,
) -> list[CutResult]:
    """Run every applicable registered solver on ``graph``.

    Solvers are filtered by capability (node limits, congest support,
    integer weights), by ``kinds``/``names`` when given, and — unless
    ``include_heavy`` — by the ``heavy`` flag (full CONGEST pipelines).
    Results come back in registration order.

    ``names`` is an explicit selection: unknown names raise
    :class:`~repro.errors.AlgorithmError` and the ``heavy`` filter is
    bypassed (you asked for them by name); capability filters still
    apply, so compare the returned solvers against your request to see
    what was skipped as inapplicable.

    ``backend`` fans the per-solver runs out through
    :mod:`repro.exec` (``"serial"``/``"thread"``/``"process"``, default
    from ``$REPRO_BACKEND``); ``cache`` short-circuits solvers whose
    result for this exact instance and knob set is already known.
    """
    registry = registry if registry is not None else default_registry()
    graph.require_connected()
    kind_filter = tuple(kinds) if kinds is not None else None
    if names is not None:
        requested = {name: registry.get(name) for name in names}  # validates
        specs = [
            spec
            for spec in registry
            if spec.name in requested
            and (kind_filter is None or spec.kind in kind_filter)
            and spec.applicable(graph, mode=mode, epsilon=epsilon)
        ]
    else:
        specs = registry.applicable(
            graph, mode=mode, epsilon=epsilon, kinds=kind_filter,
            include_heavy=include_heavy,
        )
    tasks = [
        SolveTask(
            graph=graph,
            solver=spec.name,
            epsilon=epsilon,
            mode=mode,
            seed=seed,
            budget=budget,
            label=f"solver {spec.name!r}",
        )
        for spec in specs
    ]
    return _execute(tasks, backend=backend, registry=registry, cache=cache)


def solve_batch(
    graphs: Iterable[WeightedGraph],
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    backend: Backend = None,
    cache: Optional[ResultCache] = None,
    **options: Any,
) -> list[CutResult]:
    """``solve`` mapped over many graphs (one result per graph, in order).

    Each graph gets seed ``seed + index`` so batch runs are deterministic
    yet not correlated across instances — and because every task's seed
    is frozen before dispatch, the ``backend`` knob (``"serial"``,
    ``"thread"``, ``"process"``; default from ``$REPRO_BACKEND``) never
    changes the results, only the wall time.

    With ``solver="auto"``, ``budget`` is the expected-cost ceiling the
    per-graph selection trades on (see :func:`solve`) and is not
    forwarded to the chosen solvers; a named solver receives it as its
    effort cap, as before.

    ``graphs`` may be any iterable (it is materialised exactly once), and
    a failure anywhere raises :class:`~repro.errors.AlgorithmError`
    naming the offending graph index instead of bubbling a bare
    mid-batch error; results completed before the failure are still
    written to ``cache``.  ``cache`` is consulted per task before
    dispatch — because the key includes the per-index seed, replaying a
    batch hits (same instance, same index/seed), but a duplicate graph
    *within* a batch sits at a different index, gets a different seed,
    and recomputes.
    """
    registry = registry if registry is not None else default_registry()
    task_budget = None if solver == "auto" else budget
    tasks = []
    for index, graph in enumerate(graphs):
        try:
            graph.require_connected()
            spec = _resolve_spec(
                registry, graph, solver, mode=mode, epsilon=epsilon,
                budget=budget,
            )
        except ReproError as exc:
            raise AlgorithmError(f"solve_batch: graph #{index}: {exc}") from exc
        tasks.append(
            SolveTask(
                graph=graph,
                solver=spec.name,
                epsilon=epsilon,
                mode=mode,
                seed=seed + index,
                budget=task_budget,
                options=tuple(sorted(options.items())),
                label=f"graph #{index}",
            )
        )
    return _execute(tasks, backend=backend, registry=registry, cache=cache)


def _resolve_spec(
    registry: SolverRegistry,
    graph: WeightedGraph,
    solver: str,
    *,
    mode: str,
    epsilon: Optional[float],
    budget: Optional[float] = None,
) -> SolverSpec:
    """Resolve ``solver`` (a name or ``"auto"``) to an applicable spec.

    ``budget`` only steers the auto policy (expected-cost ceiling); a
    named solver receives it as its effort cap instead.
    """
    if solver == "auto":
        return registry.select_auto(
            graph, mode=mode, epsilon=epsilon, budget=budget
        )
    spec = registry.get(solver)
    reason = spec.inapplicable_reason(graph, mode=mode, epsilon=epsilon)
    if reason is not None:
        raise AlgorithmError(reason)
    return spec


def _execute(
    tasks: list[SolveTask],
    *,
    backend: Backend,
    registry: SolverRegistry,
    cache: Optional[ResultCache],
) -> list[CutResult]:
    """Run tasks through the chosen backend, honouring the cache.

    Cache lookups and stores happen in the calling process (worker
    processes cannot share the cache object), so only misses are
    dispatched; results come back in task order either way.  Backends
    return failures as captured exceptions; with a cache attached every
    completed result is cached (memory + one disk flush) before the
    first failure — in task order — is raised, while without one the
    serial backend stops at the failure instead of computing results
    nobody will see.
    """
    executor = resolve_backend(backend)  # validate even if every task hits
    results: list[Optional[CutResult]] = [None] * len(tasks)
    if cache is not None:
        pending: list[tuple[int, SolveTask]] = []
        keys = {}
        for position, task in enumerate(tasks):
            key = task.cache_key()
            keys[position] = key
            hit = cache.get(key)
            if hit is not None:
                results[position] = _stamp_cache(hit, cache, hit=True)
            else:
                pending.append((position, task))
    else:
        pending = list(enumerate(tasks))
    if pending:
        computed = executor.run_tasks(
            [task for _, task in pending],
            registry=registry,
            keep_going=cache is not None,  # completed work is only worth
        )                                  # finishing if it can be cached
        failure: Optional[Exception] = None
        for (position, _task), outcome in zip(pending, computed):
            if isinstance(outcome, Exception):
                if failure is None:
                    failure = outcome
                continue
            if cache is not None:
                cache.put(keys[position], outcome, flush=False)
                outcome = _stamp_cache(outcome, cache, hit=False)
            results[position] = outcome
        if cache is not None:
            cache.flush()  # one disk write per batch, not per store
        if failure is not None:
            raise failure
    return results  # type: ignore[return-value]  (every slot is filled)


def _stamp_cache(
    result: CutResult, cache: ResultCache, *, hit: bool
) -> CutResult:
    """Surface the cache outcome and running counters in ``extras``."""
    extras = dict(result.extras)
    extras["cache"] = {"hit": hit, "hits": cache.hits, "misses": cache.misses}
    return replace(result, extras=extras)


def _run(
    spec: SolverSpec,
    graph: WeightedGraph,
    *,
    epsilon: Optional[float],
    mode: str,
    seed: int,
    budget: Optional[int],
    **options: Any,
) -> CutResult:
    started = time.perf_counter()
    raw = spec.run(
        graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget, **options
    )
    elapsed = time.perf_counter() - started
    return CutResult(
        value=raw.value,
        side=frozenset(raw.side),
        solver=spec.name,
        guarantee=spec.guarantee,
        seed=seed,
        metrics=raw.metrics,
        wall_time=elapsed,
        extras=dict(raw.extras),
    )


__all__ = ["solve", "solve_all", "solve_batch"]
