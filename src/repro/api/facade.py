"""The programmatic façade: ``solve`` / ``solve_all`` / ``solve_batch``.

One stable entry point over every registered min-cut solver::

    from repro.api import solve

    result = solve(graph)                       # auto-picked exact solver
    result = solve(graph, solver="stoer_wagner")
    result = solve(graph, epsilon=0.25)         # auto-picked (1+eps) solver
    result = solve(graph, solver="exact", mode="congest")

Every call returns a canonical :class:`~repro.api.result.CutResult`
stamped with the solver name, guarantee class, seed and wall time, so
downstream consumers (CLI, comparison tables, benchmarks, future
service layers) never touch per-algorithm result types.

``solve_all`` runs every applicable solver on one graph (the compare
workload); ``solve_batch`` maps ``solve`` over many graphs (the sweep
workload — the planned async/parallel backends slot in here without
changing the signature).
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Optional, Sequence

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph
from .registry import SolverRegistry, SolverSpec, default_registry
from .result import CutResult


def solve(
    graph: WeightedGraph,
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    **options: Any,
) -> CutResult:
    """Compute a minimum cut of ``graph`` with one registered solver.

    Parameters
    ----------
    solver:
        A registry name (see ``python -m repro solvers``) or ``"auto"``:
        with ``epsilon`` unset the strongest applicable *exact* solver is
        chosen; with ``epsilon`` set the strongest applicable *approx*
        solver (capability filters remove solvers that cannot run on the
        instance — e.g. integer-weight samplers on fractional graphs, or
        brute force beyond its node limit).
    epsilon:
        Approximation parameter forwarded to approximate solvers
        (default 0.5 when such a solver runs without one).
    mode:
        ``"reference"`` (centralized) or ``"congest"`` (simulated
        CONGEST execution with round accounting, for solvers that
        support it).
    seed / budget:
        Determinism knob and effort cap (packing trees, contraction
        repetitions, sampling rate steps — per-solver meaning is listed
        in the registry summary).
    options:
        Extra keyword arguments forwarded verbatim to the solver adapter
        (e.g. ``tree_count=...`` for the packing solvers).
    """
    registry = registry if registry is not None else default_registry()
    graph.require_connected()
    if solver == "auto":
        spec = registry.select_auto(graph, mode=mode, epsilon=epsilon)
    else:
        spec = registry.get(solver)
        reason = spec.inapplicable_reason(graph, mode=mode, epsilon=epsilon)
        if reason is not None:
            raise AlgorithmError(reason)
    return _run(spec, graph, epsilon=epsilon, mode=mode, seed=seed,
                budget=budget, **options)


def solve_all(
    graph: WeightedGraph,
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
    names: Optional[Sequence[str]] = None,
    include_heavy: bool = False,
    registry: Optional[SolverRegistry] = None,
) -> list[CutResult]:
    """Run every applicable registered solver on ``graph``.

    Solvers are filtered by capability (node limits, congest support,
    integer weights), by ``kinds``/``names`` when given, and — unless
    ``include_heavy`` — by the ``heavy`` flag (full CONGEST pipelines).
    Results come back in registration order.

    ``names`` is an explicit selection: unknown names raise
    :class:`~repro.errors.AlgorithmError` and the ``heavy`` filter is
    bypassed (you asked for them by name); capability filters still
    apply, so compare the returned solvers against your request to see
    what was skipped as inapplicable.
    """
    registry = registry if registry is not None else default_registry()
    graph.require_connected()
    kind_filter = tuple(kinds) if kinds is not None else None
    if names is not None:
        requested = {name: registry.get(name) for name in names}  # validates
        specs = [
            spec
            for spec in registry
            if spec.name in requested
            and (kind_filter is None or spec.kind in kind_filter)
            and spec.applicable(graph, mode=mode, epsilon=epsilon)
        ]
    else:
        specs = registry.applicable(
            graph, mode=mode, epsilon=epsilon, kinds=kind_filter,
            include_heavy=include_heavy,
        )
    return [
        _run(spec, graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget)
        for spec in specs
    ]


def solve_batch(
    graphs: Iterable[WeightedGraph],
    solver: str = "auto",
    *,
    epsilon: Optional[float] = None,
    mode: str = "reference",
    seed: int = 0,
    budget: Optional[int] = None,
    registry: Optional[SolverRegistry] = None,
    **options: Any,
) -> list[CutResult]:
    """``solve`` mapped over many graphs (one result per graph, in order).

    Each graph gets seed ``seed + index`` so batch runs are deterministic
    yet not correlated across instances.  This is the single choke point
    the ROADMAP's async/parallel backends will parallelize.
    """
    return [
        solve(
            graph,
            solver,
            epsilon=epsilon,
            mode=mode,
            seed=seed + index,
            budget=budget,
            registry=registry,
            **options,
        )
        for index, graph in enumerate(graphs)
    ]


def _run(
    spec: SolverSpec,
    graph: WeightedGraph,
    *,
    epsilon: Optional[float],
    mode: str,
    seed: int,
    budget: Optional[int],
    **options: Any,
) -> CutResult:
    started = time.perf_counter()
    raw = spec.run(
        graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget, **options
    )
    elapsed = time.perf_counter() - started
    return CutResult(
        value=raw.value,
        side=frozenset(raw.side),
        solver=spec.name,
        guarantee=spec.guarantee,
        seed=seed,
        metrics=raw.metrics,
        wall_time=elapsed,
        extras=dict(raw.extras),
    )


__all__ = ["solve", "solve_all", "solve_batch"]
