"""The Engine: a configurable session object over the solver registry.

Historically the module-level façade (``solve`` / ``solve_all`` /
``solve_batch``) threaded an ever-growing set of per-call kwargs —
``registry=``, ``backend=``, ``cache=``, ``budget=`` — through every
layer, and anything long-lived (the HTTP service, a benchmark sweep, a
shard router) had to re-pass them on every call.  :class:`Engine`
separates the *policy* object that owns those choices from the
per-request call:

    from repro.api import Engine
    from repro.exec import ResultCache

    engine = Engine(cache=ResultCache(path="results.json"),
                    backend="process", budget=50_000)
    result = engine.solve(graph)            # engine defaults apply
    results = engine.solve_batch(graphs)    # cached + process fan-out
    table = engine.compare(graph)           # ground truth first

Configuration precedence is uniform: **explicit call argument >
engine default > environment** (``$REPRO_BACKEND`` for the backend
knob).  The module-level façade functions are thin delegations to one
process-wide default engine (:func:`default_engine`), so the historic
surface keeps working unchanged — same signatures, same env fallbacks,
same results.

Engines also own the **task plane**: :meth:`Engine.build_batch_tasks`
freezes a batch call into :class:`~repro.exec.task.SolveTask` objects
(optionally with per-task seed/solver overrides — the wire form the
service layer and the ``remote`` backend exchange) and
:meth:`Engine.solve_tasks` runs any task list through the configured
backend and cache.  ``repro serve`` constructs an Engine per process;
a shard router is literally ``Engine(backend=RemoteExecutor([...]))``.

Cache warm-start rides on the same object: ``Engine(cache=path)``
opens a persistent cache in place, and :meth:`Engine.warm_start`
merges previously recorded cache files (e.g. the output of
``python -m repro cache merge``) so the first sweep already hits.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from ..errors import AlgorithmError, ReproError
from ..exec.backends import Executor, resolve_backend
from ..exec.cache import CacheKey, ResultCache
from ..exec.calibrate import CostProfile, resolve_cost_profile
from ..exec.task import SolveTask
from ..graphs.graph import WeightedGraph
from .registry import SolverRegistry, SolverSpec, default_registry
from .result import CutResult

Backend = Union[str, Executor, None]

#: Sentinel distinguishing "argument not given" from an explicit ``None``
#: (``cache=None`` must mean "no cache", not "the engine's cache").
_UNSET = object()


class Engine:
    """A session object owning registry, backend, cache and solver knobs.

    Parameters
    ----------
    registry:
        The :class:`SolverRegistry` to resolve solver names against
        (default: the library registry with every built-in solver).
    backend:
        Default execution backend for batch entry points — a registered
        name (``"serial"``/``"thread"``/``"process"``/``"remote"``/...),
        an :class:`~repro.exec.backends.Executor` instance, or ``None``
        to defer to ``$REPRO_BACKEND`` then ``"serial"``.
    cache:
        Default :class:`~repro.exec.cache.ResultCache` consulted by
        every call.  A ``str``/``Path`` opens a persistent cache on
        that path (the warm-start workflow) — a ``*.json`` file for
        the single-file tier, a directory for the append-only
        :class:`repro.store.SegmentStore` tier; ``None`` disables
        caching.
    solver / epsilon / mode / seed / budget:
        Default solver knobs, overridable per call.  Semantics are the
        façade's: ``solver="auto"`` picks by capability (and treats
        ``budget`` as an expected-cost ceiling), a named solver
        receives ``budget`` as its effort cap.
    cost_profile:
        A calibrated :class:`~repro.exec.calibrate.CostProfile` (or a
        path to one, as written by ``repro calibrate``); ``None``
        defers to ``$REPRO_COST_PROFILE``.  With a profile attached,
        task packing (``process`` chunks, ``remote`` shards) and the
        auto policy's ``budget`` operate in predicted *wall seconds*
        instead of abstract cost units, and
        :meth:`dynamic_session`'s ``patch_budget`` defaults to the
        calibrated patch-vs-rebuild break-even.

    Every method resolves configuration as **explicit argument > engine
    default > environment**, and returns the same canonical
    :class:`CutResult` objects as the module-level façade.
    """

    def __init__(
        self,
        *,
        registry: Optional[SolverRegistry] = None,
        backend: Backend = None,
        cache: Union[ResultCache, str, Path, None] = None,
        solver: str = "auto",
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        cost_profile: Union[CostProfile, str, Path, None] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.backend = backend
        if isinstance(cache, (str, Path)):
            cache = ResultCache(path=cache)
        self.cache = cache
        self.solver = solver
        self.epsilon = epsilon
        self.mode = mode
        self.seed = seed
        self.budget = budget
        self.cost_profile = resolve_cost_profile(cost_profile)
        # The process-wide default engine keeps the historic façade
        # surface (module-level functions forwarding raw kwargs) warning
        # -free; explicit engines deprecate raw backend=/cache= kwargs
        # in favour of engine configuration.
        self._warn_raw_kwargs = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = (
            self.backend if isinstance(self.backend, (str, type(None))) else self.backend.name
        )
        return (
            f"Engine(backend={backend!r}, cache={'on' if self.cache else 'off'}, "
            f"solver={self.solver!r}, solvers={len(self.registry)})"
        )

    @classmethod
    def from_config(
        cls,
        config=None,
        *,
        registry: Optional[SolverRegistry] = None,
    ) -> "Engine":
        """Build an engine from the typed config schema.

        ``config`` may be a :class:`~repro.config.ReproConfig`, a bare
        :class:`~repro.config.EngineConfig`, a config-file path, or
        ``None`` (load via ``$REPRO_CONFIG``/defaults — the usual entry
        from ``repro --config``).  A full ``ReproConfig`` whose engine
        backend is ``"remote"`` and whose ``[remote]`` section supplies
        workers or a manager gets a ready
        :class:`~repro.exec.remote.RemoteExecutor` attached, so
        ``Engine.from_config("repro.toml")`` is a complete shard router
        when the file says so.
        """
        from ..config import ReproConfig, load_config

        if config is None or isinstance(config, (str, Path)):
            config = load_config(config)
        remote_cfg = None
        if isinstance(config, ReproConfig):
            remote_cfg = config.remote
            config = config.engine
        backend: Backend = config.backend
        if (
            backend == "remote"
            and remote_cfg is not None
            and (remote_cfg.workers or remote_cfg.manager)
        ):
            from ..exec.remote import RemoteExecutor

            backend = RemoteExecutor.from_config(remote_cfg)
        if config.cache is True:
            cache: Union[ResultCache, str, None] = ResultCache()
        elif config.cache is False or config.cache is None:
            cache = None
        else:
            cache = config.cache  # a path string -> persistent cache
        return cls(
            registry=registry,
            backend=backend,
            cache=cache,
            solver=config.solver,
            epsilon=config.epsilon,
            mode=config.mode,
            seed=config.seed,
            budget=config.budget,
            cost_profile=config.cost_profile,
        )

    # -- configuration resolution ---------------------------------------

    def _pick(self, value, default):
        return default if value is _UNSET else value

    def _pick_registry(self, registry) -> SolverRegistry:
        if registry is _UNSET or registry is None:
            return self.registry
        return registry

    def _deprecate_raw(self, **kwargs) -> None:
        """Deprecate per-call ``backend=``/``cache=`` on explicit engines.

        The sunset path for the kwarg-threading style: when a session
        object is in play, transport and cache belong to the session —
        configure them on the :class:`Engine` (or build a second engine)
        instead of re-passing them per call.  The module-level façade
        (which forwards through the default engine) never warns, so the
        historic surface stays quiet.
        """
        if not self._warn_raw_kwargs:
            return
        passed = [name for name, value in kwargs.items() if value is not _UNSET]
        if passed:
            warnings.warn(
                f"passing {'/'.join(passed)}= per call on an explicit Engine "
                "is deprecated; configure them on the Engine "
                "(Engine(backend=..., cache=...)) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    # -- the façade surface ---------------------------------------------

    def solve(
        self,
        graph: WeightedGraph,
        solver: Union[str, object] = _UNSET,
        *,
        epsilon: Union[Optional[float], object] = _UNSET,
        mode: Union[str, object] = _UNSET,
        seed: Union[int, object] = _UNSET,
        budget: Union[Optional[int], object] = _UNSET,
        registry: Union[Optional[SolverRegistry], object] = _UNSET,
        cache: Union[Optional[ResultCache], object] = _UNSET,
        **options: Any,
    ) -> CutResult:
        """Compute a minimum cut of ``graph`` with one registered solver.

        Same contract as :func:`repro.api.solve`, with unset knobs
        falling back to this engine's defaults.
        """
        self._deprecate_raw(cache=cache)
        return self._solve(
            graph,
            solver=self._pick(solver, self.solver),
            epsilon=self._pick(epsilon, self.epsilon),
            mode=self._pick(mode, self.mode),
            seed=self._pick(seed, self.seed),
            budget=self._pick(budget, self.budget),
            registry=self._pick_registry(registry),
            cache=self._pick(cache, self.cache),
            options=options,
        )

    def solve_all(
        self,
        graph: WeightedGraph,
        *,
        epsilon: Union[Optional[float], object] = _UNSET,
        mode: Union[str, object] = _UNSET,
        seed: Union[int, object] = _UNSET,
        budget: Union[Optional[int], object] = _UNSET,
        kinds: Optional[Sequence[str]] = None,
        names: Optional[Sequence[str]] = None,
        include_heavy: bool = False,
        registry: Union[Optional[SolverRegistry], object] = _UNSET,
        backend: Union[Backend, object] = _UNSET,
        cache: Union[Optional[ResultCache], object] = _UNSET,
    ) -> list[CutResult]:
        """Run every applicable registered solver on ``graph``.

        Same contract as :func:`repro.api.solve_all`, with unset knobs
        falling back to this engine's defaults.
        """
        self._deprecate_raw(backend=backend, cache=cache)
        return self._solve_all(
            graph,
            epsilon=self._pick(epsilon, self.epsilon),
            mode=self._pick(mode, self.mode),
            seed=self._pick(seed, self.seed),
            budget=self._pick(budget, self.budget),
            kinds=kinds,
            names=names,
            include_heavy=include_heavy,
            registry=self._pick_registry(registry),
            backend=self._pick(backend, self.backend),
            cache=self._pick(cache, self.cache),
        )

    def solve_batch(
        self,
        graphs: Iterable[WeightedGraph],
        solver: Union[str, object] = _UNSET,
        *,
        epsilon: Union[Optional[float], object] = _UNSET,
        mode: Union[str, object] = _UNSET,
        seed: Union[int, object] = _UNSET,
        budget: Union[Optional[int], object] = _UNSET,
        registry: Union[Optional[SolverRegistry], object] = _UNSET,
        backend: Union[Backend, object] = _UNSET,
        cache: Union[Optional[ResultCache], object] = _UNSET,
        **options: Any,
    ) -> list[CutResult]:
        """``solve`` mapped over many graphs (one result per graph, in order).

        Same contract as :func:`repro.api.solve_batch`, with unset knobs
        falling back to this engine's defaults.
        """
        self._deprecate_raw(backend=backend, cache=cache)
        registry = self._pick_registry(registry)
        tasks = self.build_batch_tasks(
            graphs,
            solver=self._pick(solver, self.solver),
            epsilon=self._pick(epsilon, self.epsilon),
            mode=self._pick(mode, self.mode),
            seed=self._pick(seed, self.seed),
            budget=self._pick(budget, self.budget),
            options=options,
            registry=registry,
        )
        return self.solve_tasks(
            tasks,
            registry=registry,
            backend=self._pick(backend, self.backend),
            cache=self._pick(cache, self.cache),
        )

    def compare(
        self,
        graph: WeightedGraph,
        *,
        epsilon: Union[Optional[float], object] = _UNSET,
        mode: Union[str, object] = _UNSET,
        seed: Union[int, object] = _UNSET,
        names: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        include_heavy: bool = False,
        backend: Union[Backend, object] = _UNSET,
        cache: Union[Optional[ResultCache], object] = _UNSET,
    ) -> list[CutResult]:
        """The compare workload: every applicable solver plus ground truth.

        Runs :meth:`solve_all`, guarantees the registry's ground-truth
        solver is represented (running it separately when filtered out
        or inapplicable by name selection), and returns the results
        with the ground-truth entry first — the shape the CLI's
        ``compare`` table and the registry-driven benchmarks consume.
        """
        self._deprecate_raw(backend=backend, cache=cache)
        epsilon = self._pick(epsilon, self.epsilon)
        mode = self._pick(mode, self.mode)
        seed = self._pick(seed, self.seed)
        cache = self._pick(cache, self.cache)
        results = self._solve_all(
            graph,
            epsilon=epsilon,
            mode=mode,
            seed=seed,
            budget=None,
            kinds=kinds,
            names=names,
            include_heavy=include_heavy,
            registry=self.registry,
            backend=self._pick(backend, self.backend),
            cache=cache,
        )
        truth_name = self.registry.ground_truth().name
        if all(result.solver != truth_name for result in results):
            results.insert(
                0,
                self._solve(
                    graph,
                    solver=truth_name,
                    epsilon=None,
                    mode="reference",
                    seed=seed,
                    budget=None,
                    registry=self.registry,
                    cache=cache,
                    options={},
                ),
            )
        results.sort(key=lambda result: result.solver != truth_name)
        return results

    # -- the cost plane --------------------------------------------------

    def task_cost_fn(self, registry: Optional[SolverRegistry] = None):
        """A ``cost_fn(task) -> float`` for the shared LPT planner.

        Prediction chain, per task: fitted wall seconds from the
        attached :class:`~repro.exec.calibrate.CostProfile` (falling
        back to the profile's hand-model × unit-scale conversion for
        uncalibrated solvers); without a profile, the registry's raw
        hand-fit cost units (consistent *relative* costs still pack
        well); ``1.0`` when nothing is known — which degenerates the
        pack to the historic stripe.
        """
        registry = registry if registry is not None else self.registry
        profile = self.cost_profile

        def cost(task: SolveTask) -> float:
            try:
                spec = registry.get(task.solver)
            except ReproError:
                return 1.0
            n = task.graph.number_of_nodes
            m = task.graph.number_of_edges
            if profile is not None:
                predicted = profile.predict_seconds(spec, n, m)
                if predicted is not None:
                    return predicted
            if spec.cost_model is not None:
                return float(spec.cost_model(n, m))
            return 1.0

        return cost

    def _auto_cost_fn(self, graph: WeightedGraph):
        """Per-spec seconds estimator for ``select_auto`` — profile only.

        Without a profile ``select_auto`` keeps its historic cost-unit
        semantics (``budget`` compares against ``expected_cost``), so
        this returns ``None`` rather than an equivalent wrapper.
        """
        profile = self.cost_profile
        if profile is None:
            return None
        n, m = graph.number_of_nodes, graph.number_of_edges

        def estimate(spec: SolverSpec) -> Optional[float]:
            return profile.predict_seconds(spec, n, m)

        return estimate

    # -- the task plane --------------------------------------------------

    def build_batch_tasks(
        self,
        graphs: Iterable[WeightedGraph],
        *,
        solver: str = "auto",
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        options: Optional[dict[str, Any]] = None,
        seeds: Optional[Sequence[int]] = None,
        solvers: Optional[Sequence[str]] = None,
        registry: Optional[SolverRegistry] = None,
    ) -> list[SolveTask]:
        """Freeze a batch call into :class:`SolveTask` objects.

        Graph ``i`` gets seed ``seed + i`` and the resolved name of
        ``solver`` — unless ``seeds`` / ``solvers`` supply per-task
        overrides (the wire form a shard router exchanges: a shard's
        tasks keep their original frozen seeds and resolved solver
        names, so re-running them anywhere is bit-identical).  Each
        graph is validated and its solver resolved up front; failures
        raise :class:`AlgorithmError` naming the graph index.  With
        ``solver="auto"``, ``budget`` steers selection and is *not*
        frozen into the tasks (the pick runs at default effort).
        """
        registry = registry if registry is not None else self.registry
        frozen_options = tuple(sorted((options or {}).items()))
        graphs = list(graphs)
        for name, override in (("seeds", seeds), ("solvers", solvers)):
            if override is not None and len(override) != len(graphs):
                raise AlgorithmError(
                    f"solve_batch: {name} override has {len(override)} "
                    f"entr{'y' if len(override) == 1 else 'ies'} for "
                    f"{len(graphs)} graph(s)"
                )
        tasks = []
        for index, graph in enumerate(graphs):
            wanted = solver if solvers is None else solvers[index]
            try:
                graph.require_connected()
                spec = _resolve_spec(
                    registry, graph, wanted, mode=mode, epsilon=epsilon,
                    budget=budget, cost_fn=self._auto_cost_fn(graph),
                )
            except ReproError as exc:
                raise AlgorithmError(f"solve_batch: graph #{index}: {exc}") from exc
            tasks.append(
                SolveTask(
                    graph=graph,
                    solver=spec.name,
                    epsilon=epsilon,
                    mode=mode,
                    seed=seed + index if seeds is None else seeds[index],
                    budget=None if wanted == "auto" else budget,
                    options=frozen_options,
                    label=f"graph #{index}",
                )
            )
        return tasks

    def solve_tasks(
        self,
        tasks: Sequence[SolveTask],
        *,
        registry: Union[Optional[SolverRegistry], object] = _UNSET,
        backend: Union[Backend, object] = _UNSET,
        cache: Union[Optional[ResultCache], object] = _UNSET,
    ) -> list[CutResult]:
        """Run pre-built tasks through the configured backend and cache.

        The programmatic seam under every batch entry point (and the
        one the service's batch endpoint calls), so it does **not**
        deprecate raw ``backend=``/``cache=`` arguments: callers at
        this level are routing work, not configuring a session.

        Cache lookups and stores happen in the calling process (worker
        processes cannot share the cache object), so only misses are
        dispatched; results come back in task order either way.
        Backends return failures as captured exceptions; with a cache
        attached every completed result is cached (memory + one disk
        flush) before the first failure — in task order — is raised,
        while without one the serial backend stops at the failure
        instead of computing results nobody will see.
        """
        registry = self._pick_registry(registry)
        backend = self._pick(backend, self.backend)
        cache = self._pick(cache, self.cache)
        executor = resolve_backend(backend)  # validate even if every task hits
        if getattr(executor, "cost_fn", None) is None:
            # Attach the engine's task-cost predictor so packing
            # backends balance by predicted work; an executor the
            # caller already configured keeps its own cost function.
            executor.cost_fn = self.task_cost_fn(registry)
        tasks = list(tasks)
        results: list[Optional[CutResult]] = [None] * len(tasks)
        if cache is not None:
            pending: list[tuple[int, SolveTask]] = []
            keys = {}
            for position, task in enumerate(tasks):
                key = task.cache_key()
                keys[position] = key
                hit = cache.get(key)
                if hit is not None:
                    results[position] = _stamp_cache(hit, cache, hit=True)
                else:
                    pending.append((position, task))
        else:
            pending = list(enumerate(tasks))
        if pending:
            computed = executor.run_tasks(
                [task for _, task in pending],
                registry=registry,
                keep_going=cache is not None,  # completed work is only worth
            )                                  # finishing if it can be cached
            failure: Optional[Exception] = None
            for (position, _task), outcome in zip(pending, computed):
                if isinstance(outcome, Exception):
                    if failure is None:
                        failure = outcome
                    continue
                if cache is not None:
                    cache.put(keys[position], outcome, flush=False)
                    outcome = _stamp_cache(outcome, cache, hit=False)
                results[position] = outcome
            if cache is not None:
                cache.flush()  # one disk write per batch, not per store
            if failure is not None:
                raise failure
        return results  # type: ignore[return-value]  (every slot is filled)

    # -- dynamic sessions ------------------------------------------------

    def dynamic_session(self, graph: WeightedGraph, **knobs):
        """Open a :class:`~repro.dynamic.session.DynamicSession` on ``graph``.

        The session inherits this engine's registry, cache and solver
        knobs; ``knobs`` (``solver=``/``epsilon=``/``mode=``/``seed=``/
        ``patch_budget=``/``copy=``/``validate=``) override per session.
        Mutations stream through a :class:`~repro.dynamic.ops.
        MutationLog` with incremental index/hash maintenance, and
        ``session.solve()`` skips the solver when a cut certificate
        proves the cached result still stands.

        With a :class:`~repro.exec.calibrate.CostProfile` attached
        (and no explicit ``patch_budget=``), the session's patch
        budget defaults to the calibrated patch-vs-rebuild break-even
        for this graph's index size — patches stop where a rebuild
        is measurably cheaper, instead of always patching.
        """
        from ..dynamic.session import DynamicSession

        if (
            "patch_budget" not in knobs
            and self.cost_profile is not None
            and self.cost_profile.dynamic is not None
        ):
            calibrated = self.cost_profile.patch_budget_for(
                graph.index().directed_edge_count
            )
            if calibrated is not None:
                knobs["patch_budget"] = calibrated
        return DynamicSession(self, graph, **knobs)

    # -- warm start ------------------------------------------------------

    def warm_start(
        self, *sources: Union[ResultCache, str, Path], flush: bool = True
    ) -> int:
        """Merge recorded caches (files, store dirs, live caches) in.

        The cache warm-start workflow: record caches during benchmark or
        sharded-sweep runs, merge them (``python -m repro cache merge``
        or directly here), and the engine's first sweep over the same
        instances is all hits.  Creates a memory-backed cache when the
        engine has none.  Returns the number of entries adopted.
        """
        if self.cache is None:
            self.cache = ResultCache()
        adopted = 0
        for source in sources:
            adopted += self.cache.merge_from(source, flush=False)
        if adopted and flush:
            self.cache.flush()
        return adopted

    # -- internals (default-resolved values, no deprecation checks) ------

    def _solve(
        self,
        graph: WeightedGraph,
        *,
        solver: str,
        epsilon: Optional[float],
        mode: str,
        seed: int,
        budget: Optional[int],
        registry: SolverRegistry,
        cache: Optional[ResultCache],
        options: dict[str, Any],
    ) -> CutResult:
        graph.require_connected()
        spec = _resolve_spec(
            registry, graph, solver, mode=mode, epsilon=epsilon, budget=budget,
            cost_fn=self._auto_cost_fn(graph),
        )
        if solver == "auto":
            budget = None  # consumed by selection; the pick runs at default effort
        key = None
        if cache is not None:
            key = CacheKey.for_solve(
                graph, spec.name, epsilon=epsilon, mode=mode, seed=seed,
                budget=budget, options=options,
            )
            hit = cache.get(key)
            if hit is not None:
                return _stamp_cache(hit, cache, hit=True)
        result = _run(
            spec, graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget,
            **options,
        )
        if cache is not None:
            cache.put(key, result)
            result = _stamp_cache(result, cache, hit=False)
        return result

    def _solve_all(
        self,
        graph: WeightedGraph,
        *,
        epsilon: Optional[float],
        mode: str,
        seed: int,
        budget: Optional[int],
        kinds: Optional[Sequence[str]],
        names: Optional[Sequence[str]],
        include_heavy: bool,
        registry: SolverRegistry,
        backend: Backend,
        cache: Optional[ResultCache],
    ) -> list[CutResult]:
        graph.require_connected()
        kind_filter = tuple(kinds) if kinds is not None else None
        if names is not None:
            requested = {name: registry.get(name) for name in names}  # validates
            specs = [
                spec
                for spec in registry
                if spec.name in requested
                and (kind_filter is None or spec.kind in kind_filter)
                and spec.applicable(graph, mode=mode, epsilon=epsilon)
            ]
        else:
            specs = registry.applicable(
                graph, mode=mode, epsilon=epsilon, kinds=kind_filter,
                include_heavy=include_heavy,
            )
        tasks = [
            SolveTask(
                graph=graph,
                solver=spec.name,
                epsilon=epsilon,
                mode=mode,
                seed=seed,
                budget=budget,
                label=f"solver {spec.name!r}",
            )
            for spec in specs
        ]
        return self.solve_tasks(
            tasks, registry=registry, backend=backend, cache=cache
        )


def _resolve_spec(
    registry: SolverRegistry,
    graph: WeightedGraph,
    solver: str,
    *,
    mode: str,
    epsilon: Optional[float],
    budget: Optional[float] = None,
    cost_fn=None,
) -> SolverSpec:
    """Resolve ``solver`` (a name or ``"auto"``) to an applicable spec.

    ``budget`` only steers the auto policy (expected-cost ceiling); a
    named solver receives it as its effort cap instead.  ``cost_fn``
    (from an engine with a calibrated profile) re-denominates the
    ceiling in predicted wall seconds.
    """
    if solver == "auto":
        return registry.select_auto(
            graph, mode=mode, epsilon=epsilon, budget=budget, cost_fn=cost_fn
        )
    spec = registry.get(solver)
    reason = spec.inapplicable_reason(graph, mode=mode, epsilon=epsilon)
    if reason is not None:
        raise AlgorithmError(reason)
    return spec


def _stamp_cache(
    result: CutResult, cache: ResultCache, *, hit: bool
) -> CutResult:
    """Surface the cache outcome and running counters in ``extras``."""
    extras = dict(result.extras)
    extras["cache"] = {"hit": hit, "hits": cache.hits, "misses": cache.misses}
    return replace(result, extras=extras)


def _run(
    spec: SolverSpec,
    graph: WeightedGraph,
    *,
    epsilon: Optional[float],
    mode: str,
    seed: int,
    budget: Optional[int],
    **options: Any,
) -> CutResult:
    started = time.perf_counter()
    raw = spec.run(
        graph, epsilon=epsilon, mode=mode, seed=seed, budget=budget, **options
    )
    elapsed = time.perf_counter() - started
    return CutResult(
        value=raw.value,
        side=frozenset(raw.side),
        solver=spec.name,
        guarantee=spec.guarantee,
        seed=seed,
        metrics=raw.metrics,
        wall_time=elapsed,
        extras=dict(raw.extras),
    )


#: The process-wide engine behind the module-level façade functions.
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide default :class:`Engine` (built lazily, once).

    This is the engine the module-level ``solve``/``solve_all``/
    ``solve_batch`` delegate to: default registry, no cache, backend
    from ``$REPRO_BACKEND``.  It never emits the raw-kwarg deprecation
    warnings — the historic per-call surface *is* its job.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        engine = Engine()
        engine._warn_raw_kwargs = False
        _DEFAULT_ENGINE = engine
    return _DEFAULT_ENGINE


__all__ = ["Engine", "default_engine"]
