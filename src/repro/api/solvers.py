"""Built-in solver adapters — every min-cut entry point behind one signature.

Importing this module registers the paper's algorithms and all
baselines into :data:`repro.api.registry.DEFAULT_REGISTRY`.  Each
adapter has the uniform signature

    adapter(graph, *, epsilon=None, mode="reference", seed=0,
            budget=None, **options) -> CutResult

and maps those knobs onto the underlying algorithm: ``budget`` becomes
the tree cap for the packing solvers, the repetition count for the
contraction solvers and the rate-sweep length for Su.  Extra keyword
``options`` are forwarded to solvers that take them (``exact``'s
``tree_count``, ``su``'s ``trials_per_rate``); solvers without extra
knobs reject unknown options instead of silently dropping them.
Provenance fields (``solver``, ``guarantee``, ``seed``, ``wall_time``)
are stamped by the façade, not here.
"""

from __future__ import annotations

import math
from typing import Optional

from ..baselines.bridges import bridge_component, find_bridges
from ..baselines.brute_force import MAX_BRUTE_FORCE_NODES, brute_force_min_cut
from ..baselines.contraction import karger_min_cut, karger_stein_min_cut
from ..baselines.gomory_hu import gomory_hu_min_cut
from ..baselines.matula import matula_approx_min_cut
from ..baselines.nagamochi_ibaraki import sparse_certificate
from ..baselines.stoer_wagner import stoer_wagner_min_cut
from ..baselines.su_congest import su_minimum_cut_congest
from ..baselines.su_sampling import su_approx_min_cut
from ..core.two_respect import minimum_cut_exact_two_respect
from ..errors import AlgorithmError
from ..graphs.properties import min_weighted_degree
from ..mincut.approx import minimum_cut_approx
from ..mincut.exact import minimum_cut_exact
from ..mincut.exact_distributed import minimum_cut_exact_congest_full
from .registry import register_solver
from .result import CutResult

DEFAULT_EPSILON = 0.5


def _eps(epsilon: Optional[float]) -> float:
    return DEFAULT_EPSILON if epsilon is None else epsilon


def _lg(n: int) -> float:
    return math.log2(max(2, n))


# ----------------------------------------------------------------------
# Expected-cost models
# ----------------------------------------------------------------------
# Order-of-magnitude elementary-operation estimates for a default-effort
# run on an (n, m) graph — the ``cost_model`` capability metadata.  The
# units are relative (cross-solver comparable), not wall seconds: the
# auto policy compares them against the caller's ``budget`` ceiling to
# skip solvers that are too expensive for an instance *before* running
# anything (see SolverRegistry.select_auto).

def _cost_packing(n: int, m: int) -> float:
    # adaptive schedule: ~(2 lg n + 8) trees, each an MST + subtree scan
    return (2 * _lg(n) + 8) * (m * _lg(n) + n)


def _cost_stoer_wagner(n: int, m: int) -> float:
    return n * (m + n)


def _cost_brute_force(n: int, m: int) -> float:
    return float(2 ** min(n, 40)) * m


def _cost_nagamochi(n: int, m: int) -> float:
    return n * m


def _cost_gomory_hu(n: int, m: int) -> float:
    return n * n * m


def _cost_karger(n: int, m: int) -> float:
    return 4 * n * m  # default repetitions ~4n, O(m) per contraction


def _cost_karger_stein(n: int, m: int) -> float:
    return _lg(n) ** 2 * n * n


def _cost_matula(n: int, m: int) -> float:
    return m * _lg(n)


def _cost_su(n: int, m: int) -> float:
    return 8 * m * _lg(n)


def _cost_approx(n: int, m: int) -> float:
    return m * _lg(n) ** 2 + n * _lg(n)


def _cost_two_respect(n: int, m: int) -> float:
    return 12 * (n * n + m)


def _cost_simulated(n: int, m: int) -> float:
    # full CONGEST simulation: every round touches every busy edge
    return n ** 1.5 * m


def _cost_bridges(n: int, m: int) -> float:
    return n + m


# ----------------------------------------------------------------------
# The paper's algorithms
# ----------------------------------------------------------------------


@register_solver(
    "exact",
    kind="exact",
    guarantee="exact",
    display="this paper, exact",
    implementation=minimum_cut_exact,
    summary="Thorup tree packing + per-tree 1-respecting cuts (Theorem 2.1)",
    supports_congest=True,
    cost_model=_cost_packing,
    priority=100,
)
def _solve_exact(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
                 tree_count=None, **options):
    result = minimum_cut_exact(
        graph, mode=mode, tree_count=tree_count, max_trees=budget, **options
    )
    return _packing_result(result)


@register_solver(
    "exact_congest_full",
    kind="exact",
    guarantee="exact",
    display="this paper, fully distributed",
    implementation=minimum_cut_exact_congest_full,
    summary="all-measured pipeline: Boruvka packing + Theorem 2.1, no charged rounds",
    supports_congest=True,
    heavy=True,
    cost_model=_cost_simulated,
    priority=60,
)
def _solve_exact_congest_full(graph, *, epsilon=None, mode="reference", seed=0,
                              budget=None, tree_count=None, **options):
    if budget is not None:
        options.setdefault("max_trees", budget)
    result = minimum_cut_exact_congest_full(graph, tree_count=tree_count, **options)
    return _packing_result(result)


@register_solver(
    "approx",
    kind="approx",
    guarantee="1+eps",
    display="this paper, (1+eps)",
    implementation=minimum_cut_approx,
    summary="Karger skeleton sampling + exact solve of the skeleton",
    supports_congest=True,
    requires_integer_weights=True,
    randomized=True,
    max_epsilon=1.0,
    cost_model=_cost_approx,
    priority=100,
)
def _solve_approx(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
                  **options):
    _reject_options("approx", options)
    result = minimum_cut_approx(graph, epsilon=_eps(epsilon), seed=seed, mode=mode)
    return CutResult(
        value=result.value,
        side=result.side,
        metrics=result.metrics,
        extras={
            "probability": result.probability,
            "skeleton_value": result.skeleton_value,
            "halvings": result.halvings,
            "used_sampling": result.used_sampling,
        },
    )


@register_solver(
    "two_respect",
    kind="exact",
    guarantee="exact",
    display="2-respecting packing (Karger)",
    implementation=minimum_cut_exact_two_respect,
    summary="greedy packing + per-tree 2-respecting minimisation; budget = tree cap",
    cost_model=_cost_two_respect,
    priority=70,
)
def _solve_two_respect(graph, *, epsilon=None, mode="reference", seed=0,
                       budget=None, tree_count=None, **options):
    if budget is not None:
        options.setdefault("max_trees", budget)
    result = minimum_cut_exact_two_respect(graph, tree_count=tree_count, **options)
    return CutResult(
        value=result.best_value,
        side=result.side,
        extras={
            "respect_nodes": result.nodes,
            "crossings": result.crossings,
        },
    )


# ----------------------------------------------------------------------
# Exact baselines
# ----------------------------------------------------------------------


@register_solver(
    "stoer_wagner",
    kind="exact",
    guarantee="exact",
    display="Stoer-Wagner",
    implementation=stoer_wagner_min_cut,
    summary="n-1 maximum-adjacency phases; the ground-truth oracle",
    ground_truth=True,
    cost_model=_cost_stoer_wagner,
    priority=90,
)
def _solve_stoer_wagner(graph, *, epsilon=None, mode="reference", seed=0,
                        budget=None, **options):
    _reject_options("stoer_wagner", options)
    return CutResult(**_value_side(stoer_wagner_min_cut(graph)))


@register_solver(
    "brute_force",
    kind="exact",
    guarantee="exact",
    display="brute force",
    implementation=brute_force_min_cut,
    summary=f"enumerate every cut (n <= {MAX_BRUTE_FORCE_NODES})",
    max_nodes=MAX_BRUTE_FORCE_NODES,
    cost_model=_cost_brute_force,
    priority=10,
)
def _solve_brute_force(graph, *, epsilon=None, mode="reference", seed=0,
                       budget=None, **options):
    _reject_options("brute_force", options)
    return CutResult(**_value_side(brute_force_min_cut(graph)))


@register_solver(
    "nagamochi_ibaraki",
    kind="exact",
    guarantee="exact",
    display="Nagamochi-Ibaraki + SW",
    implementation=sparse_certificate,
    summary="sparse k-certificate (k = min degree + 1), then Stoer-Wagner on it",
    cost_model=_cost_nagamochi,
    priority=50,
)
def _solve_nagamochi_ibaraki(graph, *, epsilon=None, mode="reference", seed=0,
                             budget=None, **options):
    _reject_options("nagamochi_ibaraki", options)
    # λ ≤ min weighted degree < k, so the certificate preserves every
    # cut of value below k exactly and its minimum cut is a minimum cut
    # of the original graph.
    k = min_weighted_degree(graph) + 1.0
    certificate = sparse_certificate(graph, k)
    witness = stoer_wagner_min_cut(certificate)
    value = graph.cut_value(witness.side)
    return CutResult(
        value=value,
        side=witness.side,
        extras={
            "certificate_k": k,
            "certificate_edges": certificate.number_of_edges,
            "original_edges": graph.number_of_edges,
        },
    )


@register_solver(
    "gomory_hu",
    kind="exact",
    guarantee="exact",
    display="Gomory-Hu tree",
    implementation=gomory_hu_min_cut,
    summary="cut tree from n-1 max flows; lightest tree edge is the min cut",
    cost_model=_cost_gomory_hu,
    priority=40,
)
def _solve_gomory_hu(graph, *, epsilon=None, mode="reference", seed=0,
                     budget=None, **options):
    _reject_options("gomory_hu", options)
    return CutResult(**_value_side(gomory_hu_min_cut(graph)))


# ----------------------------------------------------------------------
# Monte Carlo baselines
# ----------------------------------------------------------------------


@register_solver(
    "karger",
    kind="exact",
    guarantee="exact (whp)",
    display="Karger contraction",
    implementation=karger_min_cut,
    summary="random contraction; budget = repetitions (default capped for speed)",
    randomized=True,
    cost_model=_cost_karger,
    priority=20,
)
def _solve_karger(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
                  **options):
    _reject_options("karger", options)
    n = graph.number_of_nodes
    # The theoretical O(n^2 log n) repetition default is far too slow for
    # interactive use; cap it and let ``budget`` override.
    repetitions = budget if budget is not None else max(32, min(256, 4 * n))
    result = karger_min_cut(graph, repetitions=repetitions, seed=seed)
    return CutResult(
        **_value_side(result), extras={"repetitions": repetitions}
    )


@register_solver(
    "karger_stein",
    kind="exact",
    guarantee="exact (whp)",
    display="Karger-Stein",
    implementation=karger_stein_min_cut,
    summary="recursive contraction; budget = repetitions",
    randomized=True,
    cost_model=_cost_karger_stein,
    priority=30,
)
def _solve_karger_stein(graph, *, epsilon=None, mode="reference", seed=0,
                        budget=None, **options):
    _reject_options("karger_stein", options)
    n = graph.number_of_nodes
    repetitions = (
        budget
        if budget is not None
        else max(1, int(math.ceil(math.log2(max(2, n)) ** 2)))
    )
    result = karger_stein_min_cut(graph, repetitions=repetitions, seed=seed)
    return CutResult(**_value_side(result), extras={"repetitions": repetitions})


# ----------------------------------------------------------------------
# Approximate / bound baselines
# ----------------------------------------------------------------------


@register_solver(
    "matula",
    kind="approx",
    guarantee="2+eps",
    display="Matula (2+eps) [GK13 analog]",
    implementation=matula_approx_min_cut,
    summary="NI-certificate contraction; centralized Ghaffari-Kuhn analog",
    cost_model=_cost_matula,
    priority=50,
)
def _solve_matula(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
                  **options):
    _reject_options("matula", options)
    return CutResult(**_value_side(matula_approx_min_cut(graph, epsilon=_eps(epsilon))))


@register_solver(
    "su",
    kind="approx",
    guarantee="1+eps (whp)",
    display="Su (sampling+bridges)",
    implementation=su_approx_min_cut,
    summary="sampling + bridge finding (SPAA 2014 concurrent result); budget = rate steps",
    requires_integer_weights=True,
    randomized=True,
    cost_model=_cost_su,
    priority=30,
)
def _solve_su(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
              **options):
    if budget is not None:
        options.setdefault("rate_steps", budget)
    return CutResult(**_value_side(su_approx_min_cut(graph, seed=seed, **options)))


@register_solver(
    "su_congest",
    kind="approx",
    guarantee="1+eps (whp)",
    display="Su, fully distributed",
    implementation=su_minimum_cut_congest,
    summary="distributed Su pipeline: sampling + skeleton BFS + Theorem 2.1; budget = rate steps",
    supports_congest=True,
    requires_integer_weights=True,
    randomized=True,
    heavy=True,
    cost_model=_cost_simulated,
    priority=10,
)
def _solve_su_congest(graph, *, epsilon=None, mode="reference", seed=0,
                      budget=None, **options):
    if budget is not None:
        options.setdefault("rate_steps", budget)
    result = su_minimum_cut_congest(graph, seed=seed, **options)
    return CutResult(
        value=result.value,
        side=result.side,
        metrics=result.metrics,
        extras={
            "best_rate": result.best_rate,
            "rates_tried": result.rates_tried,
        },
    )


@register_solver(
    "bridges",
    kind="bound",
    guarantee="upper bound",
    display="bridges (upper bound)",
    implementation=find_bridges,
    summary="best bridge cut if any, else lightest singleton — a certified upper bound",
    cost_model=_cost_bridges,
    priority=0,
)
def _solve_bridges(graph, *, epsilon=None, mode="reference", seed=0, budget=None,
                   **options):
    _reject_options("bridges", options)
    node = min(graph.nodes, key=lambda u: (graph.weighted_degree(u), repr(u)))
    best_value = graph.weighted_degree(node)
    best_side = frozenset({node})
    bridge_count = 0
    for bridge in find_bridges(graph):
        bridge_count += 1
        side = frozenset(bridge_component(graph, bridge))
        value = graph.cut_value(side)
        if value < best_value:
            best_value, best_side = value, side
    return CutResult(
        value=best_value, side=best_side, extras={"bridges_found": bridge_count}
    )


def _value_side(result) -> dict:
    """Pull the canonical (value, side) pair out of a legacy result."""
    return {"value": result.value, "side": result.side}


def _packing_result(result) -> CutResult:
    """Canonical CutResult for the two tree-packing pipelines."""
    return CutResult(
        value=result.value,
        side=result.side,
        metrics=result.metrics,
        extras={
            "tree_index": result.tree_index,
            "trees_used": result.trees_used,
            "per_tree_values": result.per_tree_values,
        },
    )


def _reject_options(name: str, options: dict) -> None:
    """Solvers without extra knobs fail fast on unknown options, so a
    typo'd or inapplicable keyword is never silently dropped."""
    if options:
        raise AlgorithmError(
            f"solver {name!r} does not accept extra options: "
            f"{', '.join(sorted(options))}"
        )


__all__ = ["DEFAULT_EPSILON"]
