"""Solver registry: capability metadata + lookup for every min-cut solver.

Each solver enters the registry as a :class:`SolverSpec` — an adapter
callable with a uniform keyword signature plus capability metadata
(kind, guarantee class, CONGEST support, integer-weight requirement,
randomization, node limits).  The façade (:mod:`repro.api.facade`), the
CLI and the comparison tables all iterate the registry instead of
hard-coding algorithm lists, so registering a new solver is the single
step needed to surface it everywhere.

The default registry is populated lazily: the built-in adapters in
:mod:`repro.api.solvers` import the heavy algorithm modules, and those
modules in turn import :mod:`repro.api.result`, so eager registration
at package-import time would be circular.  Call :func:`default_registry`
(the façade does) to get the fully populated instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph

SOLVER_KINDS = ("exact", "approx", "bound")

#: Ordering of guarantee classes for auto-selection (lower is stronger).
GUARANTEE_RANK = {
    "exact": 0,
    "exact (whp)": 1,
    "1+eps": 2,
    "1+eps (whp)": 3,
    "2+eps": 4,
    "upper bound": 5,
}


@dataclass(frozen=True)
class SolverSpec:
    """A registered solver: adapter callable + capability metadata.

    ``run`` has the uniform adapter signature
    ``run(graph, *, epsilon, mode, seed, budget, **options)`` and
    returns a :class:`~repro.api.result.CutResult` (provenance fields
    are stamped by the façade).  ``implementation`` points back at the
    underlying algorithm entry point so completeness can be audited.
    """

    name: str
    run: Callable[..., Any]
    kind: str
    guarantee: str
    display: str
    implementation: Optional[Callable[..., Any]] = None
    summary: str = ""
    supports_congest: bool = False
    requires_integer_weights: bool = False
    randomized: bool = False
    max_nodes: Optional[int] = None
    max_epsilon: Optional[float] = None
    heavy: bool = False
    ground_truth: bool = False
    priority: int = 0
    #: Optional ``(n, m) -> float`` estimating the solver's cost on an
    #: n-node, m-edge graph in **cost units** (order-of-magnitude
    #: elementary-operation counts for a default-effort run).  Units are
    #: only meaningful relative to other registered models; the auto
    #: policy compares them against the caller's ``budget`` ceiling.
    cost_model: Optional[Callable[[int, int], float]] = None

    def expected_cost(self, graph: WeightedGraph) -> Optional[float]:
        """Estimated cost of running this solver on ``graph`` (in cost
        units), or ``None`` when no model is registered."""
        if self.cost_model is None:
            return None
        return self.cost_model(graph.number_of_nodes, graph.number_of_edges)

    def inapplicable_reason(
        self,
        graph: WeightedGraph,
        mode: str = "reference",
        epsilon: Optional[float] = None,
    ) -> Optional[str]:
        """Why this solver cannot run on ``graph`` (``None`` when it can).

        The single source of truth for capability checks: the auto
        policy and ``solve_all`` filter on it, and explicitly named
        solvers fail fast with the returned message.
        """
        if mode == "congest" and not self.supports_congest:
            return f"solver {self.name!r} does not support congest mode"
        if self.max_nodes is not None and graph.number_of_nodes > self.max_nodes:
            return (
                f"solver {self.name!r} is limited to {self.max_nodes} nodes, "
                f"got {graph.number_of_nodes}"
            )
        if self.requires_integer_weights and not has_integer_weights(graph):
            return (
                f"solver {self.name!r} requires integer edge weights; "
                "rescale the graph first"
            )
        if (
            epsilon is not None
            and self.max_epsilon is not None
            and epsilon > self.max_epsilon
        ):
            return (
                f"solver {self.name!r} accepts epsilon up to "
                f"{self.max_epsilon}, got {epsilon}"
            )
        return None

    def applicable(
        self,
        graph: WeightedGraph,
        mode: str = "reference",
        epsilon: Optional[float] = None,
    ) -> bool:
        """Can this solver run on ``graph`` under ``mode``/``epsilon``?"""
        return self.inapplicable_reason(graph, mode=mode, epsilon=epsilon) is None

    @property
    def guarantee_rank(self) -> int:
        return GUARANTEE_RANK.get(self.guarantee, len(GUARANTEE_RANK))


def has_integer_weights(graph: WeightedGraph) -> bool:
    """True when every edge weight is integral (sampling solvers need it)."""
    return all(float(w).is_integer() for _u, _v, w in graph.edges())


class SolverRegistry:
    """Ordered name → :class:`SolverSpec` mapping with capability queries."""

    def __init__(self) -> None:
        self._specs: dict[str, SolverSpec] = {}

    # -- registration -------------------------------------------------

    def register_spec(self, spec: SolverSpec) -> SolverSpec:
        if spec.kind not in SOLVER_KINDS:
            raise AlgorithmError(
                f"solver kind must be one of {SOLVER_KINDS}, got {spec.kind!r}"
            )
        if spec.name in self._specs:
            raise AlgorithmError(f"solver {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def register(self, name: str, **metadata: Any) -> Callable:
        """Decorator: register the decorated adapter under ``name``.

        ``metadata`` holds the remaining :class:`SolverSpec` fields
        (``kind`` and ``guarantee`` are required; ``display`` defaults
        to the name).
        """

        def decorate(run: Callable[..., Any]) -> Callable[..., Any]:
            metadata.setdefault("display", name)
            self.register_spec(SolverSpec(name=name, run=run, **metadata))
            return run

        return decorate

    # -- lookup -------------------------------------------------------

    def get(self, name: str) -> SolverSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise AlgorithmError(
                f"unknown solver {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return list(self._specs)

    def specs(self) -> list[SolverSpec]:
        return list(self._specs.values())

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    # -- capability queries -------------------------------------------

    def applicable(
        self,
        graph: WeightedGraph,
        mode: str = "reference",
        epsilon: Optional[float] = None,
        kinds: Optional[tuple[str, ...]] = None,
        include_heavy: bool = True,
    ) -> list[SolverSpec]:
        """Specs that can run on ``graph``, in registration order."""
        out = []
        for spec in self:
            if kinds is not None and spec.kind not in kinds:
                continue
            if not include_heavy and spec.heavy:
                continue
            if spec.applicable(graph, mode=mode, epsilon=epsilon):
                out.append(spec)
        return out

    def ground_truth(self) -> SolverSpec:
        """The designated ground-truth solver (exact, deterministic)."""
        for spec in self:
            if spec.ground_truth:
                return spec
        raise AlgorithmError("no ground-truth solver registered")

    def select_auto(
        self,
        graph: WeightedGraph,
        mode: str = "reference",
        epsilon: Optional[float] = None,
        budget: Optional[float] = None,
        cost_fn: Optional[Callable[[SolverSpec], Optional[float]]] = None,
    ) -> SolverSpec:
        """The ``solver="auto"`` policy: pick by capability and budget.

        With ``epsilon`` set, approximate solvers are preferred (the
        caller asked for a quality/speed trade-off); otherwise exact
        solvers only.  Among candidates the strongest guarantee class
        wins, ties broken by descending ``priority``.  Heavy solvers
        (full simulated pipelines) are never auto-picked — name them
        explicitly.

        ``budget`` is an expected-cost ceiling in the registry's cost
        units (see :attr:`SolverSpec.cost_model`): candidates whose
        estimated cost on ``graph`` exceeds it are skipped *before*
        running anything; candidates without a cost model are never
        skipped.  When every modelled candidate is over budget, the
        cheapest applicable one is chosen — the policy degrades quality,
        it never refuses.

        ``cost_fn`` replaces the cost estimate per candidate —
        ``cost_fn(spec) -> cost-or-None`` — letting an engine with a
        calibrated :class:`~repro.exec.calibrate.CostProfile` attached
        express ``budget`` in predicted *wall seconds* instead of
        abstract cost units (same skip/degrade semantics).
        """
        preferred = ("approx",) if epsilon is not None else ("exact",)
        candidates = self.applicable(
            graph, mode=mode, epsilon=epsilon, kinds=preferred, include_heavy=False
        )
        if not candidates and epsilon is not None:
            candidates = self.applicable(
                graph, mode=mode, epsilon=epsilon, kinds=("exact",),
                include_heavy=False,
            )
        if not candidates:
            raise AlgorithmError(
                f"no applicable solver for n={graph.number_of_nodes}, "
                f"mode={mode!r}, epsilon={epsilon!r}"
            )
        if budget is not None:
            estimate = cost_fn if cost_fn is not None else (
                lambda spec: spec.expected_cost(graph)
            )
            costs = {spec.name: estimate(spec) for spec in candidates}
            affordable = [
                spec
                for spec in candidates
                if costs[spec.name] is None or costs[spec.name] <= budget
            ]
            if affordable:
                candidates = affordable
            else:
                # Everything modelled is over budget (and unmodelled
                # specs would have been affordable): best effort.
                return min(candidates, key=lambda s: costs[s.name])
        return min(candidates, key=lambda s: (s.guarantee_rank, -s.priority))


#: The process-wide registry the façade and CLI use.
DEFAULT_REGISTRY = SolverRegistry()


def register_solver(name: str, **metadata: Any) -> Callable:
    """Decorator registering into :data:`DEFAULT_REGISTRY`."""
    return DEFAULT_REGISTRY.register(name, **metadata)


def default_registry() -> SolverRegistry:
    """The default registry with all built-in solvers registered."""
    from . import solvers  # noqa: F401  (import side effect: registration)

    return DEFAULT_REGISTRY


__all__ = [
    "GUARANTEE_RANK",
    "SOLVER_KINDS",
    "SolverRegistry",
    "SolverSpec",
    "DEFAULT_REGISTRY",
    "default_registry",
    "has_integer_weights",
    "register_solver",
]
