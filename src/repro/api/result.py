"""Canonical cut result — the one dataclass every solver adapter returns.

Historically each algorithm family grew its own result type
(:class:`repro.mincut.ExactMinCut`, :class:`repro.mincut.ApproxMinCut`,
``repro.baselines.MinCutResult`` …) with overlapping but incompatible
fields.  :class:`CutResult` is the canonical shape: a value, a witness
side, provenance (solver name, guarantee, seed), optional CONGEST
metrics, wall time, and an ``extras`` dict for solver-specific detail
(packing-tree indices, sampling rates, repetition counts).

``verify(graph)`` recomputes the witness side's cut value directly from
the graph, so any consumer can check a result without trusting the
solver that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..congest.metrics import RunMetrics
from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph


@dataclass(frozen=True)
class CutResult:
    """A global minimum-cut answer with provenance.

    ``value``
        The reported cut value (for ``kind="exact"`` solvers this is λ;
        for approximate/bound solvers an upper bound on λ).
    ``side``
        One witness side of the cut (a proper nonempty subset of the
        graph's nodes).
    ``solver`` / ``guarantee`` / ``seed``
        Provenance stamped by the :mod:`repro.api` façade: the registry
        name of the solver, its guarantee class (``"exact"``,
        ``"1+eps"``, ``"2+eps"``, …) and the seed it ran with.
    ``metrics``
        :class:`repro.congest.metrics.RunMetrics` when the solver ran on
        the CONGEST simulator, else ``None``.
    ``wall_time``
        Wall-clock seconds spent inside the solver (stamped by the
        façade; 0.0 when constructed directly).
    ``extras``
        Solver-specific detail that does not fit the canonical fields.
    """

    value: float
    side: frozenset
    solver: str = ""
    guarantee: str = "exact"
    seed: Optional[int] = None
    metrics: Optional[RunMetrics] = None
    wall_time: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would include the
        # (unhashable) extras dict; hash on the identity-bearing subset
        # instead so results can live in sets and dict keys.
        return hash((self.value, self.side, self.solver, self.guarantee, self.seed))

    def verify(self, graph: WeightedGraph) -> float:
        """Recompute the witness side's cut value in ``graph``.

        Raises :class:`~repro.errors.AlgorithmError` if the side is not
        a proper nonempty subset of the graph's nodes; otherwise returns
        the recomputed value (compare it against :attr:`value`).
        """
        nodes = set(graph.nodes)
        if not self.side:
            raise AlgorithmError("cut witness side is empty")
        if not self.side <= nodes:
            foreign = sorted(map(repr, self.side - nodes))[:3]
            raise AlgorithmError(f"cut witness contains foreign nodes: {foreign}")
        if len(self.side) == len(nodes):
            raise AlgorithmError("cut witness side covers the whole graph")
        return graph.cut_value(self.side)

    def matches(self, graph: WeightedGraph, tolerance: float = 1e-9) -> bool:
        """True when :meth:`verify` agrees with :attr:`value`."""
        return abs(self.verify(graph) - self.value) <= tolerance

    def other_side(self, graph: WeightedGraph) -> frozenset:
        """The complementary witness side."""
        return frozenset(set(graph.nodes) - self.side)
