"""repro — reproduction of Nanongkai (PODC 2014), distributed min cut.

Public API highlights
---------------------
* :class:`repro.Engine` — the configurable session object (registry,
  backend, cache, budget policy) behind everything; the module-level
  :func:`repro.solve` / :func:`repro.solve_all` /
  :func:`repro.solve_batch` façade delegates to a process-wide default
  engine and returns canonical :class:`repro.CutResult` objects
  (see :mod:`repro.api`).
* :mod:`repro.exec` — registered execution backends (``serial``/
  ``thread``/``process``/``remote``, the ``backend=`` knob) and
  :class:`repro.ResultCache`, the content-addressed result cache with
  a versioned, mergeable on-disk tier (``python -m repro cache``).
* :mod:`repro.service` — the façade served over JSON-per-request HTTP
  (``python -m repro serve`` / :class:`repro.service.ServiceClient`),
  one shared result cache across connections.  Imported lazily — the
  core library never pays for the HTTP machinery.
* :class:`repro.graphs.WeightedGraph`, :class:`repro.graphs.RootedTree`
  and the generator families.
* :class:`repro.congest.CongestNetwork` — the CONGEST simulator.
* :func:`repro.core.one_respecting_min_cut_congest` — Theorem 2.1.
* :mod:`repro.mincut` — the paper's headline exact and (1+ε)-approximate
  algorithms.
* :mod:`repro.baselines` — Stoer–Wagner, Karger(-Stein), Matula (2+ε),
  brute force, bridges, Nagamochi–Ibaraki.
"""

from .api import (
    CutResult,
    Engine,
    SolverRegistry,
    SolverSpec,
    default_engine,
    default_registry,
    register_solver,
    solve,
    solve_all,
    solve_batch,
)
from .errors import (
    AlgorithmError,
    BandwidthExceededError,
    CongestError,
    DisconnectedGraphError,
    GraphError,
    ProtocolError,
    ReproError,
    RoundLimitExceededError,
    TreeError,
)
from .exec import CacheKey, ResultCache, resolve_backend
from .graphs import RootedTree, WeightedGraph

__version__ = "1.0.0"

__all__ = [
    "AlgorithmError",
    "BandwidthExceededError",
    "CongestError",
    "DisconnectedGraphError",
    "GraphError",
    "ProtocolError",
    "ReproError",
    "RoundLimitExceededError",
    "TreeError",
    "RootedTree",
    "WeightedGraph",
    "CacheKey",
    "CutResult",
    "Engine",
    "ResultCache",
    "resolve_backend",
    "SolverRegistry",
    "SolverSpec",
    "default_engine",
    "default_registry",
    "register_solver",
    "solve",
    "solve_all",
    "solve_batch",
    "__version__",
]
