"""Certified minimum-cut bounds from tree packings.

Tree packings do not just *find* cuts — they certify them:

* **Lower bound** (Tutte/Nash-Williams direction): every spanning tree
  crosses every cut at least once, so ``k`` pairwise *edge-disjoint*
  spanning trees prove λ ≥ k.  :func:`edge_disjoint_packing` greedily
  extracts such trees (maximise unused edges first), giving a certified
  — not heuristic — lower bound.
* **Upper bound**: any cut value we can exhibit; the cheapest 1- or
  2-respecting cut of the packed trees (or simply the min weighted
  degree).

:func:`certified_cut_bounds` combines both into an interval that is
mathematically guaranteed to contain λ; tests assert the true value
always lies inside.  The interval cannot always be tight — by
Nash-Williams the packing number is at most ⌊m/(n−1)⌋ and at least
⌈(λ)/2⌉-ish, so a factor-2 gap is inherent to the certificate — but on
graphs whose connectivity is packing-limited (e.g. sparse ER) it closes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph, edge_key
from ..graphs.trees import RootedTree


def edge_disjoint_packing(
    graph: WeightedGraph,
    max_trees: int = 64,
    attempts: int = 12,
    seed: int = 0,
) -> list[RootedTree]:
    """Pairwise edge-disjoint spanning trees via randomized greedy.

    Each attempt repeatedly extracts a spanning tree from the still
    unused edges (union–find over a shuffled order) until the leftover
    edges no longer span; the best attempt wins.  Greedy extraction is
    not optimal (Nash-Williams needs matroid union), so the bound may
    be below the true packing number — but whatever is returned is a
    *genuine* packing: every tree spans and no edge repeats, hence
    ``len(result)`` certifies λ ≥ len(result) (weights ≥ 1 only
    strengthen it).
    """
    import random

    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("packing needs at least two nodes")
    all_edges = [(u, v) for u, v, _w in graph.edges()]
    node_list = graph.nodes
    best: list[RootedTree] = []
    rng = random.Random(seed)
    for _attempt in range(attempts):
        rng.shuffle(all_edges)
        used: set = set()
        trees: list[RootedTree] = []
        while len(trees) < max_trees:
            parent = {u: u for u in node_list}

            def find(x):
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            chosen: list[tuple] = []
            for u, v in all_edges:
                if edge_key(u, v) in used:
                    continue
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[ru] = rv
                    chosen.append((u, v))
            if len(chosen) != len(node_list) - 1:
                break
            used |= {edge_key(u, v) for u, v in chosen}
            trees.append(RootedTree.from_edges(node_list[0], chosen))
        if len(trees) > len(best):
            best = trees
    return best


@dataclass(frozen=True)
class CutBounds:
    """A certified interval λ ∈ [lower, upper] with witnesses."""

    lower: float
    upper: float
    disjoint_trees: int
    upper_witness: frozenset

    @property
    def is_tight(self) -> bool:
        return abs(self.upper - self.lower) < 1e-9


def certified_cut_bounds(graph: WeightedGraph, max_trees: int = 64) -> CutBounds:
    """Certified bounds on λ (see module docstring).

    The lower bound is the edge-disjoint packing size; the upper bound
    is the best of (a) the minimum weighted degree and (b) the cheapest
    1-respecting cut over the disjoint trees.
    """
    from ..core.one_respect_reference import one_respecting_min_cut_reference

    trees = edge_disjoint_packing(graph, max_trees=max_trees)
    lower = float(len(trees))

    best_node = min(
        graph.nodes, key=lambda u: (graph.weighted_degree(u), repr(u))
    )
    upper = graph.weighted_degree(best_node)
    witness = frozenset({best_node})
    for tree in trees:
        result = one_respecting_min_cut_reference(graph, tree)
        if result.best_value < upper - 1e-12:
            upper = result.best_value
            witness = frozenset(result.cut_side(tree))

    if upper < lower - 1e-9:
        raise AlgorithmError(
            f"certified bounds crossed: lower {lower} > upper {upper}; "
            "this indicates a bug, not an input problem"
        )
    return CutBounds(
        lower=lower,
        upper=upper,
        disjoint_trees=len(trees),
        upper_witness=witness,
    )
