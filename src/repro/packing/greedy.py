"""Thorup's greedy tree packing [Combinatorica 2007] (system S7).

Generate trees ``T_1, T_2, …`` where ``T_i`` is the minimum spanning
tree with respect to the *relative loads* induced by ``T_1 … T_{i-1}``:
the load of edge ``e`` after ``i`` trees is ``use_i(e) / w(e)`` with
``use_i(e)`` the number of earlier trees containing ``e`` (weights act
as capacities).  Thorup's theorem (the form the paper uses): greedily
packing ``Θ(λ^7 log^3 n)`` trees guarantees that at least one tree
contains **exactly one edge** of some minimum cut — i.e. 1-respects it —
which reduces minimum cut to the 1-respecting problem of Theorem 2.1.

Ties in the MST computation are broken by the library's deterministic
edge order, making packings reproducible.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph, edge_key
from ..graphs.trees import RootedTree
from ..mst.kruskal import minimum_spanning_tree


class GreedyTreePacking:
    """Incrementally grown greedy packing with per-edge load tracking.

    Use :meth:`next_tree` (or iterate) to extend the packing lazily —
    the exact-min-cut driver consumes trees one at a time and usually
    stops long before any theoretical bound.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        graph.require_connected()
        if graph.number_of_nodes < 2:
            raise AlgorithmError("tree packing needs at least two nodes")
        self.graph = graph
        self.usage: dict = {edge_key(u, v): 0 for u, v, _w in graph.edges()}
        self.trees: list[RootedTree] = []

    def relative_load(self, u, v) -> float:
        """``use(e) / w(e)`` — the greedy packing's edge metric."""
        return self.usage[edge_key(u, v)] / self.graph.weight(u, v)

    def next_tree(self) -> RootedTree:
        """Compute the next greedy tree and update loads."""
        tree = minimum_spanning_tree(
            self.graph, key=lambda u, v, w: self.relative_load(u, v)
        )
        for child, parent in tree.edges():
            self.usage[edge_key(child, parent)] += 1
        self.trees.append(tree)
        return tree

    def grow_to(self, count: int) -> list[RootedTree]:
        """Extend the packing to ``count`` trees; returns all trees."""
        while len(self.trees) < count:
            self.next_tree()
        return list(self.trees)

    def __iter__(self) -> Iterator[RootedTree]:
        while True:
            yield self.next_tree()


def greedy_tree_packing(graph: WeightedGraph, count: int) -> list[RootedTree]:
    """Convenience wrapper: the first ``count`` greedy packing trees."""
    if count < 1:
        raise AlgorithmError("tree count must be positive")
    return GreedyTreePacking(graph).grow_to(count)


def thorup_tree_bound(min_cut: float, n: int) -> int:
    """The theorem's tree count ``Θ(λ^7 log^3 n)`` with unit constants.

    Astronomical in practice — the packing experiments (E4) measure how
    many trees are *actually* needed, which is typically a handful.
    """
    lam = max(1.0, float(min_cut))
    logs = math.log2(max(2, n)) ** 3
    return int(math.ceil(lam ** 7 * logs))
