"""Crossing counts and k-respect predicates for cuts versus trees.

A cut ``(S, V∖S)`` *k-respects* a tree when at most ``k`` tree edges
cross it.  Thorup's theorem promises a packing tree that 1-respects a
minimum cut; these helpers verify that promise empirically (experiment
E4) and validate the exact algorithm's reductions.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import AlgorithmError
from ..graphs.graph import Node
from ..graphs.trees import RootedTree


def crossing_tree_edges(
    tree: RootedTree, cut_side: Iterable[Node]
) -> list[tuple[Node, Node]]:
    """Tree edges with exactly one endpoint in ``cut_side``."""
    side = set(cut_side)
    unknown = side - set(tree.nodes)
    if unknown:
        raise AlgorithmError(f"cut side contains non-tree nodes: {sorted(map(repr, unknown))[:3]}")
    return [
        (child, parent)
        for child, parent in tree.edges()
        if (child in side) != (parent in side)
    ]


def crossing_count(tree: RootedTree, cut_side: Iterable[Node]) -> int:
    """Number of tree edges crossing the cut."""
    return len(crossing_tree_edges(tree, cut_side))


def one_respects(tree: RootedTree, cut_side: Iterable[Node]) -> bool:
    """True when exactly one tree edge crosses the cut — then the cut is
    precisely ``C(v↓)`` for the child endpoint ``v`` of that edge."""
    return crossing_count(tree, cut_side) == 1


def respecting_subtree_node(tree: RootedTree, cut_side: Iterable[Node]) -> Node:
    """For a 1-respecting cut, the node ``v`` with ``v↓`` equal to one
    side of the cut."""
    crossing = crossing_tree_edges(tree, cut_side)
    if len(crossing) != 1:
        raise AlgorithmError(
            f"cut crosses {len(crossing)} tree edges; expected exactly 1"
        )
    child, _parent = crossing[0]
    return child


def trees_until_one_respecting(
    trees: Iterable[RootedTree], cut_side: Iterable[Node]
) -> int:
    """1-based index of the first tree 1-respecting the cut; raises when
    none does (caller controls how many trees to try)."""
    side = set(cut_side)
    for index, tree in enumerate(trees, start=1):
        if one_respects(tree, side):
            return index
    raise AlgorithmError("no tree in the packing 1-respects the cut")
