"""Thorup greedy tree packing (system S7 of DESIGN.md)."""

from .bounds import CutBounds, certified_cut_bounds, edge_disjoint_packing
from .greedy import GreedyTreePacking, greedy_tree_packing, thorup_tree_bound
from .respect import (
    crossing_count,
    crossing_tree_edges,
    one_respects,
    respecting_subtree_node,
    trees_until_one_respecting,
)

__all__ = [
    "CutBounds",
    "certified_cut_bounds",
    "edge_disjoint_packing",
    "GreedyTreePacking",
    "greedy_tree_packing",
    "thorup_tree_bound",
    "crossing_count",
    "crossing_tree_edges",
    "one_respects",
    "respecting_subtree_node",
    "trees_until_one_respecting",
]
