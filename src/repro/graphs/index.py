"""Indexed graph core: flat CSR-style arrays over a :class:`WeightedGraph`.

The adjacency-map representation of :class:`~repro.graphs.graph.
WeightedGraph` is convenient to build and mutate, but every consumer
that iterates it pays dict churn: the CONGEST engine used to key
per-edge FIFOs on ``(u, v)`` tuples, and every network construction
rebuilt neighbour lists and weight dicts from scratch.  A
:class:`GraphIndex` is the flat, read-only view those hot paths index
into instead:

* a stable node <-> int mapping (``nodes[i]`` / ``node_id[u]``) in the
  graph's insertion order, so integer-labelled generator graphs map to
  themselves;
* CSR adjacency: directed edge ids ``adj_start[i] .. adj_start[i+1]``
  belong to node ``i``, with ``adj_target[e]`` the neighbour's int id
  and ``adj_weight[e]`` the edge weight;
* a reverse-edge index ``reverse_edge[e]`` — the directed edge id of
  the opposite direction, so engines can pair up (u, v) and (v, u)
  without tuple keys;
* cached per-node neighbour lists / weight maps in *original node id*
  space, so the :class:`~repro.congest.node.NodeContext` API stays
  source-compatible while the engine runs on ints.

An index is built once per graph content and cached on the graph
(:meth:`WeightedGraph.index`); any mutation invalidates it.  All arrays
are plain Python lists — the point is eliminating per-round dict and
tuple-key overhead, not C acceleration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Node, WeightedGraph


class GraphIndex:
    """Flat-array view of a :class:`WeightedGraph`.

    Build via :meth:`WeightedGraph.index` (cached) rather than directly;
    the constructor snapshots the graph, so a stale index silently
    describes an old graph — the cache's version check prevents that.

    Consumers treat an index as immutable.  The only sanctioned writer
    is :mod:`repro.dynamic.incremental`, which patches the arrays in
    place after a single-edge mutation and re-registers the index via
    ``WeightedGraph._adopt_caches`` (asserting equivalence with a
    from-scratch rebuild in its validation mode).
    """

    #: Semantic CSR fields; underscore slots below are derived caches
    #: (rebuilt on demand, skipped by ``dynamic.incremental.index_equal``).
    CORE_FIELDS = (
        "nodes",
        "node_id",
        "adj_start",
        "adj_target",
        "adj_weight",
        "edge_source",
        "reverse_edge",
        "neighbor_lists",
        "weight_maps",
        "edge_id_maps",
    )

    __slots__ = CORE_FIELDS + ("_delivery",)

    def __init__(self, graph: "WeightedGraph") -> None:
        adj = graph._adj
        self.nodes: tuple[Any, ...] = tuple(adj)
        self.node_id: dict[Any, int] = {u: i for i, u in enumerate(self.nodes)}
        node_id = self.node_id

        n = len(self.nodes)
        adj_start = [0] * (n + 1)
        adj_target: list[int] = []
        adj_weight: list[float] = []
        edge_source: list[int] = []
        neighbor_lists: list[tuple] = []
        weight_maps: list[dict] = []
        edge_id_maps: list[dict] = []
        for i, u in enumerate(self.nodes):
            nbrs = adj[u]
            edge_ids: dict[Any, int] = {}
            base = len(adj_target)
            for v, w in nbrs.items():
                edge_ids[v] = len(adj_target)
                adj_target.append(node_id[v])
                adj_weight.append(w)
                edge_source.append(i)
            adj_start[i + 1] = base + len(nbrs)
            neighbor_lists.append(tuple(nbrs))
            weight_maps.append(dict(nbrs))
            edge_id_maps.append(edge_ids)

        reverse_edge = [0] * len(adj_target)
        for e, j in enumerate(adj_target):
            reverse_edge[e] = edge_id_maps[j][self.nodes[edge_source[e]]]

        self.adj_start = adj_start
        self.adj_target = adj_target
        self.adj_weight = adj_weight
        self.edge_source = edge_source
        self.reverse_edge = reverse_edge
        self.neighbor_lists = tuple(neighbor_lists)
        self.weight_maps = tuple(weight_maps)
        self.edge_id_maps = tuple(edge_id_maps)
        self._delivery: Any = None

    # -- sizes ----------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def directed_edge_count(self) -> int:
        """Number of directed edge slots (2x the undirected edge count)."""
        return len(self.adj_target)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- per-node queries (int id space) --------------------------------
    def degree_of(self, i: int) -> int:
        return self.adj_start[i + 1] - self.adj_start[i]

    def weighted_degree_of(self, i: int) -> float:
        start, stop = self.adj_start[i], self.adj_start[i + 1]
        return sum(self.adj_weight[start:stop])

    def edge_id(self, u: "Node", v: "Node") -> int:
        """Directed edge id of ``u -> v``; raises on a missing edge."""
        try:
            return self.edge_id_maps[self.node_id[u]][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist") from None

    # -- delivery arrays (CONGEST engine fast path) ---------------------
    def delivery_arrays(self) -> "DeliveryArrays":
        """Per-directed-edge arrays the CONGEST delivery loop indexes.

        Computed once per index and shared by every network built over
        the graph: source/target nodes in *original id* space (inbox
        entries and tracer events carry original identifiers) and, when
        numpy is importable, ``int64`` mirrors of the edge→target map
        for the vectorized engine (``target_ids_np``) plus reusable
        per-edge scratch shapes.  ``target_ids_np`` is ``None`` on
        numpy-free installs — the engine falls back to the pure-Python
        batched path.

        In-place patches from :mod:`repro.dynamic.incremental` call
        :meth:`invalidate_delivery`, so a mutated index never serves a
        stale array.
        """
        cached = self._delivery
        if cached is None:
            nodes = self.nodes
            target_ids_np = None
            try:  # pragma: no branch - single gated import
                import numpy as np

                target_ids_np = np.asarray(self.adj_target, dtype=np.int64)
            except ImportError:
                pass
            cached = self._delivery = DeliveryArrays(
                source_nodes=tuple(nodes[i] for i in self.edge_source),
                target_nodes=tuple(nodes[j] for j in self.adj_target),
                target_ids_np=target_ids_np,
            )
        return cached

    def invalidate_delivery(self) -> None:
        """Drop the cached delivery arrays (after an in-place patch)."""
        self._delivery = None

    # -- traversal ------------------------------------------------------
    def bfs_distances_from(self, source_id: int) -> list[int]:
        """Hop distances from int node ``source_id``; -1 = unreachable.

        The flat-array analogue of
        :func:`repro.graphs.properties.bfs_distances`, used by the
        centralized diameter/eccentricity helpers and the connectivity
        check so one shared index serves every layer of a solve.
        """
        adj_start, adj_target = self.adj_start, self.adj_target
        dist = [-1] * len(self.nodes)
        dist[source_id] = 0
        frontier = [source_id]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for i in frontier:
                for e in range(adj_start[i], adj_start[i + 1]):
                    j = adj_target[e]
                    if dist[j] < 0:
                        dist[j] = depth
                        nxt.append(j)
            frontier = nxt
        return dist

    def eccentricity_of(self, source_id: int) -> int:
        """Max hop distance from ``source_id``; raises when disconnected."""
        dist = self.bfs_distances_from(source_id)
        out = 0
        for d in dist:
            if d < 0:
                raise GraphError("eccentricity undefined on disconnected graphs")
            if d > out:
                out = d
        return out

    def is_connected(self) -> bool:
        """Connectivity via one CSR BFS (no per-node dict rebuilds)."""
        if not self.nodes:
            return False
        return -1 not in self.bfs_distances_from(0)


class DeliveryArrays:
    """Immutable bundle of per-directed-edge delivery views.

    ``source_nodes[e]`` / ``target_nodes[e]`` are the original node
    identifiers of directed edge ``e``; ``target_ids_np`` is the
    ``np.int64`` form of ``GraphIndex.adj_target`` (``None`` without
    numpy).
    """

    __slots__ = ("source_nodes", "target_nodes", "target_ids_np")

    def __init__(self, source_nodes, target_nodes, target_ids_np):
        self.source_nodes = source_nodes
        self.target_nodes = target_nodes
        self.target_ids_np = target_ids_np


__all__ = ["DeliveryArrays", "GraphIndex"]
