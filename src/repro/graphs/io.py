"""Graph serialisation and (optional) networkx interoperability.

The edge-list format is one edge per line: ``u v weight``.  Node labels
are written with ``repr`` round-tripping restricted to integers and
strings so files stay human-editable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..errors import GraphError
from .graph import WeightedGraph


def write_edge_list(graph: WeightedGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Isolated nodes are recorded on their own line as ``node`` with no
    weight so they survive a round trip.
    """
    lines: list[str] = []
    with_edges = set()
    for u, v, w in graph.edges():
        with_edges.add(u)
        with_edges.add(v)
        lines.append(f"{u} {v} {w!r}")
    for u in graph.nodes:
        if u not in with_edges:
            lines.append(f"{u}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: Union[str, Path]) -> WeightedGraph:
    """Read a graph written by :func:`write_edge_list`.

    Node tokens that parse as integers become ``int`` nodes; everything
    else stays a string.
    """
    graph = WeightedGraph()
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_node(_parse_node(parts[0]))
        elif len(parts) == 3:
            u, v, w = _parse_node(parts[0]), _parse_node(parts[1]), float(parts[2])
            graph.add_edge(u, v, w)
        else:
            raise GraphError(f"malformed edge-list line: {raw!r}")
    return graph


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def to_networkx(graph: WeightedGraph):
    """Convert to a ``networkx.Graph`` (weights under the ``"weight"`` key).

    Raises :class:`ImportError` when networkx is unavailable; the core
    library never requires it.
    """
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes)
    nx_graph.add_weighted_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph) -> WeightedGraph:
    """Convert a ``networkx.Graph``; missing weights default to 1.0."""
    graph = WeightedGraph()
    for u in nx_graph.nodes:
        graph.add_node(u)
    for u, v, data in nx_graph.edges(data=True):
        graph.add_edge(u, v, float(data.get("weight", 1.0)))
    return graph
