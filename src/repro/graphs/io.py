"""Graph serialisation and (optional) networkx interoperability.

Two wire formats, both restricted to integer and string node labels so
payloads stay human-editable and JSON-safe:

* the *edge-list* text format — one edge per line, ``u v weight``
  (:func:`write_edge_list` / :func:`read_edge_list` /
  :func:`edge_list_from_text`);
* the *JSON* form — ``{"nodes": [...], "edges": [[u, v, w], ...]}``
  (:func:`graph_to_json` / :func:`graph_from_json`), the shape the
  service layer (:mod:`repro.service`) accepts and emits.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Union

from ..errors import GraphError
from .graph import WeightedGraph


def write_edge_list(graph: WeightedGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Isolated nodes are recorded on their own line as ``node`` with no
    weight so they survive a round trip.
    """
    lines: list[str] = []
    with_edges = set()
    for u, v, w in graph.edges():
        with_edges.add(u)
        with_edges.add(v)
        lines.append(f"{u} {v} {w!r}")
    for u in graph.nodes:
        if u not in with_edges:
            lines.append(f"{u}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: Union[str, Path]) -> WeightedGraph:
    """Read a graph written by :func:`write_edge_list`.

    Node tokens that parse as integers become ``int`` nodes; everything
    else stays a string.
    """
    return edge_list_from_text(Path(path).read_text(encoding="utf-8"))


def edge_list_from_text(text: str) -> WeightedGraph:
    """Parse edge-list *text* (the :func:`read_edge_list` file format).

    The service layer uses this for requests that ship a graph as an
    edge-list string instead of the JSON form.
    """
    graph = WeightedGraph()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_node(_parse_node(parts[0]))
        elif len(parts) == 3:
            try:
                weight = float(parts[2])
            except ValueError:
                raise GraphError(f"malformed edge-list line: {raw!r}") from None
            if not math.isfinite(weight):
                # float() happily parses 'nan'/'inf', and NaN slips past
                # add_edge's `weight <= 0` guard to poison every cut.
                raise GraphError(f"non-finite weight in edge-list line: {raw!r}")
            graph.add_edge(_parse_node(parts[0]), _parse_node(parts[1]), weight)
        else:
            raise GraphError(f"malformed edge-list line: {raw!r}")
    return graph


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _check_json_node(node) -> None:
    """Reject nodes the JSON form cannot carry faithfully.

    ``bool`` is excluded explicitly: it *is* an ``int`` subclass, but a
    graph whose node ``True`` silently merges with node ``1`` on the far
    side of a JSON hop would corrupt cuts.
    """
    if isinstance(node, bool) or not isinstance(node, (int, str)):
        raise GraphError(
            f"JSON graph nodes must be integers or strings, got {node!r}"
        )


def graph_to_json(graph: WeightedGraph) -> dict:
    """The JSON form of ``graph``: ``{"nodes": [...], "edges": [...]}``.

    ``nodes`` lists every node (so isolated nodes survive); ``edges``
    holds ``[u, v, weight]`` triples.  Raises :class:`GraphError` when a
    node is neither an integer nor a string.
    """
    nodes = list(graph.nodes)
    for node in nodes:
        _check_json_node(node)
    return {
        "nodes": nodes,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }


def graph_from_json(data: dict) -> WeightedGraph:
    """Build a graph from the :func:`graph_to_json` form.

    ``data`` must be a dict with an ``"edges"`` list of ``[u, v]`` or
    ``[u, v, weight]`` entries and an optional ``"nodes"`` list;
    anything else — unknown keys, malformed edges, non-JSON node types,
    non-numeric weights — raises :class:`GraphError` with a message
    naming the offending entry (the service layer surfaces these as
    structured 4xx bodies).
    """
    if not isinstance(data, dict):
        raise GraphError(
            f"JSON graph must be an object with 'edges', got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"nodes", "edges"})
    if unknown:
        raise GraphError(f"unknown JSON graph keys: {', '.join(map(repr, unknown))}")
    edges = data.get("edges", [])
    nodes = data.get("nodes", [])
    if not isinstance(edges, list) or not isinstance(nodes, list):
        raise GraphError("JSON graph 'nodes' and 'edges' must be lists")
    graph = WeightedGraph()
    for node in nodes:
        _check_json_node(node)
        graph.add_node(node)
    for position, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise GraphError(
                f"edge #{position} must be [u, v] or [u, v, weight], got {edge!r}"
            )
        u, v = edge[0], edge[1]
        _check_json_node(u)
        _check_json_node(v)
        weight = edge[2] if len(edge) == 3 else 1.0
        if (
            isinstance(weight, bool)
            or not isinstance(weight, (int, float))
            # json.loads accepts NaN/Infinity by default, and NaN slips
            # past add_edge's `weight <= 0` guard to poison every cut.
            or not math.isfinite(weight)
        ):
            raise GraphError(
                f"edge #{position} weight must be a finite number, got {weight!r}"
            )
        graph.add_edge(u, v, float(weight))
    return graph


def to_networkx(graph: WeightedGraph):
    """Convert to a ``networkx.Graph`` (weights under the ``"weight"`` key).

    Raises :class:`ImportError` when networkx is unavailable; the core
    library never requires it.
    """
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes)
    nx_graph.add_weighted_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph) -> WeightedGraph:
    """Convert a ``networkx.Graph``; missing weights default to 1.0."""
    graph = WeightedGraph()
    for u in nx_graph.nodes:
        graph.add_node(u)
    for u, v, data in nx_graph.edges(data=True):
        graph.add_edge(u, v, float(data.get("weight", 1.0)))
    return graph
