"""Structural graph measurements: distances, diameter, degree statistics.

These are centralized helpers used to (a) parameterise experiments — the
paper's bounds are stated in terms of ``n`` and the network diameter ``D``
— and (b) cross-check the distributed BFS implementation.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import DisconnectedGraphError, GraphError
from .graph import Node, WeightedGraph


def bfs_distances(graph: WeightedGraph, source: Node) -> dict[Node, int]:
    """Hop distances from ``source`` to every reachable node."""
    if source not in graph:
        raise GraphError(f"node {source!r} does not exist")
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def bfs_tree_parents(graph: WeightedGraph, source: Node) -> dict[Node, Node]:
    """Parent pointers of a BFS tree rooted at ``source`` (ties broken by
    discovery order, which follows adjacency insertion order)."""
    if source not in graph:
        raise GraphError(f"node {source!r} does not exist")
    parent: dict[Node, Node] = {}
    seen = {source}
    frontier = [source]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return parent


def eccentricity(graph: WeightedGraph, source: Node) -> int:
    """Maximum hop distance from ``source``; requires connectivity."""
    dist = bfs_distances(graph, source)
    if len(dist) != graph.number_of_nodes:
        raise DisconnectedGraphError("eccentricity undefined on disconnected graphs")
    return max(dist.values())


def diameter(graph: WeightedGraph, exact_threshold: int = 600) -> int:
    """Hop diameter ``D``.

    Exact (all-pairs BFS) for graphs up to ``exact_threshold`` nodes;
    beyond that, a double-sweep lower bound is used, which is exact on
    trees and extremely tight on the benchmark families.  The returned
    value is only used to *report* D next to measured round counts.
    """
    graph.require_connected()
    nodes = graph.nodes
    if len(nodes) <= exact_threshold:
        return max(eccentricity(graph, u) for u in nodes)
    start = nodes[0]
    dist = bfs_distances(graph, start)
    far = max(dist, key=dist.__getitem__)
    dist2 = bfs_distances(graph, far)
    return max(dist2.values())


def degree_statistics(graph: WeightedGraph) -> dict[str, float]:
    """Min / max / mean unweighted degree and min weighted degree.

    The minimum weighted degree is a trivial upper bound on the minimum
    cut (cut a single node off), used as a sanity check everywhere.
    """
    if graph.number_of_nodes == 0:
        raise GraphError("degree statistics of an empty graph are undefined")
    degrees = [graph.degree(u) for u in graph.nodes]
    weighted = [graph.weighted_degree(u) for u in graph.nodes]
    return {
        "min_degree": float(min(degrees)),
        "max_degree": float(max(degrees)),
        "mean_degree": sum(degrees) / len(degrees),
        "min_weighted_degree": float(min(weighted)),
    }


def min_weighted_degree(graph: WeightedGraph) -> float:
    """``min_v δ(v)`` — the singleton-cut upper bound on λ."""
    return degree_statistics(graph)["min_weighted_degree"]


def edge_connectivity_upper_bound(graph: WeightedGraph) -> float:
    """A cheap upper bound on λ (currently the singleton bound)."""
    return min_weighted_degree(graph)


def is_spanning_tree(graph: WeightedGraph, edges: Iterable[tuple[Node, Node]]) -> bool:
    """True when ``edges`` form a spanning tree of ``graph``'s node set."""
    edge_list = list(edges)
    node_set = set(graph.nodes)
    if len(edge_list) != len(node_set) - 1:
        return False
    parent: dict[Node, Node] = {u: u for u in node_set}

    def find(x: Node) -> Node:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edge_list:
        if u not in node_set or v not in node_set or not graph.has_edge(u, v):
            return False
        ru, rv = find(u), find(v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True
