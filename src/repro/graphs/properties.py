"""Structural graph measurements: distances, diameter, degree statistics.

These are centralized helpers used to (a) parameterise experiments — the
paper's bounds are stated in terms of ``n`` and the network diameter ``D``
— and (b) cross-check the distributed BFS implementation.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import DisconnectedGraphError, GraphError
from .graph import Node, WeightedGraph


def bfs_distances(graph: WeightedGraph, source: Node) -> dict[Node, int]:
    """Hop distances from ``source`` to every reachable node."""
    if source not in graph:
        raise GraphError(f"node {source!r} does not exist")
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def bfs_tree_parents(graph: WeightedGraph, source: Node) -> dict[Node, Node]:
    """Parent pointers of a BFS tree rooted at ``source`` (ties broken by
    discovery order, which follows adjacency insertion order)."""
    if source not in graph:
        raise GraphError(f"node {source!r} does not exist")
    parent: dict[Node, Node] = {}
    seen = {source}
    frontier = [source]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return parent


def eccentricity(graph: WeightedGraph, source: Node) -> int:
    """Maximum hop distance from ``source``; requires connectivity.

    Runs on the graph's cached :class:`~repro.graphs.index.GraphIndex`
    (flat CSR arrays), so repeated distance queries — diameter, the
    congest drivers' D hints — share one index build.
    """
    index = graph.index()
    if source not in index.node_id:
        raise GraphError(f"node {source!r} does not exist")
    try:
        return index.eccentricity_of(index.node_id[source])
    except GraphError:
        raise DisconnectedGraphError(
            "eccentricity undefined on disconnected graphs"
        ) from None


def diameter(graph: WeightedGraph, exact_threshold: int = 600) -> int:
    """Hop diameter ``D``.

    Exact (all-pairs BFS over the cached index) for graphs up to
    ``exact_threshold`` nodes; beyond that, a double-sweep lower bound
    is used, which is exact on trees and extremely tight on the
    benchmark families.  The returned value is only used to *report* D
    next to measured round counts.
    """
    graph.require_connected()
    index = graph.index()
    n = index.node_count
    if n <= exact_threshold:
        return max(index.eccentricity_of(i) for i in range(n))
    dist = index.bfs_distances_from(0)
    far = max(range(n), key=dist.__getitem__)
    dist2 = index.bfs_distances_from(far)
    return max(dist2)


def degree_statistics(graph: WeightedGraph) -> dict[str, float]:
    """Min / max / mean unweighted degree and min weighted degree.

    The minimum weighted degree is a trivial upper bound on the minimum
    cut (cut a single node off), used as a sanity check everywhere.
    """
    if graph.number_of_nodes == 0:
        raise GraphError("degree statistics of an empty graph are undefined")
    degrees = [graph.degree(u) for u in graph.nodes]
    weighted = [graph.weighted_degree(u) for u in graph.nodes]
    return {
        "min_degree": float(min(degrees)),
        "max_degree": float(max(degrees)),
        "mean_degree": sum(degrees) / len(degrees),
        "min_weighted_degree": float(min(weighted)),
    }


def min_weighted_degree(graph: WeightedGraph) -> float:
    """``min_v δ(v)`` — the singleton-cut upper bound on λ."""
    return degree_statistics(graph)["min_weighted_degree"]


def edge_connectivity_upper_bound(graph: WeightedGraph) -> float:
    """A cheap upper bound on λ (currently the singleton bound)."""
    return min_weighted_degree(graph)


def is_spanning_tree(graph: WeightedGraph, edges: Iterable[tuple[Node, Node]]) -> bool:
    """True when ``edges`` form a spanning tree of ``graph``'s node set."""
    edge_list = list(edges)
    node_set = set(graph.nodes)
    if len(edge_list) != len(node_set) - 1:
        return False
    parent: dict[Node, Node] = {u: u for u in node_set}

    def find(x: Node) -> Node:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edge_list:
        if u not in node_set or v not in node_set or not graph.has_edge(u, v):
            return False
        ru, rv = find(u), find(v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True
