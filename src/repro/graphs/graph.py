"""Weighted undirected graph used by every algorithm in the library.

The representation is a plain adjacency map ``{u: {v: weight}}``.  Parallel
edges are merged by *summing* weights, which is the correct semantics for
cut problems: the capacity crossing a cut is the total weight of crossing
edges, so a multigraph and its weighted simple projection have identical
cut functions.

Design notes
------------
* Nodes may be any hashable object, although the generators in
  :mod:`repro.graphs.generators` produce consecutive integers.
* Weights must be strictly positive (zero-weight edges are cut-irrelevant
  and would poison minimum-spanning-tree tie-breaking).
* The class is deliberately small and dependency-free; ``networkx`` enters
  the code base only through :mod:`repro.graphs.io` conversion helpers.
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from ..errors import DisconnectedGraphError, GraphError
from .index import GraphIndex

Node = Hashable
Edge = tuple[Node, Node]
WeightedEdge = tuple[Node, Node, float]


def edge_key(u: Node, v: Node) -> Edge:
    """Return a canonical (order-independent) key for the edge ``{u, v}``.

    Sorting is done on ``repr`` when the nodes are not mutually orderable,
    so mixed node types never raise.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class WeightedGraph:
    """An undirected graph with strictly positive edge weights.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples used
        to populate the graph.  Parallel edges are merged by summing.
    """

    def __init__(self, edges: Optional[Iterable] = None) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}
        self._version = 0
        self._index_cache: Optional[tuple[int, "GraphIndex"]] = None
        self._hash_cache: Optional[tuple[int, str]] = None
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    u, v = edge
                    self.add_edge(u, v)
                else:
                    u, v, w = edge
                    self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _mutated(self) -> None:
        """Invalidate content-derived caches (index, hash)."""
        self._version += 1

    def add_node(self, u: Node) -> None:
        """Insert an isolated node ``u`` (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}
            self._mutated()

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert the undirected edge ``{u, v}``.

        If the edge already exists its weight is *increased* by ``weight``
        (multigraph-merge semantics).  Self-loops are rejected because
        they can never cross a cut.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        self.add_node(u)
        self.add_node(v)
        new_weight = self._adj[u].get(v, 0.0) + weight
        self._adj[u][v] = new_weight
        self._adj[v][u] = new_weight
        self._mutated()

    def set_edge_weight(self, u: Node, v: Node, weight: float) -> None:
        """Overwrite the weight of an existing edge ``{u, v}``.

        Setting an edge to its current weight is a no-op: the graph
        content is unchanged, so the cached :meth:`index` and
        :meth:`content_hash` stay valid and downstream result caches
        keep serving their entries.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        if self._adj[u][v] == weight:
            return
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._mutated()

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``{u, v}``; raise :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._mutated()

    def remove_node(self, u: Node) -> None:
        """Delete node ``u`` and all incident edges."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} does not exist")
        for v in list(self._adj[u]):
            del self._adj[v][u]
        del self._adj[u]
        self._mutated()

    # ------------------------------------------------------------------
    # Seams for the dynamic subsystem (:mod:`repro.dynamic`)
    # ------------------------------------------------------------------
    def _adopt_caches(
        self,
        index: Optional["GraphIndex"] = None,
        content_hash: Optional[str] = None,
    ) -> None:
        """Install externally maintained caches for the *current* version.

        The incremental maintainer in :mod:`repro.dynamic.incremental`
        patches a :class:`GraphIndex` and a content digest in place after
        each mutation; this seam re-registers them so :meth:`index` and
        :meth:`content_hash` serve the patched values instead of
        rebuilding.  Callers are responsible for equivalence with a
        from-scratch rebuild.
        """
        if index is not None:
            self._index_cache = (self._version, index)
        if content_hash is not None:
            self._hash_cache = (self._version, content_hash)

    def _insert_edge_at(
        self, u: Node, v: Node, weight: float, pos_u: int, pos_v: int
    ) -> None:
        """Re-insert edge ``{u, v}`` at exact adjacency positions.

        Plain :meth:`add_edge` appends the neighbour at the *end* of each
        adjacency map, so undoing a removal with it would permute the
        insertion order the CSR index is built from.  Mutation-log undo
        uses this instead to restore bit-identical adjacency order.
        """
        if self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        for node, other, pos in ((u, v, pos_u), (v, u, pos_v)):
            items = list(self._adj[node].items())
            items.insert(pos, (other, weight))
            self._adj[node] = dict(items)
        self._mutated()

    def _restore_node_at(
        self,
        u: Node,
        pos: int,
        incident: Iterable[tuple[Node, float, int]],
    ) -> None:
        """Re-insert node ``u`` at position ``pos`` with its old edges.

        ``incident`` lists ``(neighbour, weight, position-in-neighbour)``
        in the node's original adjacency order; together with ``pos``
        (the node's slot in the graph's node order) this restores the
        exact pre-:meth:`remove_node` insertion order.
        """
        if u in self._adj:
            raise GraphError(f"node {u!r} already exists")
        incident = list(incident)
        items = list(self._adj.items())
        items.insert(pos, (u, {v: w for v, w, _ in incident}))
        self._adj = dict(items)
        for v, w, pos_v in incident:
            nbr_items = list(self._adj[v].items())
            nbr_items.insert(pos_v, (u, w))
            self._adj[v] = dict(nbr_items)
        self._mutated()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def __contains__(self, u: Node) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def number_of_nodes(self) -> int:
        return len(self._adj)

    @property
    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises if the edge is absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adj[u][v]

    def neighbors(self, u: Node) -> list[Node]:
        """Neighbours of ``u`` in insertion order."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} does not exist")
        return list(self._adj[u])

    def degree(self, u: Node) -> int:
        """Number of incident edges (unweighted degree)."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} does not exist")
        return len(self._adj[u])

    def weighted_degree(self, u: Node) -> float:
        """Total weight of edges incident to ``u`` — δ(u) in the paper."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} does not exist")
        return sum(self._adj[u].values())

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over every undirected edge exactly once as ``(u, v, w)``."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield (u, v, w)

    def edge_list(self) -> list[WeightedEdge]:
        """Materialised, canonically sorted list of edges (stable output)."""
        return sorted(
            ((min(u, v), max(u, v), w) for u, v, w in self.edges()),
            key=lambda e: (repr(e[0]), repr(e[1])),
        ) if not all(isinstance(n, int) for n in self._adj) else sorted(
            ((u, v, w) if u <= v else (v, u, w) for u, v, w in self.edges())
        )

    def index(self) -> "GraphIndex":
        """The cached :class:`~repro.graphs.index.GraphIndex` of this graph.

        Built on first access and reused until the graph mutates (any
        ``add_*``/``remove_*``/``set_edge_weight`` call invalidates it),
        so every layer of a solve — the CONGEST engine, centralized
        distance helpers, connectivity checks — shares one flat view
        instead of rebuilding adjacency dicts per call.
        """
        cached = self._index_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        built = GraphIndex(self)
        self._index_cache = (self._version, built)
        return built

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical (node set, edge list) content.

        The digest is computed over the sorted node set and the sorted
        edge list with weights, so it is stable across node/edge
        insertion order and multigraph merge history: two graphs with
        the same nodes and the same merged edge weights hash
        identically.  This is the identity the execution layer's result
        cache keys on (:mod:`repro.exec.cache`).  Like :meth:`index`,
        the digest is cached until the graph mutates.

        Nodes are canonicalised via ``repr``, so distinct nodes must
        have distinct reprs (true for the int/str nodes the generators
        produce); weights are canonicalised via ``repr(float(w))``,
        which round-trips exactly.
        """
        cached = self._hash_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        lines = [f"n:{r}" for r in sorted(repr(u) for u in self._adj)]
        lines.extend(
            f"e:{a}|{b}|{w}"
            for a, b, w in sorted(
                (min(repr(u), repr(v)), max(repr(u), repr(v)), repr(float(w)))
                for u, v, w in self.edges()
            )
        )
        digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
        self._hash_cache = (self._version, digest)
        return digest

    # ------------------------------------------------------------------
    # Cut machinery
    # ------------------------------------------------------------------
    def cut_value(self, node_set: Iterable[Node]) -> float:
        """Total weight of edges with exactly one endpoint in ``node_set``.

        This is the function ``C(X)`` defined in Section 1 of the paper.
        Nodes of ``node_set`` that are not in the graph raise
        :class:`GraphError`; an empty or full set raises
        :class:`GraphError` because the paper's minimisation excludes the
        trivial cuts.
        """
        members = set(node_set)
        for u in members:
            if u not in self._adj:
                raise GraphError(f"node {u!r} does not exist")
        if not members or len(members) == len(self._adj):
            raise GraphError("cut side must be a proper nonempty node subset")
        total = 0.0
        for u in members:
            for v, w in self._adj[u].items():
                if v not in members:
                    total += w
        return total

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Deep copy (adjacency maps are duplicated; nodes are shared)."""
        clone = WeightedGraph()
        for u in self._adj:
            clone.add_node(u)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = WeightedGraph()
        for u in keep:
            if u not in self._adj:
                raise GraphError(f"node {u!r} does not exist")
            sub.add_node(u)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def reweighted(self, weight_of) -> "WeightedGraph":
        """A copy whose edge ``(u, v)`` has weight ``weight_of(u, v, w)``.

        Used by the tree-packing code to build load-based metrics.
        """
        clone = WeightedGraph()
        for u in self._adj:
            clone.add_node(u)
        for u, v, w in self.edges():
            clone.add_edge(u, v, weight_of(u, v, w))
        return clone

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[Node]]:
        """Connected components as a list of node sets (BFS-based)."""
        remaining = set(self._adj)
        components: list[set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                nxt: list[Node] = []
                for u in frontier:
                    for v in self._adj[u]:
                        if v not in seen:
                            seen.add(v)
                            nxt.append(v)
                frontier = nxt
            components.append(seen)
            remaining -= seen
        return components

    def is_connected(self) -> bool:
        """True when the graph has exactly one connected component.

        Runs on the cached :meth:`index` (one CSR BFS), so repeated
        connectivity checks along a solve pipeline cost one traversal of
        flat arrays instead of rebuilding neighbour lists.
        """
        return len(self._adj) > 0 and self.index().is_connected()

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "algorithm requires a connected graph with at least one node"
            )

    # ------------------------------------------------------------------
    # Pickling (process-backend tasks ship graphs to workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop derived caches: workers rebuild them on demand."""
        return {"_adj": self._adj, "_version": self._version}

    def __setstate__(self, state: dict) -> None:
        self._adj = state["_adj"]
        self._version = state.get("_version", 0)
        self._index_cache = None
        self._hash_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedGraph(n={self.number_of_nodes}, "
            f"m={self.number_of_edges})"
        )
