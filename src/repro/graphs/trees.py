"""Rooted spanning trees: the combinatorial object at the heart of the paper.

A :class:`RootedTree` stores the parent map of a tree rooted at ``root``
and exposes exactly the notions Section 2 of the paper works with:

* ``v↓`` — the descendant set of ``v`` (:meth:`RootedTree.subtree`),
* tree edges, depths, pre/post orderings,
* least common ancestors (binary lifting — the *centralized reference*
  against which the distributed LCA of Step 5 is validated).

The class is immutable after construction, which lets expensive artefacts
(orderings, lifting tables) be computed lazily and cached safely.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from ..errors import TreeError
from .graph import WeightedGraph

Node = Hashable


class RootedTree:
    """A rooted tree given by a ``{child: parent}`` map.

    Parameters
    ----------
    root:
        The root node (its parent is ``None`` implicitly).
    parent:
        Mapping from every non-root node to its parent.  The transitive
        closure must reach ``root`` from every node; cycles or unknown
        parents raise :class:`TreeError`.
    """

    def __init__(self, root: Node, parent: Mapping[Node, Node]) -> None:
        if root in parent:
            raise TreeError("the root must not appear as a key of the parent map")
        self._root = root
        self._parent: dict[Node, Node] = dict(parent)
        self._children: dict[Node, list[Node]] = {root: []}
        for child in self._parent:
            self._children.setdefault(child, [])
        for child, par in self._parent.items():
            if par not in self._children:
                raise TreeError(f"parent {par!r} of {child!r} is not a tree node")
            self._children[par].append(child)
        self._depth = self._compute_depths()
        # Lazily built caches.
        self._preorder: Optional[list[Node]] = None
        self._postorder: Optional[list[Node]] = None
        self._euler: Optional[list[Node]] = None
        self._lift: Optional[dict[Node, list[Node]]] = None

    def _compute_depths(self) -> dict[Node, int]:
        """BFS from the root; validates that the parent map is acyclic
        and spanning (every node reachable from the root)."""
        depth = {self._root: 0}
        frontier = [self._root]
        while frontier:
            nxt: list[Node] = []
            for u in frontier:
                for c in self._children[u]:
                    depth[c] = depth[u] + 1
                    nxt.append(c)
            frontier = nxt
        if len(depth) != len(self._children):
            unreached = set(self._children) - set(depth)
            raise TreeError(
                f"parent map contains a cycle or disconnected part; "
                f"{len(unreached)} node(s) unreachable from root"
            )
        return depth

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, root: Node, edges: Iterable[tuple[Node, Node]]) -> "RootedTree":
        """Build a rooted tree from an undirected edge list.

        The edges must form a tree containing ``root``; orientation is
        derived by a BFS from the root.
        """
        adjacency: dict[Node, list[Node]] = {root: []}
        edge_count = 0
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
            edge_count += 1
        if edge_count != len(adjacency) - 1:
            raise TreeError(
                f"{edge_count} edges cannot form a tree on {len(adjacency)} nodes"
            )
        parent: dict[Node, Node] = {}
        seen = {root}
        frontier = [root]
        while frontier:
            nxt: list[Node] = []
            for u in frontier:
                for v in adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        if len(seen) != len(adjacency):
            raise TreeError("edge list is disconnected from the root")
        return cls(root, parent)

    @classmethod
    def path(cls, n: int) -> "RootedTree":
        """The path ``0 - 1 - ... - n-1`` rooted at ``0`` (worst-case depth)."""
        if n <= 0:
            raise TreeError("a path tree needs at least one node")
        return cls(0, {i: i - 1 for i in range(1, n)})

    @classmethod
    def star(cls, n: int) -> "RootedTree":
        """The star with centre ``0`` and leaves ``1..n-1`` (depth one)."""
        if n <= 0:
            raise TreeError("a star tree needs at least one node")
        return cls(0, {i: 0 for i in range(1, n)})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Node:
        return self._root

    @property
    def nodes(self) -> list[Node]:
        """All nodes (root first, then parent-map insertion order)."""
        return list(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def __contains__(self, u: Node) -> bool:
        return u in self._children

    def parent(self, u: Node) -> Optional[Node]:
        """Parent of ``u``; ``None`` for the root."""
        self._require(u)
        return self._parent.get(u)

    def children(self, u: Node) -> list[Node]:
        """Children of ``u`` in insertion order."""
        self._require(u)
        return list(self._children[u])

    def depth(self, u: Node) -> int:
        """Number of edges on the path from the root to ``u``."""
        self._require(u)
        return self._depth[u]

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth.values())

    def is_leaf(self, u: Node) -> bool:
        self._require(u)
        return not self._children[u]

    def leaves(self) -> list[Node]:
        return [u for u in self._children if not self._children[u]]

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Tree edges oriented as ``(child, parent)``."""
        for child, par in self._parent.items():
            yield (child, par)

    def _require(self, u: Node) -> None:
        if u not in self._children:
            raise TreeError(f"node {u!r} is not in the tree")

    # ------------------------------------------------------------------
    # Orders and subtrees
    # ------------------------------------------------------------------
    def preorder(self) -> list[Node]:
        """Nodes in depth-first preorder (iterative, recursion-free)."""
        if self._preorder is None:
            order: list[Node] = []
            stack = [self._root]
            while stack:
                u = stack.pop()
                order.append(u)
                # Reverse so the first child is visited first.
                stack.extend(reversed(self._children[u]))
            self._preorder = order
        return list(self._preorder)

    def postorder(self) -> list[Node]:
        """Nodes in depth-first postorder: every node after its children."""
        if self._postorder is None:
            self._postorder = list(reversed(self._reverse_postorder()))
        return list(self._postorder)

    def _reverse_postorder(self) -> list[Node]:
        order: list[Node] = []
        stack = [self._root]
        while stack:
            u = stack.pop()
            order.append(u)
            stack.extend(self._children[u])
        return order

    def subtree(self, u: Node) -> set[Node]:
        """The descendant set ``u↓`` (including ``u`` itself)."""
        self._require(u)
        members = {u}
        stack = [u]
        while stack:
            x = stack.pop()
            for c in self._children[x]:
                members.add(c)
                stack.append(c)
        return members

    def subtree_size(self, u: Node) -> int:
        """``|u↓|`` without materialising the set for every caller."""
        return len(self.subtree(u))

    def subtree_sizes(self) -> dict[Node, int]:
        """All subtree sizes in one postorder sweep (O(n))."""
        size = {u: 1 for u in self._children}
        for u in self.postorder():
            par = self._parent.get(u)
            if par is not None:
                size[par] += size[u]
        return size

    def ancestors(self, u: Node, include_self: bool = False) -> list[Node]:
        """Ancestors of ``u`` ordered from ``u`` upward to the root."""
        self._require(u)
        chain: list[Node] = [u] if include_self else []
        x = self._parent.get(u)
        while x is not None:
            chain.append(x)
            x = self._parent.get(x)
        return chain

    def is_ancestor(self, a: Node, u: Node) -> bool:
        """True when ``a`` is an ancestor of ``u`` (or ``a == u``)."""
        self._require(a)
        self._require(u)
        while u is not None and self._depth[u] >= self._depth[a]:
            if u == a:
                return True
            u = self._parent.get(u)  # type: ignore[assignment]
        return False

    def path_to_root(self, u: Node) -> list[Node]:
        """Alias for ``ancestors(u, include_self=True)``."""
        return self.ancestors(u, include_self=True)

    # ------------------------------------------------------------------
    # Least common ancestors (binary lifting) — centralized reference
    # ------------------------------------------------------------------
    def _build_lifting(self) -> dict[Node, list[Node]]:
        if self._lift is None:
            height = max(1, self.height())
            levels = max(1, height.bit_length())
            lift: dict[Node, list[Node]] = {}
            for u in self.preorder():
                table = [self._parent.get(u, u)]
                lift[u] = table
            for k in range(1, levels):
                for u in lift:
                    table = lift[u]
                    table.append(lift[table[k - 1]][k - 1])
            self._lift = lift
        return self._lift

    def lca(self, u: Node, v: Node) -> Node:
        """Least common ancestor of ``u`` and ``v`` in O(log n)."""
        self._require(u)
        self._require(v)
        lift = self._build_lifting()
        du, dv = self._depth[u], self._depth[v]
        if du < dv:
            u, v = v, u
            du, dv = dv, du
        diff = du - dv
        k = 0
        while diff:
            if diff & 1:
                u = lift[u][k]
            diff >>= 1
            k += 1
        if u == v:
            return u
        for k in range(len(lift[u]) - 1, -1, -1):
            if lift[u][k] != lift[v][k]:
                u = lift[u][k]
                v = lift[v][k]
        return self._parent[u]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_graph(self, weight: float = 1.0) -> WeightedGraph:
        """The underlying undirected tree as a :class:`WeightedGraph`."""
        g = WeightedGraph()
        g.add_node(self._root)
        for child, par in self._parent.items():
            g.add_edge(child, par, weight)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedTree(root={self._root!r}, n={len(self)})"
