"""Graph families used by the tests, examples and benchmark harness.

All generators are deterministic given a ``seed`` and return
:class:`~repro.graphs.graph.WeightedGraph` instances with integer nodes
``0..n-1``.  They cover the workloads the evaluation needs:

* structured topologies (paths, cycles, grids, complete graphs, stars),
* random models (Erdős–Rényi, random regular, random trees via Prüfer),
* *planted-cut* families where the minimum cut value is known by
  construction — the workhorse of the exactness experiments (E2, E4).
"""

from __future__ import annotations

import random

from ..errors import AlgorithmError, GraphError
from .graph import Node, WeightedGraph
from .trees import RootedTree


# ----------------------------------------------------------------------
# Structured families
# ----------------------------------------------------------------------
def path_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """The path ``0 - 1 - ... - n-1`` (min cut = ``weight``, D = n-1)."""
    _require_positive(n)
    g = WeightedGraph()
    g.add_node(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """The cycle on ``n >= 3`` nodes (min cut = ``2 * weight``)."""
    if n < 3:
        raise GraphError("a cycle needs at least three nodes")
    g = path_graph(n, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def complete_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """K_n (min cut = ``(n-1) * weight``, D = 1)."""
    _require_positive(n)
    g = WeightedGraph()
    g.add_node(0)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, weight)
    return g


def star_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """Star with centre ``0`` and ``n - 1`` leaves (min cut = ``weight``)."""
    _require_positive(n)
    g = WeightedGraph()
    g.add_node(0)
    for leaf in range(1, n):
        g.add_edge(0, leaf, weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> WeightedGraph:
    """The ``rows x cols`` grid; node ``(r, c)`` is numbered ``r*cols + c``.

    Minimum cut is ``min(rows, cols) >= 2`` corner cuts aside — for the
    benchmark we only rely on its diameter ``rows + cols - 2`` and size.
    """
    _require_positive(rows)
    _require_positive(cols)
    g = WeightedGraph()
    g.add_node(0)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1, weight)
            if r + 1 < rows:
                g.add_edge(u, u + cols, weight)
    return g


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------
def gnp_random_graph(
    n: int,
    p: float,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 1.0),
) -> WeightedGraph:
    """Erdős–Rényi G(n, p) with optional uniform random weights.

    The graph may be disconnected; use :func:`connected_gnp_graph` when an
    algorithm requires connectivity.
    """
    _require_positive(n)
    if not 0.0 <= p <= 1.0:
        raise AlgorithmError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    lo, hi = weight_range
    g = WeightedGraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                w = lo if lo == hi else rng.uniform(lo, hi)
                g.add_edge(u, v, w)
    return g


def connected_gnp_graph(
    n: int,
    p: float,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 1.0),
    max_attempts: int = 200,
) -> WeightedGraph:
    """G(n, p) conditioned on connectivity (rejection sampling)."""
    for attempt in range(max_attempts):
        g = gnp_random_graph(n, p, seed=seed + attempt, weight_range=weight_range)
        if g.is_connected():
            return g
    raise AlgorithmError(
        f"no connected G({n}, {p}) sample in {max_attempts} attempts; "
        "increase p"
    )


def random_regular_graph(n: int, d: int, seed: int = 0, max_attempts: int = 500) -> WeightedGraph:
    """A simple ``d``-regular graph via the configuration model.

    Rejection-samples perfect matchings of node stubs until the result is
    simple (no self-loops or parallel edges).  ``n * d`` must be even.
    """
    _require_positive(n)
    if d < 0 or d >= n:
        raise AlgorithmError(f"degree must satisfy 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise AlgorithmError("n * d must be even for a d-regular graph")
    rng = random.Random(seed)
    stubs = [u for u in range(n) for _ in range(d)]
    for _ in range(max_attempts):
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        if any(u == v for u, v in pairs):
            continue
        keys = {(min(u, v), max(u, v)) for u, v in pairs}
        if len(keys) != len(pairs):
            continue
        g = WeightedGraph()
        for u in range(n):
            g.add_node(u)
        for u, v in pairs:
            g.add_edge(u, v)
        return g
    raise AlgorithmError(
        f"failed to sample a simple {d}-regular graph on {n} nodes"
    )


def random_tree(n: int, seed: int = 0) -> RootedTree:
    """A uniformly random labelled tree (Prüfer decoding), rooted at 0."""
    _require_positive(n)
    if n == 1:
        return RootedTree(0, {})
    if n == 2:
        return RootedTree(0, {1: 0})
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    edges: list[tuple[int, int]] = []
    # Min-leaf Prüfer decoding using a simple pointer scan.
    import heapq

    leaves = [u for u in range(n) if degree[u] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return RootedTree.from_edges(0, edges)


def random_spanning_tree(graph: WeightedGraph, seed: int = 0) -> RootedTree:
    """A random spanning tree of ``graph`` (random-weight MST heuristic).

    Assign i.i.d. uniform weights to edges and keep the lightest spanning
    tree; this is not uniform over spanning trees but is fast, simple and
    well-spread — all the packing experiments need.
    """
    graph.require_connected()
    rng = random.Random(seed)
    edges = sorted(
        ((rng.random(), u, v) for u, v, _ in graph.edges()),
        key=lambda t: t[0],
    )
    parent_ds: dict[Node, Node] = {u: u for u in graph.nodes}

    def find(x: Node) -> Node:
        while parent_ds[x] != x:
            parent_ds[x] = parent_ds[parent_ds[x]]
            x = parent_ds[x]
        return x

    chosen: list[tuple[Node, Node]] = []
    for _, u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent_ds[ru] = rv
            chosen.append((u, v))
    root = graph.nodes[0]
    return RootedTree.from_edges(root, chosen)


# ----------------------------------------------------------------------
# Planted-cut families (ground-truth minimum cuts)
# ----------------------------------------------------------------------
def planted_cut_graph(
    side_sizes: tuple[int, int],
    cut_value: int,
    seed: int = 0,
    intra_p: float = 0.8,
) -> WeightedGraph:
    """Two dense blobs joined by exactly ``cut_value`` unit edges.

    Each side is a G(s, intra_p) sample *forced* connected by a Hamiltonian
    path, and every side node additionally gets enough intra-side edges to
    push its degree above ``cut_value``, so the planted bipartition is the
    unique minimum cut (value exactly ``cut_value``) whenever
    ``cut_value < min(side) - 1`` and ``intra_p`` is not tiny.

    Returns the graph; the planted side is ``{0, ..., side_sizes[0]-1}``.
    """
    left, right = side_sizes
    if left < 2 or right < 2:
        raise AlgorithmError("each side needs at least two nodes")
    if cut_value < 1:
        raise AlgorithmError("cut_value must be at least 1")
    rng = random.Random(seed)
    g = WeightedGraph()
    for u in range(left + right):
        g.add_node(u)

    def fill_side(lo: int, hi: int) -> None:
        for u in range(lo, hi - 1):
            g.add_edge(u, u + 1)
        for u in range(lo, hi):
            for v in range(u + 2, hi):
                if rng.random() < intra_p:
                    g.add_edge(u, v)

    fill_side(0, left)
    fill_side(left, left + right)
    # Exactly cut_value crossing edges, distinct pairs.
    crossing: set[tuple[int, int]] = set()
    while len(crossing) < cut_value:
        u = rng.randrange(0, left)
        v = rng.randrange(left, left + right)
        crossing.add((u, v))
    for u, v in sorted(crossing):
        g.add_edge(u, v)
    return g


def planted_cut_sides(side_sizes: tuple[int, int]) -> set[int]:
    """The planted side of :func:`planted_cut_graph` (left community)."""
    return set(range(side_sizes[0]))


def cycle_power_graph(n: int, k: int) -> WeightedGraph:
    """The ``k``-th power of a cycle: connect nodes at ring distance <= k.

    Every node has degree ``2k`` and the minimum cut is exactly ``2k``
    (singleton cuts; severing a longer arc costs ``k(k+1) ≥ 2k``), giving
    a clean family where λ grows linearly in the parameter — used by the
    rounds-vs-λ experiment (E2).
    """
    if n < 2 * k + 2:
        raise AlgorithmError("cycle power needs n >= 2k + 2")
    g = WeightedGraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n):
        for offset in range(1, k + 1):
            g.add_edge(u, (u + offset) % n)
    return g


def weighted_ring_of_cliques(
    clique_count: int,
    clique_size: int,
    bridge_weight: float = 1.0,
) -> WeightedGraph:
    """``clique_count`` cliques arranged in a ring, adjacent cliques joined
    by one edge of weight ``bridge_weight``.

    Minimum cut = ``2 * bridge_weight`` (snip the ring), provided
    ``clique_size >= 3`` and ``bridge_weight`` small; useful for weighted
    cut tests with a known answer.
    """
    if clique_count < 3:
        raise AlgorithmError("need at least three cliques for a ring")
    if clique_size < 3:
        raise AlgorithmError("cliques must have at least three nodes")
    g = WeightedGraph()
    for c in range(clique_count):
        base = c * clique_size
        for u in range(base, base + clique_size):
            for v in range(u + 1, base + clique_size):
                g.add_edge(u, v)
    for c in range(clique_count):
        u = c * clique_size
        v = ((c + 1) % clique_count) * clique_size + 1
        g.add_edge(u, v, bridge_weight)
    return g


def barbell_graph(side: int, bridges: int = 1) -> WeightedGraph:
    """Two K_side cliques joined by ``bridges`` unit edges (min cut = bridges
    when ``bridges < side - 1``)."""
    if side < 3:
        raise AlgorithmError("each bell needs at least three nodes")
    if not 1 <= bridges <= side:
        raise AlgorithmError("bridges must be between 1 and side")
    g = WeightedGraph()
    for u in range(side):
        for v in range(u + 1, side):
            g.add_edge(u, v)
            g.add_edge(side + u, side + v)
    for i in range(bridges):
        g.add_edge(i, side + i)
    return g


def hypercube_graph(dimension: int) -> WeightedGraph:
    """The ``d``-dimensional hypercube Q_d (min cut = d: corner cuts).

    Node ``i``'s neighbours differ in exactly one bit.  Edge
    connectivity equals the degree ``d``, and the diameter is ``d`` —
    a family where λ and D grow together while n = 2^d explodes.
    """
    if dimension < 1:
        raise AlgorithmError("hypercube dimension must be at least 1")
    g = WeightedGraph()
    n = 1 << dimension
    for u in range(n):
        g.add_node(u)
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if v > u:
                g.add_edge(u, v)
    return g


def torus_graph(rows: int, cols: int) -> WeightedGraph:
    """The ``rows × cols`` torus (grid with wraparound).

    4-regular for rows, cols ≥ 3; minimum cut 4 (singletons) — a
    constant-λ family with diameter Θ(rows + cols).
    """
    if rows < 3 or cols < 3:
        raise AlgorithmError("torus needs both dimensions at least 3")
    g = WeightedGraph()
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            g.add_edge(u, r * cols + (c + 1) % cols)
            g.add_edge(u, ((r + 1) % rows) * cols + c)
    return g


def caveman_graph(caves: int, cave_size: int) -> WeightedGraph:
    """Connected caveman graph: ``caves`` cliques in a ring, adjacent
    cliques sharing one *rewired* edge (an edge of each clique is
    redirected to the next clique).

    Minimum cut 2 (snip the ring) — the classic community-structure
    stress test for cut algorithms.
    """
    if caves < 3:
        raise AlgorithmError("need at least three caves")
    if cave_size < 3:
        raise AlgorithmError("caves need at least three nodes")
    g = WeightedGraph()
    for c in range(caves):
        base = c * cave_size
        for u in range(base, base + cave_size):
            for v in range(u + 1, base + cave_size):
                g.add_edge(u, v)
    for c in range(caves):
        u = c * cave_size            # a designated member of cave c
        v = ((c + 1) % caves) * cave_size + 1
        g.remove_edge(u, u + 1)      # rewire one intra-cave edge...
        g.add_edge(u, v)             # ...to the next cave
    return g


def _require_positive(n: int) -> None:
    if n <= 0:
        raise AlgorithmError(f"size must be positive, got {n}")


FAMILY_BUILDERS = {
    "path": lambda n, seed=0: path_graph(n),
    "cycle": lambda n, seed=0: cycle_graph(max(3, n)),
    "complete": lambda n, seed=0: complete_graph(n),
    "star": lambda n, seed=0: star_graph(n),
    "grid": lambda n, seed=0: grid_graph(_near_square(n), _near_square(n)),
    "gnp": lambda n, seed=0: connected_gnp_graph(n, min(1.0, 4.0 * _log2(n) / n), seed=seed),
    "regular": lambda n, seed=0: random_regular_graph(n - (n % 2), 4, seed=seed),
    "hypercube": lambda n, seed=0: hypercube_graph(max(2, (max(2, n) - 1).bit_length())),
    "torus": lambda n, seed=0: torus_graph(max(3, _near_square(n)), max(3, _near_square(n))),
    "caveman": lambda n, seed=0: caveman_graph(max(3, n // 6), 6),
}
"""Named builders used by the benchmark sweeps (``n`` is approximate for
the grid family, which rounds to the nearest square)."""


def _near_square(n: int) -> int:
    side = max(2, round(n ** 0.5))
    return side


def _log2(n: int) -> float:
    import math

    return math.log2(max(2, n))


def build_family(name: str, n: int, seed: int = 0) -> WeightedGraph:
    """Instantiate one of the named benchmark families at size ~``n``."""
    if name not in FAMILY_BUILDERS:
        raise AlgorithmError(
            f"unknown family {name!r}; choose from {sorted(FAMILY_BUILDERS)}"
        )
    return FAMILY_BUILDERS[name](n, seed=seed)
