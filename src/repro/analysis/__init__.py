"""Measurement analysis helpers (system S12 of DESIGN.md)."""

from .report import build_report, solver_comparison_section, write_report
from .rounds import PowerLawFit, fit_power_law, normalized_rounds
from .tables import format_cut_results, format_table

__all__ = [
    "build_report",
    "solver_comparison_section",
    "write_report",
    "PowerLawFit",
    "fit_power_law",
    "normalized_rounds",
    "format_cut_results",
    "format_table",
]
