"""ASCII tables — the output format of every benchmark harness.

The paper is a brief announcement without empirical tables, so the
harness reports take the form of the *claims* restated with measured
numbers next to them; these helpers keep that output consistent.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render a fixed-width table with a rule under the header."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cut_results(results, *, truth=None, registry=None, title="") -> str:
    """Render a sequence of :class:`repro.api.CutResult` as a table.

    ``truth`` (a known λ, e.g. from the registry's ground-truth solver)
    adds a ratio column; ``registry`` (a
    :class:`repro.api.SolverRegistry`) resolves solver names to their
    display labels and kinds, with the ground-truth solver marked.
    """
    headers = ["algorithm", "kind", "cut value", "ratio", "time (s)", "congest (s)"]
    rows = []
    for result in results:
        label, kind = result.solver or "<unnamed>", ""
        if registry is not None and result.solver in registry:
            spec = registry.get(result.solver)
            label = spec.display + (" (ground truth)" if spec.ground_truth else "")
            kind = spec.kind
        ratio = round(result.value / truth, 4) if truth else "-"
        # Engine wall time (RunMetrics.wall_time): identical protocols
        # cost identical rounds on every engine, so at fixed rounds this
        # column is a pure delivery-engine speed observable.
        congest_time = (
            f"{result.metrics.wall_time:.4f}" if result.metrics is not None else "-"
        )
        rows.append(
            [label, kind, result.value, ratio, f"{result.wall_time:.4f}", congest_time]
        )
    return format_table(headers, rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.3f}"
    return str(cell)
