"""Aggregate benchmark result tables into one reproduction report.

Every benchmark writes its table to ``benchmarks/results/<id>.txt``;
:func:`build_report` stitches them into a single markdown document with
a stable experiment ordering, so ``REPORT.md`` can be regenerated after
any benchmark run:

```python
from repro.analysis.report import build_report, write_report
write_report("benchmarks/results", "REPORT.md")
```
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..errors import AlgorithmError

EXPERIMENT_ORDER = [
    "E1_one_respect_rounds",
    "E2_exact_rounds_vs_lambda",
    "E3_approx_quality",
    "E4_tree_packing",
    "E5_lower_bound_family",
    "E6_congestion_audit",
    "F1_figure1_structures",
    "T1_claims_table",
    "A1_threshold_ablation",
    "A2_pipelining_ablation",
    "A3_respect_ablation",
    "A4_certified_bounds",
    "P1_engine_throughput",
    "P2_index_baselines",
    "P3_service_latency",
    "P4_dynamic_mutations",
    "P5_scheduler_balance",
    "P6_cache_store",
]

HEADER = (
    "# Reproduction report\n\n"
    "Regenerated from `benchmarks/results/` "
    "(produce them with `pytest benchmarks/ --benchmark-only`).\n"
    "Paper: Nanongkai, *Almost-Tight Approximation Distributed Algorithm "
    "for Minimum Cut*, PODC 2014.\n"
)


def build_report(results_dir: Union[str, Path]) -> str:
    """Concatenate all known result tables in experiment order.

    Unknown extra files are appended at the end (sorted), so custom
    experiments are not silently dropped; missing known experiments are
    listed as pending.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        raise AlgorithmError(f"no results directory at {directory}")
    sections = [HEADER]
    seen = set()
    missing = []
    for experiment_id in EXPERIMENT_ORDER:
        path = directory / f"{experiment_id}.txt"
        if path.exists():
            seen.add(path.name)
            sections.append(f"## {experiment_id}\n\n```\n{path.read_text().rstrip()}\n```\n")
        else:
            missing.append(experiment_id)
    for path in sorted(directory.glob("*.txt")):
        if path.name not in seen:
            sections.append(
                f"## {path.stem} (unregistered)\n\n```\n{path.read_text().rstrip()}\n```\n"
            )
    if missing:
        sections.append(
            "## Pending\n\nNot yet generated: " + ", ".join(missing) + "\n"
        )
    return "\n".join(sections)


def write_report(results_dir: Union[str, Path], output: Union[str, Path]) -> Path:
    """Write :func:`build_report`'s output to ``output``; returns the path."""
    path = Path(output)
    path.write_text(build_report(results_dir), encoding="utf-8")
    return path


def solver_comparison_section(
    instance: str, results, *, truth=None, registry=None
) -> str:
    """A markdown report section for façade results on one instance.

    ``results`` is a sequence of :class:`repro.api.CutResult` (e.g. from
    :func:`repro.api.solve_all`); the rendered table can be written into
    ``benchmarks/results/`` and picked up by :func:`build_report` like
    any other experiment output.
    """
    from .tables import format_cut_results

    table = format_cut_results(results, truth=truth, registry=registry)
    return f"## Solver comparison — {instance}\n\n```\n{table}\n```\n"
