"""Scaling analysis: fit measured round counts against theory curves.

The claims under test are of the form ``rounds = O~(√n + D)``, so the
benchmarks fit ``log(rounds) = α·log(x) + c`` against ``x = √n + D`` (or
plain n) and report the exponent α.  An exponent near 1 against
``√n + D`` — equivalently near 0.5 against n at small D — reproduces the
theorem's shape; polylog slack pushes it slightly above.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import AlgorithmError


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ exp(intercept) · x^exponent`` with an R² quality score."""

    exponent: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return math.exp(self.intercept) * (x ** self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares line through ``(log x, log y)`` (no numpy needed)."""
    if len(xs) != len(ys):
        raise AlgorithmError("xs and ys must have equal length")
    if len(xs) < 2:
        raise AlgorithmError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise AlgorithmError("power-law fit needs positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise AlgorithmError("all x values identical; cannot fit exponent")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=slope, intercept=intercept, r_squared=r_squared)


def normalized_rounds(rounds: int, n: int, diameter: int) -> float:
    """``rounds / (√n + D)`` — flat curves reproduce the theorem."""
    return rounds / (math.sqrt(max(1, n)) + max(1, diameter))
