"""Dynamic-graph subsystem: mutation logs, incremental indexing, sessions.

The static pipeline treats every graph as immutable content: mutate it
and the next access rebuilds the CSR index and content hash from
scratch.  This package turns the engine into a dynamic-graph solver:

* :mod:`repro.dynamic.ops` — typed mutation ops with apply/undo and a
  canonical serialized form (:class:`MutationLog`);
* :mod:`repro.dynamic.incremental` — in-place :class:`GraphIndex`
  patching and an incrementally maintained ``content_hash``
  (:class:`IncrementalIndexer`), with rebuild fallback under a patch
  budget;
* :mod:`repro.dynamic.session` — :class:`DynamicSession`, which gates
  ``solve()`` behind cut certificates and the engine's result cache.

Entry point: :meth:`repro.api.Engine.dynamic_session`.
"""

from .incremental import DigestState, IncrementalIndexer, index_equal
from .ops import (
    AddEdge,
    AddNode,
    Effect,
    MutationLog,
    MutationOp,
    RemoveEdge,
    RemoveNode,
    Reweight,
    apply_op,
    op_from_json,
    op_from_text,
    parse_stream,
    revert,
)
from .session import CERTIFICATE_KINDS, DynamicSession, certify_effect

__all__ = [
    "AddEdge",
    "AddNode",
    "CERTIFICATE_KINDS",
    "DigestState",
    "DynamicSession",
    "Effect",
    "IncrementalIndexer",
    "MutationLog",
    "MutationOp",
    "RemoveEdge",
    "RemoveNode",
    "Reweight",
    "apply_op",
    "certify_effect",
    "index_equal",
    "op_from_json",
    "op_from_text",
    "parse_stream",
    "revert",
]
