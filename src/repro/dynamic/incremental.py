"""Incremental :class:`GraphIndex` and ``content_hash`` maintenance.

P2 showed the full CSR rebuild is the dominant fixed cost of touching a
graph: every mutation bumps the version and the next ``graph.index()``
call pays O(n + m) again.  For single-edge ops that is absurd — the new
index differs from the old one in two slots and a couple of boundary
shifts.  This module patches the arrays in place:

* ``reweight`` touches two ``adj_weight`` slots and two weight-map
  entries — O(1);
* ``add_node`` appends one empty CSR row;
* ``add_edge`` / ``remove_edge`` splice two directed edge slots in or
  out, shift the ``adj_start`` boundaries after the touched rows, and
  remap the edge ids stored in ``reverse_edge`` / ``edge_id_maps``
  (ids are row-contiguous, so only rows at or after the first touched
  row can hold a shifted id).

The companion digest state keeps the sorted node/edge lines of
:meth:`WeightedGraph.content_hash` as a live sorted list, so the hash
of the mutated graph is an O(log m) splice plus one SHA-256 over the
joined lines — bit-identical to the cold digest, which is what lets
:class:`~repro.exec.cache.ResultCache` keep serving entries for every
previously-seen graph state across a mutation session.

Patched results are re-registered on the graph through the
``WeightedGraph._adopt_caches`` seam.  When a patch would shift more
slots than the configured budget (or the op shape is unsupported, e.g.
removing a connected node), the maintainer falls back to an ordinary
rebuild; ``validate=True`` asserts equivalence with a from-scratch
rebuild after every op, and the test suite runs whole mutation streams
under it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.index import GraphIndex
from .ops import Effect

# ----------------------------------------------------------------------
# Incremental content-hash state
# ----------------------------------------------------------------------


def _edge_entry(u: Node, v: Node, w: float) -> tuple[tuple, str]:
    """Sort key and formatted line for one edge, as the cold hash sorts.

    The cold digest sorts ``(min_repr, max_repr, weight_repr)`` tuples
    *before* formatting, so the live state must keep tuple keys — the
    formatted lines themselves sort differently around the ``|``
    separator.
    """
    ru, rv = repr(u), repr(v)
    a, b = (ru, rv) if ru <= rv else (rv, ru)
    key = (a, b, repr(float(w)))
    return key, f"e:{key[0]}|{key[1]}|{key[2]}"


class DigestState:
    """Live sorted node/edge lines mirroring ``content_hash``'s input."""

    __slots__ = ("_node_keys", "_edge_keys", "_edge_lines")

    def __init__(self, graph: WeightedGraph) -> None:
        self._node_keys: list[str] = sorted(repr(u) for u in graph.nodes)
        entries = sorted(_edge_entry(u, v, w) for u, v, w in graph.edges())
        self._edge_keys: list[tuple] = [key for key, _ in entries]
        self._edge_lines: list[str] = [line for _, line in entries]

    def digest(self) -> str:
        lines = [f"n:{r}" for r in self._node_keys]
        lines.extend(self._edge_lines)
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    # -- primitive splices ---------------------------------------------
    def _add_node(self, u: Node) -> None:
        insort(self._node_keys, repr(u))

    def _remove_node(self, u: Node) -> None:
        i = bisect_left(self._node_keys, repr(u))
        del self._node_keys[i]

    def _add_edge(self, u: Node, v: Node, w: float) -> None:
        key, line = _edge_entry(u, v, w)
        i = bisect_left(self._edge_keys, key)
        self._edge_keys.insert(i, key)
        self._edge_lines.insert(i, line)

    def _remove_edge(self, u: Node, v: Node, w: float) -> None:
        key, _ = _edge_entry(u, v, w)
        i = bisect_left(self._edge_keys, key)
        if i >= len(self._edge_keys) or self._edge_keys[i] != key:
            raise AlgorithmError(
                f"digest state out of sync: edge ({u!r}, {v!r}, {w!r}) "
                "not tracked"
            )
        del self._edge_keys[i]
        del self._edge_lines[i]

    # -- effect application --------------------------------------------
    def apply(self, effect: Effect) -> None:
        kind = effect.kind
        if kind == "noop":
            return
        if kind == "add_edge":
            for node in effect.created_nodes:
                self._add_node(node)
            self._add_edge(effect.u, effect.v, effect.new_weight)
        elif kind in ("merge_edge", "reweight"):
            self._remove_edge(effect.u, effect.v, effect.old_weight)
            self._add_edge(effect.u, effect.v, effect.new_weight)
        elif kind == "remove_edge":
            self._remove_edge(effect.u, effect.v, effect.old_weight)
        elif kind == "add_node":
            self._add_node(effect.u)
        elif kind == "remove_node":
            self._remove_node(effect.u)
            for v, w, _pos in effect.incident:
                self._remove_edge(effect.u, v, w)
        else:  # pragma: no cover - kinds are library-controlled
            raise AlgorithmError(f"unknown effect kind {kind!r}")

    def unapply(self, effect: Effect) -> None:
        kind = effect.kind
        if kind == "noop":
            return
        if kind == "add_edge":
            self._remove_edge(effect.u, effect.v, effect.new_weight)
            for node in effect.created_nodes:
                self._remove_node(node)
        elif kind in ("merge_edge", "reweight"):
            self._remove_edge(effect.u, effect.v, effect.new_weight)
            self._add_edge(effect.u, effect.v, effect.old_weight)
        elif kind == "remove_edge":
            self._add_edge(effect.u, effect.v, effect.old_weight)
        elif kind == "add_node":
            self._remove_node(effect.u)
        elif kind == "remove_node":
            self._add_node(effect.u)
            for v, w, _pos in effect.incident:
                self._add_edge(effect.u, v, w)
        else:  # pragma: no cover - kinds are library-controlled
            raise AlgorithmError(f"unknown effect kind {kind!r}")


# ----------------------------------------------------------------------
# In-place CSR patches
# ----------------------------------------------------------------------


def _tuple_set(tpl: tuple, i: int, value) -> tuple:
    lst = list(tpl)
    lst[i] = value
    return tuple(lst)


def _dict_insert(d: dict, pos: int, key, value) -> dict:
    """Insert ``key: value`` at ``pos`` in insertion order.

    Appends in place (returning the same dict) when ``pos`` is the end;
    otherwise rebuilds, and the caller must reinstall the returned dict.
    """
    if pos >= len(d):
        d[key] = value
        return d
    items = list(d.items())
    items.insert(pos, (key, value))
    return dict(items)


def _patch_set_weight(index: GraphIndex, u: Node, v: Node, w: float) -> None:
    iu, iv = index.node_id[u], index.node_id[v]
    e_uv = index.edge_id_maps[iu][v]
    e_vu = index.edge_id_maps[iv][u]
    index.adj_weight[e_uv] = w
    index.adj_weight[e_vu] = w
    index.weight_maps[iu][v] = w
    index.weight_maps[iv][u] = w


def _patch_append_node(index: GraphIndex, u: Node) -> None:
    index.node_id[u] = len(index.nodes)
    index.nodes = index.nodes + (u,)
    index.adj_start.append(index.adj_start[-1])
    index.neighbor_lists = index.neighbor_lists + ((),)
    index.weight_maps = index.weight_maps + ({},)
    index.edge_id_maps = index.edge_id_maps + ({},)


def _patch_pop_last_node(index: GraphIndex, u: Node) -> None:
    """Remove the final node, which must be isolated."""
    index.nodes = index.nodes[:-1]
    del index.node_id[u]
    index.adj_start.pop()
    index.neighbor_lists = index.neighbor_lists[:-1]
    index.weight_maps = index.weight_maps[:-1]
    index.edge_id_maps = index.edge_id_maps[:-1]


def _remap_edge_ids(
    index: GraphIndex, first_row: int, remap
) -> None:
    """Apply ``remap`` to every stored directed edge id that may shift.

    Edge ids are row-contiguous, so ids in rows before ``first_row``
    are untouched by a splice at or after that row's slots.
    """
    rv = index.reverse_edge
    for i in range(len(rv)):
        rv[i] = remap(rv[i])
    for k in range(first_row, len(index.nodes)):
        row = index.edge_id_maps[k]
        for key in row:
            row[key] = remap(row[key])


def _patch_insert_edge(
    index: GraphIndex,
    u: Node,
    v: Node,
    w: float,
    pos_u: Optional[int] = None,
    pos_v: Optional[int] = None,
) -> None:
    """Splice the two directed slots of new edge ``{u, v}`` into the CSR.

    ``pos_u``/``pos_v`` are adjacency positions within each endpoint's
    row (default: append — the forward-apply case; undo passes the
    recorded original positions).
    """
    node_id = index.node_id
    iu, iv = node_id[u], node_id[v]
    adj_start = index.adj_start
    n = len(index.nodes)
    du = adj_start[iu + 1] - adj_start[iu]
    dv = adj_start[iv + 1] - adj_start[iv]
    pu = du if pos_u is None else pos_u
    pv = dv if pos_v is None else pos_v
    o_uv = adj_start[iu] + pu
    o_vu = adj_start[iv] + pv
    # Final slot ids after both insertions; ties (u's row end touching
    # v's row start) break toward the earlier row.
    if (o_uv, iu) < (o_vu, iv):
        f_uv, f_vu = o_uv, o_vu + 1
    else:
        f_uv, f_vu = o_uv + 1, o_vu
    f_low, f_high = (f_uv, f_vu) if f_uv < f_vu else (f_vu, f_uv)
    lo, hi1 = f_low, f_high - 1  # old-id remap thresholds

    _remap_edge_ids(
        index, min(iu, iv), lambda x: x + (x >= lo) + (x >= hi1)
    )

    low_is_uv = f_low == f_uv
    for arr, uv_value, vu_value in (
        (index.adj_target, iv, iu),
        (index.adj_weight, w, w),
        (index.edge_source, iu, iv),
        (index.reverse_edge, f_vu, f_uv),
    ):
        arr.insert(f_low, uv_value if low_is_uv else vu_value)
        arr.insert(f_high, vu_value if low_is_uv else uv_value)

    for k in range(iu + 1, n + 1):
        adj_start[k] += 1
    for k in range(iv + 1, n + 1):
        adj_start[k] += 1

    for i, other, pos, slot in ((iu, v, pu, f_uv), (iv, u, pv, f_vu)):
        nl = index.neighbor_lists[i]
        index.neighbor_lists = _tuple_set(
            index.neighbor_lists, i, nl[:pos] + (other,) + nl[pos:]
        )
        wm = _dict_insert(index.weight_maps[i], pos, other, w)
        if wm is not index.weight_maps[i]:
            index.weight_maps = _tuple_set(index.weight_maps, i, wm)
        em = _dict_insert(index.edge_id_maps[i], pos, other, slot)
        if em is not index.edge_id_maps[i]:
            index.edge_id_maps = _tuple_set(index.edge_id_maps, i, em)


def _patch_delete_edge(index: GraphIndex, u: Node, v: Node) -> None:
    """Splice the two directed slots of edge ``{u, v}`` out of the CSR."""
    node_id = index.node_id
    iu, iv = node_id[u], node_id[v]
    adj_start = index.adj_start
    n = len(index.nodes)
    e_uv = index.edge_id_maps[iu][v]
    e_vu = index.edge_id_maps[iv][u]
    d_low, d_high = (e_uv, e_vu) if e_uv < e_vu else (e_vu, e_uv)

    for arr in (index.adj_target, index.adj_weight, index.edge_source,
                index.reverse_edge):
        del arr[d_high]
        del arr[d_low]

    _remap_edge_ids(
        index, min(iu, iv), lambda x: x - (x > d_low) - (x > d_high)
    )

    for k in range(iu + 1, n + 1):
        adj_start[k] -= 1
    for k in range(iv + 1, n + 1):
        adj_start[k] -= 1

    for i, other in ((iu, v), (iv, u)):
        nl = index.neighbor_lists[i]
        index.neighbor_lists = _tuple_set(
            index.neighbor_lists, i, tuple(x for x in nl if x != other)
        )
        del index.weight_maps[i][other]
        del index.edge_id_maps[i][other]


def index_equal(a: GraphIndex, b: GraphIndex) -> bool:
    """Field-by-field equality of two indexes (the equivalence oracle).

    Compares the semantic CSR fields only; derived caches (the
    underscore slots, e.g. the CONGEST delivery arrays) are rebuilt on
    demand and legitimately differ between a patched and a fresh index.
    """
    return all(
        getattr(a, name) == getattr(b, name) for name in GraphIndex.CORE_FIELDS
    )


# ----------------------------------------------------------------------
# The maintainer
# ----------------------------------------------------------------------


class IncrementalIndexer:
    """Keeps a graph's index and content hash current across mutations.

    Observes the :class:`~repro.dynamic.ops.Effect` records a
    :class:`~repro.dynamic.ops.MutationLog` produces, patches the live
    :class:`GraphIndex` and digest in place, and re-registers both on
    the graph via ``_adopt_caches`` — so ``graph.index()`` and
    ``graph.content_hash()`` stay O(1) across a mutation stream.

    Parameters
    ----------
    patch_budget:
        Upper bound on the number of CSR slots a structural patch may
        shift; costlier ops fall back to a full rebuild.  ``None``
        (default) always patches; ``0`` effectively rebuilds on every
        structural op (reweights are O(1) and always patch).
    validate:
        Assert bit-identical equivalence with a from-scratch rebuild
        after every op — the equivalence oracle the test suite runs
        whole mutation streams under.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        *,
        patch_budget: Optional[int] = None,
        validate: bool = False,
    ) -> None:
        self.graph = graph
        self.patch_budget = patch_budget
        self.validate = validate
        self.patched = 0
        self.rebuilt = 0
        self.noops = 0
        self._digest = DigestState(graph)
        self._index = graph.index()
        first = self._digest.digest()
        if first != graph.content_hash():
            raise AlgorithmError(
                "digest state diverged from content_hash at init"
            )

    @property
    def index(self) -> GraphIndex:
        return self._index

    def content_hash(self) -> str:
        return self._digest.digest()

    def stats(self) -> dict:
        return {
            "patched": self.patched,
            "rebuilt": self.rebuilt,
            "noops": self.noops,
        }

    # -- cost model -----------------------------------------------------
    def _splice_cost(self, effect: Effect) -> int:
        """Approximate CSR slots shifted by a structural edge splice."""
        index = self._index
        starts = [
            index.adj_start[index.node_id[x]]
            for x in (effect.u, effect.v)
            if x in index.node_id
        ]
        if not starts:  # brand-new endpoints splice at the end
            return 0
        return index.directed_edge_count - min(starts)

    def _over_budget(self, effect: Effect) -> bool:
        return (
            self.patch_budget is not None
            and self._splice_cost(effect) > self.patch_budget
        )

    # -- forward --------------------------------------------------------
    def apply(self, effect: Effect) -> str:
        """Absorb one applied effect; returns ``patched``/``rebuilt``/``noop``."""
        return self._absorb(effect, forward=True)

    def unapply(self, effect: Effect) -> str:
        """Absorb one reverted effect (the graph is already restored)."""
        return self._absorb(effect, forward=False)

    def _absorb(self, effect: Effect, *, forward: bool) -> str:
        if effect.kind == "noop":
            self.noops += 1
            return "noop"
        if forward:
            self._digest.apply(effect)
        else:
            self._digest.unapply(effect)
        index = self._index
        patcher = self._patcher(effect, forward)
        if patcher is not None:
            patcher(index)
            index.invalidate_delivery()
            self.patched += 1
            verb = "patched"
        else:
            index = GraphIndex(self.graph)
            self._index = index
            self.rebuilt += 1
            verb = "rebuilt"
        self.graph._adopt_caches(
            index=index, content_hash=self._digest.digest()
        )
        if self.validate:
            self._check_equivalence()
        return verb

    def _patcher(self, effect: Effect, forward: bool):
        """The in-place patch closure for ``effect``, or ``None`` to rebuild."""
        kind, u, v = effect.kind, effect.u, effect.v
        if kind in ("merge_edge", "reweight"):
            w = effect.new_weight if forward else effect.old_weight
            return lambda idx: _patch_set_weight(idx, u, v, w)
        if kind == "add_node":
            node = effect.u
            if forward:
                return lambda idx: _patch_append_node(idx, node)
            return lambda idx: _patch_pop_last_node(idx, node)
        if kind == "remove_node":
            if forward and not effect.incident and (
                effect.node_pos == len(self._index.nodes) - 1
            ):
                node = effect.u
                return lambda idx: _patch_pop_last_node(idx, node)
            return None  # connected/interior node removal: rebuild
        if kind == "add_edge":
            if self._over_budget(effect):
                return None
            created = effect.created_nodes
            if forward:

                def splice_in(idx):
                    for node in created:
                        _patch_append_node(idx, node)
                    _patch_insert_edge(idx, u, v, effect.new_weight)

                return splice_in

            def splice_out(idx):
                _patch_delete_edge(idx, u, v)
                for node in reversed(created):
                    _patch_pop_last_node(idx, node)

            return splice_out
        if kind == "remove_edge":
            if self._over_budget(effect):
                return None
            if forward:
                return lambda idx: _patch_delete_edge(idx, u, v)
            pos_u, pos_v = effect.positions
            return lambda idx: _patch_insert_edge(
                idx, u, v, effect.old_weight, pos_u, pos_v
            )
        return None  # pragma: no cover - kinds are library-controlled

    def _check_equivalence(self) -> None:
        fresh = GraphIndex(self.graph)
        if not index_equal(self._index, fresh):
            raise AlgorithmError(
                "incremental index diverged from rebuild-from-scratch"
            )
        cold = self.graph.copy().content_hash()
        if self._digest.digest() != cold:
            raise AlgorithmError(
                "incremental content_hash diverged from cold digest"
            )


__all__ = [
    "DigestState",
    "IncrementalIndexer",
    "index_equal",
]
