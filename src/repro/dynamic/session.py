"""Dynamic solve sessions: certificate-gated re-solve over a mutation log.

A :class:`DynamicSession` owns one evolving graph, a
:class:`~repro.dynamic.ops.MutationLog`, an
:class:`~repro.dynamic.incremental.IncrementalIndexer`, and the
:class:`~repro.api.engine.Engine` whose cache and solver knobs it
inherits.  ``solve()`` consults cheap *cut certificates* before paying
for a solver run:

* **no-change** — the op provably didn't alter graph content (reweight
  to the current value, re-adding a present node);
* **non-crossing-increase** — a weight increase (or merged/added edge
  between existing nodes) with both endpoints on the same side of the
  last witness cut.  Every cut's value is unchanged or grew while the
  witness kept its value, so the witness stays (approximately) optimal;
* **crossing-decrease** — a weight decrease or deletion on an edge that
  crosses the witness.  The witness loses the full decrease while no
  cut loses more, so the witness stays optimal (exact guarantees only —
  a relative approximation factor does not survive subtraction).

When every pending op since the last solve certifies, the solver is
skipped: the result is the old witness re-valued on the mutated graph
(``graph.cut_value(side)`` — no accumulated float drift), served
through the engine cache so revisited graph states stay bit-identical
to a cold solve, with ``extras["certificate"]`` recording provenance.
Anything uncertifiable — node-set changes, crossing increases,
non-crossing decreases, a solver-auto policy switch — falls through to
a real ``engine.solve`` on the patched graph.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional

from ..api.engine import Engine, _resolve_spec, _stamp_cache
from ..api.result import CutResult
from ..errors import AlgorithmError
from ..exec.cache import CacheKey
from ..graphs.graph import WeightedGraph
from .incremental import IncrementalIndexer
from .ops import Effect, MutationLog, MutationOp

#: Certificate kinds, in the order of the docstring above.
CERTIFICATE_KINDS = (
    "no-change",
    "non-crossing-increase",
    "crossing-decrease",
)


def certify_effect(
    effect: Effect, side: frozenset, guarantee: str
) -> Optional[str]:
    """The certificate kind proving ``effect`` kept ``side`` optimal.

    Returns ``None`` when no cheap proof applies and a real solve is
    required.  ``side`` is the witness of the last solve; ``guarantee``
    its solver's guarantee string (``"exact"`` unlocks
    ``crossing-decrease``).
    """
    kind = effect.kind
    if kind == "noop":
        return "no-change"
    if kind in ("add_node", "remove_node"):
        return None  # node-set changes create/destroy candidate cuts
    if effect.created_nodes:
        return None  # a fresh endpoint is a brand-new candidate cut side
    crossing = (effect.u in side) != (effect.v in side)
    if kind in ("add_edge", "merge_edge") or (
        kind == "reweight" and effect.new_weight > effect.old_weight
    ):
        return None if crossing else "non-crossing-increase"
    if kind == "remove_edge" or (
        kind == "reweight" and effect.new_weight < effect.old_weight
    ):
        if crossing and guarantee == "exact":
            return "crossing-decrease"
        return None
    return None  # pragma: no cover - kinds are library-controlled


class DynamicSession:
    """One evolving graph plus certificate-gated solves on an Engine.

    Build via :meth:`Engine.dynamic_session`.  Unset solver knobs
    inherit the engine's defaults; the graph is deep-copied unless
    ``copy=False`` hands the session ownership of the caller's object.
    """

    def __init__(
        self,
        engine: Engine,
        graph: WeightedGraph,
        *,
        solver: Optional[str] = None,
        epsilon: Optional[float] = None,
        mode: Optional[str] = None,
        seed: Optional[int] = None,
        patch_budget: Optional[int] = None,
        copy: bool = True,
        validate: bool = False,
    ) -> None:
        self.engine = engine
        self.graph = graph.copy() if copy else graph
        self.solver = engine.solver if solver is None else solver
        self.epsilon = engine.epsilon if epsilon is None else epsilon
        self.mode = engine.mode if mode is None else mode
        self.seed = engine.seed if seed is None else seed
        self.validate = validate
        self.log = MutationLog(self.graph)
        self.indexer = IncrementalIndexer(
            self.graph, patch_budget=patch_budget, validate=validate
        )
        self._last: Optional[CutResult] = None
        self._pending: list[Effect] = []
        self.counters = {
            "ops": 0,
            "undos": 0,
            "solves": 0,
            "certified": 0,
            "solver_runs": 0,
            "cache_hits": 0,
        }

    # -- mutation plane --------------------------------------------------

    def apply(self, op: MutationOp) -> dict:
        """Apply one op; returns the pod-style acknowledgement record.

        The ack carries the op's canonical form, what actually happened
        (``merge_edge``/``noop``/... — see
        :data:`~repro.dynamic.ops.EFFECT_KINDS`), how the index was
        maintained (``patched``/``rebuilt``/``noop``), and the resulting
        graph ``content_hash`` — the per-op confirmation the service
        protocol forwards to clients.
        """
        effect = self.log.apply(op)
        verb = self.indexer.apply(effect)
        self._pending.append(effect)
        self.counters["ops"] += 1
        return self._ack(effect, verb, undone=False)

    def undo(self) -> dict:
        """Revert the most recent op; same ack shape as :meth:`apply`."""
        effect = self.log.undo()
        verb = self.indexer.unapply(effect)
        if self._pending:
            self._pending.pop()
        else:
            # Undid past the last solve point: the cached witness no
            # longer describes this timeline, but the engine cache still
            # holds the earlier state's result — solve() will hit it.
            self._last = None
        self.counters["undos"] += 1
        return self._ack(effect, verb, undone=True)

    def _ack(self, effect: Effect, verb: str, *, undone: bool) -> dict:
        return {
            "op": effect.op.to_json(),
            "applied": effect.kind,
            "undone": undone,
            "index": verb,
            "graph_hash": self.graph.content_hash(),
            "n": self.graph.number_of_nodes,
            "m": self.graph.number_of_edges,
        }

    # -- solve plane -----------------------------------------------------

    def solve(self) -> CutResult:
        """Minimum cut of the current graph, via certificate or solver."""
        self.counters["solves"] += 1
        started = time.perf_counter()
        certificates = self._certify_pending()
        if certificates is not None:
            result = self._certified_result(certificates, started)
            if result is not None:
                self.counters["certified"] += 1
                self._note_cache(result)
                self._last = result
                self._pending.clear()
                return result
        result = self.engine.solve(
            self.graph, self.solver,
            epsilon=self.epsilon, mode=self.mode, seed=self.seed,
        )
        self.counters["solver_runs"] += 1
        self._note_cache(result)
        self._last = result
        self._pending.clear()
        return result

    def _certify_pending(self) -> Optional[list[str]]:
        """Certificate kinds for every pending op, or ``None``."""
        last = self._last
        if last is None:
            return None
        certificates = []
        for effect in self._pending:
            kind = certify_effect(effect, last.side, last.guarantee)
            if kind is None:
                return None
            certificates.append(kind)
        return certificates

    def _certified_result(
        self, certificates: list[str], started: float
    ) -> Optional[CutResult]:
        """Build (or fetch from cache) the certificate-skip result.

        Bails out (returns ``None``) when the graph disconnected, the
        witness stopped being a valid proper cut, or the solver policy
        would now resolve to a different solver than the witness's —
        all cases where the skipped solver's answer could differ.
        """
        last = self._last
        graph = self.graph
        if not graph.is_connected():
            return None
        try:
            spec = _resolve_spec(
                self.engine.registry, graph, self.solver,
                mode=self.mode, epsilon=self.epsilon, budget=None,
            )
        except AlgorithmError:
            return None
        if spec.name != last.solver:
            return None  # auto policy switched solvers; certificates
        value = graph.cut_value(last.side)  # don't transfer across them
        provenance = {
            "kinds": list(certificates),
            "ops": len(certificates),
            "base_value": last.value,
            "source": "witness-monotonicity",
        }
        cache = self.engine.cache
        if cache is None:
            result = self._witness_result(value, started)
            if self.validate:
                self._check_certified(result)
            return replace(
                result, extras={**result.extras, "certificate": provenance}
            )
        key = CacheKey.for_solve(
            graph, spec.name, epsilon=self.epsilon, mode=self.mode,
            seed=self.seed, budget=None, options={},
        )
        hit = cache.get(key)
        if hit is not None:
            provenance["cache"] = "revisited-state"
            result = hit
        else:
            result = self._witness_result(value, started)
            cache.put(key, result)
        if self.validate:
            self._check_certified(result)
        result = _stamp_cache(result, cache, hit=hit is not None)
        return replace(
            result, extras={**result.extras, "certificate": provenance}
        )

    def _witness_result(self, value: float, started: float) -> CutResult:
        last = self._last
        return CutResult(
            value=value,
            side=last.side,
            solver=last.solver,
            guarantee=last.guarantee,
            seed=self.seed,
            metrics=None,
            wall_time=time.perf_counter() - started,
            extras={},
        )

    def _check_certified(self, result: CutResult) -> None:
        """Validation mode: a certified result must match a real solve."""
        fresh = Engine(
            registry=self.engine.registry, solver=self.solver,
            epsilon=self.epsilon, mode=self.mode, seed=self.seed,
        ).solve(self.graph.copy())
        if fresh.value != result.value or not result.matches(self.graph):
            raise AlgorithmError(
                f"certificate produced value {result.value} but a fresh "
                f"solve found {fresh.value}"
            )

    def _note_cache(self, result: CutResult) -> None:
        cache_info = result.extras.get("cache")
        if isinstance(cache_info, dict) and cache_info.get("hit"):
            self.counters["cache_hits"] += 1

    # -- introspection ---------------------------------------------------

    @property
    def last_result(self) -> Optional[CutResult]:
        return self._last

    @property
    def pending_ops(self) -> int:
        """Ops applied since the last solve (certificate horizon)."""
        return len(self._pending)

    def stats(self) -> dict:
        """Session counters plus the index maintainer's patch stats."""
        out = dict(self.counters)
        out["index"] = self.indexer.stats()
        out["graph"] = {
            "n": self.graph.number_of_nodes,
            "m": self.graph.number_of_edges,
            "hash": self.graph.content_hash(),
        }
        return out


__all__ = ["CERTIFICATE_KINDS", "DynamicSession", "certify_effect"]
