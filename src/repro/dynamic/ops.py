"""Typed mutation ops and the append-only :class:`MutationLog`.

A dynamic-graph session is driven by a stream of small, typed
operations — the pod-style append-only log shape: every op has a
canonical serialized form (JSON for the wire, one-line text for ops
files), applying an op yields an :class:`Effect` record describing
exactly what changed, and every effect can be reverted bit-identically.

"Bit-identically" is load-bearing: :class:`~repro.graphs.index.
GraphIndex` arrays are built from the adjacency maps' *insertion
order*, so undo cannot simply call ``add_edge`` (which appends).  The
effect records capture adjacency positions and the revert path uses
the positional restore seams on :class:`WeightedGraph`, so
``apply(op); undo()`` restores the exact CSR layout and
``content_hash`` of the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from ..errors import AlgorithmError, GraphError
from ..graphs.graph import Node, WeightedGraph

#: Effect kinds an applied op can produce.  ``merge_edge`` is an
#: ``add_edge`` that hit an existing edge (multigraph-merge semantics);
#: ``noop`` is an op that provably changed nothing (reweight to the
#: current value, add of an existing node).
EFFECT_KINDS = (
    "add_edge",
    "merge_edge",
    "reweight",
    "remove_edge",
    "add_node",
    "remove_node",
    "noop",
)


def _check_node(value: Any, *, what: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise AlgorithmError(
            f"mutation op: {what} must be an int or str node label, "
            f"got {value!r}"
        )
    return value


def _check_weight(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AlgorithmError(
            f"mutation op: weight must be a number, got {value!r}"
        )
    if value <= 0:
        raise AlgorithmError(
            f"mutation op: weight must be positive, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class MutationOp:
    """Base class for typed mutation operations."""

    kind = "?"

    def to_json(self) -> dict:
        """Canonical JSON-object form (``{"op": kind, ...}``)."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Canonical one-line text form (the ops-file format)."""
        raise NotImplementedError


@dataclass(frozen=True)
class AddEdge(MutationOp):
    """Insert edge ``{u, v}``; merges by summing if it already exists."""

    u: Node
    v: Node
    weight: float = 1.0
    kind = "add_edge"

    def to_json(self) -> dict:
        return {"op": "add_edge", "u": self.u, "v": self.v,
                "weight": float(self.weight)}

    def to_text(self) -> str:
        return f"add_edge {self.u} {self.v} {float(self.weight)}"


@dataclass(frozen=True)
class RemoveEdge(MutationOp):
    """Delete edge ``{u, v}``; raises if absent."""

    u: Node
    v: Node
    kind = "remove_edge"

    def to_json(self) -> dict:
        return {"op": "remove_edge", "u": self.u, "v": self.v}

    def to_text(self) -> str:
        return f"remove_edge {self.u} {self.v}"


@dataclass(frozen=True)
class Reweight(MutationOp):
    """Overwrite the weight of existing edge ``{u, v}``."""

    u: Node
    v: Node
    weight: float
    kind = "reweight"

    def to_json(self) -> dict:
        return {"op": "reweight", "u": self.u, "v": self.v,
                "weight": float(self.weight)}

    def to_text(self) -> str:
        return f"reweight {self.u} {self.v} {float(self.weight)}"


@dataclass(frozen=True)
class AddNode(MutationOp):
    """Insert isolated node ``u`` (no-op if present)."""

    u: Node
    kind = "add_node"

    def to_json(self) -> dict:
        return {"op": "add_node", "u": self.u}

    def to_text(self) -> str:
        return f"add_node {self.u}"


@dataclass(frozen=True)
class RemoveNode(MutationOp):
    """Delete node ``u`` and all incident edges; raises if absent."""

    u: Node
    kind = "remove_node"

    def to_json(self) -> dict:
        return {"op": "remove_node", "u": self.u}

    def to_text(self) -> str:
        return f"remove_node {self.u}"


OP_TYPES: dict[str, type] = {
    "add_edge": AddEdge,
    "remove_edge": RemoveEdge,
    "reweight": Reweight,
    "add_node": AddNode,
    "remove_node": RemoveNode,
}


def op_from_json(obj: Any) -> MutationOp:
    """Parse the canonical JSON-object form back into a typed op."""
    if not isinstance(obj, dict):
        raise AlgorithmError(f"mutation op must be a JSON object, got {obj!r}")
    kind = obj.get("op")
    cls = OP_TYPES.get(kind)
    if cls is None:
        raise AlgorithmError(
            f"unknown mutation op {kind!r} (expected one of "
            f"{', '.join(sorted(OP_TYPES))})"
        )
    allowed = {"op", "u", "v", "weight"} if cls in (AddEdge, Reweight) else (
        {"op", "u", "v"} if cls is RemoveEdge else {"op", "u"}
    )
    unknown = sorted(set(obj) - allowed)
    if unknown:
        raise AlgorithmError(
            f"mutation op {kind!r}: unknown field(s) {', '.join(unknown)}"
        )
    u = _check_node(obj.get("u"), what="'u'")
    if cls in (AddNode, RemoveNode):
        return cls(u)
    v = _check_node(obj.get("v"), what="'v'")
    if cls is RemoveEdge:
        return cls(u, v)
    if cls is AddEdge and "weight" not in obj:
        return cls(u, v)
    return cls(u, v, _check_weight(obj.get("weight")))


def _parse_token(token: str) -> Any:
    """Node labels in ops files: ints when they look like ints."""
    try:
        return int(token)
    except ValueError:
        return token


def op_from_text(line: str) -> MutationOp:
    """Parse one ops-file line (e.g. ``add_edge 0 5 2.0``)."""
    tokens = line.split()
    if not tokens:
        raise AlgorithmError("mutation op: empty line")
    kind, args = tokens[0], tokens[1:]
    cls = OP_TYPES.get(kind)
    if cls is None:
        raise AlgorithmError(
            f"unknown mutation op {kind!r} (expected one of "
            f"{', '.join(sorted(OP_TYPES))})"
        )
    arity = {AddEdge: (2, 3), Reweight: (3, 3), RemoveEdge: (2, 2),
             AddNode: (1, 1), RemoveNode: (1, 1)}[cls]
    if not arity[0] <= len(args) <= arity[1]:
        raise AlgorithmError(
            f"mutation op {kind!r}: expected "
            f"{'-'.join(str(a) for a in sorted(set(arity)))} argument(s), "
            f"got {len(args)}"
        )
    if cls in (AddNode, RemoveNode):
        return cls(_parse_token(args[0]))
    u, v = _parse_token(args[0]), _parse_token(args[1])
    if cls is RemoveEdge:
        return cls(u, v)
    if cls is AddEdge and len(args) == 2:
        return cls(u, v)
    try:
        weight = float(args[-1])
    except ValueError:
        raise AlgorithmError(
            f"mutation op {kind!r}: bad weight {args[-1]!r}"
        ) from None
    return cls(u, v, _check_weight(weight))


#: Stream directives an ops file may contain besides mutation ops.
STREAM_DIRECTIVES = ("solve", "undo")


def parse_stream(
    lines: Iterable[str],
) -> Iterator[tuple[int, str, Optional[MutationOp]]]:
    """Parse an ops-file stream into ``(lineno, directive, op)`` events.

    ``directive`` is ``"op"`` (with the parsed op), ``"solve"`` or
    ``"undo"`` (op is ``None``).  Blank lines and ``#`` comments are
    skipped.  Malformed lines raise :class:`AlgorithmError` naming the
    line number.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        head = line.split()[0]
        if head in STREAM_DIRECTIVES:
            if line != head:
                raise AlgorithmError(
                    f"ops file line {lineno}: directive {head!r} takes "
                    f"no arguments"
                )
            yield (lineno, head, None)
            continue
        try:
            yield (lineno, "op", op_from_text(line))
        except AlgorithmError as exc:
            raise AlgorithmError(f"ops file line {lineno}: {exc}") from None


# ----------------------------------------------------------------------
# Applying ops and reverting effects
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Effect:
    """What applying one op actually did — everything undo needs.

    ``positions`` (for ``remove_edge``) and ``node_pos``/``incident``
    (for ``remove_node``) capture adjacency insertion positions so the
    revert path restores the exact pre-op dict order (and therefore the
    exact CSR layout).
    """

    op: MutationOp
    kind: str
    u: Optional[Node] = None
    v: Optional[Node] = None
    old_weight: Optional[float] = None
    new_weight: Optional[float] = None
    created_nodes: tuple = ()
    positions: tuple = ()
    node_pos: Optional[int] = None
    incident: tuple = field(default=())


def apply_op(graph: WeightedGraph, op: MutationOp) -> Effect:
    """Apply ``op`` to ``graph`` and return the resulting :class:`Effect`."""
    if isinstance(op, AddEdge):
        existing = graph.has_edge(op.u, op.v)
        old = graph.weight(op.u, op.v) if existing else None
        created = tuple(x for x in dict.fromkeys((op.u, op.v)) if x not in graph)
        graph.add_edge(op.u, op.v, op.weight)
        return Effect(
            op, "merge_edge" if existing else "add_edge",
            u=op.u, v=op.v, old_weight=old, new_weight=graph.weight(op.u, op.v),
            created_nodes=created,
        )
    if isinstance(op, Reweight):
        old = graph.weight(op.u, op.v)
        if old == op.weight:
            return Effect(op, "noop", u=op.u, v=op.v,
                          old_weight=old, new_weight=old)
        graph.set_edge_weight(op.u, op.v, op.weight)
        return Effect(op, "reweight", u=op.u, v=op.v,
                      old_weight=old, new_weight=graph.weight(op.u, op.v))
    if isinstance(op, RemoveEdge):
        old = graph.weight(op.u, op.v)
        pos_u = graph.neighbors(op.u).index(op.v)
        pos_v = graph.neighbors(op.v).index(op.u)
        graph.remove_edge(op.u, op.v)
        return Effect(op, "remove_edge", u=op.u, v=op.v,
                      old_weight=old, positions=(pos_u, pos_v))
    if isinstance(op, AddNode):
        if op.u in graph:
            return Effect(op, "noop", u=op.u)
        graph.add_node(op.u)
        return Effect(op, "add_node", u=op.u, created_nodes=(op.u,))
    if isinstance(op, RemoveNode):
        if op.u not in graph:
            raise GraphError(f"node {op.u!r} does not exist")
        node_pos = graph.nodes.index(op.u)
        incident = tuple(
            (v, graph.weight(op.u, v), graph.neighbors(v).index(op.u))
            for v in graph.neighbors(op.u)
        )
        graph.remove_node(op.u)
        return Effect(op, "remove_node", u=op.u,
                      node_pos=node_pos, incident=incident)
    raise AlgorithmError(f"unsupported mutation op {op!r}")


def revert(graph: WeightedGraph, effect: Effect) -> None:
    """Undo ``effect`` on ``graph``, restoring exact adjacency order."""
    kind = effect.kind
    if kind == "noop":
        return
    if kind == "add_edge":
        graph.remove_edge(effect.u, effect.v)
        for node in reversed(effect.created_nodes):
            graph.remove_node(node)
    elif kind in ("merge_edge", "reweight"):
        graph.set_edge_weight(effect.u, effect.v, effect.old_weight)
    elif kind == "remove_edge":
        graph._insert_edge_at(
            effect.u, effect.v, effect.old_weight, *effect.positions
        )
    elif kind == "add_node":
        graph.remove_node(effect.u)
    elif kind == "remove_node":
        graph._restore_node_at(effect.u, effect.node_pos, effect.incident)
    else:  # pragma: no cover - Effect kinds are library-controlled
        raise AlgorithmError(f"cannot revert effect kind {kind!r}")


class MutationLog:
    """Append-only log of applied ops over one graph, with LIFO undo.

    The log owns the apply/revert bookkeeping; the incremental index
    maintainer (:mod:`repro.dynamic.incremental`) and the session layer
    observe the returned :class:`Effect` records to patch their state.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self._effects: list[Effect] = []

    def __len__(self) -> int:
        return len(self._effects)

    @property
    def effects(self) -> tuple[Effect, ...]:
        return tuple(self._effects)

    def apply(self, op: MutationOp) -> Effect:
        """Apply ``op`` to the graph and append its effect to the log."""
        effect = apply_op(self.graph, op)
        self._effects.append(effect)
        return effect

    def undo(self) -> Effect:
        """Revert the most recent effect; raises when the log is empty."""
        if not self._effects:
            raise AlgorithmError("mutation log is empty; nothing to undo")
        effect = self._effects.pop()
        revert(self.graph, effect)
        return effect

    def to_json(self) -> list[dict]:
        """Canonical serialized form of the applied ops, in order."""
        return [effect.op.to_json() for effect in self._effects]

    def to_text(self) -> str:
        """The applied ops as an ops file (one line per op)."""
        return "\n".join(effect.op.to_text() for effect in self._effects)


__all__ = [
    "AddEdge",
    "AddNode",
    "Effect",
    "EFFECT_KINDS",
    "MutationLog",
    "MutationOp",
    "OP_TYPES",
    "RemoveEdge",
    "RemoveNode",
    "Reweight",
    "STREAM_DIRECTIVES",
    "apply_op",
    "op_from_json",
    "op_from_text",
    "parse_stream",
    "revert",
]
