"""(1+ε)-approximate minimum cut via Karger skeleton sampling.

The paper's headline result: sample a skeleton at rate
``p = Θ(log n / (ε² λ))`` so its minimum cut shrinks to ``O~(1/ε²)``,
solve the skeleton *exactly* with the packing algorithm, and lift the
witness side back to the original graph, where its value is within
``(1+ε)`` of λ w.h.p.  Since λ is unknown, a halving search on the
guess is used: a guess that is too high produces a disconnected (or
suspiciously light) skeleton and is halved; the search stabilises once
the rescaled skeleton estimate confirms the guess within a factor two.

When the guess-driven rate reaches 1 the graph's own min cut is already
``O~(1/ε²)`` and the exact algorithm runs directly — reproducing the
paper's "exact for small λ" behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..congest.metrics import RunMetrics
from ..graphs.graph import WeightedGraph
from ..graphs.properties import min_weighted_degree
from ..sampling.skeleton import sample_skeleton, sampling_probability
from .exact import minimum_cut_exact

MAX_HALVINGS = 60


@dataclass(frozen=True)
class ApproxMinCut:
    """Result of the sampling-based approximation.

    ``value`` is the cut's *original-graph* weight (always a valid upper
    bound on λ); ``probability`` the final sampling rate (1.0 when the
    exact path was taken); ``skeleton_value`` the skeleton's exact min
    cut; ``metrics`` carries rounds in congest mode.
    """

    value: float
    side: frozenset
    probability: float
    skeleton_value: float
    halvings: int
    metrics: Optional[RunMetrics]

    @property
    def used_sampling(self) -> bool:
        return self.probability < 1.0


def minimum_cut_approx(
    graph: WeightedGraph,
    epsilon: float,
    seed: int = 0,
    mode: str = "reference",
) -> ApproxMinCut:
    """(1+ε)-approximate minimum cut (see module docstring).

    ``mode`` is forwarded to the skeleton's exact solve: ``congest``
    executes the per-tree Theorem 2.1 runs on the simulator over the
    *skeleton* topology plus charged MST costs, matching the paper's
    O~((√n + D)/poly(ε)) accounting.
    """
    if not 0.0 < epsilon <= 1.0:
        raise AlgorithmError(f"epsilon must be in (0, 1], got {epsilon}")
    graph.require_connected()
    n = graph.number_of_nodes
    if n < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")

    rng = random.Random(seed)
    guess = max(1.0, min_weighted_degree(graph))
    halvings = 0
    while True:
        probability = sampling_probability(n, epsilon, guess)
        if probability >= 1.0:
            exact = minimum_cut_exact(graph, mode=mode)
            return ApproxMinCut(
                value=exact.value,
                side=exact.side,
                probability=1.0,
                skeleton_value=exact.value,
                halvings=halvings,
                metrics=exact.metrics,
            )
        skeleton = sample_skeleton(graph, probability, rng=rng)
        if not skeleton.is_connected():
            guess, halvings = _halve(guess, halvings)
            continue
        skeleton_cut = minimum_cut_exact(skeleton, mode=mode)
        estimate = skeleton_cut.value / probability
        if guess > 2.0 * estimate:
            # The guess was too optimistic: the skeleton says λ is much
            # smaller, so the sampling rate was too low for (1±ε)
            # concentration.  Tighten and retry.
            guess, halvings = _halve(max(estimate, guess / 2.0), halvings, bump=False)
            continue
        value = graph.cut_value(skeleton_cut.side)
        return ApproxMinCut(
            value=value,
            side=skeleton_cut.side,
            probability=probability,
            skeleton_value=skeleton_cut.value,
            halvings=halvings,
            metrics=skeleton_cut.metrics,
        )


def _halve(guess: float, halvings: int, bump: bool = True) -> tuple[float, int]:
    if halvings >= MAX_HALVINGS:
        raise AlgorithmError(
            "halving search failed to stabilise; the graph's weights may "
            "be non-integer (sampling requires integer weights)"
        )
    return (guess / 2.0 if bump else guess), halvings + 1
