"""The exact algorithm with *every* phase measured — no charged costs.

``minimum_cut_exact(mode="congest")`` charges the Kutten–Peleg MST per
packing tree (DESIGN.md §5).  This module removes the last substitution
for users who want a fully simulated run: the greedy tree packing
itself executes distributedly.

* Each node keeps, in its own memory, the *load* of every incident edge
  (how many previous packing trees used it) — updating it is a local
  operation because a node learns exactly which of its incident edges
  joined the tree (its ``mst:marked`` set).
* Each packing tree is built by the distributed Borůvka protocol under
  the relative-load metric ``use(e)/w(e)`` with the library's
  deterministic tie order — which makes the distributed packing
  *identical tree-for-tree* to the centralized
  :class:`~repro.packing.greedy.GreedyTreePacking` (tested).
* Theorem 2.1 runs per tree with the distributed fragment partition, so
  the complete pipeline is real message passing.

The price is Borůvka's O(n·log n) worst-case rounds instead of
Kutten–Peleg's O~(√n + D) — which is exactly why the paper cites KP and
why the charged-cost driver remains the default.  This driver exists to
demonstrate end-to-end executability and as the strictest possible
integration test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..congest.metrics import RunMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeContext
from ..core.one_respect_congest import one_respecting_min_cut_congest
from ..graphs.graph import WeightedGraph
from ..mst.boruvka_congest import boruvka_mst

LOAD_KEY = "pack:load"


def _load_metric(ctx: NodeContext, neighbour) -> float:
    """Relative load ``use(e)/w(e)`` from the node's own load table."""
    loads = ctx.memory.get(LOAD_KEY, {})
    return loads.get(neighbour, 0) / ctx.edge_weight(neighbour)


@dataclass(frozen=True)
class FullyDistributedExact:
    """Result of the all-measured exact pipeline."""

    value: float
    side: frozenset
    tree_index: int
    per_tree_values: tuple[float, ...]
    metrics: RunMetrics

    @property
    def trees_used(self) -> int:
        return len(self.per_tree_values)


def minimum_cut_exact_congest_full(
    graph: WeightedGraph,
    tree_count: Optional[int] = None,
    patience: int = 3,
    max_trees: int = 12,
) -> FullyDistributedExact:
    """Exact min cut with distributed packing + Theorem 2.1 per tree.

    ``tree_count`` pins the packing size (no early stop); otherwise the
    adaptive schedule stops after ``patience`` stale trees, capped at
    ``max_trees`` (kept small — every tree is a full simulated MST plus
    a full Theorem 2.1 run).
    """
    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    net = CongestNetwork(graph)
    loads: dict = {u: {} for u in net.nodes}

    best_value = float("inf")
    best_side: frozenset = frozenset()
    best_index = 0
    per_tree: list[float] = []
    stale = 0
    limit = tree_count if tree_count is not None else max_trees

    while len(per_tree) < limit:
        # Install each node's private load table, build the next packing
        # tree distributedly, and update the tables locally.
        for u in net.nodes:
            net.memory[u][LOAD_KEY] = loads[u]
        tree = boruvka_mst(net, edge_key=_load_metric)
        for child, parent in tree.edges():
            loads[child][parent] = loads[child].get(parent, 0) + 1
            loads[parent][child] = loads[parent].get(child, 0) + 1

        outcome = one_respecting_min_cut_congest(
            graph, tree, network=net, simulate_partition=True
        )
        per_tree.append(outcome.best_value)
        if outcome.best_value < best_value - 1e-12:
            best_value = outcome.best_value
            best_side = frozenset(tree.subtree(outcome.best_node))
            best_index = len(per_tree)
            stale = 0
        else:
            stale += 1
            if tree_count is None and stale >= patience:
                break

    if net.metrics.charged_rounds != 0:
        raise AlgorithmError(
            "fully-distributed driver must not charge any rounds"
        )
    return FullyDistributedExact(
        value=best_value,
        side=best_side,
        tree_index=best_index,
        per_tree_values=tuple(per_tree),
        metrics=net.metrics,
    )
