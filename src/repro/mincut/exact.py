"""Exact minimum cut via tree packing + 1-respecting cuts (main result).

The paper's exact algorithm: greedily pack trees (Thorup), compute the
minimum 1-respecting cut of each (Theorem 2.1), and return the best.
Thorup's theorem guarantees that once ``Θ(λ^7 log^3 n)`` trees are
packed, some tree 1-respects a minimum cut — so the best per-tree value
*is* λ.  The theoretical count is astronomical; empirically a handful of
trees suffice (experiment E4 quantifies this), so the driver defaults to
an *adaptive* schedule: keep packing until ``patience`` consecutive
trees fail to improve the best cut, up to ``max_trees``.  Passing
``tree_count`` pins the schedule (e.g. to the Thorup bound, if you have
the patience).

Modes
-----
``reference``
    Per-tree 1-respecting cuts are computed centrally — fast, used for
    skeleton post-processing and ground-truth-adjacent workflows.
``congest``
    Every tree's Theorem 2.1 run executes on the CONGEST simulator
    (real messages, measured rounds) and each tree's construction is
    charged the Kutten–Peleg MST cost, reproducing the paper's
    ``O~((√n + D)·#trees)`` total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..congest.metrics import RunMetrics
from ..congest.network import CongestNetwork
from ..core.one_respect_congest import one_respecting_min_cut_congest
from ..core.one_respect_reference import one_respecting_min_cut_reference
from ..graphs.graph import WeightedGraph
from ..graphs.trees import RootedTree
from ..mst.kutten_peleg import kutten_peleg_round_cost
from ..packing.greedy import GreedyTreePacking

MODES = ("reference", "congest")


@dataclass(frozen=True)
class ExactMinCut:
    """Result of the packing-based exact algorithm.

    ``tree_index`` is the 1-based index of the packing tree whose
    1-respecting minimum realised the best value; ``per_tree_values``
    records each tree's ``c*`` in packing order; ``metrics`` is present
    in congest mode (measured + charged rounds).
    """

    value: float
    side: frozenset
    tree_index: int
    per_tree_values: tuple[float, ...]
    metrics: Optional[RunMetrics]

    @property
    def trees_used(self) -> int:
        return len(self.per_tree_values)


def default_tree_schedule(n: int) -> tuple[int, int]:
    """(patience, max_trees) for the adaptive schedule: stop after 4
    stale trees, never exceed ``2·⌈log2 n⌉ + 8``."""
    return 4, 2 * math.ceil(math.log2(max(2, n))) + 8


def minimum_cut_exact(
    graph: WeightedGraph,
    mode: str = "reference",
    tree_count: Optional[int] = None,
    patience: Optional[int] = None,
    max_trees: Optional[int] = None,
    diameter_hint: Optional[int] = None,
) -> ExactMinCut:
    """Run the paper's exact algorithm (see module docstring)."""
    if mode not in MODES:
        raise AlgorithmError(f"mode must be one of {MODES}, got {mode!r}")
    graph.require_connected()
    n = graph.number_of_nodes
    if n < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")

    default_patience, default_max = default_tree_schedule(n)
    stale_limit = patience if patience is not None else default_patience
    limit = max_trees if max_trees is not None else default_max
    if tree_count is not None:
        stale_limit = tree_count  # never stop early
        limit = tree_count

    network = CongestNetwork(graph) if mode == "congest" else None
    packing = GreedyTreePacking(graph)
    best_value = float("inf")
    best_tree: Optional[RootedTree] = None
    best_node = None
    best_index = 0
    per_tree: list[float] = []
    stale = 0
    if mode == "congest" and diameter_hint is None:
        from ..graphs.properties import eccentricity

        diameter_hint = eccentricity(graph, graph.nodes[0])

    while len(per_tree) < limit:
        tree = packing.next_tree()
        if mode == "congest":
            assert network is not None
            network.charge(
                kutten_peleg_round_cost(n, diameter_hint or 0),
                f"Kutten-Peleg MST for packing tree {len(per_tree) + 1}",
            )
            outcome = one_respecting_min_cut_congest(graph, tree, network=network)
            value, witness = outcome.best_value, outcome.best_node
        else:
            outcome = one_respecting_min_cut_reference(graph, tree)
            value, witness = outcome.best_value, outcome.best_node
        per_tree.append(value)
        if value < best_value - 1e-12:
            best_value = value
            best_tree = tree
            best_node = witness
            best_index = len(per_tree)
            stale = 0
        else:
            stale += 1
            if tree_count is None and stale >= stale_limit:
                break

    assert best_tree is not None
    return ExactMinCut(
        value=best_value,
        side=frozenset(best_tree.subtree(best_node)),
        tree_index=best_index,
        per_tree_values=tuple(per_tree),
        metrics=network.metrics if network is not None else None,
    )
