"""The paper's headline algorithms: exact and (1+ε) minimum cut."""

from .exact import ExactMinCut, default_tree_schedule, minimum_cut_exact
from .exact_distributed import FullyDistributedExact, minimum_cut_exact_congest_full
from .approx import ApproxMinCut, minimum_cut_approx

__all__ = [
    "ExactMinCut",
    "default_tree_schedule",
    "minimum_cut_exact",
    "FullyDistributedExact",
    "minimum_cut_exact_congest_full",
    "ApproxMinCut",
    "minimum_cut_approx",
]
