"""The paper's headline algorithms: exact and (1+ε) minimum cut.

These entry points keep their specific result dataclasses
(:class:`ExactMinCut`, :class:`ApproxMinCut`,
:class:`FullyDistributedExact`); for a uniform surface returning the
canonical :class:`repro.api.CutResult` — and capability-based solver
selection across all baselines — use :func:`repro.api.solve`, where
each of these algorithms is registered (as ``"exact"``,
``"exact_congest_full"`` and ``"approx"``).
"""

from .exact import ExactMinCut, default_tree_schedule, minimum_cut_exact
from .exact_distributed import FullyDistributedExact, minimum_cut_exact_congest_full
from .approx import ApproxMinCut, minimum_cut_approx

__all__ = [
    "ExactMinCut",
    "default_tree_schedule",
    "minimum_cut_exact",
    "FullyDistributedExact",
    "minimum_cut_exact_congest_full",
    "ApproxMinCut",
    "minimum_cut_approx",
]
