"""Karger's identity ``C(v↓) = δ↓(v) − 2·ρ↓(v)`` (Lemma 2.2 of the paper).

For a graph ``G`` with spanning tree ``T`` rooted at ``r``:

* ``δ(v)``  — weighted degree of ``v``,
* ``ρ(v)``  — total weight of edges whose endpoints' least common
  ancestor in ``T`` is ``v``,
* ``δ↓(v)`` / ``ρ↓(v)`` — the sums of ``δ`` / ``ρ`` over the descendant
  set ``v↓``.

Karger [JACM 2000, Lemma 5.9] observes that the cut separating ``v↓``
from the rest of the graph has weight exactly ``δ↓(v) − 2ρ↓(v)``: edges
with both endpoints inside ``v↓`` are counted twice by ``δ↓`` and their
LCA lies in ``v↓``, so subtracting ``2ρ↓`` leaves precisely the crossing
weight.

This module is the *centralized reference* for the distributed
algorithm: the distributed run must reproduce these numbers exactly at
every node (tested to equality, weights being integers or dyadics in the
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree


def weighted_degrees(graph: WeightedGraph) -> dict[Node, float]:
    """``δ(v)`` for every node."""
    return {u: graph.weighted_degree(u) for u in graph.nodes}


def lca_weights(graph: WeightedGraph, tree: RootedTree) -> dict[Node, float]:
    """``ρ(v)``: total weight of edges whose endpoint LCA is ``v``.

    Every graph edge contributes to exactly one node's ``ρ``; tree edges
    contribute to the parent endpoint (their LCA).
    """
    _require_spanning(graph, tree)
    rho = {u: 0.0 for u in graph.nodes}
    for u, v, w in graph.edges():
        rho[tree.lca(u, v)] += w
    return rho


def subtree_sums(tree: RootedTree, values: dict[Node, float]) -> dict[Node, float]:
    """``f↓(v) = Σ_{u ∈ v↓} f(u)`` for every ``v``, one postorder sweep."""
    totals = dict(values)
    for u in tree.postorder():
        parent = tree.parent(u)
        if parent is not None:
            totals[parent] += totals[u]
    return totals


@dataclass(frozen=True)
class KargerQuantities:
    """All per-node quantities of Lemma 2.2 for one ``(G, T)`` pair."""

    delta: dict[Node, float]
    rho: dict[Node, float]
    delta_down: dict[Node, float]
    rho_down: dict[Node, float]
    cut_below: dict[Node, float]


def compute_karger_quantities(graph: WeightedGraph, tree: RootedTree) -> KargerQuantities:
    """Evaluate δ, ρ, δ↓, ρ↓ and ``C(v↓)`` for every node.

    ``C(r↓)`` for the root is 0 by the identity (the "cut" is the whole
    vertex set); callers minimising over 1-respecting cuts must exclude
    the root, as :func:`repro.core.one_respect_reference` does.
    """
    _require_spanning(graph, tree)
    delta = weighted_degrees(graph)
    rho = lca_weights(graph, tree)
    delta_down = subtree_sums(tree, delta)
    rho_down = subtree_sums(tree, rho)
    cut_below = {
        v: delta_down[v] - 2.0 * rho_down[v] for v in graph.nodes
    }
    return KargerQuantities(delta, rho, delta_down, rho_down, cut_below)


def _require_spanning(graph: WeightedGraph, tree: RootedTree) -> None:
    if set(tree.nodes) != set(graph.nodes):
        raise AlgorithmError(
            "tree must span the graph: node sets differ "
            f"({len(tree)} tree vs {graph.number_of_nodes} graph nodes)"
        )
    for child, parent in tree.edges():
        if not graph.has_edge(child, parent):
            raise AlgorithmError(
                f"tree edge ({child!r}, {parent!r}) is not a graph edge"
            )
