"""The paper's core contribution (system S9 of DESIGN.md).

* Karger's lemma and the centralized 1-respecting reference.
* The distributed Theorem 2.1 implementation on the CONGEST simulator.
* Exact min cut via Thorup tree packing, and (1+ε)-approximation via
  Karger skeleton sampling (see :mod:`repro.core.mincut_exact` and
  :mod:`repro.core.mincut_approx`).
"""

from .karger_lemma import (
    KargerQuantities,
    compute_karger_quantities,
    lca_weights,
    subtree_sums,
    weighted_degrees,
)
from .one_respect_reference import OneRespectResult, one_respecting_min_cut_reference
from .one_respect_congest import (
    DistributedOneRespectResult,
    install_partition_knowledge,
    one_respecting_min_cut_congest,
)
from .structures import StructuresReference
from .two_respect import (
    TwoRespectResult,
    minimum_cut_exact_two_respect,
    two_respecting_min_cut_reference,
)

__all__ = [
    "TwoRespectResult",
    "minimum_cut_exact_two_respect",
    "two_respecting_min_cut_reference",
    "KargerQuantities",
    "compute_karger_quantities",
    "lca_weights",
    "subtree_sums",
    "weighted_degrees",
    "OneRespectResult",
    "one_respecting_min_cut_reference",
    "DistributedOneRespectResult",
    "install_partition_knowledge",
    "one_respecting_min_cut_congest",
    "StructuresReference",
]
