"""Distributed Steps 1b–2 of the paper: structural knowledge phases.

After the fragment partition (Step 1a, :mod:`repro.fragments.distributed`)
these phases make every node know:

* the fragment tree ``T_F`` and every fragment's root (Step 1b — gossip
  of the O(√n) inter-fragment edges);
* which child fragments hang inside its own fragment-subtree, hence
  ``F(v)`` — the fragments wholly contained in ``v↓`` (Step 2, upcast
  within fragments + local closure over ``T_F``);
* ``A(v)`` — its ancestors within its own and its parent fragment, as
  ``(id, fragment, hops-above)`` triples (Step 2, scoped downcast);
* for every fragment ``F'`` with a holder in scope, the *lowest ancestor*
  ``u''`` with ``F' ∈ F(u'')`` (Step 2's "minor modification", the
  engine of Step 5 case 3).

Hop counts (``h`` = tree distance above the receiving node) replace
global depths: all comparisons the algorithm makes are between ancestors
of a common node, where hop counts order identically to depths, so no
O(depth(T))-round depth computation is ever needed.

All phases respect the scope rule: information about a node ``u'`` is
forwarded to a child ``c`` only while ``frag(u') ∈ {frag(c),
parent-fragment(frag(c))}``, which caps travel depth at two fragment
depths (O(√n)) and per-edge traffic at O(√n) messages.
"""

from __future__ import annotations

from typing import Optional

from ...congest.node import Inbox, NodeContext, NodeProgram
from ...primitives.treespec import SPANNING_TREE, TreeSpec

NONE_FRAG = "-"
"""Wire sentinel for "no parent fragment" (payloads must be scalars)."""


# ----------------------------------------------------------------------
# Step 1b: gossip items describing T_F
# ----------------------------------------------------------------------
def fragment_tree_items(ctx: NodeContext, tree: TreeSpec = SPANNING_TREE):
    """Items for the T_F gossip, emitted by fragment roots.

    A node is a fragment root iff its tree parent is absent or lies in a
    different fragment; it announces ``(own fragment, parent fragment,
    own id)`` — which simultaneously publishes the fragment-tree edge and
    the fragment root's identity.
    """
    parent = tree.parent(ctx)
    my_frag = ctx.memory["frag:id"]
    if parent is None:
        return [(my_frag, NONE_FRAG, ctx.node)]
    parent_frag = ctx.memory["frag:nbr"][parent]
    if parent_frag != my_frag:
        return [(my_frag, parent_frag, ctx.node)]
    return []


def install_fragment_tree(ctx_memory: dict, gossip_key: str) -> None:
    """Local post-processing: build ``or:tf`` (fragment → parent fragment)
    and ``or:frag_roots`` (fragment → root node) from the gossiped items.

    Uses only the node's own memory — a purely local computation.
    """
    tf_parent: dict = {}
    frag_roots: dict = {}
    for my_frag, parent_frag, root_node in ctx_memory[gossip_key]:
        tf_parent[my_frag] = None if parent_frag == NONE_FRAG else parent_frag
        frag_roots[my_frag] = root_node
    ctx_memory["or:tf"] = tf_parent
    ctx_memory["or:frag_roots"] = frag_roots


def tf_descendants(tf_parent: dict, fragment: object) -> set:
    """All T_F descendants of ``fragment`` (including itself), from the
    parent map every node holds locally."""
    children: dict = {}
    for fid, parent in tf_parent.items():
        if parent is not None:
            children.setdefault(parent, []).append(fid)
    out = set()
    stack = [fragment]
    while stack:
        f = stack.pop()
        out.add(f)
        stack.extend(children.get(f, ()))
    return out


# ----------------------------------------------------------------------
# Step 2: hanging child fragments  →  F(v)
# ----------------------------------------------------------------------
def hanging_fragment_items(ctx: NodeContext, tree: TreeSpec = SPANNING_TREE):
    """Initial items of the intra-fragment upcast: the child fragments
    hanging directly below this node (one item per inter-fragment child
    edge)."""
    my_frag = ctx.memory["frag:id"]
    items = []
    for child in tree.children(ctx):
        child_frag = ctx.memory["frag:nbr"][child]
        if child_frag != my_frag:
            items.append((child_frag,))
    return items


def install_fragments_below(ctx_memory: dict, hang_key: str) -> None:
    """Local: ``F(v)`` = union of T_F subtrees of the recorded hanging
    child fragments; also the predicate "v↓ contains a whole fragment"."""
    tf_parent = ctx_memory["or:tf"]
    hanging = {item[0] for item in ctx_memory.get(hang_key, ())}
    below: set = set()
    for frag in hanging:
        below |= tf_descendants(tf_parent, frag)
    ctx_memory["or:F"] = frozenset(below)
    ctx_memory["or:contains_fragment"] = bool(below) or bool(
        ctx_memory.get("frag:is_root")
    )


# ----------------------------------------------------------------------
# Step 2: scoped ancestor downcast  →  A(v)
# ----------------------------------------------------------------------
class AncestorDowncast(NodeProgram):
    """Every node learns ``A(v)`` as ``(ancestor, fragment, hops)``.

    Each node injects itself; a node receiving ``(a, frag_a, h)`` from
    its tree parent records it and forwards ``(a, frag_a, h+1)`` to each
    child still in scope for ``a``.
    """

    OUT_KEY = "or:A"
    KIND = "anc"

    def __init__(self, tree: TreeSpec = SPANNING_TREE) -> None:
        self.tree = tree

    def on_start(self, ctx: NodeContext) -> None:
        my_frag = ctx.memory["frag:id"]
        ctx.memory[self.OUT_KEY] = [(ctx.node, my_frag, 0)]
        self._forward(ctx, ctx.node, my_frag, 0)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _src, msg in inbox:
            if msg.kind != self.KIND:
                continue
            ancestor, frag_a, hops = msg.payload
            ctx.memory[self.OUT_KEY].append((ancestor, frag_a, hops))
            self._forward(ctx, ancestor, frag_a, hops)

    def _forward(self, ctx: NodeContext, ancestor, frag_a, hops) -> None:
        tf_parent = ctx.memory["or:tf"]
        nbr_frag = ctx.memory["frag:nbr"]
        in_scope = [
            child
            for child in self.tree.children(ctx)
            if frag_a == nbr_frag[child] or frag_a == tf_parent.get(nbr_frag[child])
        ]
        ctx.multicast(in_scope, self.KIND, ancestor, frag_a, hops + 1)


# ----------------------------------------------------------------------
# Step 2 (modified): lowest-holder downcast  →  F(u) for u ∈ A(v)
# ----------------------------------------------------------------------
class LowestHolderDowncast(NodeProgram):
    """Every node learns, per fragment ``F'``, its lowest ancestor ``u''``
    (in scope) with ``F' ∈ F(u'')``.

    Each node announces ``(self, frag(self), F', 0)`` for every
    ``F' ∈ F(self)``; a node receiving ``(u', frag_u, F', h)`` *drops* it
    when ``F' ∈ F(self)`` (its own, lower entry wins) and otherwise
    records and forwards within scope.  The recorded map directly powers
    Step 5's case-3 LCA: the lowest holder of the other endpoint's
    fragment *is* the LCA.
    """

    OUT_KEY = "or:holder"
    KIND = "hold"

    def __init__(self, tree: TreeSpec = SPANNING_TREE) -> None:
        self.tree = tree

    def on_start(self, ctx: NodeContext) -> None:
        my_frag = ctx.memory["frag:id"]
        holder: dict = {}
        ctx.memory[self.OUT_KEY] = holder
        for frag_below in ctx.memory["or:F"]:
            holder[frag_below] = (ctx.node, my_frag, 0)
            self._forward(ctx, ctx.node, my_frag, frag_below, 0)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        holder = ctx.memory[self.OUT_KEY]
        own_f = ctx.memory["or:F"]
        for _src, msg in inbox:
            if msg.kind != self.KIND:
                continue
            u_prime, frag_u, frag_below, hops = msg.payload
            if frag_below in own_f:
                continue  # a strictly lower holder (this node) exists
            holder[frag_below] = (u_prime, frag_u, hops)
            self._forward(ctx, u_prime, frag_u, frag_below, hops)

    def _forward(self, ctx: NodeContext, u_prime, frag_u, frag_below, hops) -> None:
        tf_parent = ctx.memory["or:tf"]
        nbr_frag = ctx.memory["frag:nbr"]
        in_scope = [
            child
            for child in self.tree.children(ctx)
            if frag_u == nbr_frag[child] or frag_u == tf_parent.get(nbr_frag[child])
        ]
        ctx.multicast(in_scope, self.KIND, u_prime, frag_u, frag_below, hops + 1)


# ----------------------------------------------------------------------
# Step 4 helpers: merging-node detection and skeleton wiring
# ----------------------------------------------------------------------
class ContainsFragmentBit(NodeProgram):
    """One-round phase: every node tells its tree parent whether its
    subtree contains a whole fragment; parents count the bits and mark
    themselves merging nodes when at least two children say yes."""

    KIND = "cfb"

    def __init__(self, tree: TreeSpec = SPANNING_TREE) -> None:
        self.tree = tree
        self._loaded_children = 0

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory["or:is_merging"] = False
        parent = self.tree.parent(ctx)
        if parent is not None and ctx.memory["or:contains_fragment"]:
            ctx.send(parent, self.KIND)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _src, msg in inbox:
            if msg.kind == self.KIND:
                self._loaded_children += 1
        if self._loaded_children >= 2:
            ctx.memory["or:is_merging"] = True


def skeleton_membership_items(ctx: NodeContext):
    """Gossip items announcing T'_F membership: fragment roots and
    merging nodes publish ``(id, fragment)``."""
    if ctx.memory.get("frag:is_root") or ctx.memory.get("or:is_merging"):
        return [(ctx.node, ctx.memory["frag:id"])]
    return []


def install_skeleton_parent(ctx_memory: dict, node, members_key: str) -> None:
    """Local: a skeleton node finds its T'_F parent — its lowest proper
    ancestor in the membership set, guaranteed to appear in ``A(v)``."""
    members = {m for m, _f in ctx_memory[members_key]}
    ctx_memory["or:skeleton_members"] = members
    ctx_memory["or:skeleton_frag"] = dict(ctx_memory[members_key])
    if node not in members:
        return
    candidates = [
        (hops, ancestor)
        for ancestor, _frag, hops in ctx_memory["or:A"]
        if hops > 0 and ancestor in members
    ]
    ctx_memory["or:skeleton_parent_self"] = (
        min(candidates)[1] if candidates else None
    )


def skeleton_edge_items(ctx: NodeContext):
    """Gossip items publishing T'_F edges ``(node, parent-or-sentinel)``."""
    if "or:skeleton_parent_self" not in ctx.memory:
        return []
    parent = ctx.memory["or:skeleton_parent_self"]
    return [(ctx.node, NONE_FRAG if parent is None else parent)]


def install_skeleton_tree(ctx_memory: dict, node, edges_key: str) -> None:
    """Local: assemble T'_F's parent map and this node's own skeleton
    ancestor chain (lowest first), used by Step 5 case 2."""
    parent_map = {
        child: (None if parent == NONE_FRAG else parent)
        for child, parent in ctx_memory[edges_key]
    }
    ctx_memory["or:tfprime"] = parent_map
    members = ctx_memory["or:skeleton_members"]
    if node in members:
        lowest: Optional[object] = node
    else:
        candidates = [
            (hops, ancestor)
            for ancestor, _frag, hops in ctx_memory["or:A"]
            if ancestor in members
        ]
        lowest = min(candidates)[1] if candidates else None
    chain = []
    cursor = lowest
    while cursor is not None:
        chain.append(cursor)
        cursor = parent_map.get(cursor)
    ctx_memory["or:skeleton_chain"] = chain
