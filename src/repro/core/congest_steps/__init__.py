"""Phase programs of the distributed 1-respecting min-cut (Theorem 2.1)."""

from .knowledge import (
    AncestorDowncast,
    ContainsFragmentBit,
    LowestHolderDowncast,
    fragment_tree_items,
    hanging_fragment_items,
    install_fragment_tree,
    install_fragments_below,
    install_skeleton_parent,
    install_skeleton_tree,
    skeleton_edge_items,
    skeleton_membership_items,
    tf_descendants,
)
from .lca import EdgeLCA, LCAExchange, TYPE_FRAGMENT, TYPE_GLOBAL, rho_contributions

__all__ = [
    "AncestorDowncast",
    "ContainsFragmentBit",
    "LowestHolderDowncast",
    "fragment_tree_items",
    "hanging_fragment_items",
    "install_fragment_tree",
    "install_fragments_below",
    "install_skeleton_parent",
    "install_skeleton_tree",
    "skeleton_edge_items",
    "skeleton_membership_items",
    "tf_descendants",
    "EdgeLCA",
    "LCAExchange",
    "TYPE_FRAGMENT",
    "TYPE_GLOBAL",
    "rho_contributions",
]
