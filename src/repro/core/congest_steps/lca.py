"""Distributed Step 5a: per-edge LCA computation.

For every graph edge ``(x, y)`` the two endpoints determine the least
common ancestor ``z`` of ``x`` and ``y`` in ``T`` by exchanging O(√n)
messages *over that edge* (pipelined by the engine's per-edge FIFOs), as
in the paper's three cases:

* **Case 1** (same fragment): both endpoints stream their within-fragment
  ancestor chains ``(ancestor, hops)``; ``z`` is the deepest common
  entry.  Depth comparisons use hop counts relative to the *sender*,
  which order ancestors of the sender exactly as global depths do.
* **Case 3** (different fragments, ``z`` in one endpoint's fragment):
  the endpoint whose lowest-holder map contains the other endpoint's
  fragment *with a holder inside its own fragment* announces the holder:
  that holder is ``z``.  At most one endpoint can make such an
  announcement (proved in the module tests), and its announcement is
  sent as the verdict.
* **Case 2** (``z`` in neither fragment): both verdicts are empty; the
  endpoints stream their skeleton-ancestor chains (root-paths in
  ``T'_F``); ``z`` is the deepest common entry — necessarily a merging
  node.

The phase also settles the ρ-message bookkeeping of Step 5:

* case 2 edges are **type (i)**: the endpoint with the smaller id
  creates the global message ⟨z⟩;
* case 1/3 edges are **type (ii)**: the endpoint in ``z``'s fragment
  creates ⟨z⟩ (for case 1, the deeper endpoint; ties by smaller id).

Each node ends with ``memory["or:lca"] = {neighbour: EdgeLCA}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ProtocolError
from ...congest.node import Inbox, NodeContext, NodeProgram

TYPE_GLOBAL = 1
"""ρ-message type (i): endpoints lie outside the LCA's fragment."""

TYPE_FRAGMENT = 2
"""ρ-message type (ii): the holder shares the LCA's fragment."""


@dataclass(frozen=True)
class EdgeLCA:
    """Resolved LCA bookkeeping for one incident edge."""

    lca: object
    lca_fragment: object
    message_type: int
    i_am_holder: bool
    weight: float


class _EdgeState:
    """Per-neighbour buffers while an edge's exchange is in flight."""

    __slots__ = (
        "their_chain",
        "chain_done",
        "their_skeleton",
        "skeleton_done",
        "their_verdict",
        "resolved",
    )

    def __init__(self) -> None:
        self.their_chain: list = []
        self.chain_done = False
        self.their_skeleton: list = []
        self.skeleton_done = False
        self.their_verdict = None  # None = not received; ("z", id) / ("none",)
        self.resolved = False


class LCAExchange(NodeProgram):
    """The per-edge exchange program (see module docstring)."""

    OUT_KEY = "or:lca"

    def __init__(self) -> None:
        self._edges: dict = {}
        self._my_chain_map: dict = {}
        self._my_frag = None

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory[self.OUT_KEY] = {}
        self._my_frag = ctx.memory["frag:id"]
        self._my_chain_map = {
            ancestor: hops
            for ancestor, frag_a, hops in ctx.memory["or:A"]
            if frag_a == self._my_frag
        }
        holder_map = ctx.memory["or:holder"]
        skeleton_chain = ctx.memory["or:skeleton_chain"]
        nbr_frag = ctx.memory["frag:nbr"]
        # Group neighbours by the stream they receive: the chain and
        # skeleton streams are identical for every target, so each item
        # is one multicast message shared across those edges (each edge
        # still carries every item — the per-edge FIFO order, and hence
        # the exchange, is unchanged).
        same_fragment: list = []
        needs_skeleton: list = []
        for v in ctx.neighbors:
            self._edges[v] = _EdgeState()
            v_frag = nbr_frag[v]
            if v_frag == self._my_frag:
                same_fragment.append(v)
            else:
                verdict = holder_map.get(v_frag)
                if verdict is not None and verdict[1] == self._my_frag:
                    ctx.send(v, "vd", verdict[0])
                else:
                    needs_skeleton.append(v)
        if same_fragment:
            for ancestor, hops in sorted(
                self._my_chain_map.items(), key=lambda kv: kv[1]
            ):
                ctx.multicast(same_fragment, "ch", ancestor, hops)
            ctx.multicast(same_fragment, "che")
        if needs_skeleton:
            ctx.multicast(needs_skeleton, "vdn")
            for skeleton_node in skeleton_chain:
                ctx.multicast(needs_skeleton, "sk", skeleton_node)
            ctx.multicast(needs_skeleton, "ske")

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        # Stream items ("ch"/"sk") only buffer; resolution can advance
        # only on the decisive kinds, so the (hot) item path skips the
        # resolution attempt entirely.  Commit timing is unchanged: on a
        # cross-fragment edge the peer's verdict is the first message in
        # its FIFO, exactly when the old per-message attempt first fired.
        edges = self._edges
        for src, msg in inbox:
            kind = msg.kind
            state = edges[src]
            if kind == "ch":
                state.their_chain.append(msg.payload)
            elif kind == "sk":
                state.their_skeleton.append(msg.payload[0])
            elif kind == "che":
                state.chain_done = True
                self._maybe_resolve(ctx, src, state)
            elif kind == "ske":
                state.skeleton_done = True
                self._maybe_resolve(ctx, src, state)
            elif kind == "vd":
                state.their_verdict = ("z", msg.payload[0])
                self._maybe_resolve(ctx, src, state)
            elif kind == "vdn":
                state.their_verdict = ("none",)
                self._maybe_resolve(ctx, src, state)
            else:
                raise ProtocolError(f"unexpected message kind {kind!r}")

    # ------------------------------------------------------------------
    def _maybe_resolve(self, ctx: NodeContext, v, state: _EdgeState) -> None:
        if state.resolved:
            return
        v_frag = ctx.memory["frag:nbr"][v]
        if v_frag == self._my_frag:
            if state.chain_done:
                self._resolve_same_fragment(ctx, v, state)
        else:
            self._resolve_cross_fragment(ctx, v, v_frag, state)

    def _resolve_same_fragment(self, ctx: NodeContext, v, state: _EdgeState) -> None:
        common = [
            (hops_theirs, ancestor)
            for ancestor, hops_theirs in state.their_chain
            if ancestor in self._my_chain_map
        ]
        if not common:
            raise ProtocolError(
                f"no common within-fragment ancestor on edge "
                f"({ctx.node!r}, {v!r}); fragments must be connected"
            )
        hops_theirs, lca = min(common)
        hops_mine = self._my_chain_map[lca]
        if hops_mine != hops_theirs:
            i_hold = hops_mine > hops_theirs
        else:
            i_hold = _node_order(ctx.node) < _node_order(v)
        self._commit(ctx, v, lca, self._my_frag, TYPE_FRAGMENT, i_hold, state)

    def _resolve_cross_fragment(
        self, ctx: NodeContext, v, v_frag, state: _EdgeState
    ) -> None:
        holder_map = ctx.memory["or:holder"]
        my_verdict = holder_map.get(v_frag)
        mine_decides = my_verdict is not None and my_verdict[1] == self._my_frag
        if mine_decides:
            if state.their_verdict is not None and state.their_verdict[0] == "z":
                raise ProtocolError(
                    f"both endpoints of ({ctx.node!r}, {v!r}) claim the LCA"
                )
            self._commit(
                ctx, v, my_verdict[0], self._my_frag, TYPE_FRAGMENT, True, state
            )
            return
        if state.their_verdict is None:
            return
        if state.their_verdict[0] == "z":
            self._commit(
                ctx, v, state.their_verdict[1], v_frag, TYPE_FRAGMENT, False, state
            )
            return
        # Case 2: both verdicts empty — need the full skeleton chain.
        if not state.skeleton_done:
            return
        my_skeleton = set(ctx.memory["or:skeleton_chain"])
        lca = next(
            (s for s in state.their_skeleton if s in my_skeleton), None
        )
        if lca is None:
            raise ProtocolError(
                f"no common skeleton ancestor on edge ({ctx.node!r}, {v!r})"
            )
        i_create = _node_order(ctx.node) < _node_order(v)
        lca_frag = ctx.memory["or:skeleton_frag"][lca]
        self._commit(ctx, v, lca, lca_frag, TYPE_GLOBAL, i_create, state)

    def _commit(
        self, ctx: NodeContext, v, lca, lca_frag, message_type, i_hold, state
    ) -> None:
        state.resolved = True
        ctx.memory[self.OUT_KEY][v] = EdgeLCA(
            lca=lca,
            lca_fragment=lca_frag,
            message_type=message_type,
            i_am_holder=i_hold,
            weight=ctx.edge_weight(v),
        )


def _node_order(node):
    return node if isinstance(node, int) else repr(node)


def rho_contributions(ctx: NodeContext, message_type: int):
    """This node's ``(lca, weight)`` contributions of a given type —
    the inputs of the two keyed-sum phases of Step 5b."""
    out = []
    for edge in ctx.memory[LCAExchange.OUT_KEY].values():
        if edge.message_type == message_type and edge.i_am_holder:
            out.append((edge.lca, edge.weight))
    return out
