"""Theorem 2.1, distributed: min cut 1-respecting a tree in O~(√n + D).

This driver chains the paper's Steps 1–5 as CONGEST phases on the
simulator.  Every phase is genuine message passing (the engine enforces
one O(log n)-bit message per edge per direction per round); the only
non-simulated piece is, optionally, the fragment partition, whose
published Kutten–Peleg round cost is then *charged* instead (DESIGN.md
§5).  Local (zero-round) computations between phases touch only each
node's own memory.

Phase plan (costs in rounds; k = number of fragments = O(√n)):

====  =============================================  ==============
step  phase                                          cost
====  =============================================  ==============
 --   BFS tree construction                          O(D)
 1a   fragment partition (simulated or charged)      O(√n·log*n + D)
 1b   gossip inter-fragment edges → every node T_F   O(√n + D)
 2    intra-fragment upcast of hanging fragments     O(√n)
 2    scoped ancestor downcast → A(v)                O(√n)
 2    lowest-holder downcast → F(u), u ∈ A(v)        O(√n)
 3    intra-fragment δ convergecast                  O(√n)
 3    gossip fragment degrees δ(F)                   O(√n + D)
 4    merging-node bits                              O(1)
 4    gossip skeleton membership, then T'_F edges    O(√n + D)
 5a   per-edge LCA exchange                          O(√n)
 5b   global keyed sums of type-(i) messages         O(√n + D)
 5b   intra-fragment keyed sums of type-(ii)         O(√n)
 5b   intra-fragment ρ convergecast + ρ(F) gossip    O(√n + D)
 --   global min convergecast + result broadcast     O(D)
====  =============================================  ==============

At the end **every node knows its own C(v↓)** plus the global minimum
``c*`` and its witness — exactly the guarantee of Theorem 2.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..congest.metrics import RunMetrics
from ..congest.network import CongestNetwork
from ..fragments.distributed import run_distributed_partition
from ..fragments.partition import FragmentDecomposition, partition_tree
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from ..primitives.bfs import build_bfs_tree
from ..primitives.convergecast import Convergecast, min_pair
from ..primitives.dissemination import DowncastItems, UpcastUnion, gossip_items
from ..primitives.keyed_sums import PipelinedKeyedSum
from ..primitives.treespec import (
    BFS_TREE,
    FRAGMENT_TREE,
    SPANNING_TREE,
    load_tree_into_memory,
)
from .congest_steps.knowledge import (
    AncestorDowncast,
    ContainsFragmentBit,
    LowestHolderDowncast,
    fragment_tree_items,
    hanging_fragment_items,
    install_fragment_tree,
    install_fragments_below,
    install_skeleton_parent,
    install_skeleton_tree,
    skeleton_edge_items,
    skeleton_membership_items,
)
from .congest_steps.lca import LCAExchange, TYPE_FRAGMENT, TYPE_GLOBAL, rho_contributions

INFINITY = float("inf")


@dataclass(frozen=True)
class DistributedOneRespectResult:
    """Output of the distributed Theorem 2.1 run.

    ``cut_values`` collects every non-root node's own ``C(v↓)`` (each
    value was computed *at that node*); ``metrics`` carries the measured
    and charged round counts.
    """

    best_value: float
    best_node: Node
    cut_values: dict[Node, float]
    metrics: RunMetrics
    fragment_count: int

    @property
    def rounds(self) -> int:
        return self.metrics.total_rounds


def one_respecting_min_cut_congest(
    graph: WeightedGraph,
    tree: RootedTree,
    simulate_partition: bool = False,
    partition_threshold: Optional[int] = None,
    network: Optional[CongestNetwork] = None,
) -> DistributedOneRespectResult:
    """Run the distributed 1-respecting min-cut end to end.

    Parameters
    ----------
    graph:
        The CONGEST communication network (= the input graph).
    tree:
        The rooted spanning tree ``T`` (input knowledge: each node knows
        its tree parent/children, as after a distributed MST).
    simulate_partition:
        When True, Step 1a runs as a real distributed protocol (cost
        O(depth(T)) rounds — faithful but not the Kutten–Peleg bound);
        when False (default) the partition is installed as the
        substituted substrate and the published O(√n·log*n + D) cost is
        charged.
    partition_threshold:
        Override the fragment size threshold (default ⌈√n⌉).
    """
    graph.require_connected()
    _require_int_nodes(graph)
    if set(tree.nodes) != set(graph.nodes):
        raise AlgorithmError("tree must span the communication graph")
    if len(tree) < 2:
        raise AlgorithmError("need at least two nodes for a 1-respecting cut")

    net = network if network is not None else CongestNetwork(graph)
    net.reset_memory()
    load_tree_into_memory(net, tree, SPANNING_TREE)

    # --- BFS backbone ---------------------------------------------------
    build_bfs_tree(net, spec=BFS_TREE)
    bfs_height = max(
        net.memory[u][BFS_TREE.depth_key] for u in net.nodes
    )

    # --- Step 1a: fragments ----------------------------------------------
    if simulate_partition:
        run_distributed_partition(net, threshold=partition_threshold)
        fragment_count = len(
            {net.memory[u]["frag:id"] for u in net.nodes}
        )
    else:
        decomposition = partition_tree(tree, partition_threshold)
        install_partition_knowledge(net, decomposition)
        fragment_count = decomposition.fragment_count
        charged = _kutten_peleg_partition_cost(net.size, bfs_height)
        net.charge(charged, "Kutten-Peleg tree partition (substituted)")

    # --- Step 1b: every node learns T_F ----------------------------------
    gossip_items(net, fragment_tree_items, out_key="or:tfitems", phase_name="tf")
    _local(net, lambda u, mem: install_fragment_tree(mem, "or:tfitems"))

    # --- Step 2: F(v), A(v), lowest holders ------------------------------
    net.run_phase(
        "hang-upcast",
        lambda u: UpcastUnion(FRAGMENT_TREE, hanging_fragment_items, out_key="or:hang"),
    )
    _local(net, lambda u, mem: install_fragments_below(mem, "or:hang"))
    net.run_phase("ancestor-downcast", lambda u: AncestorDowncast())
    net.run_phase("holder-downcast", lambda u: LowestHolderDowncast())

    # --- Step 3: δ↓(v) ----------------------------------------------------
    net.run_phase(
        "delta-intra",
        lambda u: Convergecast(
            FRAGMENT_TREE,
            initial=lambda ctx: ctx.weighted_degree(),
            out_key="or:delta_intra",
        ),
    )
    gossip_items(
        net,
        lambda ctx: _fragment_total_items(ctx, "or:delta_intra"),
        out_key="or:delta_frag",
        phase_name="delta-frag",
    )
    _local(net, _install_delta_down)

    # --- Step 4: merging nodes and T'_F ------------------------------------
    net.run_phase("merging-bits", lambda u: ContainsFragmentBit())
    gossip_items(
        net, skeleton_membership_items, out_key="or:skmembers", phase_name="skeleton"
    )
    _local(net, lambda u, mem: install_skeleton_parent(mem, u, "or:skmembers"))
    gossip_items(
        net, skeleton_edge_items, out_key="or:skedges", phase_name="skeleton-edges"
    )
    _local(net, lambda u, mem: install_skeleton_tree(mem, u, "or:skedges"))

    # --- Step 5a: per-edge LCAs -------------------------------------------
    net.run_phase("lca-exchange", lambda u: LCAExchange())

    # --- Step 5b: ρ↓(v) -----------------------------------------------------
    net.run_phase(
        "rho-global",
        lambda u: PipelinedKeyedSum(
            BFS_TREE,
            lambda ctx: rho_contributions(ctx, TYPE_GLOBAL),
            out_key="or:rho1",
        ),
    )
    gossip_items(
        net,
        lambda ctx: _root_map_items(ctx, "or:rho1:root"),
        out_key="or:rho1_map",
        phase_name="rho-global-map",
    )
    net.run_phase(
        "rho-fragment",
        lambda u: PipelinedKeyedSum(
            FRAGMENT_TREE,
            lambda ctx: rho_contributions(ctx, TYPE_FRAGMENT),
            out_key="or:rho2",
            capture_own_key=True,
        ),
    )
    _local(net, _install_rho)
    net.run_phase(
        "rho-intra",
        lambda u: Convergecast(
            FRAGMENT_TREE,
            initial=lambda ctx: ctx.memory["or:rho"],
            out_key="or:rho_intra",
        ),
    )
    gossip_items(
        net,
        lambda ctx: _fragment_total_items(ctx, "or:rho_intra"),
        out_key="or:rho_frag",
        phase_name="rho-frag",
    )
    _local(net, _install_cut_below)

    # --- Global minimum ------------------------------------------------------
    net.run_phase(
        "global-min",
        lambda u: Convergecast(
            BFS_TREE,
            initial=_min_initial,
            combine=min_pair,
            out_key="or:min",
        ),
    )
    net.run_phase(
        "announce",
        lambda u: DowncastItems(BFS_TREE, _announce_items, out_key="or:cstar_items"),
    )
    _local(net, _install_final)

    cut_values = {
        u: net.memory[u]["or:cut_below"]
        for u in net.nodes
        if net.memory[u][SPANNING_TREE.parent_key] is not None
    }
    root_memory = net.memory[net.nodes[0]]
    best_value, best_node = root_memory["or:cstar"]
    return DistributedOneRespectResult(
        best_value=best_value,
        best_node=best_node,
        cut_values=cut_values,
        metrics=net.metrics,
        fragment_count=fragment_count,
    )


# ----------------------------------------------------------------------
# Substituted Step 1a: install a centralized partition as node knowledge
# ----------------------------------------------------------------------
def install_partition_knowledge(
    network: CongestNetwork, decomposition: FragmentDecomposition
) -> None:
    """Write the Step 1a outcome into node memory (substituted substrate).

    Installs exactly the knowledge the distributed partition would leave
    behind: fragment id/root/is-root flags, each neighbour's fragment id,
    and the fragment-restricted tree.
    """
    tree = decomposition.tree
    neighbor_lists = network.index.neighbor_lists
    for i, u in enumerate(network.nodes):
        mem = network.memory[u]
        fid = decomposition.fragment_id(u)
        frag_root = decomposition.root_of[u]
        mem["frag:id"] = fid
        mem["frag:root"] = frag_root
        mem["frag:is_root"] = frag_root == u
        mem["frag:nbr"] = {
            v: decomposition.fragment_id(v) for v in neighbor_lists[i]
        }
        parent = tree.parent(u)
        mem[FRAGMENT_TREE.parent_key] = (
            parent
            if parent is not None and decomposition.root_of[parent] == frag_root
            else None
        )
        mem[FRAGMENT_TREE.children_key] = [
            c for c in tree.children(u) if decomposition.root_of[c] == frag_root
        ]


def _kutten_peleg_partition_cost(n: int, bfs_height: int) -> int:
    """The published Step 1a bound: O(√n · log* n + D) rounds."""
    return math.isqrt(max(1, n)) * _log_star(n) + bfs_height


def _log_star(n: int) -> int:
    count = 0
    value = float(max(2, n))
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


# ----------------------------------------------------------------------
# Local (zero-round) computations between phases
# ----------------------------------------------------------------------
def _local(network: CongestNetwork, fn) -> None:
    """Apply a per-node computation that may read/write only that node's
    own memory — the zero-round "local computation" of the model."""
    for u in network.nodes:
        fn(u, network.memory[u])


def _fragment_total_items(ctx, intra_key: str):
    """Gossip items ``(fragment id, fragment total)`` from fragment roots;
    the fragment root's intra-fragment subtree sum *is* the fragment
    total."""
    if ctx.memory.get("frag:is_root"):
        return [(ctx.memory["frag:id"], ctx.memory[intra_key])]
    return []


def _root_map_items(ctx, root_map_key: str):
    """Gossip items from the BFS root's keyed-sum result map."""
    if ctx.memory.get(BFS_TREE.parent_key) is None:
        return sorted(ctx.memory.get(root_map_key, {}).items())
    return []


def _install_delta_down(u, mem) -> None:
    frag_totals = dict(mem["or:delta_frag"])
    mem["or:delta_down"] = mem["or:delta_intra"] + sum(
        frag_totals[f] for f in mem["or:F"]
    )


def _install_rho(u, mem) -> None:
    global_map = dict(mem["or:rho1_map"])
    mem["or:rho"] = global_map.get(u, 0.0) + mem.get("or:rho2", 0.0)


def _install_cut_below(u, mem) -> None:
    frag_totals = dict(mem["or:rho_frag"])
    rho_down = mem["or:rho_intra"] + sum(frag_totals[f] for f in mem["or:F"])
    mem["or:rho_down"] = rho_down
    mem["or:cut_below"] = mem["or:delta_down"] - 2.0 * rho_down


def _min_initial(ctx):
    if ctx.memory[SPANNING_TREE.parent_key] is None:
        return (INFINITY, ctx.node)
    return (ctx.memory["or:cut_below"], ctx.node)


def _announce_items(ctx):
    if ctx.memory.get(BFS_TREE.parent_key) is None:
        value, witness = ctx.memory["or:min"]
        return [("cstar", value, witness)]
    return []


def _install_final(u, mem) -> None:
    _tag, value, witness = mem["or:cstar_items"][0]
    mem["or:cstar"] = (value, witness)


def _require_int_nodes(graph: WeightedGraph) -> None:
    if not all(isinstance(u, int) for u in graph.nodes):
        raise AlgorithmError(
            "the distributed algorithm requires integer node ids "
            "(keyed pipelines order messages by id)"
        )
