"""Centralized reference for the Step 1–4 structures of the paper.

Everything the distributed algorithm is supposed to make nodes *know* —
``A(v)``, ``F(v)``, the fragment tree ``T_F``, merging nodes, the
skeleton tree ``T'_F``, and the LCA case analysis of Step 5 — computed
directly from the decomposition.  The distributed phases are validated
against these maps, and the Figure 1 walkthrough prints them.

Definitions (Section 2 of the paper)
------------------------------------
* ``F(v)`` — fragments entirely contained in ``v↓``.  A fragment is
  contained in ``v↓`` iff its root lies in ``v↓``.  For the Step 3
  decomposition ``δ↓(v) = Σ_{u∈F_i∩v↓} δ(u) + Σ_{F_j∈F(v)} δ(F_j)`` to be
  disjoint, ``F(v)`` must exclude ``v``'s *own* fragment (which overlaps
  the first term when ``v`` is its fragment root).
* ``A(v)`` — ancestors of ``v`` (including ``v``) lying in ``v``'s
  fragment or in its parent fragment.
* **merging node** — a node with two distinct children whose subtrees
  both contain at least one whole fragment.
* ``T'_F`` — tree on fragment roots and merging nodes; the parent of a
  node is its lowest proper ancestor that is also in ``T'_F``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import AlgorithmError
from ..fragments.partition import FragmentDecomposition
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree


@dataclass
class StructuresReference:
    """All Step 1–4 artefacts for one ``(G, T, decomposition)`` triple."""

    graph: WeightedGraph
    tree: RootedTree
    decomposition: FragmentDecomposition

    fragments_below: dict[Node, frozenset] = field(init=False)
    contained_any: dict[Node, bool] = field(init=False)
    scope_ancestors: dict[Node, list[Node]] = field(init=False)
    merging_nodes: set[Node] = field(init=False)
    skeleton_nodes: set[Node] = field(init=False)
    skeleton_parent: dict[Node, Optional[Node]] = field(init=False)

    def __post_init__(self) -> None:
        self._compute_fragments_below()
        self._compute_scope_ancestors()
        self._compute_merging_nodes()
        self._compute_skeleton()

    # ------------------------------------------------------------------
    def _compute_fragments_below(self) -> None:
        """``F(v)`` for all v (own fragment excluded), plus the weaker
        predicate "does ``v↓`` contain any whole fragment" used by the
        merging-node rule."""
        dec = self.decomposition
        below: dict[Node, set] = {u: set() for u in self.tree.nodes}
        any_root_below: dict[Node, bool] = {u: False for u in self.tree.nodes}
        for u in self.tree.postorder():
            cell = below[u]
            for c in self.tree.children(u):
                cell |= below[c]
                any_root_below[u] = any_root_below[u] or any_root_below[c]
            if dec.root_of[u] == u:  # u is a fragment root
                cell.add(dec.fragment_id(u))
                any_root_below[u] = True
        self.contained_any = any_root_below
        self.fragments_below = {
            u: frozenset(below[u] - {dec.fragment_id(u)}) for u in self.tree.nodes
        }

    def _compute_scope_ancestors(self) -> None:
        """``A(v)``: ancestors of v (incl. v) in v's fragment or in the
        parent fragment of v's fragment."""
        dec = self.decomposition
        scope: dict[Node, list[Node]] = {}
        for v in self.tree.nodes:
            my_frag = dec.fragment_id(v)
            parent_frag = dec.parent_fragment(my_frag)
            allowed = {my_frag} | ({parent_frag} if parent_frag is not None else set())
            chain: list[Node] = []
            x: Optional[Node] = v
            while x is not None and dec.fragment_id(x) in allowed:
                chain.append(x)
                x = self.tree.parent(x)
            scope[v] = chain
        self.scope_ancestors = scope

    def _compute_merging_nodes(self) -> None:
        merging: set[Node] = set()
        for v in self.tree.nodes:
            loaded = sum(
                1 for c in self.tree.children(v) if self.contained_any[c]
            )
            if loaded >= 2:
                merging.add(v)
        self.merging_nodes = merging

    def _compute_skeleton(self) -> None:
        """``T'_F``: fragment roots and merging nodes, wired by lowest
        proper ancestors within the set."""
        dec = self.decomposition
        frag_roots = {dec.fragment_root(fid) for fid in dec.fragment_ids()}
        nodes = frag_roots | self.merging_nodes
        parent: dict[Node, Optional[Node]] = {}
        for v in nodes:
            x = self.tree.parent(v)
            while x is not None and x not in nodes:
                x = self.tree.parent(x)
            parent[v] = x
        self.skeleton_nodes = nodes
        self.skeleton_parent = parent

    # ------------------------------------------------------------------
    def skeleton_tree(self) -> RootedTree:
        """``T'_F`` as a :class:`RootedTree` (rooted at the tree root)."""
        root = self.tree.root
        if root not in self.skeleton_nodes:
            raise AlgorithmError("the tree root must be a fragment root")
        parent_map = {
            v: p for v, p in self.skeleton_parent.items() if p is not None
        }
        return RootedTree(root, parent_map)

    def skeleton_ancestors(self, v: Node) -> list[Node]:
        """Ancestors of ``v`` (possibly including ``v``) that lie in
        ``T'_F``, ordered from ``v`` upward — what Step 5 case 2 exchanges."""
        chain: list[Node] = []
        x: Optional[Node] = v
        while x is not None:
            if x in self.skeleton_nodes:
                chain.append(x)
            x = self.tree.parent(x)
        return chain

    # ------------------------------------------------------------------
    # Step 5 case analysis (used by tests and the distributed program)
    # ------------------------------------------------------------------
    def lca_case(self, x: Node, y: Node) -> int:
        """Which of the paper's three LCA cases edge ``(x, y)`` falls in.

        1 — endpoints share a fragment; 2 — the LCA lies in neither
        endpoint fragment (it is then a merging node); 3 — the LCA lies
        in exactly one endpoint's fragment.
        """
        dec = self.decomposition
        fx, fy = dec.fragment_id(x), dec.fragment_id(y)
        if fx == fy:
            return 1
        z = self.tree.lca(x, y)
        fz = dec.fragment_id(z)
        if fz != fx and fz != fy:
            return 2
        return 3

    def rho_message_type(self, x: Node, y: Node) -> tuple[int, Node, Node]:
        """Step 5 message bookkeeping for edge ``(x, y)``.

        Returns ``(message_type, lca, holder)`` where ``message_type`` is
        1 for edges whose endpoints both lie outside the LCA's fragment
        (counted globally over the BFS tree) and 2 otherwise (counted
        within the LCA's fragment); ``holder`` is the endpoint that
        creates the ⟨lca⟩ message (type 2: the endpoint sharing the
        LCA's fragment — for intra-fragment edges, the deeper endpoint).
        """
        dec = self.decomposition
        z = self.tree.lca(x, y)
        fz = dec.fragment_id(z)
        fx, fy = dec.fragment_id(x), dec.fragment_id(y)
        if fx != fz and fy != fz:
            if z not in self.merging_nodes and x != z and y != z:
                raise AlgorithmError(
                    f"type-1 LCA {z!r} of ({x!r}, {y!r}) must be a merging node"
                )
            holder = x  # either endpoint may hold the global message
            return (1, z, holder)
        if fx == fz and fy == fz:
            holder = x if self.tree.depth(x) >= self.tree.depth(y) else y
        elif fx == fz:
            holder = x
        else:
            holder = y
        return (2, z, holder)
