"""Centralized reference for "minimum cut that 1-respects a tree".

Given a spanning tree ``T`` of ``G`` rooted at ``r``, the 1-respecting
minimum cut is ``c* = min_{v ≠ r} C(v↓)`` — the lightest cut obtained by
deleting a single tree edge (the edge from ``v`` to its parent) and
splitting the graph along the two tree components.

This is Theorem 2.1's specification; the distributed implementation in
:mod:`repro.core.one_respect_congest` must agree with it node-for-node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from .karger_lemma import compute_karger_quantities


@dataclass(frozen=True)
class OneRespectResult:
    """Result of a 1-respecting minimisation.

    Attributes
    ----------
    best_value:
        ``c*``, the minimum of ``C(v↓)`` over non-root nodes.
    best_node:
        A witness ``v`` achieving it (smallest id among ties, for
        determinism).
    cut_values:
        ``{v: C(v↓)}`` for every non-root node — the paper guarantees
        every node knows its own value at the end.
    rounds:
        Total CONGEST rounds (0 for the centralized reference).
    """

    best_value: float
    best_node: Node
    cut_values: dict[Node, float]

    def cut_side(self, tree: RootedTree) -> set[Node]:
        """The node set ``best_node↓`` realising the cut."""
        return tree.subtree(self.best_node)


def one_respecting_min_cut_reference(
    graph: WeightedGraph, tree: RootedTree
) -> OneRespectResult:
    """Compute ``c*`` and all ``C(v↓)`` centrally (O(m log n + n))."""
    if len(tree) < 2:
        raise AlgorithmError("1-respecting cuts need at least two nodes")
    quantities = compute_karger_quantities(graph, tree)
    cut_values = {
        v: c for v, c in quantities.cut_below.items() if v != tree.root
    }
    best_node = min(cut_values, key=lambda v: (cut_values[v], _order(v)))
    return OneRespectResult(
        best_value=cut_values[best_node],
        best_node=best_node,
        cut_values=cut_values,
    )


def _order(node: Node):
    return node if isinstance(node, int) else repr(node)
