"""Minimum cuts that 2-respect a tree — Karger's full framework.

The paper reduces minimum cut to *1-respecting* cuts because Thorup's
greedy packing guarantees a tree crossing some minimum cut exactly once.
Karger's original framework [JACM 2000] works with trees crossing the
cut **at most twice** (2-respecting), which much smaller packings
achieve.  This module implements the centralized 2-respecting
minimisation as a library extension:

* For two tree nodes ``u, v`` with **incomparable** subtrees, deleting
  both parent edges cuts ``u↓ ∪ v↓`` from the rest:

  ``C(u↓ ∪ v↓) = C(u↓) + C(v↓) − 2·W(u↓, v↓)``

* For **comparable** ``v ∈ u↓`` (``v ≠ u``), the cut side is the annulus
  ``u↓ ∖ v↓``:

  ``C(u↓ ∖ v↓) = C(u↓) + C(v↓) − 2·W(v↓, V ∖ u↓)``

where ``W(A, B)`` is the total weight between disjoint node sets.  Both
cross-weight families are accumulated per graph edge over ancestor
chains (O(m·depth²) worst case — a deliberate clarity-over-speed choice
for the reference; the experiments run it up to a few hundred nodes).

:func:`minimum_cut_exact_two_respect` minimises over 2-respecting cuts
per packing tree; ablation A3 measures how many fewer trees this needs
than the 1-respecting reduction — the quantitative reason Karger's
framework uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import Node, WeightedGraph
from ..graphs.trees import RootedTree
from .karger_lemma import compute_karger_quantities


@dataclass(frozen=True)
class TwoRespectResult:
    """Minimum over cuts crossing the tree at most twice.

    ``nodes`` is ``(v,)`` when the best cut is the 1-respecting ``C(v↓)``
    and ``(u, v)`` when two tree edges are involved; ``side`` is the
    corresponding node set (``u↓ ∪ v↓`` or ``u↓ ∖ v↓``).
    """

    best_value: float
    nodes: tuple
    side: frozenset

    @property
    def crossings(self) -> int:
        return len(self.nodes)


def two_respecting_min_cut_reference(
    graph: WeightedGraph, tree: RootedTree
) -> TwoRespectResult:
    """Minimum cut 2-respecting ``tree`` (see module docstring)."""
    if len(tree) < 2:
        raise AlgorithmError("2-respecting cuts need at least two nodes")
    quantities = compute_karger_quantities(graph, tree)
    cut_below = quantities.cut_below
    root = tree.root
    nodes = [u for u in tree.nodes if u != root]

    best_value = float("inf")
    best_nodes: tuple = ()
    best_side: frozenset = frozenset()

    # 1-respecting candidates.
    for v in nodes:
        if cut_below[v] < best_value - 1e-12:
            best_value = cut_below[v]
            best_nodes = (v,)
            best_side = frozenset(tree.subtree(v))

    cross, down_out = _cross_weights(graph, tree)

    subtree_cache = {v: tree.subtree(v) for v in nodes}
    for i, u in enumerate(nodes):
        u_sub = subtree_cache[u]
        for v in nodes[i + 1 :]:
            v_sub = subtree_cache[v]
            if v in u_sub:
                value = cut_below[u] + cut_below[v] - 2.0 * down_out.get((v, u), 0.0)
                side = u_sub - v_sub
            elif u in v_sub:
                value = cut_below[v] + cut_below[u] - 2.0 * down_out.get((u, v), 0.0)
                side = v_sub - u_sub
            else:
                value = cut_below[u] + cut_below[v] - 2.0 * cross.get(_pair(u, v), 0.0)
                side = u_sub | v_sub
            if value < best_value - 1e-12 and 0 < len(side) < len(tree):
                best_value = value
                best_nodes = (u, v)
                best_side = frozenset(side)
    return TwoRespectResult(
        best_value=best_value, nodes=best_nodes, side=best_side
    )


def _pair(u: Node, v: Node):
    return (u, v) if repr(u) <= repr(v) else (v, u)


def _cross_weights(graph: WeightedGraph, tree: RootedTree):
    """Accumulate the two cross-weight families per graph edge.

    ``cross[(a, b)]``   = W(a↓, b↓) for incomparable a, b;
    ``down_out[(v, u)]`` = W(v↓, V∖u↓) for v a strict descendant of u.
    """
    cross: dict = {}
    down_out: dict = {}
    ancestor_cache = {
        x: tree.ancestors(x, include_self=True) for x in tree.nodes
    }
    depth = {x: tree.depth(x) for x in tree.nodes}
    for x, y, w in graph.edges():
        anc_x = ancestor_cache[x]
        anc_y = ancestor_cache[y]
        set_x = set(anc_x)
        lca = next(a for a in anc_y if a in set_x)
        # Strict ancestors of x below the LCA vs same for y: those pairs
        # (a, b) are incomparable with x ∈ a↓, y ∈ b↓.
        below_x = [a for a in anc_x if depth[a] > depth[lca]]
        below_y = [b for b in anc_y if depth[b] > depth[lca]]
        for a in below_x:
            for b in below_y:
                key = _pair(a, b)
                cross[key] = cross.get(key, 0.0) + w
        # down_out[(v, u)] needs edges from v↓ leaving u↓: v an ancestor
        # chain entry of one endpoint, u any strict ancestor of v that is
        # NOT an ancestor of the other endpoint.
        _accumulate_down_out(down_out, below_x, w)
        _accumulate_down_out(down_out, below_y, w)
    return cross, down_out


def _accumulate_down_out(down_out: dict, chain: list, w: float):
    """For an edge endpoint x with below-LCA ancestor chain ``chain``
    (deepest first): the edge contributes to W(v↓, V∖u↓) for every pair
    (v, u) on the chain with u a strict ancestor of v — the other
    endpoint lies outside u↓ exactly when u is strictly below the LCA,
    which is all of ``chain`` by construction."""
    for i, v in enumerate(chain):
        for u in chain[i + 1 :]:
            key = (v, u)
            down_out[key] = down_out.get(key, 0.0) + w


def minimum_cut_exact_two_respect(
    graph: WeightedGraph,
    tree_count: Optional[int] = None,
    patience: int = 3,
    max_trees: int = 24,
) -> TwoRespectResult:
    """Exact min cut via packing + per-tree **2-respecting** minimisation.

    Karger's observation: far fewer packed trees are needed when each
    tree may cross the minimum cut twice.  Centralized reference only
    (the distributed 2-respecting algorithm is beyond this paper).
    """
    from ..packing.greedy import GreedyTreePacking

    graph.require_connected()
    if graph.number_of_nodes < 2:
        raise AlgorithmError("minimum cut requires at least two nodes")
    packing = GreedyTreePacking(graph)
    best: Optional[TwoRespectResult] = None
    stale = 0
    limit = tree_count if tree_count is not None else max_trees
    while len(packing.trees) < limit:
        tree = packing.next_tree()
        candidate = two_respecting_min_cut_reference(graph, tree)
        if best is None or candidate.best_value < best.best_value - 1e-12:
            best = candidate
            stale = 0
        else:
            stale += 1
            if tree_count is None and stale >= patience:
                break
    assert best is not None
    return best
