"""A reconstruction of the paper's Figure 1 on a concrete 16-node instance.

The original figure is illustrative and its exact drawing is not fully
recoverable from the text, so — per DESIGN.md §5 — we build a 16-node
rooted tree exhibiting **every phenomenon the figure and its caption
assert**:

* (1a) a 16-node spanning tree whose nodes 0 and 1 are *merging nodes*;
* (1b) a fragment decomposition with three child fragments hanging off
  the root fragment (the paper labels them (5), (6), (7) under (0); ours
  are (3), (4), (5) under (0) — ids are fragment minima);
* (1c) a deep node (11) whose scope-ancestor set ``A(v)`` has five
  members spanning its own and its parent fragment;
* (1d) the skeleton tree ``T'_F`` on fragment roots + merging nodes;
* (1e) extra graph edges realising all three LCA cases of Step 5;
* (1f) ρ-messages of both types — type (i) created for merging-node
  LCAs by endpoints outside the LCA's fragment and type (ii) held
  within the LCA's fragment.

Used by the F1 benchmark, the figure walkthrough example and the
structure tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fragments.partition import FragmentDecomposition, partition_tree
from ..graphs.graph import WeightedGraph
from ..graphs.trees import RootedTree

FIGURE1_THRESHOLD = 4

_TREE_PARENTS = {
    1: 0,
    2: 0,
    3: 1,
    4: 1,
    5: 2,
    6: 5,
    7: 3,
    8: 3,
    9: 4,
    10: 5,
    11: 7,
    12: 8,
    13: 9,
    14: 9,
    15: 6,
}

_EXTRA_EDGES = [
    (11, 12, 1.0),  # case 1: same fragment (3), LCA 3
    (10, 15, 1.0),  # case 1: same fragment (5), LCA 5
    (13, 15, 1.0),  # case 2: fragments (4) vs (5), LCA 0 (merging)
    (12, 14, 1.0),  # case 2: fragments (3) vs (4), LCA 1 (merging)
    (7, 1, 1.0),    # case 3: LCA 1 lies in endpoint 1's fragment (0)
    (0, 15, 1.0),   # case 3 with LCA == endpoint 0
]

EXPECTED_FRAGMENT_IDS = (0, 3, 4, 5)
EXPECTED_FRAGMENT_MEMBERS = {
    0: frozenset({0, 1, 2}),
    3: frozenset({3, 7, 8, 11, 12}),
    4: frozenset({4, 9, 13, 14}),
    5: frozenset({5, 6, 10, 15}),
}
EXPECTED_MERGING_NODES = frozenset({0, 1})
EXPECTED_SKELETON_PARENTS = {0: None, 1: 0, 3: 1, 4: 1, 5: 0}
EXPECTED_A_OF_11 = (11, 7, 3, 1, 0)
EXPECTED_LCA_CASES = {
    (11, 12): 1,
    (10, 15): 1,
    (13, 15): 2,
    (12, 14): 2,
    (1, 7): 3,
    (0, 15): 3,
}


@dataclass(frozen=True)
class Figure1Instance:
    """The reconstructed Figure 1 world: graph, tree and decomposition."""

    graph: WeightedGraph
    tree: RootedTree
    decomposition: FragmentDecomposition


def figure1_instance() -> Figure1Instance:
    """Build the 16-node instance (deterministic, no randomness)."""
    tree = RootedTree(0, _TREE_PARENTS)
    graph = tree.to_graph()
    for u, v, w in _EXTRA_EDGES:
        graph.add_edge(u, v, w)
    decomposition = partition_tree(tree, FIGURE1_THRESHOLD)
    return Figure1Instance(graph=graph, tree=tree, decomposition=decomposition)
