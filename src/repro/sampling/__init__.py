"""Karger skeleton sampling (system S8 of DESIGN.md)."""

from .skeleton import (
    SAMPLING_CONSTANT,
    sample_skeleton,
    sampling_probability,
    skeleton_cut_estimate,
)

__all__ = [
    "SAMPLING_CONSTANT",
    "sample_skeleton",
    "sampling_probability",
    "skeleton_cut_estimate",
]
