"""Karger's skeleton sampling [STOC 1994] (system S8).

Sampling every unit of edge weight independently with probability ``p``
yields a *skeleton* whose cuts concentrate around ``p`` times their
original values: with ``p ≥ c·ln n / (ε² λ)`` every cut is preserved to
within ``(1 ± ε)`` w.h.p., so a minimum cut of the skeleton identifies a
``(1+ε)``-approximate minimum cut of the original graph, while the
skeleton's min-cut value drops to ``O(log n / ε²)`` — small enough for
the exact ``poly(λ)`` algorithm.  This is the reduction the paper cites
(via [Tho07, Lemma 7]) to turn the exact algorithm into the
``(1+ε)``-approximation headline result.

Integer weights are sampled as binomials (each unit independently);
non-integer weights are scaled by a dyadic factor first.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph

SAMPLING_CONSTANT = 3.0
"""The ``c`` in ``p = c·ln n / (ε² λ)``.

Karger's analysis wants a larger constant for high-probability bounds
over *all* cuts; at benchmark scales (n up to a few thousand) ``c = 3``
concentrates the relevant cuts well while letting the sampling branch
actually engage for moderate λ — with a huge constant the rate would be
capped at 1 everywhere and the (1+ε) path would silently degenerate to
the exact one."""


def sampling_probability(n: int, epsilon: float, lambda_estimate: float) -> float:
    """``min(1, c·ln n / (ε² λ̂))`` — Karger's rate for error ε."""
    if epsilon <= 0 or epsilon > 1:
        raise AlgorithmError(f"epsilon must be in (0, 1], got {epsilon}")
    if lambda_estimate <= 0:
        raise AlgorithmError("lambda estimate must be positive")
    return min(
        1.0,
        SAMPLING_CONSTANT * math.log(max(2, n)) / (epsilon ** 2 * lambda_estimate),
    )


def sample_skeleton(
    graph: WeightedGraph,
    probability: float,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> WeightedGraph:
    """Bernoulli/binomial skeleton of ``graph`` at rate ``probability``.

    Every unit of integer edge weight is kept independently with the
    given probability; surviving units become unit-weight edges of the
    skeleton (so the skeleton's cut values are the binomial sums Karger's
    analysis speaks about).  Nodes are always preserved; the skeleton
    may be disconnected — callers must check.
    """
    if not 0.0 <= probability <= 1.0:
        raise AlgorithmError(f"probability must be in [0, 1], got {probability}")
    generator = rng if rng is not None else random.Random(seed)
    skeleton = WeightedGraph()
    for u in graph.nodes:
        skeleton.add_node(u)
    if probability == 0.0:
        return skeleton
    for u, v, w in graph.edges():
        units = _integer_units(w)
        if probability == 1.0:
            kept = units
        else:
            kept = sum(1 for _ in range(units) if generator.random() < probability)
        if kept:
            skeleton.add_edge(u, v, float(kept))
    return skeleton


def _integer_units(weight: float) -> int:
    units = int(round(weight))
    if units < 1 or abs(units - weight) > 1e-9:
        raise AlgorithmError(
            f"skeleton sampling needs positive integer weights, got {weight!r}; "
            "rescale the graph first"
        )
    return units


def skeleton_cut_estimate(skeleton_cut: float, probability: float) -> float:
    """Rescale a skeleton cut value back to the original graph's scale."""
    if probability <= 0:
        raise AlgorithmError("probability must be positive to rescale")
    return skeleton_cut / probability
