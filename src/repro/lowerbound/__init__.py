"""Das Sarma et al. lower-bound instance family (system S11)."""

from .das_sarma import HardInstance, das_sarma_instance, square_instance

__all__ = ["HardInstance", "das_sarma_instance", "square_instance"]
