"""Das Sarma et al. [SICOMP 2013] style hard instances (system S11).

The Ω~(√n + D) lower bound uses graphs made of Γ ≈ √n parallel paths of
length ℓ ≈ √n, overlaid with a balanced binary tree whose leaves attach
to the path columns — giving Θ(Γ·ℓ) nodes but diameter only O(log n).
Information must still travel along the paths to be combined, which is
what forces √n rounds for (even approximate) min-cut.

Our experiment E5 runs the *upper-bound* algorithm on this family: with
D = O(log n), measured rounds must scale like √n, matching the paper's
tightness discussion.  Generator nodes: path node ``(i, j)`` (path i,
column j) and tree nodes, all remapped to consecutive integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph


@dataclass(frozen=True)
class HardInstance:
    """A lower-bound topology plus its bookkeeping.

    ``graph`` has unit weights except the Γ "cut" edges closing the
    first column onto a designated apex pair, giving a known planted cut
    when ``planted_cut`` is set.
    """

    graph: WeightedGraph
    paths: int
    path_length: int
    tree_depth: int
    planted_cut_value: float
    planted_side: frozenset


def das_sarma_instance(
    paths: int,
    path_length: int,
    heavy_weight: float = 4.0,
) -> HardInstance:
    """Build the path-of-Γ × binary-tree instance.

    Structure:

    * Γ = ``paths`` disjoint paths, each with ``path_length`` columns,
      edge weight ``heavy_weight`` (so path edges are never the min cut);
    * a balanced binary tree over ``path_length`` leaf positions, each
      leaf joined to every path at its column with weight
      ``heavy_weight`` (keeps D = O(log path_length));
    * a planted minimum cut: the *last* column's path nodes attach to
      their column leaf with **unit** weight instead, so cutting those Γ
      unit edges (plus the Γ heavy path edges into the last column is
      avoided by giving the last path edge unit weight too) isolates the
      last column at total weight 2Γ… simplified: the planted side is
      the last column's path nodes, its cut value is returned exactly.
    """
    if paths < 1 or path_length < 2:
        raise AlgorithmError("need at least 1 path and 2 columns")
    graph = WeightedGraph()
    node_id = 0
    # Heavy edges must outweigh the planted cut (2·paths unit edges), so
    # that no heavy singleton/neck beats the planted column.
    heavy = max(heavy_weight, float(paths) + 2.0)

    def fresh() -> int:
        nonlocal node_id
        node_id += 1
        return node_id - 1

    path_nodes = [[fresh() for _ in range(path_length)] for _ in range(paths)]
    # Path edges: heavy everywhere except into the last column (unit).
    for i in range(paths):
        for j in range(path_length - 1):
            weight = 1.0 if j == path_length - 2 else heavy
            graph.add_edge(path_nodes[i][j], path_nodes[i][j + 1], weight)
    # Tie the last column together internally (heavy ring) so that the
    # planted cut — the whole column, 2·paths unit edges — is strictly
    # lighter than any cut splitting the column.
    last = [path_nodes[i][path_length - 1] for i in range(paths)]
    if paths == 2:
        graph.add_edge(last[0], last[1], heavy * paths)
    elif paths >= 3:
        for i in range(paths):
            graph.add_edge(last[i], last[(i + 1) % paths], heavy * paths)

    # Balanced binary tree over columns.
    depth = max(1, math.ceil(math.log2(path_length)))
    leaves = 2 ** depth
    tree_nodes: list[list[int]] = [[fresh() for _ in range(2 ** d)] for d in range(depth + 1)]
    for d in range(depth):
        for idx, parent in enumerate(tree_nodes[d]):
            graph.add_edge(parent, tree_nodes[d + 1][2 * idx], heavy)
            graph.add_edge(parent, tree_nodes[d + 1][2 * idx + 1], heavy)
    # Attach every leaf to a column in every path; the last column gets
    # unit attachments (part of the planted cut).  Surplus leaves (the
    # tree is a full power of two) wrap onto the early columns with
    # heavy edges so no leaf is left hanging on a single light edge.
    for leaf_idx in range(leaves):
        leaf = tree_nodes[depth][leaf_idx]
        j = leaf_idx if leaf_idx < path_length else leaf_idx % (path_length - 1)
        for i in range(paths):
            weight = 1.0 if j == path_length - 1 else heavy
            graph.add_edge(leaf, path_nodes[i][j], weight)

    planted_side = frozenset(path_nodes[i][path_length - 1] for i in range(paths))
    planted_value = graph.cut_value(planted_side)
    return HardInstance(
        graph=graph,
        paths=paths,
        path_length=path_length,
        tree_depth=depth,
        planted_cut_value=planted_value,
        planted_side=planted_side,
    )


def square_instance(n_target: int, heavy_weight: float = 4.0) -> HardInstance:
    """The canonical Γ = ℓ ≈ √n sizing used by the E5 sweep."""
    side = max(2, math.isqrt(max(4, n_target)))
    return das_sarma_instance(side, side, heavy_weight=heavy_weight)
